"""Shared fixtures.

Key generation is the only expensive operation in the code base, so a
single session-scoped :class:`KeyStore` hands out deterministic keys;
tests request small (512-bit) keys unless the behaviour under test is
size-specific.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.crypto.keystore import KeyStore
from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import Name


@pytest.fixture(scope="session")
def keystore() -> KeyStore:
    return KeyStore(seed=1234)


@pytest.fixture(scope="session")
def root_ca(keystore: KeyStore) -> CertificateAuthority:
    """A trusted root CA with a 512-bit key (fast, sufficient for tests)."""
    return CertificateAuthority.self_signed(
        SelfSignedParams(
            subject=Name.build(
                common_name="Repro Test Root CA", organization="Repro Trust"
            ),
            key=keystore.key("test-root", 512),
        )
    )


@pytest.fixture(scope="session")
def intermediate_ca(
    keystore: KeyStore, root_ca: CertificateAuthority
) -> CertificateAuthority:
    return root_ca.issue_intermediate(
        Name.build(common_name="Repro Test Intermediate", organization="Repro Trust"),
        keystore.key("test-intermediate", 512),
    )


@pytest.fixture()
def now() -> dt.datetime:
    return dt.datetime(2014, 6, 1, tzinfo=dt.timezone.utc)
