"""Wire concurrency: the admission cap must not change a single byte.

ISSUE 10's acceptance bar: a wire study at concurrency 1, 64 and 1024
produces byte-identical ``aggregate_signature()``, per-engine handshake
event logs and deterministic metrics.  Concurrency only reshapes the
process section (loop ticks, queue depth, in-flight high-water).
"""

import pytest

from repro.study import StudyConfig, StudyRunner


def _run(wire_concurrency: int):
    result = StudyRunner(
        StudyConfig(
            study=2,
            seed=9,
            scale=0.0001,
            mode="wire",
            wire_concurrency=wire_concurrency,
        )
    ).run()
    engine_logs = {}
    for key, host in result.notes["wire_client_hosts"].items():
        for interceptor in host.interceptors:
            events = getattr(interceptor, "events", None)
            if events is not None:
                engine_logs[key] = events.to_dicts()
    return result, engine_logs


@pytest.fixture(scope="module")
def runs():
    return {n: _run(n) for n in (1, 64, 1024)}


class TestWireConcurrencyEquivalence:
    def test_signatures_identical(self, runs):
        signatures = {
            n: result.database.aggregate_signature()
            for n, (result, _logs) in runs.items()
        }
        assert len(set(signatures.values())) == 1, signatures

    def test_deterministic_metrics_identical(self, runs):
        sections = [
            result.metrics["deterministic"] for result, _logs in runs.values()
        ]
        assert sections[0] == sections[1] == sections[2]

    def test_per_engine_event_logs_identical(self, runs):
        _serial, serial_logs = runs[1]
        for n in (64, 1024):
            _result, logs = runs[n]
            assert logs.keys() == serial_logs.keys()
            for key in serial_logs:
                assert logs[key] == serial_logs[key], (
                    f"engine {key} diverged at concurrency {n}"
                )

    def test_sessions_and_failure_counters_identical(self, runs):
        baselines = None
        for result, _logs in runs.values():
            failures = result.database.failures
            row = (
                result.sessions_run,
                failures.sessions_started,
                failures.policy_denied,
                failures.connect_failed,
                failures.probe_failed,
                failures.report_failed,
            )
            if baselines is None:
                baselines = row
            assert row == baselines

    def test_concurrent_runs_actually_multiplexed(self, runs):
        result, _logs = runs[1024]
        process = result.metrics["process"]
        assert result.notes["wire_concurrency"] == 1024
        # The scheduler ran: ticks were spent and sessions overlapped.
        counters = process["counters"]
        gauges = process["gauges"]
        assert counters["loop.ticks"] > 0
        assert counters["wire.queue_delivered"] > 0
        assert gauges["wire.sessions_inflight"] > 1
        assert gauges["wire.chains_peak_active"] > 1

    def test_workers_flag_is_lifted_into_concurrency(self):
        # The historical "wire mode is single-worker" rejection is gone:
        # workers>1 now normalises into the admission cap.
        config = StudyConfig(study=2, seed=9, scale=0.0001, mode="wire", workers=8)
        assert config.workers == 1
        assert config.wire_concurrency == 8
