"""Integration: fast-mode studies streamed into the on-disk store.

The acceptance bar for the spill-to-disk path: a study driven into
segments must reproduce the in-memory run exactly — byte-identical
``aggregate_signature()``, identical Tables 3/7 inputs — for the same
seed, and stay identical across worker counts.
"""

import pytest

from repro.analysis import country_breakdown, host_type_table
from repro.measure.store import load_store, scan_store
from repro.study import StudyConfig, StudyRunner

SEED = 1337
SCALE = 0.002


@pytest.fixture(scope="module")
def memory_run():
    return StudyRunner(
        StudyConfig(study=2, seed=SEED, scale=SCALE, mode="fast")
    ).run()


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("report-store") / "segments"
    StudyRunner(
        StudyConfig(
            study=2, seed=SEED, scale=SCALE, mode="fast", report_store=str(path)
        )
    ).run()
    return path


class TestStoreDrivenStudy:
    def test_signature_matches_in_memory_path(self, memory_run, store_dir):
        aggregator = scan_store(store_dir)
        assert aggregator.aggregate_signature() == (
            memory_run.database.aggregate_signature()
        )

    def test_tables_match_in_memory_path(self, memory_run, store_dir):
        aggregator = scan_store(store_dir)
        assert country_breakdown(aggregator, order_by="total") == (
            country_breakdown(memory_run.database, order_by="total")
        )
        assert host_type_table(aggregator) == host_type_table(memory_run.database)
        assert aggregator.distinct_proxied_ips() == (
            memory_run.database.distinct_proxied_ips()
        )

    def test_loaded_records_match_in_memory_multiset(self, memory_run, store_dir):
        loaded = load_store(store_dir)
        assert loaded.aggregate_signature() == (
            memory_run.database.aggregate_signature()
        )
        assert sorted(
            (r.country, r.hostname, r.client_ip) for r in loaded.records
        ) == sorted(
            (r.country, r.hostname, r.client_ip)
            for r in memory_run.database.records
        )

    def test_streaming_run_keeps_database_empty(self, store_dir, memory_run):
        result = StudyRunner(
            StudyConfig(study=2, seed=SEED, scale=SCALE, mode="fast")
        )
        # The store_dir fixture's run streamed everything to disk; its
        # in-memory database must have stayed empty (that is the point).
        del result
        streamed = StudyRunner(
            StudyConfig(
                study=2,
                seed=SEED,
                scale=SCALE,
                mode="fast",
                report_store=str(store_dir.parent / "again"),
            )
        ).run()
        assert streamed.database.total_measurements == 0
        assert streamed.notes["report_store"] == str(store_dir.parent / "again")

    def test_worker_count_invisible_in_store(self, store_dir, tmp_path):
        sharded_dir = tmp_path / "w2"
        StudyRunner(
            StudyConfig(
                study=2,
                seed=SEED,
                scale=SCALE,
                mode="fast",
                workers=2,
                report_store=str(sharded_dir),
            )
        ).run()
        assert scan_store(sharded_dir).aggregate_signature() == (
            scan_store(store_dir).aggregate_signature()
        )

    def test_store_metrics_land_in_deterministic_section(self, store_dir):
        result = StudyRunner(
            StudyConfig(
                study=2,
                seed=SEED,
                scale=SCALE,
                mode="fast",
                report_store=str(store_dir.parent / "metrics"),
            )
        ).run()
        counters = result.metrics["deterministic"]["counters"]
        assert counters["reports.batches"] >= 1
        assert counters["store.segments_written"] >= 1
        assert counters["store.bytes_written"] > 0

    def test_refuses_non_empty_store(self, store_dir):
        with pytest.raises(ValueError, match="already has segments"):
            StudyRunner(
                StudyConfig(
                    study=2,
                    seed=SEED,
                    scale=SCALE,
                    mode="fast",
                    report_store=str(store_dir),
                )
            ).run()

    def test_wire_mode_rejects_report_store(self):
        with pytest.raises(ValueError, match="fast mode only"):
            StudyConfig(study=1, mode="wire", report_store="/tmp/x")
