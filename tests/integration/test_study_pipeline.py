"""Integration tests: studies end to end, and wire ≡ fast equivalence."""

import pytest

from repro.analysis import (
    classification_table,
    country_breakdown,
    host_type_table,
    issuer_organization_table,
)
from repro.data import products as product_data
from repro.proxy.profile import ProxyCategory
from repro.study import StudyConfig, StudyRunner


@pytest.fixture(scope="module")
def study1_fast():
    return StudyRunner(StudyConfig(study=1, seed=5, scale=0.02, mode="fast")).run()


@pytest.fixture(scope="module")
def study1_wire():
    return StudyRunner(StudyConfig(study=1, seed=5, scale=0.001, mode="wire")).run()


@pytest.fixture(scope="module")
def study2_fast():
    return StudyRunner(StudyConfig(study=2, seed=5, scale=0.01, mode="fast")).run()


class TestStudy1Fast:
    def test_measurement_volume_scales(self, study1_fast):
        db = study1_fast.database
        # 2.86M measurements at 2% scale ≈ 57k.
        assert 45_000 < db.total_measurements < 70_000

    def test_proxied_rate_near_paper(self, study1_fast):
        rate = study1_fast.database.proxied_rate
        assert 0.0025 < rate < 0.0060  # paper: 0.0041

    def test_every_mismatch_has_country_and_product(self, study1_fast):
        for record in study1_fast.database.mismatches():
            assert record.country is not None
            assert record.product_key is not None
            assert record.via == "fast"

    def test_bitdefender_leads_issuer_table(self, study1_fast):
        rows, _ = issuer_organization_table(study1_fast.database, top_n=5)
        assert rows[0].issuer_organization == "Bitdefender"

    def test_firewalls_dominate_classification(self, study1_fast):
        rows = {r.category: r for r in classification_table(study1_fast.database)}
        bpf = rows[ProxyCategory.BUSINESS_PERSONAL_FIREWALL].percent
        assert 60.0 < bpf < 80.0  # paper: 68.86%

    def test_us_and_brazil_lead_country_table(self, study1_fast):
        breakdown = country_breakdown(study1_fast.database, top_n=5)
        top_countries = {row.country for row in breakdown.rows}
        assert "US" in top_countries
        assert "BR" in top_countries

    def test_campaign_stats_generated(self, study1_fast):
        assert len(study1_fast.campaigns) == 1
        assert study1_fast.campaigns[0].impressions > 3_000_000

    def test_classifier_recovers_ground_truth(self, study1_fast):
        """Issuer-string classification must agree with the simulation's
        ground-truth product categories almost everywhere."""
        from repro.analysis import IssuerClassifier

        classifier = IssuerClassifier()
        catalog = product_data.catalog_by_key()
        agree = total = 0
        for record in study1_fast.database.mismatches():
            truth = catalog[record.product_key].category
            verdict = classifier.classify(record.leaf)
            total += 1
            agree += verdict is truth
        assert total > 0
        assert agree / total > 0.95

    def test_deterministic_given_seed(self):
        a = StudyRunner(StudyConfig(study=1, seed=77, scale=0.002, mode="fast")).run()
        b = StudyRunner(StudyConfig(study=1, seed=77, scale=0.002, mode="fast")).run()
        assert a.database.total_measurements == b.database.total_measurements
        fingerprints_a = sorted(r.leaf.fingerprint for r in a.database.mismatches())
        fingerprints_b = sorted(r.leaf.fingerprint for r in b.database.mismatches())
        assert fingerprints_a == fingerprints_b


class TestStudy1Wire:
    def test_wire_pipeline_produces_reports(self, study1_wire):
        db = study1_wire.database
        assert db.total_measurements > 1000
        assert db.failures.report_failed == 0
        assert db.failures.policy_denied == 0

    def test_wire_rate_plausible(self, study1_wire):
        # Small sample: just require the right order of magnitude.
        assert 0.0 < study1_wire.database.proxied_rate < 0.02

    def test_wire_records_geolocated(self, study1_wire):
        for record in study1_wire.database.mismatches():
            assert record.country is not None
            assert record.via == "wire"

    def test_wire_mismatches_fail_public_validation(self, study1_wire):
        for record in study1_wire.database.mismatches():
            assert not record.chain_valid

    def test_wire_matched_pass_public_validation(self, study1_wire):
        for record in study1_wire.database.matched_samples:
            assert record.chain_valid


class TestWireFastEquivalence:
    def test_same_client_same_certificate(self, study1_fast, study1_wire):
        """For identical (product, host, bucket), wire and fast modes
        must record the identical forged certificate."""
        wire_by_key = {}
        for record in study1_wire.database.mismatches():
            bucket = _bucket_of(study1_wire, record)
            wire_by_key[(record.product_key, record.hostname, bucket)] = record
        fast_by_key = {}
        for record in study1_fast.database.mismatches():
            bucket = _bucket_of(study1_fast, record)
            fast_by_key[(record.product_key, record.hostname, bucket)] = record
        overlap = set(wire_by_key) & set(fast_by_key)
        assert overlap, "expected overlapping (product, host, bucket) cells"
        for key in overlap:
            wire_leaf = wire_by_key[key].leaf
            fast_leaf = fast_by_key[key].leaf
            assert wire_leaf.fingerprint == fast_leaf.fingerprint
            assert wire_leaf.serial_number == fast_leaf.serial_number
            assert wire_leaf.public_key_fingerprint == fast_leaf.public_key_fingerprint


def _bucket_of(result, record):
    """Recover the client bucket from the client IP's pool index."""
    from repro.geoip.database import ip_to_int

    plan = result.population.plan(record.country)
    index = ip_to_int(record.client_ip) - plan.block_start
    return index % product_data.NUM_CLIENT_BUCKETS


class TestStudy2Fast:
    def test_all_host_types_measured(self, study2_fast):
        rows = {r.host_type: r for r in host_type_table(study2_fast.database)}
        for host_type in ("Popular", "Business", "Pornographic", "Authors'"):
            assert rows[host_type].connections > 0

    def test_host_type_rates_indistinguishable(self, study2_fast):
        """Table 8's punchline: no blacklisting, all types ≈ equal rates."""
        rows = host_type_table(study2_fast.database)
        rates = [row.percent_proxied for row in rows if row.connections > 1000]
        assert len(rates) >= 4
        assert max(rates) - min(rates) < 0.15  # percentage points

    def test_china_rate_exceptionally_low(self, study2_fast):
        totals = study2_fast.database.totals_by_country()
        cn_proxied, cn_total = totals["CN"]
        us_proxied, us_total = totals["US"]
        assert cn_total > 10_000
        assert cn_proxied / cn_total < 0.001  # paper: 0.02%
        assert us_proxied / us_total > 0.004  # paper: 0.86%

    def test_targeted_countries_dominate_volume(self, study2_fast):
        breakdown = country_breakdown(study2_fast.database, top_n=6, order_by="total")
        top = {row.country for row in breakdown.rows}
        # All five targeted countries in the top six by volume (Table 7).
        assert {"CN", "UA", "RU", "EG", "PK"} <= top

    def test_six_campaigns(self, study2_fast):
        assert len(study2_fast.campaigns) == 6
        assert {c.name for c in study2_fast.campaigns} == {
            "Global",
            "China",
            "Egypt",
            "Pakistan",
            "Russia",
            "Ukraine",
        }

    def test_second_study_malware_present(self, study2_fast):
        from repro.analysis import malware_census

        census = malware_census(study2_fast.database)
        identifiers = {f.identifier for f in census.families}
        assert "Objectify Media Inc" in identifiers
        assert "Superfish, Inc." in identifiers
