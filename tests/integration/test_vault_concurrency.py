"""Concurrent-writer safety of the persistent key vault.

Two worker processes warming the same vault directory race on every
slot: both may generate, both may write, and their atomic renames may
interleave in any order.  Because a slot's bytes are a pure function
of (seed, label, bits), every interleaving must converge on the same
on-disk material — the property that lets a shard pool share one vault
without any locking.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.crypto.keystore import KeyStore
from repro.crypto.vault import KeyVault

SEED = 2024
LABELS = [f"race-{i}" for i in range(6)]
BITS = 512


def _warm_vault(path: str) -> list[tuple[int, int, int]]:
    store = KeyStore(seed=SEED, vault=path)
    return [
        (pair.n, pair.d, pair.q_inv)
        for pair in (store.key(label, BITS) for label in LABELS)
    ]


class TestConcurrentWriters:
    def test_two_processes_warming_the_same_vault(self, tmp_path):
        vault_dir = str(tmp_path / "shared-vault")
        with ProcessPoolExecutor(max_workers=2) as pool:
            first, second = pool.map(_warm_vault, [vault_dir, vault_dir])
        # Both racers saw identical key material...
        assert first == second
        vault = KeyVault(vault_dir)
        # ...exactly one complete entry per slot survived the race...
        assert len(vault) == len(LABELS)
        assert not list(vault.path.glob("**/*.tmp"))
        # ...and a later reader loads every key without regenerating.
        reader = KeyStore(seed=SEED, vault=vault_dir)
        loaded = [
            (pair.n, pair.d, pair.q_inv)
            for pair in (reader.key(label, BITS) for label in LABELS)
        ]
        assert loaded == first
        assert reader.keys_generated == 0
        assert reader.vault_hits == len(LABELS)

    def test_two_threads_storing_the_same_slot(self, tmp_path):
        """Same-process writers must not collide on the temp file:
        the unique name is per (pid, thread), not just per pid."""
        vault = KeyVault(tmp_path / "thread-vault")
        pair = KeyStore(seed=SEED).key("thread-race", BITS)

        def racer(_):
            for _ in range(20):
                vault.store(SEED, "thread-race", BITS, pair)
            return True

        with ThreadPoolExecutor(max_workers=2) as pool:
            assert all(pool.map(racer, range(2)))
        loaded = vault.load(SEED, "thread-race", BITS)
        assert loaded is not None and loaded.n == pair.n
        assert not list(vault.path.glob("**/*.tmp"))

    def test_interleaved_store_load_cycle(self, tmp_path):
        """A reader polling mid-warm sees either a miss or a full key,
        never a partial entry."""
        vault = KeyVault(tmp_path / "poll-vault")
        store = KeyStore(seed=SEED, vault=vault)
        for label in LABELS:
            before = vault.load(SEED, label, BITS)
            assert before is None
            pair = store.key(label, BITS)
            after = vault.load(SEED, label, BITS)
            assert after is not None
            assert (after.n, after.d) == (pair.n, pair.d)
