"""Study 2 in wire mode: the multi-site session pipeline end to end."""

import pytest

from repro.analysis import host_type_table
from repro.study import StudyConfig, StudyRunner


@pytest.fixture(scope="module")
def study2_wire():
    # 0.0001 of 5M impressions ≈ 300 sessions ≈ 1.2k measurements.
    return StudyRunner(
        StudyConfig(study=2, seed=9, scale=0.0001, mode="wire")
    ).run()


class TestStudy2Wire:
    def test_sessions_probe_multiple_sites(self, study2_wire):
        db = study2_wire.database
        assert study2_wire.sessions_run > 100
        # Multiple measurements per session on average.
        assert db.total_measurements > study2_wire.sessions_run * 2

    def test_all_host_types_reached(self, study2_wire):
        rows = {r.host_type: r for r in host_type_table(study2_wire.database)}
        for host_type in ("Popular", "Business", "Pornographic", "Authors'"):
            assert host_type in rows
            assert rows[host_type].connections > 0

    def test_no_protocol_failures(self, study2_wire):
        failures = study2_wire.database.failures
        assert failures.policy_denied == 0
        assert failures.report_failed == 0
        assert failures.connect_failed == 0
        assert failures.probe_failed == 0

    def test_third_party_sites_use_dedicated_policy_port(self, study2_wire):
        """Third-party probe targets serve policies on 843, the authors'
        site on 80 — and both satisfied the tool, since nothing failed."""
        server = study2_wire.notes["reporting_server"]
        assert len(server.expected_leaves) == 17

    def test_mismatch_records_span_sites(self, study2_wire):
        hosts = {r.hostname for r in study2_wire.database.mismatches()}
        # With ~1.2k measurements and 0.41% interception the mismatches
        # are few; they must still belong to registered probe targets.
        expected = set(server_hosts(study2_wire))
        assert hosts <= expected


def server_hosts(result):
    return [site.hostname for site in result.sites]
