"""Integration: fault-injected studies must recover byte-identically.

The chaos layer's acceptance bar, end to end: a fast-mode study run
under a recoverable fault plan (transient gate faults + store crash
points) produces the exact aggregate signature of the fault-free run —
at any worker count — while the injected faults stay visible in the
deterministic metrics; a lossy plan holds ``submitted == delivered +
failed`` exactly.  The ``repro chaos`` matrix rides on the same
machinery and must come back all-green.
"""

import json

import pytest

from repro.faults.chaos import run_chaos_matrix
from repro.measure.store import scan_store
from repro.obs.metrics import MetricsRegistry
from repro.study import StudyConfig, StudyRunner

SEED = 2024
SCALE = 0.002
RECOVERABLE = (
    "reset=0.08,429=0.05,crash-flush=2,crash-rotate=2,"
    "segment-bytes=2048,batch-rows=16"
)


@pytest.fixture(scope="module")
def reference_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-ref") / "segments"
    StudyRunner(
        StudyConfig(study=1, seed=SEED, scale=SCALE, report_store=str(path))
    ).run()
    return path


def _faulted_run(tmp_path_factory, workers):
    path = tmp_path_factory.mktemp(f"chaos-w{workers}") / "segments"
    result = StudyRunner(
        StudyConfig(
            study=1,
            seed=SEED,
            scale=SCALE,
            workers=workers,
            report_store=str(path),
            faults=RECOVERABLE,
        )
    ).run()
    return path, result


class TestRecoverableStudyPlans:
    def test_signature_identical_to_fault_free_run(
        self, tmp_path_factory, reference_dir
    ):
        path, result = _faulted_run(tmp_path_factory, workers=1)
        assert scan_store(path).aggregate_signature() == (
            scan_store(reference_dir).aggregate_signature()
        )
        note = result.notes["faults"]
        # Faults genuinely fired and were all recovered.
        assert note["failed"] == 0
        assert note["submitted"] == note["delivered"]
        assert sum(note["injected"].values()) > 0
        assert note["recoveries"] > 0

    def test_worker_counts_share_the_fault_schedule(
        self, tmp_path_factory, reference_dir
    ):
        path, result = _faulted_run(tmp_path_factory, workers=2)
        assert scan_store(path).aggregate_signature() == (
            scan_store(reference_dir).aggregate_signature()
        )
        single_path, single = _faulted_run(tmp_path_factory, workers=1)
        # The gate keys on global op ordinals assigned in plan order, so
        # the injected sequence is invariant across worker counts.
        assert result.notes["faults"] == single.notes["faults"]
        assert scan_store(path).aggregate_signature() == (
            scan_store(single_path).aggregate_signature()
        )

    def test_fault_metrics_are_deterministic(self, tmp_path_factory):
        snapshots = []
        for _ in range(2):
            _path, result = _faulted_run(tmp_path_factory, workers=1)
            deterministic = result.metrics["deterministic"]
            faults = {
                key: value
                for key, value in deterministic["counters"].items()
                if key.startswith(("faults.", "store.recoveries"))
            }
            assert faults  # injections visible in the registry
            snapshots.append(json.dumps(faults, sort_keys=True))
        assert snapshots[0] == snapshots[1]


class TestLossyStudyPlans:
    def test_exact_loss_invariant(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("chaos-lossy") / "segments"
        result = StudyRunner(
            StudyConfig(
                study=1,
                seed=SEED,
                scale=SCALE,
                report_store=str(path),
                faults="drop=0.1,crash-flush=2,segment-bytes=2048,batch-rows=16",
            )
        ).run()
        note = result.notes["faults"]
        assert note["failed"] > 0  # the drill actually bit
        assert note["submitted"] == note["delivered"] + note["failed"]
        # The store holds exactly the delivered ops, no more.
        assert scan_store(path).aggregate_signature() != ""


class TestCrashPlanRequiresStore:
    def test_config_rejects_crash_points_without_report_store(self):
        with pytest.raises(ValueError):
            StudyConfig(study=1, seed=1, scale=SCALE, faults="crash-flush=1")

    def test_bad_plan_string_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            StudyConfig(study=1, seed=1, scale=SCALE, faults="bogus=1")


class TestChaosMatrix:
    def test_matrix_is_all_green_and_worker_invariant(self):
        snapshots = []
        for workers in (1, 2):
            registry = MetricsRegistry()
            outcomes = run_chaos_matrix(
                seed=5, reports=24, workers=workers, registry=registry
            )
            assert all(o.invariant_ok for o in outcomes)
            assert all(o.signature_ok is not False for o in outcomes)
            # Both failure regimes are represented in the matrix.
            assert any(o.signature_ok is True and o.recoveries for o in outcomes)
            assert any(o.signature_ok is None for o in outcomes)
            snapshots.append(
                json.dumps(registry.deterministic_snapshot(), sort_keys=True)
            )
        assert snapshots[0] == snapshots[1]
