"""Scaling regression tests: sharded/pooled execution must be invisible.

The perf work (process-sharded fast studies, process-pool audit
backend, crypto/DER memoisation) is only acceptable if it changes
nothing observable: same seed → byte-identical forged chains and
identical report aggregates, for any worker count and executor kind.
"""

import json

import pytest

from repro.analysis.mimicry import mimicry_prevalence
from repro.audit import audit_catalog, mimicry_catalog
from repro.crypto.keystore import KeyStore
from repro.data import products as product_data
from repro.proxy.forger import SubstituteCertForger
from repro.study import StudyConfig, StudyRunner, plan_subshards
from repro.study.webpki import build_web_pki
from repro.data import sites as site_data

SEED = 1337
SCALE = 0.002

AUDIT_SUBSET = ["bitdefender", "kurupira", "other-business-fw"]


@pytest.fixture(scope="module")
def run_w1():
    return StudyRunner(
        StudyConfig(study=1, seed=SEED, scale=SCALE, mode="fast", workers=1)
    ).run()


@pytest.fixture(scope="module")
def run_w4():
    return StudyRunner(
        StudyConfig(study=1, seed=SEED, scale=SCALE, mode="fast", workers=4)
    ).run()


class TestStudyWorkerDeterminism:
    def test_aggregate_signature_identical(self, run_w1, run_w4):
        assert (
            run_w1.database.aggregate_signature()
            == run_w4.database.aggregate_signature()
        )

    def test_matched_counters_identical(self, run_w1, run_w4):
        assert run_w1.database.matched_counts == run_w4.database.matched_counts

    def test_mismatch_records_identical_in_order(self, run_w1, run_w4):
        """Shards merge in fixed plan order, so even the record *list*
        (not just the multiset) must match byte for byte."""
        a = [
            (r.country, r.hostname, r.client_ip, r.leaf, r.chain)
            for r in run_w1.database.records
        ]
        b = [
            (r.country, r.hostname, r.client_ip, r.leaf, r.chain)
            for r in run_w4.database.records
        ]
        assert a == b
        assert len(a) > 0

    def test_failure_counters_and_sessions_identical(self, run_w1, run_w4):
        assert vars(run_w1.database.failures) == vars(run_w4.database.failures)
        assert run_w1.sessions_run == run_w4.sessions_run


class TestForgeEquivalence:
    def test_independent_forgers_emit_identical_der(self):
        """Two forgers built from the same seed must mint substitute
        chains that agree on every byte — the property that makes
        worker processes interchangeable with the parent."""
        sites = site_data.study1_probe_sites()[:3]
        chains = []
        for _ in range(2):
            keystore = KeyStore(seed=SEED)
            forger = SubstituteCertForger(keystore, seed=SEED)
            pki = build_web_pki(keystore, sites, seed=SEED)
            specs = [
                spec
                for spec in product_data.catalog()
                if spec.key in ("bitdefender", "kurupira", "other-business-fw")
            ]
            minted = []
            for spec in specs:
                for site in sites:
                    for bucket in (0, 3):
                        forged = forger.forge(
                            spec.profile,
                            pki.leaf_for(site.hostname),
                            site.hostname,
                            client_bucket=bucket,
                        )
                        minted.append(tuple(c.encode() for c in forged.chain))
            chains.append(minted)
        assert chains[0] == chains[1]

    def test_fast_records_match_direct_forge(self, run_w1):
        """Every fast-mode mismatch record must carry exactly the
        fingerprint a fresh forge of the same (product, host, bucket)
        produces — wire mode calls the same forge path, so this pins
        wire ≡ fast ≡ sharded."""
        runner = StudyRunner(
            StudyConfig(study=1, seed=SEED, scale=SCALE, mode="fast")
        )
        catalog = product_data.catalog_by_key()
        checked = 0
        for record in run_w1.database.records:
            if checked >= 10:
                break
            spec = catalog[record.product_key]
            if spec.egress_plan is not None:
                # Egress IPs collapse the client pool; the bucket is
                # not recoverable from the IP for these products.
                continue
            bucket = _bucket_of(run_w1, record)
            forged = runner.forger.forge(
                spec.profile,
                runner.pki.leaf_for(record.hostname),
                record.hostname,
                site_ip=runner.site_ips[record.hostname],
                client_bucket=bucket,
            )
            assert forged.leaf.fingerprint() == record.leaf.fingerprint
            assert forged.leaf.serial_number == record.leaf.serial_number
            checked += 1
        assert checked > 0


def _bucket_of(result, record):
    from repro.geoip.database import ip_to_int

    plan = result.population.plan(record.country)
    index = ip_to_int(record.client_ip) - plan.block_start
    return index % product_data.NUM_CLIENT_BUCKETS


class TestWorkStealingSubShards:
    """Skew-splitting must be invisible to the database contents."""

    def test_split_plan_is_even_and_exact(self):
        shards = plan_subshards("BR", 100_001, 25_000)
        assert [s.sessions for s in shards] == [20_001, 20_000, 20_000, 20_000, 20_000]
        assert sum(s.sessions for s in shards) == 100_001
        assert [s.sub for s in shards] == list(range(5))
        assert all(s.n_subs == 5 for s in shards)

    def test_small_countries_keep_historical_seed_stream(self):
        (shard,) = plan_subshards("LU", 123, 25_000)
        assert shard.seed_parts(SEED) == (SEED, "LU")
        split = plan_subshards("BR", 50_001, 25_000)
        assert split[1].seed_parts(SEED) == (SEED, "BR", 1)

    def test_plan_ignores_worker_count(self):
        # The plan is a pure function of (count, target): recomputing
        # it can never disagree with what another process computed.
        assert plan_subshards("US", 77_777, 10_000) == plan_subshards(
            "US", 77_777, 10_000
        )

    def test_subsharded_runs_identical_across_workers(self, warm_vault):
        """Force splits at tiny scale: workers ∈ {1, 4} over a
        work-stealing queue must still merge to the same database."""
        results = {
            workers: StudyRunner(
                StudyConfig(
                    study=1,
                    seed=SEED,
                    scale=SCALE,
                    mode="fast",
                    workers=workers,
                    subshard_sessions=50,
                    vault=warm_vault,
                )
            ).run()
            for workers in (1, 4)
        }
        assert results[1].notes["fast_subshards"] > results[1].notes["fast_shards"]
        assert (
            results[1].database.aggregate_signature()
            == results[4].database.aggregate_signature()
        )
        assert results[1].sessions_run == results[4].sessions_run


@pytest.fixture(scope="module")
def warm_vault(tmp_path_factory):
    """A vault warmed by one cold sharded run (parent generates once)."""
    path = str(tmp_path_factory.mktemp("key-vault"))
    StudyRunner(
        StudyConfig(study=1, seed=SEED, scale=SCALE, mode="fast", workers=2, vault=path)
    ).run()
    return path


class TestVaultDeterminism:
    """Acceptance: warm vault → zero per-worker keygen, same bytes."""

    @pytest.fixture(scope="class")
    def vault_runs(self, warm_vault):
        return {
            workers: StudyRunner(
                StudyConfig(
                    study=1,
                    seed=SEED,
                    scale=SCALE,
                    mode="fast",
                    workers=workers,
                    vault=warm_vault,
                )
            ).run()
            for workers in (1, 2, 4)
        }

    def test_signature_identical_across_workers_and_vault_on_off(
        self, vault_runs, run_w1
    ):
        signatures = {
            run.database.aggregate_signature() for run in vault_runs.values()
        }
        signatures.add(run_w1.database.aggregate_signature())  # vault off
        assert len(signatures) == 1

    def test_warm_vault_generates_zero_keys(self, vault_runs):
        inline = vault_runs[1]
        assert inline.notes["keys_generated"] == 0
        for workers in (2, 4):
            sharded = vault_runs[workers]
            # Parent loaded everything from disk...
            assert sharded.notes["keys_generated"] == 0
            # ...and so did every worker process.
            assert sharded.notes["worker_keys_generated"] == 0

    def test_vaultless_run_does_generate(self, run_w1):
        assert run_w1.notes["keys_generated"] > 0

    def test_audit_vault_matches_vaultless(self, warm_vault, serial_audit):
        vaulted = audit_catalog(
            seed=SEED,
            products=AUDIT_SUBSET,
            workers=2,
            executor="process",
            pki_key_bits=512,
            vault=warm_vault,
        )
        assert vaulted.scorecards == serial_audit.scorecards


@pytest.fixture(scope="module")
def serial_audit():
    return audit_catalog(
        seed=SEED, products=AUDIT_SUBSET, workers=1, pki_key_bits=512
    )


class TestAuditExecutorDeterminism:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return audit_catalog(seed=SEED, products=AUDIT_SUBSET, workers=1, pki_key_bits=512)

    def test_thread_pool_matches_serial(self, serial_report):
        threaded = audit_catalog(
            seed=SEED, products=AUDIT_SUBSET, workers=2, executor="thread", pki_key_bits=512
        )
        assert threaded.scorecards == serial_report.scorecards

    def test_process_pool_matches_serial(self, serial_report):
        pooled = audit_catalog(
            seed=SEED, products=AUDIT_SUBSET, workers=2, executor="process", pki_key_bits=512
        )
        assert pooled.scorecards == serial_report.scorecards

    def test_scorecards_in_catalog_order(self, serial_report):
        assert [c.product_key for c in serial_report.scorecards] == AUDIT_SUBSET

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            audit_catalog(seed=SEED, products=AUDIT_SUBSET, executor="fiber")


class TestFingerprintStability:
    """ClientHello fingerprints must not depend on execution layout.

    The mimicry grading compares JA3-style digests; if those drifted
    with worker count, executor kind or seed, the client-leg section
    would break the battery's byte-identical-report guarantee."""

    def test_client_leg_identical_across_workers_and_executors(self, serial_audit):
        for workers, executor in ((2, "thread"), (2, "process")):
            report = audit_catalog(
                seed=SEED,
                products=AUDIT_SUBSET,
                workers=workers,
                executor=executor,
                pki_key_bits=512,
            )
            for card, expected in zip(report.scorecards, serial_audit.scorecards):
                assert card.client_leg == expected.client_leg
                assert card.client_checks == expected.client_checks
                assert card.server_leg == expected.server_leg
                assert card.server_checks == expected.server_checks

    def test_mimicry_scenario_present_for_every_product(self, serial_audit):
        for card in serial_audit.scorecards:
            assert "mimicry" in {check.scenario for check in card.client_checks}
            assert "server-cipher" in {
                check.scenario for check in card.server_checks
            }

    def test_fingerprints_independent_of_seed(self, serial_audit):
        """The observed fingerprints — both legs — are a function of
        the product's stack (and the probing browser), not of the run
        seed: randoms and certificates differ across seeds, digests do
        not."""
        other_seed = audit_catalog(
            seed=SEED + 1, products=AUDIT_SUBSET, pki_key_bits=512
        )
        for card, expected in zip(other_seed.scorecards, serial_audit.scorecards):
            assert card.client_leg is not None and expected.client_leg is not None
            assert card.client_leg.observed_ja3 == expected.client_leg.observed_ja3
            assert card.client_leg.expected_ja3 == expected.client_leg.expected_ja3
            assert (
                card.client_leg.divergent_fields
                == expected.client_leg.divergent_fields
            )
            assert card.server_leg is not None and expected.server_leg is not None
            assert (
                card.server_leg.observed_ja3s == expected.server_leg.observed_ja3s
            )
            assert (
                card.server_leg.divergent_fields
                == expected.server_leg.divergent_fields
            )


class TestMimicryPrevalenceDeterminism:
    """Acceptance: ``repro mimicry-prevalence`` output is byte-identical
    for workers ∈ {1, 4} and thread vs process executors."""

    SUBSET = ["bitdefender", "kurupira", "md5-legacy"]

    @pytest.fixture(scope="class")
    def serial_survey(self):
        return mimicry_catalog(seed=SEED, products=self.SUBSET, pki_key_bits=512)

    def test_survey_identical_across_workers_and_executors(self, serial_survey):
        for workers, executor in ((4, "thread"), (4, "process")):
            survey = mimicry_catalog(
                seed=SEED,
                products=self.SUBSET,
                workers=workers,
                executor=executor,
                pki_key_bits=512,
            )
            assert survey == serial_survey

    def test_prevalence_json_identical_across_workers(self, serial_survey):
        baseline = json.dumps(
            mimicry_prevalence(serial_survey, study=1).to_dict(), sort_keys=True
        )
        pooled = mimicry_catalog(
            seed=SEED,
            products=self.SUBSET,
            workers=4,
            executor="process",
            pki_key_bits=512,
        )
        assert (
            json.dumps(mimicry_prevalence(pooled, study=1).to_dict(), sort_keys=True)
            == baseline
        )

    def test_cli_output_identical_across_workers(self, capsys):
        """The rendered table itself — not just the survey — must not
        depend on worker count or executor kind."""
        from repro.cli import main

        outputs = []
        for extra in ([], ["--workers", "4"], ["--workers", "4", "--executor", "process"]):
            code = main(
                [
                    "mimicry-prevalence",
                    "--seed",
                    str(SEED),
                    "--product",
                    "kurupira",
                    "--product",
                    "md5-legacy",
                    *extra,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]
        assert "Detectable" in outputs[0]

    def test_survey_verdicts_match_catalog_expectations(self, serial_survey):
        by_key = serial_survey.by_key()
        assert not by_key["bitdefender"].detectable  # full server-leg mimic
        assert by_key["kurupira"].detectable
        assert "compression" in by_key["md5-legacy"].detection_reasons


class TestModernAuditDeterminism:
    """The TLS 1.3-era battery obeys the same contract as the 2014 one:
    a chrome-2020 audit — double resumption probe and all — is
    byte-identical for workers ∈ {1, 4} and thread vs process pools."""

    SUBSET = ["bitdefender", "fortinet", "kurupira"]
    MODERN_KEYS = {"alpn-mismatch", "resumption-honouring", "tls13-downgrade"}

    @pytest.fixture(scope="class")
    def modern_serial(self):
        return audit_catalog(
            seed=SEED,
            products=self.SUBSET,
            workers=1,
            pki_key_bits=512,
            browser="chrome-2020",
        )

    def test_report_identical_across_workers_and_executors(self, modern_serial):
        baseline = json.dumps(modern_serial.to_dict(), sort_keys=True)
        for workers, executor in ((4, "thread"), (2, "process")):
            report = audit_catalog(
                seed=SEED,
                products=self.SUBSET,
                workers=workers,
                executor=executor,
                pki_key_bits=512,
                browser="chrome-2020",
            )
            assert json.dumps(report.to_dict(), sort_keys=True) == baseline

    def test_modern_checks_graded_for_every_product(self, modern_serial):
        for card in modern_serial.scorecards:
            keys = {check.scenario for check in card.server_checks}
            assert self.MODERN_KEYS <= keys

    def test_2014_battery_carries_no_modern_rows(self, serial_audit):
        """The modern checks must not leak into 2014-era batteries —
        their exported JSON is pinned by earlier PRs."""
        for card in serial_audit.scorecards:
            keys = {check.scenario for check in card.server_checks}
            assert not (self.MODERN_KEYS & keys)
            assert card.server_leg is not None
            assert card.server_leg.modern is None


class TestMetricsDeterminism:
    """The telemetry layer obeys the same contract as the database:
    the *deterministic* metrics section is a pure function of
    (seed, config) — byte-identical for any worker count or executor
    kind — while process/timing sections are allowed to vary."""

    def test_study_deterministic_section_identical_across_workers(
        self, run_w1, run_w4
    ):
        det_w1 = run_w1.metrics["deterministic"]
        det_w4 = run_w4.metrics["deterministic"]
        assert json.dumps(det_w1, sort_keys=True) == json.dumps(
            det_w4, sort_keys=True
        )
        counters = det_w1["counters"]
        assert counters["study.sessions{mode=fast}"] == run_w1.sessions_run
        # Distinct realised (product, site, bucket) forge cells are a
        # plan property — unlike forge *counts*, which are per-process.
        assert counters["study.forge_cells"] > 0
        hist = det_w1["histograms"]["study.shard_sessions"]
        assert hist["sum"] == run_w1.sessions_run

    def test_study_process_and_timing_sections_populate(self, run_w1, run_w4):
        # keygen happens wherever scheduling put it — both runs must
        # still account for it somewhere, just not identically.
        for run in (run_w1, run_w4):
            proc = run.metrics["process"]["counters"]
            assert proc.get("keystore.keys_generated", 0) > 0
            assert "study.run" in run.metrics["timing"]["spans"]

    def test_audit_deterministic_section_executor_invariant(self):
        from repro.obs import MetricsRegistry

        snapshots = {}
        for label, workers, executor in (
            ("serial", 1, "thread"),
            ("thread", 2, "thread"),
            ("process", 2, "process"),
        ):
            registry = MetricsRegistry()
            audit_catalog(
                seed=SEED,
                products=AUDIT_SUBSET,
                workers=workers,
                executor=executor,
                pki_key_bits=512,
                registry=registry,
            )
            snapshots[label] = json.dumps(
                registry.deterministic_snapshot(), sort_keys=True
            )
        assert snapshots["serial"] == snapshots["thread"] == snapshots["process"]
        counters = json.loads(snapshots["serial"])["counters"]
        assert counters["audit.products"] == len(AUDIT_SUBSET)
        assert sum(
            value
            for key, value in counters.items()
            if key.startswith("audit.grades{")
        ) == len(AUDIT_SUBSET)

    def test_mimicry_deterministic_section_executor_invariant(self):
        from repro.obs import MetricsRegistry

        subset = ["bitdefender", "kurupira"]
        snapshots = []
        for workers, executor in ((1, "thread"), (4, "process")):
            registry = MetricsRegistry()
            mimicry_catalog(
                seed=SEED,
                products=subset,
                workers=workers,
                executor=executor,
                pki_key_bits=512,
                registry=registry,
            )
            snapshots.append(
                json.dumps(registry.deterministic_snapshot(), sort_keys=True)
            )
        assert snapshots[0] == snapshots[1]
        counters = json.loads(snapshots[0])["counters"]
        assert counters["mimicry.entries"] == len(subset)
