"""Regression tests for the wire-engine correctness fixes.

Covers the three bugs fixed alongside the fingerprinting work: the
MitM connection's record buffer never being trimmed (quadratic
re-decoding on split delivery), ``decode_records`` aborting on
ChangeCipherSpec, and the whitelisted relay dropping buffered upstream
data by pumping a single ``recv()`` at a time.
"""

import pytest

from repro.crypto.keystore import KeyStore
from repro.netsim import Network
from repro.netsim.network import Protocol
from repro.proxy import ProxyCategory, ProxyProfile, SubstituteCertForger, TlsProxyEngine
from repro.tls import codec
from repro.tls.codec import ClientHello, Record, TlsError
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name, RootStore
from repro.x509.model import SubjectPublicKeyInfo


@pytest.fixture(scope="module")
def forger():
    return SubstituteCertForger(KeyStore(seed=99), seed=99)


@pytest.fixture(scope="module")
def origin_chain(intermediate_ca, keystore):
    key = keystore.key("wirefix-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="wire.example", organization="WireFix"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["wire.example"],
    )
    return [leaf, intermediate_ca.certificate]


def make_profile(**overrides):
    base = dict(
        key="wirefix-product",
        issuer=Name.build(common_name="WireFix CA", organization="WireFix"),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,
        hash_name="sha1",
    )
    base.update(overrides)
    return ProxyProfile(**base)


def proxied_world(profile, origin_chain, trust, forger):
    network = Network()
    client = network.add_host("victim.example")
    origin = network.add_host("wire.example", ip="203.0.113.99")
    origin.listen(443, TlsCertServer(origin_chain).factory)
    engine = TlsProxyEngine(
        profile, forger, upstream_host=client, upstream_trust=trust
    )
    client.add_interceptor(engine)
    return network, client, engine


class TestCcsTolerance:
    def test_decode_records_tolerates_change_cipher_spec(self):
        stream = (
            Record(codec.CONTENT_CHANGE_CIPHER_SPEC, (3, 3), b"\x01").encode()
            + Record(codec.CONTENT_HANDSHAKE, (3, 3), b"\x00" * 4).encode()
        )
        records, rest = codec.decode_records(stream)
        assert rest == b""
        assert [r.content_type for r in records] == [20, 22]

    def test_decode_records_tolerates_heartbeat(self):
        stream = Record(codec.CONTENT_HEARTBEAT, (3, 3), b"\x01\x00\x00").encode()
        records, _ = codec.decode_records(stream)
        assert records[0].content_type == codec.CONTENT_HEARTBEAT

    def test_non_tls_garbage_still_aborts(self):
        with pytest.raises(TlsError):
            codec.decode_records(b"\x99\x99not tls at all")

    def test_probe_survives_ccs_in_server_flight(
        self, origin_chain
    ):
        """A realistic origin appends CCS after its certificate flight;
        the probe must still extract the chain instead of dying."""

        class CcsAppendingServer(TlsCertServer):
            def _answer_client_hello(self, sock, hello):
                super()._answer_client_hello(sock, hello)
                sock.send(
                    Record(
                        codec.CONTENT_CHANGE_CIPHER_SPEC, (3, 3), b"\x01"
                    ).encode()
                )

        network = Network()
        client = network.add_host("client.example")
        origin = network.add_host("wire.example")
        origin.listen(443, CcsAppendingServer(origin_chain).factory)
        result = ProbeClient(client).probe("wire.example", 443)
        assert result.ok, result.error
        assert result.der_chain[0] == origin_chain[0].encode()


class TestUpstreamHelloVersion:
    def test_own_stack_caps_at_client_offer(self, forger, origin_chain, root_ca):
        """A pre-1.2 client must not be 'upgraded' upstream: the
        own-stack version is a cap, not a floor."""
        network, client, engine = proxied_world(
            make_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("wire.example", 443)
        hello = ClientHello(
            client_random=bytes(32), server_name="wire.example", version=(3, 1)
        )
        sock.send(codec.encode_handshake_record(hello, version=(3, 1)))
        assert engine.last_upstream_hello is not None
        assert engine.last_upstream_hello.version == (3, 1)

    def test_pre_extension_stack_sends_no_block_and_no_sni(
        self, forger, origin_chain, root_ca
    ):
        """own_extension_types=() models a pre-extension stack: the
        upstream hello must carry neither SNI nor an extensions block."""
        network, client, engine = proxied_world(
            make_profile(own_extension_types=()),
            origin_chain,
            RootStore([root_ca.certificate]),
            forger,
        )
        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        sock.send(codec.encode_handshake_record(hello))
        upstream = engine.last_upstream_hello
        assert upstream is not None
        assert upstream.extensions is None
        assert upstream.server_name is None
        # Lossless re-encode shows no trailing extensions block.
        body = upstream.to_handshake().body
        assert ClientHello.from_body(body).extensions is None


class TestServedHelloWire:
    def test_server_hello_record_uses_client_offered_version(
        self, forger, origin_chain, root_ca
    ):
        """Regression: _serve_chain framed the whole flight — the
        ServerHello record included — with the post-negotiation
        version.  The ServerHello travels before negotiation
        completes, so its record must carry the record-layer version
        the client offered; only the rest of the flight speaks the
        negotiated version."""
        network, client, engine = proxied_world(
            make_profile(substitute_tls_version=(3, 1)),
            origin_chain,
            RootStore([root_ca.certificate]),
            forger,
        )
        sock = client.connect("wire.example", 443)
        hello = ClientHello(
            client_random=bytes(32), server_name="wire.example", version=(3, 3)
        )
        sock.send(codec.encode_handshake_record(hello, version=(3, 3)))
        records, rest = codec.decode_records(sock.recv())
        assert rest == b""
        # Pre-negotiation: the client's offered record-layer version.
        assert records[0].version == (3, 3)
        first, _ = codec.decode_handshakes(records[0].payload)
        assert first[0].msg_type == codec.HS_SERVER_HELLO
        served = codec.ServerHello.from_body(first[0].body)
        assert served.version == (3, 1)  # the negotiated downgrade
        # Post-negotiation records speak the negotiated version.
        assert all(record.version == (3, 1) for record in records[1:])
        assert len(records) > 1

    def test_engine_records_last_served_hello(
        self, forger, origin_chain, root_ca
    ):
        network, client, engine = proxied_world(
            make_profile(
                substitute_cipher_suite=0xC013,
                own_server_extension_types=(codec.EXT_RENEGOTIATION_INFO,),
            ),
            origin_chain,
            RootStore([root_ca.certificate]),
            forger,
        )
        assert engine.last_served_hello is None
        sock = client.connect("wire.example", 443)
        hello = ClientHello(
            client_random=bytes(32),
            server_name="wire.example",
            extensions=(
                (codec.EXT_SERVER_NAME,
                 codec.encode_sni_extension_body("wire.example")),
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
            ),
        )
        sock.send(codec.encode_handshake_record(hello))
        served = engine.last_served_hello
        assert served is not None
        assert served.cipher_suite == 0xC013
        assert served.extension_types == (codec.EXT_RENEGOTIATION_INFO,)
        # What the engine recorded is byte-for-byte what went on the
        # wire (the codec is lossless in both directions).
        records, _ = codec.decode_records(sock.recv())
        first, _ = codec.decode_handshakes(records[0].payload)
        assert codec.ServerHello.from_body(first[0].body) == served

    def test_echo_session_policy_returns_client_session_id(
        self, forger, origin_chain, root_ca
    ):
        from repro.proxy.profile import ServerSessionPolicy

        network, client, engine = proxied_world(
            make_profile(server_session_id=ServerSessionPolicy.ECHO),
            origin_chain,
            RootStore([root_ca.certificate]),
            forger,
        )
        sock = client.connect("wire.example", 443)
        offered_id = bytes(range(16))
        hello = ClientHello(
            client_random=bytes(32),
            server_name="wire.example",
            session_id=offered_id,
        )
        sock.send(codec.encode_handshake_record(hello))
        served = engine.last_served_hello
        assert served is not None
        assert served.session_id == offered_id
        # NONE (the default) serves an empty id for the same offer.
        network2, client2, engine2 = proxied_world(
            make_profile(),
            origin_chain,
            RootStore([root_ca.certificate]),
            forger,
        )
        sock2 = client2.connect("wire.example", 443)
        sock2.send(codec.encode_handshake_record(hello))
        assert engine2.last_served_hello is not None
        assert engine2.last_served_hello.session_id == b""

    def test_server_extensions_filtered_to_client_offer(
        self, forger, origin_chain, root_ca
    ):
        """A product configured to answer extensions the client never
        offered must not invent them on the wire."""
        network, client, engine = proxied_world(
            make_profile(
                own_server_extension_types=(
                    codec.EXT_RENEGOTIATION_INFO,
                    codec.EXT_SESSION_TICKET,
                ),
            ),
            origin_chain,
            RootStore([root_ca.certificate]),
            forger,
        )
        sock = client.connect("wire.example", 443)
        # SNI-only offer: no renegotiation_info, no session ticket.
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        sock.send(codec.encode_handshake_record(hello))
        served = engine.last_served_hello
        assert served is not None
        assert served.extensions is None


class TestBufferTrim:
    def test_split_client_hello_served_once(
        self, forger, origin_chain, root_ca
    ):
        """A ClientHello delivered byte-by-byte must produce exactly one
        served flight, and the connection buffer must not retain the
        already-decoded records."""
        network, client, engine = proxied_world(
            make_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        wire = codec.encode_handshake_record(hello)
        for index in range(len(wire)):
            sock.send(wire[index : index + 1])
        flight = sock.recv()
        records, rest = codec.decode_records(flight)
        assert rest == b""
        assert engine.intercepted == 1
        connection = sock.peer.protocol
        assert connection._buffer == b""

    def test_hello_fragmented_across_records_served(
        self, forger, origin_chain, root_ca
    ):
        """One handshake message split over two TLS records (RFC 5246
        §6.2.1) must reassemble and be served, not dropped."""
        network, client, engine = proxied_world(
            make_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        message = hello.to_handshake().encode()
        middle = len(message) // 2
        for part in (message[:middle], message[middle:]):
            sock.send(Record(codec.CONTENT_HANDSHAKE, (3, 3), part).encode())
        flight = sock.recv()
        assert flight and not sock.closed
        records, _ = codec.decode_records(flight)
        assert records[0].content_type == codec.CONTENT_HANDSHAKE
        assert engine.intercepted == 1

    def test_intercepted_connection_drops_replay_copy(
        self, forger, origin_chain, root_ca
    ):
        """Once the hello is answered (no relay), the raw replay bytes
        must not be retained for the connection's lifetime."""
        network, client, engine = proxied_world(
            make_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        sock.send(codec.encode_handshake_record(hello))
        connection = sock.peer.protocol
        assert engine.intercepted == 1
        assert connection._consumed == b""

    def test_buffer_trimmed_between_chunks(
        self, forger, origin_chain, root_ca
    ):
        """After each complete record the buffer holds only the unparsed
        tail — the quadratic re-decode regression."""
        network, client, engine = proxied_world(
            make_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("wire.example", 443)
        connection = sock.peer.protocol
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        wire = codec.encode_handshake_record(hello)
        sock.send(wire)
        assert connection._buffer == b""
        # A trailing half-record stays buffered; the decoded part does not.
        extra = Record(codec.CONTENT_APPLICATION_DATA, (3, 3), b"xyz").encode()
        sock.send(extra[:4])
        assert connection._buffer == extra[:4]
        sock.send(extra[4:])
        assert connection._buffer == b""


class _MultiSendOrigin(Protocol):
    """An origin whose reply spans several sends, plus a CCS record.

    Stands in for a real server flight crossing TCP segment
    boundaries: the relay must forward every byte, not the first
    ``recv()``'s worth.
    """

    def __init__(self, chunks):
        self.chunks = chunks

    def factory(self):
        return _MultiSendOrigin(self.chunks)

    def data_received(self, sock, data):
        for chunk in self.chunks:
            sock.send(chunk)


class TestRelayDrain:
    def test_whitelisted_relay_forwards_multi_record_reply(
        self, forger, origin_chain, root_ca
    ):
        server = TlsCertServer(origin_chain)
        flight_chunks = []

        class RecordingSocket:
            def send(self, data):
                flight_chunks.append(data)

        server._answer_client_hello(
            RecordingSocket(), ClientHello(client_random=bytes(32))
        )
        ccs = Record(codec.CONTENT_CHANGE_CIPHER_SPEC, (3, 3), b"\x01").encode()
        origin_protocol = _MultiSendOrigin([*flight_chunks, ccs])

        network = Network()
        client = network.add_host("victim.example")
        origin = network.add_host("wire.example")
        origin.listen(443, origin_protocol.factory)
        profile = make_profile(whitelist=frozenset({"wire.example"}))
        engine = TlsProxyEngine(
            profile,
            forger,
            upstream_host=client,
            upstream_trust=RootStore([root_ca.certificate]),
        )
        client.add_interceptor(engine)

        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        sock.send(codec.encode_handshake_record(hello))
        relayed = sock.recv()
        assert relayed == b"".join([*flight_chunks, ccs])
        assert engine.whitelisted == 1

    def test_double_hello_chunk_starts_one_relay(
        self, forger, origin_chain, root_ca
    ):
        """Two ClientHello records coalesced into one chunk must open
        exactly one upstream relay (the second is replayed raw, not
        re-interpreted into a second connection)."""
        network = Network()
        client = network.add_host("victim.example")
        origin = network.add_host("wire.example")
        origin.listen(443, TlsCertServer(origin_chain).factory)
        profile = make_profile(whitelist=frozenset({"wire.example"}))
        engine = TlsProxyEngine(
            profile,
            forger,
            upstream_host=client,
            upstream_trust=RootStore([root_ca.certificate]),
        )
        client.add_interceptor(engine)

        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        wire = codec.encode_handshake_record(hello)
        sock.send(wire + wire)
        assert engine.whitelisted == 1
        assert network.connections_opened == 2  # client leg + one relay

    def test_split_client_hello_relayed_verbatim(
        self, forger, origin_chain, root_ca
    ):
        """Split delivery + whitelist: the relay must replay the full
        ClientHello (consumed records were trimmed from the buffer)."""
        network = Network()
        client = network.add_host("victim.example")
        origin = network.add_host("wire.example")
        origin.listen(443, TlsCertServer(origin_chain).factory)
        profile = make_profile(whitelist=frozenset({"wire.example"}))
        engine = TlsProxyEngine(
            profile,
            forger,
            upstream_host=client,
            upstream_trust=RootStore([root_ca.certificate]),
        )
        client.add_interceptor(engine)

        sock = client.connect("wire.example", 443)
        hello = ClientHello(client_random=bytes(32), server_name="wire.example")
        wire = codec.encode_handshake_record(hello)
        middle = len(wire) // 2
        sock.send(wire[:middle])
        assert sock.recv() == b""  # nothing to relay yet
        sock.send(wire[middle:])
        records, rest = codec.decode_records(sock.recv())
        assert rest == b""
        messages, _ = codec.decode_handshakes(
            b"".join(
                r.payload
                for r in records
                if r.content_type == codec.CONTENT_HANDSHAKE
            )
        )
        ders = next(
            codec.Certificate.from_body(m.body).der_chain
            for m in messages
            if m.msg_type == codec.HS_CERTIFICATE
        )
        assert ders[0] == origin_chain[0].encode()  # relayed, not forged
        assert engine.whitelisted == 1
