"""Tests for path-hop interception and Crossbear-style localization."""

import pytest

from repro.crypto.keystore import KeyStore
from repro.data.sites import ProbeSite
from repro.mitigation.crossbear import CrossbearHunter
from repro.netsim import Network, PathHop
from repro.proxy import ProxyCategory, ProxyProfile, SubstituteCertForger, TlsProxyEngine
from repro.study.webpki import build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name


@pytest.fixture()
def world():
    """An origin, a national gateway hop, and clients behind/outside it."""
    keystore = KeyStore(seed=83)
    forger = SubstituteCertForger(keystore, seed=83)
    site = ProbeSite("news.example", "Popular")
    pki = build_web_pki(keystore, [site], seed=83)
    network = Network()
    origin = network.add_host("news.example", ip="203.0.113.80")
    origin.listen(443, TlsCertServer(pki.chain_for("news.example")).factory)

    gateway = PathHop("national-gateway.cc")
    isp_a = PathHop("isp-a.cc")
    isp_b = PathHop("isp-b.cc")

    inside_a = network.add_host("inside-a.cc")
    inside_a.access_path = [isp_a, gateway]
    inside_b = network.add_host("inside-b.cc")
    inside_b.access_path = [isp_b, gateway]
    outside = network.add_host("outside.example")
    outside.access_path = [PathHop("isp-elsewhere.net")]

    return {
        "network": network,
        "pki": pki,
        "forger": forger,
        "gateway": gateway,
        "gateway_host": network.add_host("gateway-box.cc"),
        "clients": {"inside_a": inside_a, "inside_b": inside_b, "outside": outside},
    }


def national_mitm(world):
    """Attach a state-level TLS proxy to the shared gateway hop."""
    profile = ProxyProfile(
        key="national-gateway-mitm",
        issuer=Name.build(common_name="National Gateway CA", organization="Ministry"),
        category=ProxyCategory.UNKNOWN,
        leaf_key_bits=1024,
        hash_name="sha1",
    )
    engine = TlsProxyEngine(
        profile,
        world["forger"],
        upstream_host=world["gateway_host"],
        upstream_trust=world["pki"].root_store(),
    )
    world["gateway"].add_interceptor(engine)
    return engine


class TestPathInterception:
    def test_hop_interceptor_hits_all_clients_behind_it(self, world):
        engine = national_mitm(world)
        for name in ("inside_a", "inside_b"):
            result = ProbeClient(world["clients"][name]).probe("news.example", 443)
            assert result.ok
            assert result.leaf.issuer.organization == "Ministry"
        assert engine.intercepted == 2

    def test_clients_outside_the_hop_untouched(self, world):
        national_mitm(world)
        result = ProbeClient(world["clients"]["outside"]).probe("news.example", 443)
        assert result.ok
        assert result.leaf.issuer.organization != "Ministry"

    def test_client_interceptor_takes_priority_over_hop(self, world):
        national_mitm(world)
        av_profile = ProxyProfile(
            key="client-av-priority",
            issuer=Name.build(common_name="AV CA", organization="LocalAV"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=1024,
            hash_name="sha1",
        )
        client = world["clients"]["inside_a"]
        client.add_interceptor(
            TlsProxyEngine(
                av_profile,
                world["forger"],
                upstream_host=client,
                upstream_trust=world["pki"].root_store(),
            )
        )
        result = ProbeClient(client).probe("news.example", 443)
        # The machine-local proxy terminates first.
        assert result.leaf.issuer.organization == "LocalAV"

    def test_traceroute_lists_hops(self, world):
        trace = world["network"].traceroute(
            world["clients"]["inside_a"], "news.example"
        )
        assert trace == [
            "inside-a.cc",
            "isp-a.cc",
            "national-gateway.cc",
            "news.example",
        ]


class TestCrossbearLocalization:
    def authoritative(self, world):
        return world["pki"].leaf_for("news.example").fingerprint()

    def test_no_mitm_no_detection(self, world):
        hunter = CrossbearHunter(world["network"], self.authoritative(world))
        result = hunter.localize(
            list(world["clients"].values()), "news.example"
        )
        assert not result.mitm_detected
        assert result.localized_to is None
        assert len(result.clean) == 3

    def test_national_gateway_localized(self, world):
        national_mitm(world)
        hunter = CrossbearHunter(world["network"], self.authoritative(world))
        result = hunter.localize(
            list(world["clients"].values()), "news.example"
        )
        assert result.mitm_detected
        assert len(result.poisoned) == 2
        assert len(result.clean) == 1
        # ISP hops differ between the poisoned clients; the shared
        # national gateway is the only suspect.
        assert result.suspect_hops == ("national-gateway.cc",)
        assert result.localized_to == "national-gateway.cc"

    def test_client_local_mitm_localizes_to_the_machine(self, world):
        av_profile = ProxyProfile(
            key="client-av-localize",
            issuer=Name.build(common_name="AV CA", organization="LocalAV"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=1024,
            hash_name="sha1",
        )
        client = world["clients"]["inside_a"]
        client.add_interceptor(
            TlsProxyEngine(
                av_profile,
                world["forger"],
                upstream_host=client,
                upstream_trust=world["pki"].root_store(),
            )
        )
        hunter = CrossbearHunter(world["network"], self.authoritative(world))
        result = hunter.localize(
            list(world["clients"].values()), "news.example"
        )
        # With a single poisoned client, localization narrows to the
        # path segment no clean client crosses: the machine and its
        # access ISP.  (Crossbear has the same ambiguity; more hunters
        # behind isp-a would shrink it.)
        assert result.mitm_detected
        assert result.suspect_hops == ("inside-a.cc", "isp-a.cc")
        assert result.localized_to == "inside-a.cc"

    def test_isp_level_mitm_localized_to_isp(self, world):
        profile = ProxyProfile(
            key="isp-mitm",
            issuer=Name.build(common_name="ISP CA", organization="ISP-A Telecom"),
            category=ProxyCategory.TELECOM,
            leaf_key_bits=2048,
            hash_name="sha1",
        )
        world["clients"]["inside_a"].access_path[0].add_interceptor(
            TlsProxyEngine(
                profile,
                world["forger"],
                upstream_host=world["gateway_host"],
                upstream_trust=world["pki"].root_store(),
            )
        )
        hunter = CrossbearHunter(world["network"], self.authoritative(world))
        result = hunter.localize(
            list(world["clients"].values()), "news.example"
        )
        assert result.mitm_detected
        # inside-a.cc and isp-a.cc are both unique to the poisoned path;
        # the deepest (client-side first) ordering puts the machine
        # first, the ISP second — the MitM is within that segment.
        assert "isp-a.cc" in result.suspect_hops
        assert "national-gateway.cc" not in result.suspect_hops
