"""Unit tests for primes, RSA and the key store."""

import random

import pytest

from repro.crypto.hashes import HASH_ALGORITHMS, hash_by_name
from repro.crypto.hashes import hash_by_signature_oid
from repro.crypto.keystore import KeyStore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import (
    CryptoError,
    generate_rsa_key,
    pkcs1_sign,
    pkcs1_verify,
)


class TestPrimes:
    def test_small_primes_accepted(self):
        for p in (2, 3, 5, 7, 11, 97, 1999):
            assert is_probable_prime(p)

    def test_small_composites_rejected(self):
        for n in (0, 1, 4, 9, 100, 561, 1105, 6601):  # includes Carmichaels
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * 3)

    def test_generated_prime_has_exact_bits(self):
        rng = random.Random(7)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_determinism(self):
        assert generate_prime(96, random.Random(42)) == generate_prime(
            96, random.Random(42)
        )

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))


class TestRsa:
    def test_keygen_properties(self):
        key = generate_rsa_key(512, random.Random(1))
        assert key.bits == 512
        assert key.n == key.p * key.q
        assert (key.d * key.e) % ((key.p - 1) * (key.q - 1)) == 1

    def test_odd_size_rejected(self):
        with pytest.raises(CryptoError):
            generate_rsa_key(513, random.Random(1))

    @pytest.mark.parametrize("hash_name", sorted(HASH_ALGORITHMS))
    def test_sign_verify_round_trip(self, hash_name):
        key = generate_rsa_key(512, random.Random(2))
        message = b"The quick brown fox"
        signature = pkcs1_sign(key, hash_by_name(hash_name), message)
        assert len(signature) == 64
        assert pkcs1_verify(key.public, hash_by_name(hash_name), message, signature)

    def test_verify_rejects_tampered_message(self):
        key = generate_rsa_key(512, random.Random(3))
        alg = hash_by_name("sha256")
        signature = pkcs1_sign(key, alg, b"original")
        assert not pkcs1_verify(key.public, alg, b"tampered", signature)

    def test_verify_rejects_tampered_signature(self):
        key = generate_rsa_key(512, random.Random(4))
        alg = hash_by_name("sha1")
        signature = bytearray(pkcs1_sign(key, alg, b"msg"))
        signature[10] ^= 0xFF
        assert not pkcs1_verify(key.public, alg, b"msg", bytes(signature))

    def test_verify_rejects_wrong_key(self):
        key_a = generate_rsa_key(512, random.Random(5))
        key_b = generate_rsa_key(512, random.Random(6))
        alg = hash_by_name("sha256")
        signature = pkcs1_sign(key_a, alg, b"msg")
        assert not pkcs1_verify(key_b.public, alg, b"msg", signature)

    def test_verify_rejects_wrong_hash(self):
        key = generate_rsa_key(512, random.Random(7))
        signature = pkcs1_sign(key, hash_by_name("sha256"), b"msg")
        assert not pkcs1_verify(key.public, hash_by_name("md5"), b"msg", signature)

    def test_verify_rejects_wrong_length_signature(self):
        key = generate_rsa_key(512, random.Random(8))
        alg = hash_by_name("sha256")
        assert not pkcs1_verify(key.public, alg, b"msg", b"\x00" * 63)

    def test_sign_with_tiny_key_rejected(self):
        key = generate_rsa_key(128, random.Random(9))
        with pytest.raises(CryptoError, match="too small"):
            pkcs1_sign(key, hash_by_name("sha256"), b"msg")

    def test_512_bit_key_signs_md5(self):
        # The IopFail malware's exact configuration must work.
        key = generate_rsa_key(512, random.Random(10))
        alg = hash_by_name("md5")
        signature = pkcs1_sign(key, alg, b"substitute cert")
        assert pkcs1_verify(key.public, alg, b"substitute cert", signature)


class TestHashRegistry:
    def test_signature_oid_lookup(self):
        alg = hash_by_signature_oid("1.2.840.113549.1.1.11")
        assert alg.name == "sha256"

    def test_unknown_oid(self):
        with pytest.raises(KeyError):
            hash_by_signature_oid("1.2.3.4")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            hash_by_name("sha512/224")

    def test_digest_sizes(self):
        assert hash_by_name("md5").digest_size == 16
        assert hash_by_name("sha1").digest_size == 20
        assert hash_by_name("sha256").digest_size == 32


class TestKeyStore:
    def test_same_slot_same_key(self):
        store = KeyStore(seed=1)
        assert store.key("bitdefender", 512) is store.key("bitdefender", 512)

    def test_different_labels_different_keys(self):
        store = KeyStore(seed=1)
        assert store.key("a", 512).n != store.key("b", 512).n

    def test_same_seed_reproduces_keys(self):
        assert KeyStore(seed=9).key("x", 512).n == KeyStore(seed=9).key("x", 512).n

    def test_different_seeds_differ(self):
        assert KeyStore(seed=1).key("x", 512).n != KeyStore(seed=2).key("x", 512).n

    def test_len_counts_slots(self):
        store = KeyStore()
        store.key("a", 512)
        store.key("a", 512)
        store.key("b", 512)
        assert len(store) == 2

    def test_preload(self):
        store = KeyStore()
        store.preload(["p1", "p2", "p3"], 512)
        assert len(store) == 3


class TestCrtConstants:
    """The CRT constants are precomputed per key, not per signature."""

    def test_constants_match_definitions(self):
        key = KeyStore(seed=3).key("crt", 512)
        assert key.dp == key.d % (key.p - 1)
        assert key.dq == key.d % (key.q - 1)
        assert (key.q_inv * key.q) % key.p == 1

    def test_constants_cached_on_instance(self):
        key = KeyStore(seed=3).key("crt-cache", 512)
        assert key.dp is key.dp  # same int object: cached, not recomputed
        assert key.q_inv is key.q_inv

    def test_sign_uses_cached_constants(self):
        """A signature must equal the textbook m^d mod n result."""
        key = KeyStore(seed=4).key("crt-sign", 512)
        alg = hash_by_name("sha256")
        signature = pkcs1_sign(key, alg, b"payload")
        value = int.from_bytes(signature, "big")
        key_bytes = (key.n.bit_length() + 7) // 8
        recovered = pow(value, key.e, key.n).to_bytes(key_bytes, "big")
        from repro.crypto.rsa import _digest_info, _pkcs1_pad

        assert recovered == _pkcs1_pad(_digest_info(alg, b"payload"), key_bytes)


class TestDigestInfoPrefix:
    """DigestInfo DER is a constant prefix plus the digest bytes."""

    def test_prefix_matches_full_der_construction(self):
        from repro.asn1.types import Null, ObjectIdentifier, OctetString, Sequence
        from repro.crypto.rsa import _digest_info

        for alg in HASH_ALGORITHMS.values():
            algorithm = Sequence([ObjectIdentifier(alg.digest_oid), Null()])
            expected = Sequence(
                [algorithm, OctetString(alg.digest(b"abc"))]
            ).encode()
            assert _digest_info(alg, b"abc") == expected

    def test_prefix_cached_per_algorithm(self):
        from repro.crypto.rsa import _DIGEST_INFO_PREFIXES, _digest_info

        _digest_info(hash_by_name("sha1"), b"x")
        _digest_info(hash_by_name("sha1"), b"y")
        assert "sha1" in _DIGEST_INFO_PREFIXES
