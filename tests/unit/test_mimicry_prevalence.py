"""The mimicry-prevalence study: weighting, ranking, export."""

import json

import pytest

from repro.analysis.mimicry import mimicry_prevalence
from repro.audit.scorecard import (
    ClientLegObservation,
    MimicryEntry,
    MimicrySurvey,
    ServerLegObservation,
)
from repro.data.products import catalog_by_key


def _client_leg() -> ClientLegObservation:
    return ClientLegObservation(
        browser="chrome",
        expected_ja3="aa" * 16,
        observed_ja3="aa" * 16,
        divergent_fields=(),
        substitute_key_bits=2048,
        substitute_hash="sha256",
        offered_version=(3, 3),
        echoed_version=(3, 3),
    )


def _server_leg(
    divergent: tuple[str, ...] = (), compression: int = 0, error: str = ""
) -> ServerLegObservation:
    return ServerLegObservation(
        browser="chrome",
        expected_ja3s="bb" * 16,
        observed_ja3s=None if error else "cc" * 16,
        divergent_fields=divergent,
        chosen_cipher=None if error else 0xC02F,
        cipher_rank=None if error else 1,
        expected_cipher=0xC02F,
        extension_types=(),
        expected_extension_types=(),
        offered_version=(3, 3),
        echoed_version=None if error else (3, 3),
        compression_method=None if error else compression,
        session_id_length=None if error else 0,
        error=error,
    )


def _entry(product_key: str, **server_kwargs) -> MimicryEntry:
    spec = catalog_by_key()[product_key]
    return MimicryEntry(
        product_key=product_key,
        category=spec.profile.category.value,
        client_leg=_client_leg(),
        server_leg=_server_leg(**server_kwargs),
    )


def _survey(entries) -> MimicrySurvey:
    return MimicrySurvey(seed=5, browser="chrome", entries=tuple(entries))


class TestDetectability:
    def test_divergence_and_compression_are_reasons(self):
        assert not _entry("bitdefender").detectable
        diverging = _entry("bitdefender", divergent=("cipher_suite",))
        assert diverging.detectable
        assert diverging.detection_reasons == ("cipher_suite",)
        compressed = _entry("bitdefender", compression=1)
        assert compressed.detection_reasons == ("compression",)

    def test_probe_error_counts_as_detectable(self):
        broken = _entry("bitdefender", error="alert: desc=40")
        assert broken.detectable
        assert broken.detection_reasons == ("error",)


class TestPrevalence:
    def test_all_detectable_saturates_every_row(self):
        survey = _survey(
            [_entry(k, divergent=("version",)) for k in ("bitdefender", "kurupira")]
        )
        prevalence = mimicry_prevalence(survey, study=1)
        assert all(row.detectable_share == 1.0 for row in prevalence.all_rows())
        assert prevalence.total.detectable == prevalence.total.proxied

    def test_none_detectable_zeroes_every_row(self):
        survey = _survey([_entry("bitdefender"), _entry("kurupira")])
        prevalence = mimicry_prevalence(survey, study=1)
        assert all(row.detectable_share == 0.0 for row in prevalence.all_rows())

    def test_market_share_weighting_follows_country_bias(self):
        """kurupira (detectable) is BR-biased, so Brazil's rate must
        exceed the US rate when bitdefender (hidden) dominates."""
        survey = _survey(
            [_entry("bitdefender"), _entry("kurupira", divergent=("cipher_suite",))]
        )
        prevalence = mimicry_prevalence(survey, study=1)
        rows = {row.country: row for row in prevalence.rows}
        assert 0.0 < rows["US"].detectable_share < rows["BR"].detectable_share < 1.0
        # The exact weighting: detectable weight over total weight.
        specs = catalog_by_key()
        for code in ("US", "BR"):
            kur = specs["kurupira"].weight_in(1, code)
            bit = specs["bitdefender"].weight_in(1, code)
            assert rows[code].detectable_share == pytest.approx(kur / (kur + bit))

    def test_rows_ranked_by_proxied_with_other_and_total(self):
        survey = _survey([_entry("bitdefender")])
        prevalence = mimicry_prevalence(survey, study=1, top_n=5)
        assert [row.rank for row in prevalence.rows] == [1, 2, 3, 4, 5]
        proxied = [row.proxied for row in prevalence.rows]
        assert proxied == sorted(proxied, reverse=True)
        assert prevalence.other.country.startswith("Other (")
        assert prevalence.total.country == "Total"
        assert prevalence.total.proxied == sum(proxied) + prevalence.other.proxied

    def test_study_2_uses_its_own_calibration(self):
        survey = _survey([_entry("kowsar", divergent=("extension_types",))])
        prevalence = mimicry_prevalence(survey, study=2)
        assert prevalence.study == 2
        assert prevalence.total.proxied > 40_000  # Table 7 volumes

    def test_invalid_study_rejected(self):
        with pytest.raises(ValueError):
            mimicry_prevalence(_survey([_entry("bitdefender")]), study=3)

    def test_to_dict_is_json_stable(self):
        survey = _survey(
            [_entry("bitdefender"), _entry("kurupira", divergent=("version",))]
        )
        first = mimicry_prevalence(survey, study=1)
        second = mimicry_prevalence(survey, study=1)
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        payload = first.to_dict()
        assert payload["browser"] == "chrome"
        assert {p["product"] for p in payload["products"]} == {
            "bitdefender",
            "kurupira",
        }
        assert payload["total"]["proxied"] == first.total.proxied
