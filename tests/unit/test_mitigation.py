"""Unit tests for the §7 mitigation mechanisms and the ablation."""

import pytest

from repro.crypto.keystore import KeyStore
from repro.mitigation import (
    DirectValidationClient,
    DirectValidationServer,
    NotaryService,
    NotaryVerdict,
    PinStore,
    PinVerdict,
    add_disclosure,
    evaluate_mitigations,
    read_disclosure,
)
from repro.netsim import Network
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import ProxyCategory, ProxyProfile
from repro.tls.server import TlsCertServer
from repro.x509 import Name, RootStore
from repro.x509.ca import _sign_tbs
from repro.x509.model import SubjectPublicKeyInfo


@pytest.fixture(scope="module")
def genuine_chain(intermediate_ca, keystore):
    key = keystore.key("mitigation-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="pinme.example"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["pinme.example"],
    )
    return [leaf, intermediate_ca.certificate]


@pytest.fixture(scope="module")
def forged_chain(genuine_chain):
    forger = SubstituteCertForger(KeyStore(seed=55), seed=55)
    profile = ProxyProfile(
        key="pin-test-proxy",
        issuer=Name.build(common_name="Proxy CA", organization="ProxyCo"),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,
        hash_name="sha1",
    )
    forged = forger.forge(profile, genuine_chain[0], "pinme.example")
    return list(forged.chain), forged.ca_chain[0]


class TestPinning:
    def test_tofu_then_ok(self, genuine_chain):
        pins = PinStore()
        assert pins.check("pinme.example", genuine_chain) is PinVerdict.FIRST_USE
        assert pins.check("pinme.example", genuine_chain) is PinVerdict.OK

    def test_preload_skips_tofu(self, genuine_chain):
        pins = PinStore()
        pins.preload("pinme.example", [genuine_chain[0]])
        assert pins.is_preloaded("pinme.example")
        assert pins.check("pinme.example", genuine_chain) is PinVerdict.OK

    def test_violation_on_key_change(self, genuine_chain, forged_chain):
        chain, _ = forged_chain
        pins = PinStore(trust_local_roots=False)
        pins.preload("pinme.example", [genuine_chain[0]])
        assert pins.check("pinme.example", chain) is PinVerdict.VIOLATION

    def test_injected_root_bypasses_chrome_pinning(
        self, genuine_chain, forged_chain, root_ca
    ):
        chain, proxy_root = forged_chain
        store = RootStore([root_ca.certificate])
        store.inject(proxy_root)
        pins = PinStore(trust_local_roots=True)
        pins.preload("pinme.example", [genuine_chain[0]])
        assert (
            pins.check("pinme.example", chain, store=store)
            is PinVerdict.BYPASSED_LOCAL_ROOT
        )

    def test_strict_pinning_ignores_injected_root(
        self, genuine_chain, forged_chain, root_ca
    ):
        chain, proxy_root = forged_chain
        store = RootStore([root_ca.certificate])
        store.inject(proxy_root)
        pins = PinStore(trust_local_roots=False)
        pins.preload("pinme.example", [genuine_chain[0]])
        assert pins.check("pinme.example", chain, store=store) is PinVerdict.VIOLATION

    def test_empty_chain_is_violation(self):
        assert PinStore().check("x", []) is PinVerdict.VIOLATION


class TestNotary:
    def build_world(self, genuine_chain):
        network = Network()
        origin = network.add_host("pinme.example")
        origin.listen(443, TlsCertServer(genuine_chain).factory)
        return network

    def test_agreement_for_genuine_cert(self, genuine_chain):
        network = self.build_world(genuine_chain)
        notary = NotaryService(network, vantage_count=3)
        assert notary.judge(genuine_chain[0], "pinme.example") is NotaryVerdict.AGREES

    def test_mitm_suspected_for_forged_cert(self, genuine_chain, forged_chain):
        chain, _ = forged_chain
        network = self.build_world(genuine_chain)
        notary = NotaryService(network, vantage_count=3)
        assert notary.judge(chain[0], "pinme.example") is NotaryVerdict.MITM_SUSPECTED

    def test_unreachable_host(self, genuine_chain):
        network = Network()
        notary = NotaryService(network, vantage_count=3)
        assert notary.judge(genuine_chain[0], "gone.example") is NotaryVerdict.UNREACHABLE

    def test_no_quorum_when_vantages_disagree(self, genuine_chain, forged_chain):
        """A multi-certificate deployment (per-vantage certs) denies quorum."""
        chain, _ = forged_chain
        network = Network()
        origin = network.add_host("pinme.example")
        flip = {"count": 0}

        class Flapping(TlsCertServer):
            def factory(self):
                flip["count"] += 1
                source = genuine_chain if flip["count"] % 2 else chain
                return TlsCertServer(source)

        origin.listen(443, Flapping(genuine_chain).factory)
        notary = NotaryService(network, vantage_count=4, quorum=0.75)
        assert (
            notary.judge(genuine_chain[0], "pinme.example")
            is NotaryVerdict.NO_QUORUM
        )

    def test_bad_quorum_rejected(self, genuine_chain):
        with pytest.raises(ValueError):
            NotaryService(Network(), quorum=0.5)


class TestDvcert:
    def test_genuine_cert_verifies(self, genuine_chain):
        server = DirectValidationServer("pinme.example", genuine_chain[0])
        client = DirectValidationClient("pinme.example", "hunter2")
        attestation = server.attest("hunter2", b"challenge")
        assert client.verify(genuine_chain[0], b"challenge", attestation)

    def test_substituted_cert_detected(self, genuine_chain, forged_chain):
        chain, _ = forged_chain
        server = DirectValidationServer("pinme.example", genuine_chain[0])
        client = DirectValidationClient("pinme.example", "hunter2")
        attestation = server.attest("hunter2", b"challenge")
        assert not client.verify(chain[0], b"challenge", attestation)

    def test_wrong_secret_fails(self, genuine_chain):
        server = DirectValidationServer("pinme.example", genuine_chain[0])
        client = DirectValidationClient("pinme.example", "wrong")
        attestation = server.attest("hunter2", b"challenge")
        assert not client.verify(genuine_chain[0], b"challenge", attestation)

    def test_challenge_binding(self, genuine_chain):
        server = DirectValidationServer("pinme.example", genuine_chain[0])
        client = DirectValidationClient("pinme.example", "hunter2")
        attestation = server.attest("hunter2", b"challenge-A")
        assert not client.verify(genuine_chain[0], b"challenge-B", attestation)


class TestDisclosure:
    def test_round_trip(self, genuine_chain, keystore):
        leaf = genuine_chain[0]
        tbs = add_disclosure(leaf.tbs, "GoodAV Explicit Proxy")
        from repro.crypto.hashes import hash_by_name

        signed = _sign_tbs(tbs, keystore.key("test-root", 512), hash_by_name("sha256"))
        assert read_disclosure(signed) == "GoodAV Explicit Proxy"

    def test_absent_by_default(self, genuine_chain):
        assert read_disclosure(genuine_chain[0]) is None


class TestAblation:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return evaluate_mitigations(seed=3)

    def test_clean_path_all_quiet(self, evaluation):
        outcome = evaluation.by_scenario("clean")
        assert not outcome.intercepted
        assert outcome.pinning == "ok"
        assert outcome.notary == "agrees"
        assert outcome.dvcert == "ok"

    def test_chrome_pinning_bypassed_by_root_injection(self, evaluation):
        for scenario in ("benign-av", "malware", "chained-attack"):
            outcome = evaluation.by_scenario(scenario)
            assert outcome.intercepted
            assert outcome.pinning == "bypassed-local-root"
            assert outcome.pinning_strict == "violation"

    def test_rogue_ca_caught_even_by_chrome_pinning(self, evaluation):
        outcome = evaluation.by_scenario("rogue-ca")
        assert outcome.pinning == "violation"

    def test_notary_and_dvcert_catch_everything(self, evaluation):
        for scenario in ("benign-av", "malware", "rogue-ca", "chained-attack"):
            outcome = evaluation.by_scenario(scenario)
            assert outcome.notary == "mitm-suspected"
            assert outcome.dvcert == "mitm-detected"

    def test_only_cooperative_proxy_disclosed(self, evaluation):
        assert (
            evaluation.by_scenario("cooperative-proxy").disclosure
            == "GoodAV Explicit Proxy v1"
        )
        for scenario in ("benign-av", "malware", "rogue-ca", "chained-attack"):
            assert evaluation.by_scenario(scenario).disclosure is None

    def test_ct_flags_rogue_ca_only(self, evaluation):
        assert evaluation.by_scenario("rogue-ca").ct_monitor == "flagged"
        for scenario in ("benign-av", "malware", "chained-attack"):
            assert evaluation.by_scenario(scenario).ct_monitor == "invisible"
        assert evaluation.by_scenario("clean").ct_monitor == "clean"

    def test_mdtls_fails_closed_on_undelegated_interception(self, evaluation):
        from repro.mitigation import MDTLS_AUTHORIZED, MDTLS_MITM, MDTLS_OK

        assert evaluation.by_scenario("clean").mdtls == MDTLS_OK
        assert (
            evaluation.by_scenario("cooperative-proxy").mdtls
            == MDTLS_AUTHORIZED
        )
        for scenario in ("benign-av", "malware", "rogue-ca", "chained-attack"):
            assert evaluation.by_scenario(scenario).mdtls == MDTLS_MITM


class TestMdtlsClient:
    def test_verdict_table(self):
        from repro.mitigation import (
            MDTLS_AUTHORIZED,
            MDTLS_MITM,
            MDTLS_OK,
            MdtlsClient,
        )

        client = MdtlsClient(authorized=frozenset({"Corp Proxy"}))
        assert client.verdict(False, None) == MDTLS_OK
        assert client.verdict(True, "Corp Proxy") == MDTLS_AUTHORIZED
        assert client.verdict(True, "Other Proxy") == MDTLS_MITM
        assert client.verdict(True, None) == MDTLS_MITM

    def test_empty_delegation_trusts_no_middlebox(self):
        from repro.mitigation import MDTLS_MITM, MdtlsClient

        client = MdtlsClient()
        assert client.verdict(True, "Anyone") == MDTLS_MITM
