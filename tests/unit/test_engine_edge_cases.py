"""Edge-case tests for the MitM engine and supporting layers."""

import datetime as dt
import random

import pytest

from repro.crypto.keystore import KeyStore, shared_keystore
from repro.data.keywords import STUDY1_KEYWORDS, STUDY2_KEYWORDS, keywords_for_study
from repro.netsim import Network
from repro.proxy import (
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    SubstituteCertForger,
    TlsProxyEngine,
)
from repro.tls import codec
from repro.tls.codec import ClientHello
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name, RootStore
from repro.x509.model import SubjectPublicKeyInfo


@pytest.fixture(scope="module")
def forger():
    return SubstituteCertForger(KeyStore(seed=71), seed=71)


@pytest.fixture(scope="module")
def origin_chain(intermediate_ca, keystore):
    key = keystore.key("edge-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="edge.example", organization="Edge"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["edge.example", "alias.example"],
    )
    return [leaf, intermediate_ca.certificate]


def proxied_world(profile, origin_chain, trust, forger):
    network = Network()
    client = network.add_host("victim.example")
    origin = network.add_host("edge.example", ip="203.0.113.42")
    origin.listen(443, TlsCertServer(origin_chain).factory)
    engine = TlsProxyEngine(
        profile, forger, upstream_host=client, upstream_trust=trust
    )
    client.add_interceptor(engine)
    return network, client, engine


def default_profile(**overrides):
    base = dict(
        key="edge-product",
        issuer=Name.build(common_name="Edge CA", organization="EdgeProduct"),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,
        hash_name="sha1",
    )
    base.update(overrides)
    return ProxyProfile(**base)


class TestEngineEdgeCases:
    def test_sni_differs_from_destination(
        self, forger, origin_chain, root_ca
    ):
        """The proxy keys interception on the SNI name, not the TCP peer."""
        profile = default_profile(whitelist=frozenset({"alias.example"}))
        network, client, engine = proxied_world(
            profile, origin_chain, RootStore([root_ca.certificate]), forger
        )
        # Destination edge.example, SNI alias.example (whitelisted).
        sock = client.connect("edge.example", 443)
        hello = ClientHello(
            client_random=random.Random(1).getrandbits(256).to_bytes(32, "big"),
            server_name="alias.example",
        )
        sock.send(codec.encode_handshake_record(hello))
        records, _ = codec.decode_records(sock.recv())
        messages, _ = codec.decode_handshakes(
            b"".join(
                r.payload
                for r in records
                if r.content_type == codec.CONTENT_HANDSHAKE
            )
        )
        der = next(
            codec.Certificate.from_body(m.body).der_chain
            for m in messages
            if m.msg_type == codec.HS_CERTIFICATE
        )
        assert der[0] == origin_chain[0].encode()  # relayed, not forged
        assert engine.whitelisted == 1

    def test_garbage_from_client_closes_connection(
        self, forger, origin_chain, root_ca
    ):
        network, client, engine = proxied_world(
            default_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("edge.example", 443)
        sock.send(b"\x99\x99not tls at all")
        assert sock.closed or codec.decode_records(sock.recv())[0][0].content_type == (
            codec.CONTENT_ALERT
        )

    def test_second_client_hello_ignored(self, forger, origin_chain, root_ca):
        network, client, engine = proxied_world(
            default_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        sock = client.connect("edge.example", 443)
        hello = ClientHello(
            client_random=bytes(32), server_name="edge.example"
        )
        sock.send(codec.encode_handshake_record(hello))
        first_flight = sock.recv()
        sock.send(codec.encode_handshake_record(hello))
        second_flight = sock.recv()
        assert first_flight  # served once
        assert second_flight == b""  # renegotiation not entertained
        assert engine.intercepted == 1

    def test_expired_upstream_counts_as_forged(
        self, forger, keystore, intermediate_ca, root_ca
    ):
        """A stale origin certificate fails the proxy's validation and is
        treated per the forged-upstream policy."""
        key = keystore.key("expired-site", 512)
        expired = intermediate_ca.issue(
            Name.build(common_name="edge.example"),
            SubjectPublicKeyInfo(key.n, key.e),
            dns_names=["edge.example"],
            not_before=dt.datetime(2010, 1, 1, tzinfo=dt.timezone.utc),
            not_after=dt.datetime(2011, 1, 1, tzinfo=dt.timezone.utc),
        )
        network, client, engine = proxied_world(
            default_profile(forged_upstream=ForgedUpstreamPolicy.BLOCK),
            [expired, intermediate_ca.certificate],
            RootStore([root_ca.certificate]),
            forger,
        )
        result = ProbeClient(client).probe("edge.example", 443)
        assert not result.ok
        assert engine.blocked_forged_upstream == 1

    def test_forged_upstream_policies_counted_exclusively(
        self, forger, origin_chain, root_ca
    ):
        network, client, engine = proxied_world(
            default_profile(), origin_chain, RootStore([root_ca.certificate]), forger
        )
        ProbeClient(client).probe("edge.example", 443)
        assert engine.intercepted == 1
        assert engine.blocked_forged_upstream == 0
        assert engine.masked_forged_upstream == 0
        assert engine.whitelisted == 0


class TestSharedKeystore:
    def test_memoised_per_seed(self):
        """Every seed gets exactly one process-wide store — mismatched
        -seed callers amortise keygen too, instead of the old
        first-caller-wins behaviour handing them throwaway stores."""
        import repro.crypto.keystore as keystore_module

        keystore_module._SHARED.clear()
        first = shared_keystore(seed=5)
        assert shared_keystore(seed=5) is first
        other = shared_keystore(seed=6)
        assert other is not first
        assert shared_keystore(seed=6) is other
        assert shared_keystore(seed=5) is first
        keystore_module._SHARED.clear()


class TestKeywords:
    def test_study_keyword_sets(self):
        assert keywords_for_study(1) == STUDY1_KEYWORDS
        assert keywords_for_study(2) == STUDY2_KEYWORDS
        assert "Snowden" in STUDY1_KEYWORDS
        assert "TLS Proxies" in STUDY2_KEYWORDS  # the authors' easter egg

    def test_invalid_study(self):
        with pytest.raises(ValueError):
            keywords_for_study(3)

    def test_campaigns_carry_keywords(self):
        from repro.adwords import AdCampaign
        from repro.data.countries import STUDY2_CAMPAIGNS

        assert AdCampaign.study1().keywords == STUDY1_KEYWORDS
        campaign = AdCampaign.from_calibration(STUDY2_CAMPAIGNS[0])
        assert campaign.keywords == STUDY2_KEYWORDS


class TestX509ParserEdgeCases:
    def test_multi_attribute_rdn_parses(self):
        """Some real names pack several attributes into one RDN SET."""
        from repro.asn1 import oids
        from repro.asn1.types import (
            ObjectIdentifier,
            Sequence,
            Set,
            Utf8String,
            decode,
        )
        from repro.x509.parse import parse_name

        multi_rdn = Sequence(
            [
                Set(
                    [
                        Sequence(
                            [ObjectIdentifier(oids.OID_ORGANIZATION), Utf8String("O1")]
                        ),
                        Sequence(
                            [ObjectIdentifier(oids.OID_COMMON_NAME), Utf8String("CN1")]
                        ),
                    ]
                )
            ]
        )
        decoded, rest = decode(multi_rdn.encode())
        assert rest == b""
        name = parse_name(decoded)
        assert name.organization == "O1"
        assert name.common_name == "CN1"

    def test_generalized_time_validity_parses(
        self, root_ca, keystore
    ):
        """Roots often use GeneralizedTime; the parser must accept it."""
        import datetime as dtm

        from repro.asn1.types import GeneralizedTime, Sequence
        from repro.x509.model import Validity
        from repro.x509.parse import _parse_validity

        seq = Sequence(
            [
                GeneralizedTime(dtm.datetime(2050, 1, 1, tzinfo=dtm.timezone.utc)),
                GeneralizedTime(dtm.datetime(2060, 1, 1, tzinfo=dtm.timezone.utc)),
            ]
        )
        from repro.asn1.types import decode

        decoded, _ = decode(seq.encode())
        validity = _parse_validity(decoded)
        assert isinstance(validity, Validity)
        assert validity.not_before.year == 2050

    def test_teletex_name_attribute(self):
        from repro.asn1 import oids
        from repro.asn1.types import (
            ObjectIdentifier,
            Sequence,
            Set,
            TeletexString,
            decode,
        )
        from repro.x509.parse import parse_name

        name_seq = Sequence(
            [
                Set(
                    [
                        Sequence(
                            [
                                ObjectIdentifier(oids.OID_ORGANIZATION),
                                TeletexString("Ol\xe9 Corp"),
                            ]
                        )
                    ]
                )
            ]
        )
        decoded, _ = decode(name_seq.encode())
        assert parse_name(decoded).organization == "Ol\xe9 Corp"
