"""Unit tests for GeoIP, IPF calibration and the client population."""

import random

import numpy as np
import pytest

from repro.data import countries as country_data
from repro.data import products as product_data
from repro.geoip import GeoIpDatabase, GeoIpError, int_to_ip, ip_to_int
from repro.population import (
    ClientPopulation,
    REPEAT_FACTOR,
    iterative_proportional_fit,
)


class TestIpConversions:
    @pytest.mark.parametrize(
        "ip,value",
        [
            ("0.0.0.0", 0),
            ("0.0.0.255", 255),
            ("1.0.0.0", 1 << 24),
            ("255.255.255.255", 0xFFFFFFFF),
            ("11.22.33.44", (11 << 24) | (22 << 16) | (33 << 8) | 44),
        ],
    )
    def test_round_trip(self, ip, value):
        assert ip_to_int(ip) == value
        assert int_to_ip(value) == ip

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""])
    def test_bad_ips_rejected(self, bad):
        with pytest.raises(GeoIpError):
            ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(GeoIpError):
            int_to_ip(1 << 32)


class TestGeoIpDatabase:
    def build(self):
        db = GeoIpDatabase()
        db.add_range("10.0.0.0", "10.0.255.255", "US")
        db.add_range("10.1.0.0", "10.1.255.255", "BR")
        db.add_range("10.5.0.0", "10.5.0.255", "CN")
        db.freeze()
        return db

    def test_lookup_inside_ranges(self):
        db = self.build()
        assert db.lookup("10.0.0.1") == "US"
        assert db.lookup("10.1.128.7") == "BR"
        assert db.lookup("10.5.0.255") == "CN"

    def test_lookup_boundaries(self):
        db = self.build()
        assert db.lookup("10.0.0.0") == "US"
        assert db.lookup("10.0.255.255") == "US"

    def test_lookup_outside_returns_none(self):
        db = self.build()
        assert db.lookup("10.2.0.0") is None
        assert db.lookup("9.255.255.255") is None

    def test_lookup_requires_freeze(self):
        db = GeoIpDatabase()
        db.add_range("10.0.0.0", "10.0.0.255", "US")
        with pytest.raises(GeoIpError, match="freeze"):
            db.lookup("10.0.0.1")

    def test_overlap_rejected(self):
        db = GeoIpDatabase()
        db.add_range("10.0.0.0", "10.0.0.255", "US")
        db.add_range("10.0.0.128", "10.0.1.0", "BR")
        with pytest.raises(GeoIpError, match="overlap"):
            db.freeze()

    def test_inverted_range_rejected(self):
        db = GeoIpDatabase()
        with pytest.raises(GeoIpError, match="inverted"):
            db.add_range("10.0.1.0", "10.0.0.0", "US")

    def test_lookup_vs_bruteforce(self):
        """Binary search agrees with a linear scan on random queries."""
        rng = random.Random(5)
        db = GeoIpDatabase()
        ranges = []
        base = 0
        for i in range(200):
            start = base + rng.randrange(1, 1000)
            end = start + rng.randrange(0, 5000)
            country = f"C{i % 17}"
            db.add_range(int_to_ip(start), int_to_ip(end), country)
            ranges.append((start, end, country))
            base = end + 1
        db.freeze()
        for _ in range(500):
            query = rng.randrange(0, base + 1000)
            expected = None
            for start, end, country in ranges:
                if start <= query <= end:
                    expected = country
                    break
            assert db.lookup(int_to_ip(query)) == expected


class TestIpf:
    def test_exact_fit_on_feasible_problem(self):
        seed = np.array([[1.0, 1.0], [1.0, 3.0]])
        fitted = iterative_proportional_fit(
            seed, np.array([10.0, 20.0]), np.array([12.0, 18.0])
        )
        assert np.allclose(fitted.sum(axis=1), [10, 20])
        assert np.allclose(fitted.sum(axis=0), [12, 18])

    def test_zeros_preserved(self):
        seed = np.array([[1.0, 0.0], [1.0, 1.0]])
        fitted = iterative_proportional_fit(
            seed, np.array([5.0, 10.0]), np.array([7.0, 8.0])
        )
        assert fitted[0, 1] == 0.0

    def test_mismatched_totals_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            iterative_proportional_fit(
                np.ones((2, 2)), np.array([1.0, 1.0]), np.array([5.0, 5.0])
            )

    def test_infeasible_row_rejected(self):
        seed = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="infeasible"):
            iterative_proportional_fit(
                seed, np.array([5.0, 5.0]), np.array([5.0, 5.0])
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="match"):
            iterative_proportional_fit(
                np.ones((2, 3)), np.array([1.0, 1.0]), np.array([1.0, 1.0])
            )


@pytest.fixture(scope="module")
def population():
    return ClientPopulation(study=1, seed=11, scale=0.01)


@pytest.fixture(scope="module")
def population2():
    return ClientPopulation(study=2, seed=11, scale=0.01, measurements_per_session=4.0)


class TestClientPopulation:
    def test_invalid_study_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(study=3)

    def test_client_profile_is_deterministic(self, population):
        a = population.client_profile("US", 17)
        b = population.client_profile("US", 17)
        assert a == b

    def test_clients_have_country_ips(self, population):
        geoip = population.build_geoip()
        for country in ("US", "BR", "CN") if False else ("US", "BR"):
            profile = population.client_profile(country, 3)
            assert geoip.lookup(profile.ip) == country

    def test_proxy_rate_calibrated(self, population):
        rng = random.Random(2)
        n = 20000
        proxied = sum(1 for _ in range(n) if population.sample_client(rng).is_proxied)
        # Study 1 overall rate is 0.411%; allow generous sampling noise.
        assert 0.002 < proxied / n < 0.007

    def test_country_weights_follow_table(self, population):
        rng = random.Random(3)
        from collections import Counter

        counts = Counter(population.sample_country(rng) for _ in range(30000))
        # Brazil and the US dominate study-1 measurements (Table 3).
        assert counts["US"] > counts["FR"]
        assert counts["BR"] > counts["FR"]

    def test_product_share_matches_ipf(self, population):
        # Bitdefender should be the plurality product everywhere.
        share = population.expected_product_share("bitdefender", "US")
        assert share > 0.2

    def test_dsp_only_in_ireland(self, population2):
        assert population2.expected_product_share("dsp", "IE") > 0.0
        assert population2.expected_product_share("dsp", "US") == 0.0

    def test_telecom_only_in_korea(self, population2):
        assert population2.expected_product_share("lg-uplus", "KR") > 0.0
        assert population2.expected_product_share("lg-uplus", "DE") == 0.0

    def test_dsp_clients_share_one_ip(self, population2):
        ips = {
            population2._client_ip(population2.plan("IE"), index, "dsp")
            for index in range(50)
        }
        assert len(ips) == 1

    def test_normal_clients_have_distinct_ips(self, population):
        ips = {
            population.client_profile("US", index).ip for index in range(100)
        }
        assert len(ips) == 100

    def test_pool_sizing_reflects_repeat_factor(self, population):
        plan = population.plan("US")
        expected_sessions = 285078 * 0.01  # scale
        assert plan.pool_size == pytest.approx(
            expected_sessions / REPEAT_FACTOR, rel=0.01
        )

    def test_geoip_covers_all_plans(self, population2):
        geoip = population2.build_geoip()
        for plan in population2.plans:
            profile = population2.client_profile(plan.code, 0)
            assert geoip.lookup(profile.ip) == plan.code

    def test_aggregate_product_mix_matches_weights(self, population):
        """Across countries, product counts track the study-1 weights."""
        from collections import Counter

        rng = random.Random(9)
        counts = Counter()
        for _ in range(120000):
            client = population.sample_client(rng)
            if client.product_key:
                counts[client.product_key] += 1
        total = sum(counts.values())
        bitdefender_share = counts["bitdefender"] / total
        # Weight 4788 of ~11900 total ⇒ ~40%.
        assert 0.30 < bitdefender_share < 0.52
