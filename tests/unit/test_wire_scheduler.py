"""Unit tests for scheduled delivery: DeliveryQueue, loop guards, WireScheduler."""

import random

import pytest

from repro.netsim import (
    ConnectionReset,
    CooperativeLoop,
    LoopStarvation,
    Network,
    Protocol,
    StreamSocket,
    WireScheduler,
    drive,
    settle,
)
from repro.netsim.events import DeliveryQueue


class Recorder(Protocol):
    """Records every callback it receives, in order."""

    def __init__(self):
        self.calls = []

    def connection_made(self, sock):
        self.calls.append(("made", sock))

    def data_received(self, sock, data):
        self.calls.append(("data", bytes(data)))

    def connection_lost(self, sock):
        self.calls.append(("lost", sock))


class Echo(Protocol):
    def data_received(self, sock, data):
        sock.send(data.upper())


class ReplyThenClose(Protocol):
    """The PolicyServer shape: answer, then hang up."""

    def data_received(self, sock, data):
        sock.send(b"reply:" + data)
        sock.close()


class TestDeliveryQueue:
    def test_inactive_queue_is_synchronous(self):
        queue = DeliveryQueue()
        server = Recorder()
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = server
        a.send(b"ping")
        assert server.calls == [("data", b"ping")]
        assert len(queue) == 0

    def test_active_queue_defers_until_drain(self):
        queue = DeliveryQueue()
        queue.active = True
        server = Recorder()
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = server
        a.send(b"ping")
        assert server.calls == []
        assert queue.depth == 1
        queue.drain()
        assert server.calls == [("data", b"ping")]
        assert queue.delivered == 1

    def test_drain_is_fifo(self):
        queue = DeliveryQueue()
        queue.active = True
        server = Recorder()
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = server
        for chunk in (b"1", b"2", b"3"):
            a.send(chunk)
        queue.drain()
        assert server.calls == [("data", b"1"), ("data", b"2"), ("data", b"3")]

    def test_drain_reaches_quiescence_through_replies(self):
        # The echo reply is enqueued *during* the drain and must be
        # processed by the same drain call.
        queue = DeliveryQueue()
        queue.active = True
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = Echo()
        a.send(b"ping")
        processed = queue.drain()
        assert processed == 2  # the request and the echoed reply
        assert a.recv() == b"PING"

    def test_reply_lands_before_queued_close(self):
        # "send policy then close": the reply event precedes the close
        # event in the FIFO, so the client sees the bytes, then loses
        # the connection — never the reverse.
        queue = DeliveryQueue()
        queue.active = True
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = ReplyThenClose()
        a.send(b"req")
        queue.drain()
        assert a.recv() == b"reply:req"
        assert a.closed
        assert queue.dropped == 0

    def test_delivery_to_closed_socket_dropped_and_counted(self):
        queue = DeliveryQueue()
        queue.active = True
        server = Recorder()
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = server
        a.send(b"in flight")
        b.closed = True  # closes under the event's feet
        queue.drain()
        assert server.calls == []
        assert queue.dropped == 1
        assert queue.delivered == 0

    def test_max_depth_high_water(self):
        queue = DeliveryQueue()
        queue.active = True
        a, b = StreamSocket.pair("a", "b", queue=queue)
        b.protocol = Recorder()
        for _ in range(5):
            a.send(b"x")
        assert queue.max_depth == 5
        queue.drain()
        assert queue.max_depth == 5  # high-water survives the drain

    def test_queued_connect_defers_connection_made(self):
        net = Network()
        greeter = Recorder()
        server = net.add_host("s.example")
        client = net.add_host("c.example")
        server.listen(80, lambda: greeter)
        net.queue.active = True
        try:
            sock = client.connect("s.example", 80)
            assert greeter.calls == []
            net.queue.drain()
        finally:
            net.queue.active = False
        assert greeter.calls == [("made", sock.peer)]
        assert net.queue.connects == 1


class TestCloseSymmetry:
    def test_both_protocols_notified_once(self):
        # The closing side's own protocol historically never heard
        # connection_lost; now both sides get exactly one notification.
        left, right = Recorder(), Recorder()
        a, b = StreamSocket.pair("a", "b")
        a.protocol = left
        b.protocol = right
        a.close()
        assert left.calls == [("lost", a)]
        assert right.calls == [("lost", b)]
        a.close()  # idempotent
        b.close()
        assert left.calls == [("lost", a)]
        assert right.calls == [("lost", b)]

    def test_send_after_own_close_raises(self):
        a, b = StreamSocket.pair("a", "b")
        a.close()
        with pytest.raises(ConnectionReset):
            a.send(b"late")

    def test_queued_close_notifies_both_on_drain(self):
        queue = DeliveryQueue()
        queue.active = True
        left, right = Recorder(), Recorder()
        a, b = StreamSocket.pair("a", "b", queue=queue)
        a.protocol = left
        b.protocol = right
        a.close()
        assert a.closed  # own side stops accepting sends immediately
        assert not b.closed  # peer learns on drain
        assert left.calls == [] and right.calls == []
        queue.drain()
        assert b.closed
        assert left.calls == [("lost", a)]
        assert right.calls == [("lost", b)]
        assert queue.closes == 1


class TestSettleAndDrive:
    def test_settle_noop_without_queue(self):
        a, _b = StreamSocket.pair("a", "b")
        assert list(settle(a)) == []

    def test_settle_noop_with_inactive_queue(self):
        queue = DeliveryQueue()
        a, _b = StreamSocket.pair("a", "b", queue=queue)
        assert list(settle(a)) == []

    def test_settle_yields_once_when_active(self):
        queue = DeliveryQueue()
        queue.active = True
        a, _b = StreamSocket.pair("a", "b", queue=queue)
        assert list(settle(a)) == [None]

    def test_drive_returns_generator_value(self):
        def task():
            yield
            yield
            return 42

        assert drive(task()) == 42


class TestCooperativeLoopGuards:
    def test_deadline_raises_diagnosable_starvation(self):
        def stuck():
            while True:
                yield

        loop = CooperativeLoop()
        loop.spawn(stuck, label="client-7.example")
        loop.spawn(stuck)  # unlabelled shows as "?"
        with pytest.raises(LoopStarvation) as excinfo:
            loop.run(deadline_ticks=20)
        err = excinfo.value
        assert err.ticks == 20
        assert "client-7.example" in err.stuck
        assert "?" in err.stuck
        assert "client-7.example" in str(err)

    def test_starvation_preview_truncates_long_stuck_lists(self):
        def stuck():
            while True:
                yield

        loop = CooperativeLoop(max_active=16)
        for i in range(12):
            loop.spawn(stuck, label=f"t{i}")
        with pytest.raises(LoopStarvation) as excinfo:
            loop.run(deadline_ticks=3)
        assert "..." in str(excinfo.value)
        assert len(excinfo.value.stuck) == 12

    def test_max_ticks_breaks_quietly(self):
        def stuck():
            while True:
                yield

        loop = CooperativeLoop()
        loop.spawn(stuck, label="s")
        assert loop.run(max_ticks=5) == 5
        assert not loop.idle  # still in flight, no exception

    def test_admission_cap_and_peak(self):
        done = []

        def task(i):
            def gen():
                yield
                done.append(i)

            return gen

        loop = CooperativeLoop(max_active=3)
        for i in range(10):
            loop.spawn(task(i), label=f"t{i}")
        loop.run()
        assert sorted(done) == list(range(10))
        assert loop.peak_active == 3
        assert loop.completed == 10

    def test_task_failure_counted_and_loop_survives(self):
        seen = []

        def bad():
            yield
            raise ValueError("boom")

        def good():
            yield
            yield

        loop = CooperativeLoop(on_task_error=lambda task, exc: seen.append(exc))
        loop.spawn(bad, label="bad")
        loop.spawn(good, label="good")
        loop.run()
        assert loop.task_failures == 1
        assert loop.completed == 1
        assert len(seen) == 1 and isinstance(seen[0], ValueError)

    def test_shuffled_ticks_complete_all_tasks(self):
        done = []

        def task(i):
            def gen():
                yield
                yield
                done.append(i)

            return gen

        loop = CooperativeLoop(max_active=8, shuffle=random.Random(1234))
        for i in range(8):
            loop.spawn(task(i))
        loop.run()
        assert sorted(done) == list(range(8))


class TestWireScheduler:
    def _echo_world(self):
        net = Network()
        server = net.add_host("echo.example")
        server.listen(7, Echo)
        return net

    def test_multiplexes_clients_with_synchronous_semantics(self):
        net = self._echo_world()
        results = {}

        def client(name):
            host = net.add_host(name)

            def task():
                sock = host.connect("echo.example", 7)
                sock.send(name.encode())
                yield from settle(sock)
                results[name] = sock.recv()
                sock.close()

            return task

        sched = WireScheduler(net, max_active=4)
        names = [f"c{i}.example" for i in range(10)]
        for name in names:
            sched.spawn(client(name), label=name)
        sched.run()
        assert results == {name: name.upper().encode() for name in names}
        assert sched.loop.completed == 10
        assert not net.queue.active  # deactivated after the run
        assert net.queue.delivered >= 10

    def test_queue_deactivated_even_on_starvation(self):
        net = self._echo_world()

        def stuck():
            while True:
                yield

        sched = WireScheduler(net)
        sched.spawn(stuck, label="wedged")
        with pytest.raises(LoopStarvation):
            sched.run(deadline_ticks=4)
        assert not net.queue.active

    def test_serial_and_scheduled_clients_see_identical_bytes(self):
        payloads = [b"alpha", b"beta", b"gamma"]

        def run(scheduled):
            net = self._echo_world()
            host = net.add_host("client.example")
            got = []

            def task(payload):
                def gen():
                    sock = host.connect("echo.example", 7)
                    sock.send(payload)
                    yield from settle(sock)
                    got.append(sock.recv())
                    sock.close()

                return gen

            if scheduled:
                sched = WireScheduler(net, max_active=3)
                for payload in payloads:
                    sched.spawn(task(payload))
                sched.run()
            else:
                for payload in payloads:
                    drive(task(payload)())
            return got

        assert run(scheduled=False) == run(scheduled=True)
