"""The persistent key-material vault: byte-identity, misses, safety.

The vault is only admissible if it is *invisible*: a vault-loaded key
must match a freshly generated one on every field (including the CRT
constants the signer reads), and anything wrong on disk must degrade
to regeneration, never to a corrupted run.
"""

import json

import pytest

from repro.crypto.hashes import hash_by_name
from repro.crypto.keystore import KeyStore
from repro.crypto.rsa import pkcs1_sign, pkcs1_verify
from repro.crypto.vault import KeyVault, open_vault


@pytest.fixture
def vault(tmp_path):
    return KeyVault(tmp_path / "vault")


class TestRoundTrip:
    def test_loaded_key_byte_identical_to_generated(self, vault):
        """Acceptance: vault-loaded keys ≡ freshly generated ones."""
        fresh = KeyStore(seed=11).key("identity", 512)
        writer = KeyStore(seed=11, vault=vault)
        writer.key("identity", 512)
        reader = KeyStore(seed=11, vault=vault)
        loaded = reader.key("identity", 512)
        assert reader.keys_generated == 0
        assert reader.vault_hits == 1
        assert (loaded.n, loaded.e, loaded.d, loaded.p, loaded.q) == (
            fresh.n, fresh.e, fresh.d, fresh.p, fresh.q,
        )

    def test_crt_constants_travel_with_the_key(self, vault):
        vault.store(3, "crt", 512, KeyStore(seed=3).key("crt", 512))
        loaded = vault.load(3, "crt", 512)
        # Pre-installed in __dict__, so the first signature never pays
        # the modular inverse.
        assert {"dp", "dq", "q_inv"} <= set(loaded.__dict__)
        fresh = KeyStore(seed=3).key("crt", 512)
        assert (loaded.dp, loaded.dq, loaded.q_inv) == (
            fresh.dp, fresh.dq, fresh.q_inv,
        )

    def test_loaded_key_signs_and_verifies(self, vault):
        KeyStore(seed=5, vault=vault).key("signer", 512)
        loaded = KeyStore(seed=5, vault=vault).key("signer", 512)
        alg = hash_by_name("sha256")
        signature = pkcs1_sign(loaded, alg, b"vault payload")
        assert pkcs1_verify(loaded.public, alg, b"vault payload", signature)

    def test_store_is_idempotent(self, vault):
        pair = KeyStore(seed=2).key("idem", 512)
        assert vault.store(2, "idem", 512, pair) is True
        assert vault.store(2, "idem", 512, pair) is False
        assert len(vault) == 1


class TestAddressing:
    def test_slots_do_not_collide(self, vault):
        addresses = {
            KeyVault.address(seed, label, bits)
            for seed in (0, 1, 7)
            for label in ("a", "b", "proxy-ca:x|CN=Y")
            for bits in (512, 1024)
        }
        assert len(addresses) == 18

    def test_entry_is_a_single_file_per_key(self, vault):
        KeyStore(seed=1, vault=vault).key("one", 512)
        path = vault.entry_path(1, "one", 512)
        assert path.is_file()
        # No temp droppings left behind by the atomic rename.
        assert not list(vault.path.glob("**/*.tmp"))


class TestMisses:
    def test_empty_vault_misses(self, vault):
        assert vault.load(1, "missing", 512) is None

    def test_corrupt_entry_regenerates(self, vault):
        store = KeyStore(seed=4, vault=vault)
        expected = store.key("corrupt", 512)
        path = vault.entry_path(4, "corrupt", 512)
        path.write_text("{not json", encoding="utf-8")
        reader = KeyStore(seed=4, vault=vault)
        regenerated = reader.key("corrupt", 512)
        assert reader.keys_generated == 1
        assert regenerated.n == expected.n
        # The regeneration healed the entry on disk.
        assert vault.load(4, "corrupt", 512) is not None

    def test_tampered_material_rejected(self, vault):
        KeyStore(seed=4, vault=vault).key("tamper", 512)
        path = vault.entry_path(4, "tamper", 512)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["p"] = f"{int(payload['p'], 16) + 2:x}"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert vault.load(4, "tamper", 512) is None

    def test_mismatched_slot_echo_rejected(self, vault):
        pair = KeyStore(seed=4).key("echo", 512)
        vault.store(4, "echo", 512, pair)
        path = vault.entry_path(4, "echo", 512)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["label"] = "other"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert vault.load(4, "echo", 512) is None


class TestOpenVault:
    def test_passthrough_and_path(self, tmp_path):
        vault = KeyVault(tmp_path)
        assert open_vault(vault) is vault
        assert open_vault(str(tmp_path)).path == tmp_path
        assert open_vault(None, env=False) is None

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KEY_VAULT", str(tmp_path / "envvault"))
        resolved = open_vault(None)
        assert resolved is not None
        assert resolved.path == tmp_path / "envvault"
        monkeypatch.delenv("REPRO_KEY_VAULT")
        assert open_vault(None) is None


class TestGenerationCounter:
    def test_counts_only_real_generations(self, vault):
        store = KeyStore(seed=8, vault=vault)
        store.key("a", 512)
        store.key("a", 512)  # in-memory hit
        assert store.keys_generated == 1
        second = KeyStore(seed=8, vault=vault)
        second.key("a", 512)  # vault hit
        second.key("b", 512)  # genuine generation
        assert second.keys_generated == 1
        assert second.vault_hits == 1

    def test_vaultless_store_still_counts(self):
        store = KeyStore(seed=8)
        store.preload(["p1", "p2"], 512)
        assert store.keys_generated == 2


class TestGc:
    def test_gc_prunes_foreign_seeds_and_keeps_kept(self, vault):
        """Acceptance: over a populated vault, gc removes exactly the
        entries whose seed is not kept, and the survivors still load."""
        for seed in (7, 8, 9):
            store = KeyStore(seed=seed, vault=vault)
            store.key("alpha", 512)
            store.key("beta", 512)
        assert len(vault) == 6
        kept, removed = vault.gc(keep_seeds=[7, 9])
        assert (kept, removed) == (4, 2)
        assert len(vault) == 4
        # Survivors load without regeneration; the pruned seed misses.
        survivor = KeyStore(seed=7, vault=vault)
        survivor.key("alpha", 512)
        assert survivor.vault_hits == 1 and survivor.keys_generated == 0
        pruned = KeyStore(seed=8, vault=vault)
        pruned.key("alpha", 512)
        assert pruned.keys_generated == 1

    def test_gc_removes_unreadable_entries(self, vault):
        store = KeyStore(seed=7, vault=vault)
        store.key("alpha", 512)
        path = vault.entry_path(7, "alpha", 512)
        path.write_text("not json", encoding="utf-8")
        bogus = vault.path / "zz" / "bogus.json"
        bogus.parent.mkdir(parents=True)
        bogus.write_text(json.dumps({"no": "seed"}), encoding="utf-8")
        kept, removed = vault.gc(keep_seeds=[7])
        assert kept == 0 and removed == 2
        assert len(vault) == 0
        # Emptied fan-out directories are dropped with their entries.
        assert not (vault.path / "zz").exists()

    def test_gc_removes_stale_format_and_orphan_tmp_files(self, vault):
        """A format bump relocates every address, so old-format
        entries can never be hits again — gc must not keep them just
        because their seed matches; crashed-writer temp files go too."""
        store = KeyStore(seed=7, vault=vault)
        store.key("alpha", 512)
        path = vault.entry_path(7, "alpha", 512)
        payload = json.loads(path.read_text(encoding="utf-8"))
        stale = dict(payload, format=payload["format"] - 1)
        stale_path = path.parent / "stale-format.json"
        stale_path.write_text(json.dumps(stale), encoding="utf-8")
        orphan = path.parent / ".crashed-writer.json.123.456.tmp"
        orphan.write_text("partial", encoding="utf-8")
        kept, removed = vault.gc(keep_seeds=[7])
        assert (kept, removed) == (1, 2)
        assert path.exists()
        assert not stale_path.exists() and not orphan.exists()

    def test_gc_on_missing_vault_is_a_noop(self, tmp_path):
        vault = KeyVault(tmp_path / "never-created")
        assert vault.gc(keep_seeds=[7]) == (0, 0)

    def test_gc_cli(self, vault, capsys):
        from repro.cli import main

        KeyStore(seed=7, vault=vault).key("alpha", 512)
        KeyStore(seed=8, vault=vault).key("alpha", 512)
        code = main(
            ["keys", "gc", "--vault", str(vault.path), "--keep-seeds", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kept 1" in out and "removed 1" in out
        assert len(vault) == 1
