"""Unit tests for the cooperative loop and the multi-connection ingest
front end (reporting server + store back-pressure included)."""

import pytest

from repro.data.sites import ProbeSite
from repro.httpmin.client import HttpClient
from repro.measure.ingest import IngestLoop, ReportSubmission
from repro.measure.server import ReportingServer
from repro.measure.store import ReportStore, scan_store
from repro.netsim.loop import CooperativeLoop
from repro.netsim.network import Network
from repro.obs.metrics import MetricsRegistry
from repro.x509.pem import pem_encode


class TestCooperativeLoop:
    def test_round_robin_interleaves(self):
        trace = []

        def task(name, steps):
            for step in range(steps):
                trace.append((name, step))
                yield

        loop = CooperativeLoop(max_active=4)
        loop.spawn(lambda: task("a", 2))
        loop.spawn(lambda: task("b", 2))
        loop.run()
        assert trace == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert loop.completed == 2
        assert loop.idle

    def test_admission_cap_bounds_active(self):
        active_seen = []

        def task():
            yield
            yield

        loop = CooperativeLoop(max_active=3)
        for _ in range(10):
            loop.spawn(task)
        loop.run(on_tick=lambda lp: active_seen.append(len(lp._active)))
        assert loop.completed == 10
        assert loop.peak_active == 3
        assert max(active_seen) <= 3

    def test_max_ticks_stops_early(self):
        def forever():
            while True:
                yield

        loop = CooperativeLoop()
        loop.spawn(forever)
        assert loop.run(max_ticks=5) == 5
        assert not loop.idle

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            CooperativeLoop(max_active=0)


@pytest.fixture(scope="module")
def origin_chain(intermediate_ca, keystore):
    from repro.x509 import Name
    from repro.x509.model import SubjectPublicKeyInfo

    key = keystore.key("ingest-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="collector.test", organization="BYU"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["collector.test"],
    )
    return [leaf, intermediate_ca.certificate]


def build_world(tmp_path, origin_chain, *, max_pending=None, auto_flush=True,
                flush_every=8, max_connections=8):
    registry = MetricsRegistry()
    store = ReportStore(
        tmp_path / "store",
        registry,
        batch_rows=16,
        max_pending=max_pending,
        auto_flush=auto_flush,
    )
    server = ReportingServer(None, None, study=1, registry=registry, store=store)
    body = "".join(pem_encode(c.encode()) for c in origin_chain).encode()
    server.expect("collector.test", origin_chain[0].fingerprint(), "Authors'")
    network = Network()
    network.add_host("collector.test").listen(80, server.http.factory)
    loop = IngestLoop(
        "collector.test",
        store=store,
        registry=registry,
        max_connections=max_connections,
        flush_every=flush_every,
    )
    return network, registry, store, server, loop, body


class TestIngestLoop:
    def test_delivers_concurrently(self, tmp_path, origin_chain):
        network, registry, store, _server, loop, body = build_world(
            tmp_path, origin_chain
        )
        for i in range(40):
            client = network.add_host(f"client-{i}.test", ip=f"10.9.0.{i}")
            loop.submit(
                ReportSubmission(client=client, hostname="collector.test", body=body)
            )
        stats = loop.run()
        store.close()
        assert stats["delivered"] == 40
        assert stats["failed"] == 0
        assert stats["peak_active"] > 1
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["ingest.delivered"] == 40
        aggregator = scan_store(tmp_path / "store")
        assert aggregator.total_measurements == 40
        assert aggregator.mismatch_count == 0

    def test_backpressure_defers_then_recovers(self, tmp_path, origin_chain):
        network, registry, store, _server, loop, body = build_world(
            tmp_path, origin_chain, max_pending=4, auto_flush=False, flush_every=64
        )
        for i in range(30):
            client = network.add_host(f"client-{i}.test", ip=f"10.8.0.{i}")
            loop.submit(
                ReportSubmission(client=client, hostname="collector.test", body=body)
            )
        stats = loop.run()
        store.close()
        assert stats["delivered"] == 30
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["store.backpressure_events"] > 0
        assert counters["ingest.deferred"] == counters["store.backpressure_events"]
        assert scan_store(tmp_path / "store").total_measurements == 30

    def test_server_answers_429_when_overloaded(self, tmp_path, origin_chain):
        registry = MetricsRegistry()
        store = ReportStore(
            tmp_path / "store", registry, max_pending=1, auto_flush=False
        )
        server = ReportingServer(None, None, study=1, registry=registry, store=store)
        server.expect("collector.test", origin_chain[0].fingerprint(), "Authors'")
        network = Network()
        network.add_host("collector.test").listen(80, server.http.factory)
        client = network.add_host("client.test", ip="10.7.0.1")
        body = "".join(pem_encode(c.encode()) for c in origin_chain).encode()
        http = HttpClient(client)
        first = http.request(
            "POST", "collector.test", "/report", body=body,
            headers={"X-Probed-Host": "collector.test"},
        )
        assert first.ok
        second = http.request(
            "POST", "collector.test", "/report", body=body,
            headers={"X-Probed-Host": "collector.test"},
        )
        assert second.status == 429
        assert second.headers["retry-after"] == "1"
        store.flush()
        third = http.request(
            "POST", "collector.test", "/report", body=body,
            headers={"X-Probed-Host": "collector.test"},
        )
        assert third.ok
        store.close()
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["store.backpressure_events"] == 1

    def test_submission_exhausts_retries(self, tmp_path, origin_chain):
        network, registry, store, _server, loop, body = build_world(
            tmp_path, origin_chain, max_pending=1, auto_flush=False, flush_every=None
        )
        loop.store = None  # nobody drains the backlog → retries exhaust
        store.add_matched_bulk("US", "Popular", "h", 1)  # pre-fill to the cap
        loop.max_retries = 2
        client = network.add_host("client.test", ip="10.6.0.1")
        loop.submit(
            ReportSubmission(client=client, hostname="collector.test", body=body)
        )
        stats = loop.run()
        assert stats["failed"] == 1
        assert loop.failed[0].retries == 3
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["ingest.failed"] == 1
        store.close()

    def test_server_requires_a_sink(self):
        with pytest.raises(ValueError):
            ReportingServer(None, None, study=1)
