"""Unit tests for the low-level DER TLV layer."""

import pytest

from repro.asn1 import der
from repro.asn1.der import Asn1Error


class TestEncodeLength:
    def test_short_form_zero(self):
        assert der.encode_length(0) == b"\x00"

    def test_short_form_max(self):
        assert der.encode_length(127) == b"\x7f"

    def test_long_form_one_octet(self):
        assert der.encode_length(128) == b"\x81\x80"

    def test_long_form_two_octets(self):
        assert der.encode_length(0x1234) == b"\x82\x12\x34"

    def test_negative_rejected(self):
        with pytest.raises(Asn1Error):
            der.encode_length(-1)


class TestDecodeLength:
    def test_round_trip_boundaries(self):
        for length in (0, 1, 127, 128, 255, 256, 65535, 65536):
            encoded = der.encode_length(length)
            decoded, offset = der.decode_length(encoded, 0)
            assert decoded == length
            assert offset == len(encoded)

    def test_indefinite_rejected(self):
        with pytest.raises(Asn1Error, match="indefinite"):
            der.decode_length(b"\x80", 0)

    def test_non_minimal_long_form_rejected(self):
        # 0x81 0x05 encodes 5 in long form; DER requires short form.
        with pytest.raises(Asn1Error, match="long form"):
            der.decode_length(b"\x81\x05", 0)

    def test_leading_zero_rejected(self):
        with pytest.raises(Asn1Error, match="non-minimal"):
            der.decode_length(b"\x82\x00\x90", 0)

    def test_truncated(self):
        with pytest.raises(Asn1Error, match="truncated"):
            der.decode_length(b"\x82\x01", 0)

    def test_empty(self):
        with pytest.raises(Asn1Error, match="truncated"):
            der.decode_length(b"", 0)


class TestTlv:
    def test_encode_read_round_trip(self):
        encoded = der.encode_tlv(0x04, b"hello")
        tag, content, end = der.read_tlv(encoded)
        assert tag == 0x04
        assert content == b"hello"
        assert end == len(encoded)

    def test_read_at_offset(self):
        data = der.encode_tlv(0x02, b"\x01") + der.encode_tlv(0x04, b"xy")
        tag1, content1, offset = der.read_tlv(data, 0)
        tag2, content2, end = der.read_tlv(data, offset)
        assert (tag1, content1) == (0x02, b"\x01")
        assert (tag2, content2) == (0x04, b"xy")
        assert end == len(data)

    def test_truncated_value(self):
        with pytest.raises(Asn1Error, match="truncated value"):
            der.read_tlv(b"\x04\x05ab")

    def test_truncated_tag(self):
        with pytest.raises(Asn1Error, match="truncated tag"):
            der.read_tlv(b"", 0)

    def test_multi_octet_tag_rejected(self):
        with pytest.raises(Asn1Error, match="multi-octet"):
            der.read_tlv(b"\x1f\x81\x00\x00")

    def test_tag_out_of_range_rejected(self):
        with pytest.raises(Asn1Error, match="tag out of"):
            der.encode_tlv(0x100, b"")

    def test_split_tlvs(self):
        data = der.encode_tlv(0x02, b"\x01") + der.encode_tlv(0x05, b"")
        assert der.split_tlvs(data) == [(0x02, b"\x01"), (0x05, b"")]

    def test_split_tlvs_trailing_garbage(self):
        data = der.encode_tlv(0x05, b"") + b"\x04"
        with pytest.raises(Asn1Error):
            der.split_tlvs(data)
