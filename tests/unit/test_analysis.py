"""Unit tests for the classifier, tables, negligence and malware analyses."""

import pytest

from repro.analysis import (
    IssuerClassifier,
    analyze_negligence,
    classification_table,
    country_breakdown,
    heatmap_series,
    host_type_table,
    ip_dispersion_oddities,
    issuer_organization_table,
    malware_census,
)
from repro.measure import CertSummary, MeasurementRecord, ReportDatabase
from repro.proxy.profile import ProxyCategory
from repro.reporting import (
    render_classification_table,
    render_country_table,
    render_heatmap,
    render_host_type_table,
    render_issuer_table,
)
from repro.reporting.render import heat_char


def leaf(
    issuer_org="Bitdefender",
    issuer_cn="Bitdefender CA",
    subject_cn="site.example",
    key_bits=1024,
    sig="sha1WithRSAEncryption",
    key_fp="k1",
    dns=("site.example",),
):
    return CertSummary(
        subject_cn=subject_cn,
        subject_org=None,
        issuer_cn=issuer_cn,
        issuer_org=issuer_org,
        issuer_ou=None,
        serial_number=7,
        key_bits=key_bits,
        signature_algorithm=sig,
        fingerprint="f" + (issuer_org or "x") + subject_cn,
        public_key_fingerprint=key_fp,
        dns_names=dns,
    )


def record(
    leaf_summary,
    country="US",
    ip="11.0.0.1",
    hostname="site.example",
    host_type="Authors'",
    chain_valid=False,
):
    return MeasurementRecord(
        study=1,
        campaign="test",
        client_ip=ip,
        country=country,
        hostname=hostname,
        host_type=host_type,
        mismatch=True,
        leaf=leaf_summary,
        chain_valid=chain_valid,
    )


class TestClassifier:
    def setup_method(self):
        self.classifier = IssuerClassifier()

    def test_known_products(self):
        cases = {
            "Bitdefender": ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            "Kaspersky Lab ZAO": ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            "Qustodio": ProxyCategory.PARENTAL_CONTROL,
            "Sendori Inc": ProxyCategory.MALWARE,
            "Superfish, Inc.": ProxyCategory.MALWARE,
            "POSCO": ProxyCategory.ORGANIZATION,
            "LG UPLUS": ProxyCategory.TELECOM,
            "DigiCert Inc": ProxyCategory.CERTIFICATE_AUTHORITY,
        }
        for org, expected in cases.items():
            assert self.classifier.classify(leaf(issuer_org=org)) is expected

    def test_null_issuer_is_unknown(self):
        assert (
            self.classifier.classify(leaf(issuer_org=None, issuer_cn=None))
            is ProxyCategory.UNKNOWN
        )

    def test_blank_issuer_is_unknown(self):
        assert (
            self.classifier.classify(leaf(issuer_org="  ", issuer_cn=""))
            is ProxyCategory.UNKNOWN
        )

    def test_iopfail_recognized_by_cn(self):
        summary = leaf(issuer_org=None, issuer_cn="IopFailZeroAccessCreate")
        assert self.classifier.classify(summary) is ProxyCategory.MALWARE

    def test_school_heuristic(self):
        summary = leaf(issuer_org="Westfield High School")
        assert self.classifier.classify(summary) is ProxyCategory.SCHOOL

    def test_telecom_heuristic(self):
        summary = leaf(issuer_org="Anatolia Telekom A.S.")
        assert self.classifier.classify(summary) is ProxyCategory.TELECOM

    def test_firewall_heuristic(self):
        summary = leaf(issuer_org="Acme Firewall Appliance")
        assert (
            self.classifier.classify(summary)
            is ProxyCategory.BUSINESS_PERSONAL_FIREWALL
        )

    def test_unidentifiable_is_unknown(self):
        assert self.classifier.classify(leaf(issuer_org="kowsar")) is ProxyCategory.UNKNOWN
        assert (
            self.classifier.classify(leaf(issuer_org="zx81-gateway"))
            is ProxyCategory.UNKNOWN
        )

    def test_display_issuer(self):
        assert self.classifier.display_issuer(leaf(issuer_org=None)) == "Null"
        assert self.classifier.display_issuer(leaf(issuer_org="")) == "Null"
        assert self.classifier.display_issuer(leaf(issuer_org="ESET spol. s r. o.")) == (
            "ESET spol. s r. o."
        )


@pytest.fixture()
def small_db():
    db = ReportDatabase()
    db.add_mismatch(record(leaf(), country="US", ip="11.0.0.1"))
    db.add_mismatch(record(leaf(), country="US", ip="11.0.0.2"))
    db.add_mismatch(record(leaf(issuer_org="Sendori Inc"), country="BR", ip="11.1.0.1"))
    db.add_matched_bulk("US", "Authors'", "site.example", 996)
    db.add_matched_bulk("BR", "Authors'", "site.example", 499)
    return db


class TestTables:
    def test_country_breakdown(self, small_db):
        breakdown = country_breakdown(small_db, top_n=1)
        assert breakdown.rows[0].country == "US"
        assert breakdown.rows[0].proxied == 2
        assert breakdown.rows[0].total == 998
        assert breakdown.other.proxied == 1
        assert breakdown.total.total == 1498
        assert breakdown.total.percent == pytest.approx(0.2, rel=0.01)

    def test_country_breakdown_order_by_total(self, small_db):
        small_db.add_matched_bulk("CN", "Authors'", "site.example", 5000)
        breakdown = country_breakdown(small_db, top_n=2, order_by="total")
        assert breakdown.rows[0].country == "CN"
        assert breakdown.rows[0].proxied == 0

    def test_bad_order_by(self, small_db):
        with pytest.raises(ValueError):
            country_breakdown(small_db, order_by="rank")

    def test_issuer_table(self, small_db):
        rows, other = issuer_organization_table(small_db, top_n=1)
        assert rows[0].issuer_organization == "Bitdefender"
        assert rows[0].connections == 2
        assert other.connections == 1

    def test_classification_table(self, small_db):
        rows = {r.category: r for r in classification_table(small_db)}
        assert rows[ProxyCategory.BUSINESS_PERSONAL_FIREWALL].connections == 2
        assert rows[ProxyCategory.MALWARE].connections == 1
        assert rows[ProxyCategory.MALWARE].percent == pytest.approx(33.33, rel=0.01)
        assert rows[ProxyCategory.TELECOM].connections == 0

    def test_host_type_table(self, small_db):
        rows = {r.host_type: r for r in host_type_table(small_db)}
        assert rows["Authors'"].connections == 1498
        assert rows["Authors'"].proxied == 3

    def test_heatmap_series(self, small_db):
        series = heatmap_series(small_db)
        assert series["US"] == pytest.approx(2 / 998)
        assert series["BR"] == pytest.approx(1 / 500)


class TestNegligence:
    def test_key_downgrades_counted(self):
        db = ReportDatabase()
        db.add_mismatch(record(leaf(key_bits=1024)))
        db.add_mismatch(record(leaf(key_bits=512)))
        db.add_mismatch(record(leaf(key_bits=2048)))
        db.add_mismatch(record(leaf(key_bits=2432)))
        report = analyze_negligence(db)
        assert report.downgraded == 2
        assert report.downgraded_1024 == 1
        assert report.downgraded_512 == 1
        assert report.upgraded == 1
        assert report.key_size_histogram == {512: 1, 1024: 1, 2048: 1, 2432: 1}

    def test_md5_and_sha256_counted(self):
        db = ReportDatabase()
        db.add_mismatch(record(leaf(sig="md5WithRSAEncryption", key_bits=512)))
        db.add_mismatch(record(leaf(sig="sha256WithRSAEncryption")))
        report = analyze_negligence(db)
        assert report.md5_signed == 1
        assert report.md5_and_512 == 1
        assert report.sha256_signed == 1

    def test_false_ca_claim_detected(self):
        db = ReportDatabase()
        db.add_mismatch(record(leaf(issuer_org="DigiCert Inc"), chain_valid=False))
        report = analyze_negligence(db)
        assert report.false_ca_claims == 1
        assert report.false_ca_organizations["DigiCert Inc"] == 1

    def test_genuine_ca_chain_not_flagged(self):
        db = ReportDatabase()
        db.add_mismatch(record(leaf(issuer_org="DigiCert Inc"), chain_valid=True))
        assert analyze_negligence(db).false_ca_claims == 0

    def test_subject_mismatch_and_wildcard(self):
        db = ReportDatabase()
        db.add_mismatch(
            record(leaf(subject_cn="203.0.113.*", dns=("203.0.113.*",)))
        )
        db.add_mismatch(
            record(leaf(subject_cn="mail.google.com", dns=("mail.google.com",)))
        )
        db.add_mismatch(record(leaf()))  # subject matches
        report = analyze_negligence(db)
        assert report.subject_mismatches == 2
        assert report.wildcard_subnet_subjects == 1
        assert report.wrong_domain_subjects["mail.google.com"] == 1

    def test_shared_key_requires_total_reuse(self):
        db = ReportDatabase()
        # Five IopFail-style records: one key everywhere.
        for i in range(5):
            db.add_mismatch(
                record(
                    leaf(
                        issuer_org=None,
                        issuer_cn="IopFailZeroAccessCreate",
                        key_bits=512,
                        key_fp="shared",
                    ),
                    ip=f"11.0.0.{i}",
                )
            )
        # Five Bitdefender records with rotating keys.
        for i in range(5):
            db.add_mismatch(
                record(leaf(key_fp=f"rotating-{i % 2}"), ip=f"11.2.0.{i}")
            )
        report = analyze_negligence(db, shared_key_min_connections=5)
        assert len(report.shared_key_groups) == 1
        group = report.shared_key_groups[0]
        assert group.issuer == "IopFailZeroAccessCreate"
        assert group.key_bits == 512
        assert group.distinct_ips == 5

    def test_single_install_not_flagged(self):
        db = ReportDatabase()
        for _ in range(6):  # same IP probing repeatedly
            db.add_mismatch(record(leaf(key_fp="one"), ip="11.0.0.9"))
        assert analyze_negligence(db).shared_key_groups == []


class TestMalwareAndOddities:
    def test_census_counts_families(self):
        db = ReportDatabase()
        for i in range(3):
            db.add_mismatch(
                record(leaf(issuer_org="Sendori Inc"), ip=f"11.0.{i}.1", country="US")
            )
        db.add_mismatch(
            record(leaf(issuer_org="Superfish, Inc."), ip="11.3.0.1", country="BR")
        )
        db.add_mismatch(record(leaf()))  # benign firewall, not malware
        census = malware_census(db)
        assert census.family_count == 2
        assert census.total_connections == 4
        assert census.family("Sendori Inc").connections == 3
        assert census.family("Sendori Inc").distinct_ips == 3

    def test_census_uses_cn_for_orgless_families(self):
        db = ReportDatabase()
        db.add_mismatch(
            record(leaf(issuer_org=None, issuer_cn="IopFailZeroAccessCreate"))
        )
        census = malware_census(db)
        assert census.family("IopFailZeroAccessCreate") is not None

    def test_single_egress_oddity(self):
        db = ReportDatabase()
        for i in range(25):
            db.add_mismatch(
                record(leaf(issuer_org="DSP"), ip="11.9.0.1", country="IE")
            )
        oddities = ip_dispersion_oddities(db, min_connections=20)
        assert oddities[0].issuer == "DSP"
        assert oddities[0].pattern == "single-egress"

    def test_wide_dispersion_oddity(self):
        db = ReportDatabase()
        countries = ["US", "BR", "FR", "DE", "TR", "IN"]
        for i in range(30):
            db.add_mismatch(
                record(
                    leaf(issuer_org="kowsar"),
                    ip=f"11.8.{i}.1",
                    country=countries[i % len(countries)],
                )
            )
        oddities = ip_dispersion_oddities(db, min_connections=20)
        assert oddities[0].issuer == "kowsar"
        assert oddities[0].pattern == "wide-dispersion"

    def test_identified_categories_excluded(self):
        db = ReportDatabase()
        for i in range(30):
            db.add_mismatch(record(leaf(), ip=f"11.7.{i}.1"))
        assert ip_dispersion_oddities(db) == []


class TestRendering:
    def test_country_table_renders(self, small_db):
        text = render_country_table(country_breakdown(small_db, top_n=5))
        assert "US" in text
        assert "Total" in text
        assert "0.20%" in text

    def test_issuer_table_renders(self, small_db):
        rows, other = issuer_organization_table(small_db, top_n=5)
        text = render_issuer_table(rows, other)
        assert "Bitdefender" in text

    def test_classification_renders(self, small_db):
        text = render_classification_table(classification_table(small_db))
        assert "Business/Personal Firewall" in text
        assert "Malware" in text

    def test_host_type_renders(self, small_db):
        text = render_host_type_table(host_type_table(small_db))
        assert "Authors'" in text

    def test_heatmap_renders(self, small_db):
        text = render_heatmap(heatmap_series(small_db))
        assert "US" in text
        assert "scale" in text

    def test_heat_char_monotone(self):
        chars = [heat_char(rate) for rate in (0.0, 0.01, 0.05, 0.12, 0.5)]
        assert chars[0] == " "
        assert chars[-1] == "@"
