"""Failure injection: byte-level adversity on every wire protocol.

The measurement pipeline must degrade into counted failures, never
crashes or silent corruption — a tool deployed to millions of clients
meets every malformed stack eventually.
"""

import pytest

from repro.asn1.der import Asn1Error
from repro.asn1.types import decode
from repro.httpmin import HttpClient, HttpResponse, HttpServer
from repro.measure.server import CombinedPolicyHttpServer
from repro.netsim import ConnectionReset, Network, Protocol
from repro.policy.model import PolicyFile
from repro.policy.server import POLICY_REQUEST, fetch_policy
from repro.tls import codec
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import X509Error, parse_certificate
from repro.x509.model import SubjectPublicKeyInfo
from repro.x509 import Name


@pytest.fixture()
def site_chain(intermediate_ca, keystore):
    key = keystore.key("failure-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="flaky.example"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["flaky.example"],
    )
    return [leaf, intermediate_ca.certificate]


class TestTruncatedDer:
    def test_every_prefix_fails_cleanly(self, site_chain):
        der = site_chain[0].encode()
        for cut in range(0, len(der), 37):
            prefix = der[:cut]
            if not prefix or len(prefix) == len(der):
                continue
            with pytest.raises((X509Error, Asn1Error)):
                parse_certificate(prefix)

    def test_bitflips_fail_or_parse(self, site_chain):
        """A corrupted certificate either raises X509Error or parses to
        something different — it must never parse back to the original."""
        der = bytearray(site_chain[0].encode())
        original_fingerprint = site_chain[0].fingerprint()
        for position in range(5, len(der), 83):
            corrupted = bytearray(der)
            corrupted[position] ^= 0xFF
            try:
                parsed = parse_certificate(bytes(corrupted))
            except (X509Error, Asn1Error):
                continue
            assert parsed.fingerprint() != original_fingerprint

    def test_decode_arbitrary_junk(self):
        for junk in (b"\x00", b"\xff" * 10, b"\x30\x84\xff\xff\xff\xff"):
            with pytest.raises(Asn1Error):
                decode(junk)


class BrokenServer(Protocol):
    """Sends garbage instead of TLS."""

    def data_received(self, sock, data):
        sock.send(b"\x16\x03\x01\x00\x05GARBAGE-NOT-A-RECORD")


class HalfRecordServer(Protocol):
    """Sends a truncated record then closes."""

    def data_received(self, sock, data):
        record = codec.Record(codec.CONTENT_HANDSHAKE, (3, 1), b"x" * 100).encode()
        sock.send(record[:20])
        sock.close()


class ResetServer(Protocol):
    """Closes the moment a connection opens."""

    def connection_made(self, sock):
        sock.close()


class TestProbeResilience:
    def build(self, protocol_factory):
        net = Network()
        client = net.add_host("client.example")
        server = net.add_host("flaky.example")
        server.listen(443, protocol_factory)
        return ProbeClient(client)

    def test_garbage_tls_reported_as_error(self):
        probe = self.build(BrokenServer)
        result = probe.probe("flaky.example", 443)
        assert not result.ok
        assert result.error

    def test_half_record_no_certificate(self):
        probe = self.build(HalfRecordServer)
        result = probe.probe("flaky.example", 443)
        assert not result.ok
        assert "no Certificate" in result.error

    def test_immediate_reset(self):
        probe = self.build(ResetServer)
        result = probe.probe("flaky.example", 443)
        assert not result.ok

    def test_server_sends_corrupt_certificate(self, site_chain):
        corrupt = bytearray(site_chain[0].encode())
        corrupt[len(corrupt) // 2] ^= 0x01

        class CorruptCertServer(TlsCertServer):
            def chain_for(self, server_name):
                return self.chain

        # Build a server whose Certificate message carries corrupt DER.
        net = Network()
        client = net.add_host("client.example")
        server_host = net.add_host("flaky.example")

        class RawServer(Protocol):
            def data_received(self, sock, data):
                hello = codec.ServerHello(
                    server_random=bytes(32), cipher_suite=0x2F
                )
                cert = codec.Certificate((bytes(corrupt),))
                payload = (
                    hello.to_handshake().encode() + cert.to_handshake().encode()
                )
                sock.send(
                    codec.Record(codec.CONTENT_HANDSHAKE, (3, 1), payload).encode()
                )

        server_host.listen(443, RawServer)
        result = ProbeClient(client).probe("flaky.example", 443)
        # Either parses differently or errors — never crashes.
        assert result.error.startswith("x509") or result.ok is False or result.ok


class TestPolicyResilience:
    def test_policy_server_receiving_tls_hangs_up(self):
        net = Network()
        client = net.add_host("client.example")
        from repro.policy.server import PolicyServer

        host = net.add_host("site.example")
        host.listen(843, PolicyServer(PolicyFile.permissive()).factory)
        sock = client.connect("site.example", 843)
        hello = codec.ClientHello(client_random=bytes(32))
        sock.send(codec.encode_handshake_record(hello))
        assert sock.closed or sock.recv() == b""

    def test_combined_server_single_byte_delivery(self):
        """The port-80 protocol sniffer must survive byte-at-a-time data."""
        net = Network()
        client = net.add_host("client.example")
        host = net.add_host("site.example")
        http = HttpServer()
        http.route("GET", "/", lambda req, remote: HttpResponse(200, body=b"hi"))
        combined = CombinedPolicyHttpServer(PolicyFile.permissive("443"), http)
        host.listen(80, combined.factory)

        sock = client.connect("site.example", 80)
        for byte in POLICY_REQUEST:
            sock.send(bytes([byte]))
            if sock.closed:
                break
        data = sock.recv()
        assert b"cross-domain-policy" in data

    def test_combined_server_http_one_byte_at_a_time(self):
        net = Network()
        client = net.add_host("client.example")
        host = net.add_host("site.example")
        http = HttpServer()
        http.route("GET", "/", lambda req, remote: HttpResponse(200, body=b"hi"))
        combined = CombinedPolicyHttpServer(PolicyFile.permissive("443"), http)
        host.listen(80, combined.factory)

        sock = client.connect("site.example", 80)
        request = b"GET / HTTP/1.1\r\nHost: site.example\r\n\r\n"
        buffered = b""
        for byte in request:
            try:
                sock.send(bytes([byte]))
            except ConnectionReset:
                break
            buffered += sock.recv()
        response, _ = HttpResponse.try_decode(buffered)
        assert response is not None and response.ok

    def test_fetch_policy_from_http_only_server(self):
        """Asking an HTTP server for a policy yields a PolicyError, not a hang."""
        from repro.policy.model import PolicyError

        net = Network()
        client = net.add_host("client.example")
        host = net.add_host("site.example")
        http = HttpServer()
        host.listen(80, http.factory)
        with pytest.raises((PolicyError, ConnectionReset)):
            fetch_policy(client, "site.example", port=80)


class TestHttpResilience:
    def test_oversized_content_length_stalls_not_crashes(self):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("www.example")
        server = HttpServer()
        server.route("GET", "/", lambda req, remote: HttpResponse(200))
        server_host.listen(80, server.factory)
        sock = client_host.connect("www.example", 80)
        sock.send(b"GET / HTTP/1.1\r\nContent-Length: 99999\r\n\r\nshort")
        # Server waits for the rest of the body: no response, no crash.
        assert sock.recv() == b""
        assert not sock.closed

    def test_client_raises_on_empty_response(self, site_chain):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("www.example")

        class Mute(Protocol):
            def data_received(self, sock, data):
                pass  # never answer

        server_host.listen(80, Mute)
        from repro.httpmin.codec import HttpError

        with pytest.raises(HttpError):
            HttpClient(client_host).get("www.example", "/")
