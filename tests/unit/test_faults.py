"""Unit tests for the chaos layer: plans, backoff, gates, relay, hooks.

Everything in ``repro.faults`` is a pure function of the plan seed and
site coordinates, so these tests pin exact deterministic behaviour —
same plan, same decisions, for any worker count or replay.
"""

import pytest

from repro.faults.chaos import _ChaosWorld
from repro.faults.plan import (
    CRASH_POINTS,
    Backoff,
    FaultPlan,
    FaultPlanError,
)
from repro.faults.recovery import CrashSchedule, FaultGate
from repro.faults.wire import server_fault_hook
from repro.httpmin.client import HttpClient
from repro.httpmin.codec import HttpRequest
from repro.measure.database import ReportDatabase
from repro.measure.server import ReportingServer
from repro.measure.store import InjectedCrash
from repro.measure.tool import MeasurementTool, SessionOutcome
from repro.netsim.events import drive
from repro.netsim.loop import CooperativeLoop
from repro.netsim.network import Network
from repro.obs.metrics import MetricsRegistry
from repro.x509.model import Name, SubjectPublicKeyInfo
from repro.x509.pem import pem_encode


class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "reset=0.25, 429=0.1, crash-rotate=3, seed=7, retries=5, "
            "deadline=99, tear=0, segment-bytes=512, batch-rows=8"
        )
        assert plan.seed == 7
        assert plan.rates == {"reset": 0.25, "429": 0.1}
        assert plan.crash_every == {"rotate": 3}
        assert plan.retries == 5
        assert plan.deadline == 99
        assert plan.tear is False
        assert plan.segment_bytes == 512
        assert plan.batch_rows == 8

    def test_seed_argument_is_overridable_by_rule(self):
        assert FaultPlan.parse("reset=0.1", seed=9).seed == 9
        assert FaultPlan.parse("reset=0.1,seed=3", seed=9).seed == 3

    @pytest.mark.parametrize(
        "text",
        [
            "reset",  # not key=value
            "reset=1.5",  # rate out of range
            "reset=-0.1",
            "crash-nowhere=1",  # unknown crash point
            "crash-flush=0",  # cadence must be >= 1
            "frobnicate=0.5",  # unknown kind
            "reset=abc",  # unparsable number
        ],
    )
    def test_bad_rules_raise(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_fires_is_deterministic_and_rate_bounded(self):
        plan = FaultPlan.parse("reset=0.3", seed=11)
        decisions = [plan.fires("reset", "wire", "h", 80, i) for i in range(400)]
        again = [plan.fires("reset", "wire", "h", 80, i) for i in range(400)]
        assert decisions == again
        hits = sum(decisions)
        assert 0.15 < hits / 400 < 0.45  # roughly the configured rate
        assert not any(plan.fires("truncate", "wire", "h", 80, i) for i in range(50))

    def test_rate_zero_and_one_are_absolute(self):
        never = FaultPlan.parse("reset=0")
        always = FaultPlan.parse("reset=1")
        assert not any(never.fires("reset", i) for i in range(50))
        assert all(always.fires("reset", i) for i in range(50))

    def test_stall_ticks_zero_without_rate(self):
        assert FaultPlan.parse("reset=0.5").stall_ticks("ingest", 1) == 0
        stalls = [
            FaultPlan.parse("stall=1").stall_ticks("ingest", i) for i in range(20)
        ]
        assert all(1 <= s <= 8 for s in stalls)

    def test_describe_round_trips(self):
        plan = FaultPlan.parse("reset=0.05,crash-flush=2", seed=3)
        assert FaultPlan.parse(plan.describe()).describe() == plan.describe()


class TestBackoff:
    def test_delay_window_and_determinism(self):
        backoff = Backoff(seed=5, base=1, cap=64)
        for attempt in range(10):
            delay = backoff.delay(attempt, "leg", "site")
            assert 1 <= delay <= min(64, 1 << attempt)
            assert delay == backoff.delay(attempt, "leg", "site")

    def test_retry_after_is_a_floor(self):
        backoff = Backoff(seed=5)
        assert backoff.delay(0, "x", retry_after=9) >= 9

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Backoff(base=0)
        with pytest.raises(ValueError):
            Backoff(base=8, cap=4)


class TestCrashSchedule:
    def test_fires_every_nth_and_skips_once_after(self):
        plan = FaultPlan.parse("crash-flush=1")
        schedule = CrashSchedule(plan, MetricsRegistry())
        fired = []
        for _ in range(6):
            try:
                schedule("flush")
                fired.append(False)
            except InjectedCrash as exc:
                assert exc.point == "flush"
                fired.append(True)
        # Cadence 1 with skip-once alternates: recovery always gets one
        # clean occurrence to make progress through.
        assert fired == [True, False, True, False, True, False]
        assert schedule.fired["flush"] == 3

    def test_unscheduled_points_never_fire(self):
        schedule = CrashSchedule(FaultPlan.parse("crash-flush=2"))
        for _ in range(10):
            schedule("rotate")
            schedule("seal")

    def test_counts_metric_per_point(self):
        registry = MetricsRegistry()
        schedule = CrashSchedule(FaultPlan.parse("crash-seal=2"), registry)
        for _ in range(4):
            try:
                schedule("seal")
            except InjectedCrash:
                pass
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["faults.injected{kind=crash-seal}"] == schedule.fired["seal"]


class TestFaultGate:
    def test_drop_set_is_deterministic(self):
        registry = MetricsRegistry()
        gate = FaultGate(FaultPlan.parse("drop=0.2", seed=4), registry)
        verdicts = [gate.attempt(i) for i in range(100)]
        other = FaultGate(FaultPlan.parse("drop=0.2", seed=4))
        assert verdicts == [other.attempt(i) for i in range(100)]
        assert len(gate.dropped) == verdicts.count(False)
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["faults.dropped{kind=drop}"] == len(gate.dropped)

    def test_replay_reuses_cached_verdicts_without_recounting(self):
        registry = MetricsRegistry()
        gate = FaultGate(FaultPlan.parse("reset=0.4,drop=0.2", seed=4), registry)
        first = [gate.attempt(i) for i in range(50)]
        snapshot = registry.deterministic_snapshot()
        # A crash-recovery replay walks the same ordinals again: same
        # verdicts, and the injection counters must not move.
        assert [gate.attempt(i) for i in range(50)] == first
        assert registry.deterministic_snapshot() == snapshot

    def test_transient_exhaustion_becomes_a_drop(self):
        # rate 1.0 means every retry attempt refires: the budget runs
        # out and the op is dropped rather than retried forever.
        gate = FaultGate(FaultPlan.parse("reset=1,retries=3"))
        assert gate.attempt(0) is False
        assert 0 in gate.dropped
        assert gate.retries == 3


class TestServerFaultHook:
    def _request(self):
        return HttpRequest("POST", "/report", headers={}, body=b"x")

    def test_injects_before_handler_and_counts(self):
        registry = MetricsRegistry()
        hook = server_fault_hook(FaultPlan.parse("server-5xx=1"), registry)
        response = hook(self._request(), None)
        assert response.status == 500
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["faults.injected{kind=server-5xx}"] == 1

    def test_slow_and_429_carry_retry_after(self):
        slow = server_fault_hook(FaultPlan.parse("server-slow=1"))(
            self._request(), None
        )
        assert slow.status == 503
        assert 1 <= int(slow.headers["Retry-After"]) <= 4
        limited = server_fault_hook(FaultPlan.parse("429=1"))(self._request(), None)
        assert limited.status == 429
        assert limited.headers["Retry-After"] == "1"

    def test_quiet_plan_passes_through(self):
        hook = server_fault_hook(FaultPlan.parse("server-5xx=0"))
        assert hook(self._request(), None) is None


class TestCooperativeLoopIsolation:
    def test_task_exception_is_counted_not_fatal(self):
        loop = CooperativeLoop(max_active=4)
        progress = []

        def broken():
            yield
            raise RuntimeError("task blew up")

        def healthy():
            for i in range(3):
                progress.append(i)
                yield

        loop.spawn(broken)
        loop.spawn(healthy)
        loop.run()
        assert loop.task_failures == 1
        assert progress == [0, 1, 2]

    def test_on_task_error_callback_and_cleanup(self):
        seen = []
        loop = CooperativeLoop(
            max_active=4, on_task_error=lambda task, exc: seen.append(str(exc))
        )
        closed = []

        class Task:
            def __iter__(self):
                return self

            def __next__(self):
                raise ValueError("boom")

            def close(self):
                closed.append(True)

        loop.spawn(Task)
        loop.run()
        assert seen == ["boom"]
        assert closed == [True]
        assert loop.task_failures == 1


@pytest.fixture()
def report_world(keystore, intermediate_ca):
    """A reporting server plus a valid PEM report body."""
    key = keystore.key("faults-origin", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="origin.chaos"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["origin.chaos"],
    )
    chain = [leaf, intermediate_ca.certificate]
    body = "".join(pem_encode(c.encode()) for c in chain).encode()
    registry = MetricsRegistry()
    database = ReportDatabase()
    server = ReportingServer(database, None, study=1, registry=registry)
    server.expect("origin.chaos", leaf.fingerprint(), "Popular")
    network = Network()
    network.add_host("tlsresearch.byu.edu").listen(80, server.http.factory)
    client = network.add_host("client.chaos", ip="10.1.2.3")
    return server, database, client, body, registry


class TestToolSubmitRetries:
    HEADERS = {
        "X-Probed-Host": "origin.chaos",
        "Content-Type": "application/x-pem-file",
    }

    def test_rides_through_injected_5xx_and_429(self, report_world):
        server, database, client, body, registry = report_world
        server.fault_hook = server_fault_hook(
            FaultPlan.parse("server-5xx=0.5,429=0.3", seed=2), registry
        )
        tool = MeasurementTool(registry=registry, report_retry_limit=8)
        http = HttpClient(client)
        delivered = 0
        for _ in range(12):
            outcome = SessionOutcome()
            drive(
                tool._submit_report(
                    http, "origin.chaos", body, dict(self.HEADERS), outcome
                )
            )
            delivered += outcome.reports_delivered
            assert outcome.reports_delivered + outcome.report_failed == 1
        assert delivered == 12  # every injected error was retried through
        assert database.total_measurements == 12
        counters = registry.deterministic_snapshot()["counters"]
        assert counters.get("tool.report_retries{leg=report}", 0) > 0

    def test_retry_after_floors_the_backoff_delay(self, report_world):
        server, _database, client, body, _registry = report_world

        calls = []

        def always_503(request, remote):
            calls.append(1)
            from repro.httpmin.codec import HttpResponse

            return HttpResponse(503, headers={"Retry-After": "40"}, body=b"later")

        server.fault_hook = always_503
        tool = MeasurementTool(report_retry_limit=8, session_deadline_ticks=100)
        outcome = SessionOutcome()
        drive(
            tool._submit_report(
                HttpClient(client), "origin.chaos", body, dict(self.HEADERS), outcome
            )
        )
        # Every wait is >= the served Retry-After (40), so the 100-tick
        # deadline admits exactly two waits before the session gives up.
        assert outcome.report_failed == 1
        assert outcome.report_retries == 2
        assert outcome.deadline_exhausted == 1
        assert 80 <= outcome.backoff_ticks <= 100

    def test_permanent_4xx_fails_without_retry(self, report_world):
        _server, database, client, body, _registry = report_world
        tool = MeasurementTool(report_retry_limit=8)
        outcome = SessionOutcome()
        headers = dict(self.HEADERS, **{"X-Probed-Host": "unknown.example"})
        drive(tool._submit_report(HttpClient(client), "x", body, headers, outcome))
        assert outcome.report_failed == 1
        assert outcome.report_retries == 0
        assert database.total_measurements == 0


class TestWireDrillsViaChaosWorld:
    """End-to-end relay drills using the chaos world builder."""

    def test_recoverable_kinds_preserve_the_signature(self, tmp_path):
        world = _ChaosWorld(3)
        registry = MetricsRegistry()
        world.run_ingest(tmp_path / "ref", registry, None, 24)
        from repro.measure.store import scan_store

        reference = scan_store(tmp_path / "ref").aggregate_signature()
        for rules in ("connect-refused=0.4", "reset=0.4", "server-slow=0.4"):
            plan = FaultPlan.parse(rules, seed=3)
            drill = MetricsRegistry()
            name = rules.split("=")[0]
            stats = world.run_ingest(tmp_path / name, drill, plan, 24)
            assert stats["submitted"] == stats["delivered"] + stats["failed"]
            assert stats["failed"] == 0
            counters = drill.deterministic_snapshot()["counters"]
            assert counters[f"faults.injected{{kind={name}}}"] > 0
            assert scan_store(tmp_path / name).aggregate_signature() == reference

    def test_corrupt_losses_are_exactly_accounted(self, tmp_path):
        world = _ChaosWorld(3)
        registry = MetricsRegistry()
        plan = FaultPlan.parse("corrupt=0.5", seed=3)
        stats = world.run_ingest(tmp_path / "corrupt", registry, plan, 24)
        assert stats["submitted"] == 24
        assert stats["submitted"] == stats["delivered"] + stats["failed"]
        assert stats["failed"] > 0  # the drill actually bit
