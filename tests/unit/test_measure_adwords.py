"""Unit tests for measurement records/database/server/tool and AdWords."""

import random

import pytest

from repro.adwords import AdCampaign, run_study2_campaigns
from repro.data.countries import STUDY2_CAMPAIGNS
from repro.data.sites import ProbeSite
from repro.httpmin.client import HttpClient
from repro.measure import (
    CertSummary,
    MeasurementRecord,
    MeasurementTool,
    ReportDatabase,
    ReportingServer,
)
from repro.measure.server import CombinedPolicyHttpServer
from repro.netsim import Network
from repro.policy.model import PolicyFile
from repro.policy.server import PolicyServer, fetch_policy
from repro.tls.server import TlsCertServer
from repro.x509 import Name
from repro.x509.model import SubjectPublicKeyInfo


@pytest.fixture(scope="module")
def origin_chain(intermediate_ca, keystore):
    key = keystore.key("measure-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="tlsresearch.byu.edu", organization="BYU"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["tlsresearch.byu.edu"],
    )
    return [leaf, intermediate_ca.certificate]


def summary_from(chain):
    return CertSummary.from_certificate(chain[0])


class TestCertSummary:
    def test_fields_extracted(self, origin_chain):
        summary = summary_from(origin_chain)
        assert summary.subject_cn == "tlsresearch.byu.edu"
        assert summary.issuer_org == "Repro Trust"
        assert summary.key_bits == 512
        assert summary.signature_algorithm == "sha256WithRSAEncryption"
        assert summary.matches_hostname("tlsresearch.byu.edu")
        assert not summary.matches_hostname("evil.example")

    def test_key_fingerprint_tracks_key(self, origin_chain, root_ca, keystore):
        key = keystore.key("measure-site", 512)  # same pooled key
        other = root_ca.issue(
            Name.build(common_name="other.example"),
            SubjectPublicKeyInfo(key.n, key.e),
        )
        assert (
            summary_from(origin_chain).public_key_fingerprint
            == CertSummary.from_certificate(other).public_key_fingerprint
        )


def make_record(mismatch=True, country="US", ip="11.0.0.1", host="h", htype="Authors'"):
    leaf = CertSummary(
        subject_cn=host,
        subject_org=None,
        issuer_cn="CA",
        issuer_org="Org",
        issuer_ou=None,
        serial_number=1,
        key_bits=1024,
        signature_algorithm="sha1WithRSAEncryption",
        fingerprint="f" * 64,
        public_key_fingerprint="k" * 64,
    )
    return MeasurementRecord(
        study=1,
        campaign="test",
        client_ip=ip,
        country=country,
        hostname=host,
        host_type=htype,
        mismatch=mismatch,
        leaf=leaf,
    )


class TestReportDatabase:
    def test_totals(self):
        db = ReportDatabase()
        db.add_mismatch(make_record())
        db.add_matched_bulk("US", "Authors'", "h", 99)
        assert db.total_measurements == 100
        assert db.proxied_rate == pytest.approx(0.01)

    def test_type_guards(self):
        db = ReportDatabase()
        with pytest.raises(ValueError):
            db.add_mismatch(make_record(mismatch=False))
        with pytest.raises(ValueError):
            db.add_matched(make_record(mismatch=True))
        with pytest.raises(ValueError):
            db.add_matched_bulk("US", "t", "h", -1)

    def test_totals_by_country(self):
        db = ReportDatabase()
        db.add_mismatch(make_record(country="US"))
        db.add_mismatch(make_record(country="BR", ip="11.0.0.2"))
        db.add_matched_bulk("US", "Authors'", "h", 10)
        totals = db.totals_by_country()
        assert totals["US"] == (1, 11)
        assert totals["BR"] == (1, 1)

    def test_totals_by_host_type(self):
        db = ReportDatabase()
        db.add_mismatch(make_record(htype="Popular"))
        db.add_matched_bulk("US", "Popular", "h", 4)
        db.add_matched_bulk("US", "Business", "b", 5)
        totals = db.totals_by_host_type()
        assert totals["Popular"] == (1, 5)
        assert totals["Business"] == (0, 5)

    def test_distinct_ips(self):
        db = ReportDatabase()
        db.add_mismatch(make_record(ip="11.0.0.1"))
        db.add_mismatch(make_record(ip="11.0.0.1"))
        db.add_mismatch(make_record(ip="11.0.0.2"))
        assert db.distinct_proxied_ips() == 2

    def test_matched_sample_bounded(self):
        db = ReportDatabase(matched_sample_limit=3)
        for _ in range(10):
            db.add_matched(make_record(mismatch=False))
        assert len(db.matched_samples) == 3
        assert db.matched_count == 10

    def test_merge(self):
        a, b = ReportDatabase(), ReportDatabase()
        a.add_mismatch(make_record())
        b.add_matched_bulk("US", "Authors'", "h", 5)
        b.failures.policy_denied = 2
        a.merge(b)
        assert a.total_measurements == 6
        assert a.failures.policy_denied == 2

    def test_matched_sample_is_not_first_n(self):
        """The reservoir replaces early records — no head-of-stream bias."""
        db = ReportDatabase(matched_sample_limit=5, sample_seed=0)
        for i in range(500):
            db.add_matched(make_record(mismatch=False, ip=f"11.0.{i // 250}.{i % 250}"))
        sampled = {record.client_ip for record in db.matched_samples}
        first_five = {f"11.0.0.{i}" for i in range(5)}
        assert len(db.matched_samples) == 5
        assert sampled != first_five

    def test_matched_sample_deterministic_for_seed(self):
        def build(seed):
            db = ReportDatabase(matched_sample_limit=4, sample_seed=seed)
            for i in range(300):
                db.add_matched(make_record(mismatch=False, ip=f"11.1.{i // 250}.{i % 250}"))
            return [record.client_ip for record in db.matched_samples]

        assert build(7) == build(7)
        assert build(7) != build(8)

    def test_merge_reservoir_draws_from_both_shards(self):
        a = ReportDatabase(matched_sample_limit=10, sample_seed=0)
        b = ReportDatabase(matched_sample_limit=10, sample_seed=0)
        for i in range(100):
            a.add_matched(make_record(mismatch=False, ip=f"10.0.0.{i}"))
            b.add_matched(make_record(mismatch=False, ip=f"10.0.1.{i}"))
        a.merge(b)
        sampled = [record.client_ip for record in a.matched_samples]
        assert len(sampled) == 10
        assert any(ip.startswith("10.0.0.") for ip in sampled)
        assert any(ip.startswith("10.0.1.") for ip in sampled)

    def test_merge_reservoir_deterministic_for_order(self):
        def build():
            shards = []
            for s in range(3):
                db = ReportDatabase(matched_sample_limit=6, sample_seed=0)
                for i in range(50):
                    db.add_matched(
                        make_record(mismatch=False, ip=f"10.{s}.0.{i}")
                    )
                shards.append(db)
            parent = ReportDatabase(matched_sample_limit=6, sample_seed=0)
            for shard in shards:
                parent.merge(shard)
            return [record.client_ip for record in parent.matched_samples]

        assert build() == build()

    def test_breakdown_caches_match_recomputation(self):
        """Incremental caches agree with a from-scratch rebuild."""
        from collections import Counter

        db = ReportDatabase()
        for i in range(40):
            db.add_mismatch(
                make_record(country="US" if i % 3 else "BR", ip=f"12.0.0.{i % 7}")
            )
        db.add_matched_bulk("US", "Popular", "h", 11)
        db.add_matched_bulk("BR", "Business", "b", 5)
        expected_country: Counter = Counter()
        for record in db.records:
            expected_country[record.country] += 1
        totals = db.totals_by_country()
        assert totals["US"] == (expected_country["US"], expected_country["US"] + 11)
        assert totals["BR"] == (expected_country["BR"], expected_country["BR"] + 5)
        assert db.distinct_proxied_ips() == len({r.client_ip for r in db.records})


class MeasurementWorld:
    """Origin site + reporting server + a client, fully wired."""

    def __init__(self, origin_chain, root_ca):
        from repro.population.model import ClientPopulation
        from repro.x509.store import RootStore

        self.network = Network()
        self.database = ReportDatabase()
        self.site = ProbeSite("tlsresearch.byu.edu", "Authors'")

        origin = self.network.add_host("tlsresearch.byu.edu", ip="203.0.113.10")
        origin.listen(443, TlsCertServer(origin_chain).factory)

        self.server = ReportingServer(
            self.database,
            geoip=None,
            study=1,
            public_roots=RootStore([root_ca.certificate]),
        )
        self.server.expect(
            "tlsresearch.byu.edu", origin_chain[0].fingerprint(), "Authors'"
        )
        combined = CombinedPolicyHttpServer(
            PolicyFile.permissive("443"), self.server.http
        )
        origin.listen(80, combined.factory)
        self.client = self.network.add_host("client.example", ip="11.0.0.5")
        self.tool = MeasurementTool()


class TestMeasurementToolWire:
    def test_clean_session_records_match(self, origin_chain, root_ca):
        world = MeasurementWorld(origin_chain, root_ca)
        outcome = world.tool.run_session(world.client, [world.site])
        assert outcome.reports_delivered == 1
        assert world.database.matched_count == 1
        assert world.database.mismatch_count == 0
        record = world.database.matched_samples[0]
        assert record.chain_valid  # genuine chain validates publicly
        assert record.client_ip == "11.0.0.5"

    def test_policy_gate_blocks_unpolicied_host(self, origin_chain, root_ca):
        world = MeasurementWorld(origin_chain, root_ca)
        # A host with TLS but no policy file anywhere.
        bare = world.network.add_host("bare.example")
        bare.listen(443, TlsCertServer(origin_chain).factory)
        outcome = world.tool.run_session(
            world.client, [ProbeSite("bare.example", "Business")]
        )
        assert outcome.policy_denied == 1
        assert outcome.reports_delivered == 0

    def test_restrictive_policy_blocks(self, origin_chain, root_ca):
        world = MeasurementWorld(origin_chain, root_ca)
        locked = world.network.add_host("locked.example")
        locked.listen(443, TlsCertServer(origin_chain).factory)
        from repro.policy.model import PolicyRule

        restrictive = PolicyFile((PolicyRule(domain="partner.example", to_ports="443"),))
        locked.listen(843, PolicyServer(restrictive).factory)
        outcome = world.tool.run_session(
            world.client, [ProbeSite("locked.example", "Business")]
        )
        assert outcome.policy_denied == 1

    def test_report_rejected_for_unknown_host(self, origin_chain, root_ca):
        world = MeasurementWorld(origin_chain, root_ca)
        http = HttpClient(world.client)
        response = http.request(
            "POST",
            "tlsresearch.byu.edu",
            "/report",
            body=b"junk",
            headers={"X-Probed-Host": "never-registered.example"},
        )
        assert response.status == 400

    def test_report_rejects_garbage_pem(self, origin_chain, root_ca):
        world = MeasurementWorld(origin_chain, root_ca)
        http = HttpClient(world.client)
        response = http.request(
            "POST",
            "tlsresearch.byu.edu",
            "/report",
            body=b"-----BEGIN CERTIFICATE-----\n!!!\n-----END CERTIFICATE-----",
            headers={"X-Probed-Host": "tlsresearch.byu.edu"},
        )
        assert response.status == 400
        assert world.database.failures.report_failed == 1

    def test_combined_port_serves_policy_and_http(self, origin_chain, root_ca):
        world = MeasurementWorld(origin_chain, root_ca)
        policy = fetch_policy(world.client, "tlsresearch.byu.edu", port=80)
        assert policy.is_permissive_for_tls
        response = HttpClient(world.client).get("tlsresearch.byu.edu", "/ad")
        assert response.ok


class TestAdwords:
    def test_study2_campaign_totals_near_paper(self):
        rng = random.Random(1)
        outcomes = run_study2_campaigns(rng)
        by_name = {o.name: o for o in outcomes}
        for calibration in STUDY2_CAMPAIGNS:
            outcome = by_name[calibration.name]
            assert outcome.impressions == pytest.approx(
                calibration.impressions, rel=0.15
            )
            assert outcome.clicks == pytest.approx(calibration.clicks, rel=0.3)
            assert outcome.cost_usd == pytest.approx(calibration.cost_usd, rel=0.15)

    def test_study1_campaign_totals_near_paper(self):
        outcome = AdCampaign.study1().run(random.Random(2))
        assert outcome.impressions == pytest.approx(4634386, rel=0.15)
        assert outcome.cost_usd == pytest.approx(4911.97, rel=0.15)
        assert len(outcome.days) == 24

    def test_geo_target_carried(self):
        rng = random.Random(3)
        outcomes = run_study2_campaigns(rng)
        targets = {o.name: o.geo_target for o in outcomes}
        assert targets["China"] == "CN"
        assert targets["Global"] is None

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            AdCampaign.study1().run(random.Random(0), scale=0.0)

    def test_effective_cpm_sane(self):
        outcome = AdCampaign.study1().run(random.Random(4))
        assert 0.5 < outcome.effective_cpm < 2.0
