"""Unit tests for the TLS codec, server and probe."""

import random

import pytest

from repro.netsim import Network
from repro.tls import codec
from repro.tls.codec import (
    Alert,
    Certificate as CertificateMessage,
    ClientHello,
    HandshakeMessage,
    Record,
    ServerHello,
    TlsError,
)
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name
from repro.x509.model import SubjectPublicKeyInfo


@pytest.fixture(scope="module")
def site_chain(intermediate_ca, keystore):
    key = keystore.key("tls-site", 512)
    leaf = intermediate_ca.issue(
        Name.build(common_name="probe-target.example"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["probe-target.example"],
    )
    return [leaf, intermediate_ca.certificate]


def _rand32(seed=1):
    return random.Random(seed).getrandbits(256).to_bytes(32, "big")


class TestRecordCodec:
    def test_round_trip(self):
        record = Record(codec.CONTENT_HANDSHAKE, (3, 1), b"payload")
        records, rest = codec.decode_records(record.encode())
        assert rest == b""
        assert records == [record]

    def test_partial_record_buffered(self):
        record = Record(codec.CONTENT_HANDSHAKE, (3, 1), b"payload").encode()
        records, rest = codec.decode_records(record[:6])
        assert records == []
        assert rest == record[:6]

    def test_multiple_records(self):
        one = Record(codec.CONTENT_HANDSHAKE, (3, 1), b"a").encode()
        two = Record(codec.CONTENT_ALERT, (3, 1), b"\x02\x28").encode()
        records, rest = codec.decode_records(one + two)
        assert len(records) == 2
        assert rest == b""

    def test_unknown_content_type_rejected(self):
        with pytest.raises(TlsError):
            codec.decode_records(b"\x63\x03\x01\x00\x00")

    def test_oversize_payload_rejected(self):
        with pytest.raises(TlsError):
            Record(codec.CONTENT_HANDSHAKE, (3, 1), b"x" * 0x4001).encode()


class TestClientHello:
    def test_round_trip_with_sni(self):
        hello = ClientHello(client_random=_rand32(), server_name="qq.com")
        decoded = ClientHello.from_body(hello.to_handshake().body)
        assert decoded.server_name == "qq.com"
        assert decoded.client_random == hello.client_random
        assert decoded.cipher_suites == codec.DEFAULT_CIPHER_SUITES

    def test_round_trip_without_sni(self):
        hello = ClientHello(client_random=_rand32())
        decoded = ClientHello.from_body(hello.to_handshake().body)
        assert decoded.server_name is None

    def test_bad_random_length(self):
        with pytest.raises(TlsError):
            ClientHello(client_random=b"short")

    def test_truncated_body(self):
        hello = ClientHello(client_random=_rand32(), server_name="x.example")
        body = hello.to_handshake().body
        with pytest.raises(TlsError):
            ClientHello.from_body(body[:30])


class TestServerHelloAndCertificate:
    def test_server_hello_round_trip(self):
        hello = ServerHello(server_random=_rand32(2), cipher_suite=0x002F)
        decoded = ServerHello.from_body(hello.to_handshake().body)
        assert decoded == hello

    def test_server_hello_preserves_extensions_and_compression(self):
        """Regression: the old codec dropped the extensions block and
        hardcoded the null-compression byte on re-encode."""
        hello = ServerHello(
            server_random=_rand32(2),
            cipher_suite=0xC02F,
            session_id=b"\x07" * 16,
            compression_method=1,
            extensions=(
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
                (codec.EXT_SESSION_TICKET, b""),
                (0xABCD, b"unknown-type-body"),
            ),
        )
        body = hello.to_handshake().body
        decoded = ServerHello.from_body(body)
        assert decoded == hello
        assert decoded.to_handshake().body == body
        assert decoded.compression_method == 1
        assert decoded.extension_types == (
            codec.EXT_RENEGOTIATION_INFO,
            codec.EXT_SESSION_TICKET,
            0xABCD,
        )
        assert decoded.extension_body(0xABCD) == b"unknown-type-body"
        assert decoded.extension_body(codec.EXT_ALPN) is None

    def test_server_hello_none_vs_empty_extensions_distinct(self):
        bare = ServerHello(server_random=_rand32(2), cipher_suite=0x002F)
        empty = ServerHello(
            server_random=_rand32(2), cipher_suite=0x002F, extensions=()
        )
        assert len(empty.to_handshake().body) == len(bare.to_handshake().body) + 2
        assert ServerHello.from_body(bare.to_handshake().body).extensions is None
        assert ServerHello.from_body(empty.to_handshake().body).extensions == ()

    def test_from_body_parsers_reject_trailing_garbage(self):
        """Every handshake parser must assert reader exhaustion."""
        server = ServerHello(server_random=_rand32(2), cipher_suite=0x002F)
        with pytest.raises(TlsError):
            # One stray byte cannot even be an extensions-block length.
            ServerHello.from_body(server.to_handshake().body + b"\x00")
        client = ClientHello(client_random=_rand32(), server_name="x.example")
        with pytest.raises(TlsError):
            ClientHello.from_body(client.to_handshake().body + b"\x00\x00")
        message = CertificateMessage((b"\x01\x02\x03",))
        with pytest.raises(TlsError):
            CertificateMessage.from_body(message.to_handshake().body + b"\xff")

    def test_certificate_round_trip(self, site_chain):
        message = CertificateMessage(tuple(c.encode() for c in site_chain))
        decoded = CertificateMessage.from_body(message.to_handshake().body)
        assert decoded == message

    def test_empty_certificate_message(self):
        message = CertificateMessage(())
        decoded = CertificateMessage.from_body(message.to_handshake().body)
        assert decoded.der_chain == ()

    def test_handshake_framing_round_trip(self):
        message = HandshakeMessage(codec.HS_SERVER_HELLO_DONE, b"")
        messages, rest = codec.decode_handshakes(message.encode())
        assert messages == [message]
        assert rest == b""

    def test_alert_round_trip(self):
        alert = Alert(2, codec.ALERT_HANDSHAKE_FAILURE)
        records, _ = codec.decode_records(alert.encode_record())
        assert Alert.from_payload(records[0].payload) == alert


class TestVersionAwareRecords:
    def test_frozen_tls13_record_version_tolerated(self):
        """RFC 8446 §5.1 freezes the record-layer version at 0x0303
        (and allows 0x0304 on some stacks); neither is garbage."""
        for minor in (1, 3, 4):
            record = Record(codec.CONTENT_HANDSHAKE, (3, minor), b"payload")
            records, rest = codec.decode_records(record.encode())
            assert records == [record]
            assert rest == b""

    def test_implausible_record_version_rejected(self):
        """Random bytes that happen to carry a known content type must
        still be classified as garbage via the version sanity check."""
        for major, minor in ((4, 0), (3, 5), (9, 9), (0, 3)):
            data = bytes([codec.CONTENT_HANDSHAKE, major, minor, 0, 1, 0x41])
            with pytest.raises(TlsError):
                codec.decode_records(data)


class TestTls13Origin:
    def _rig(self, chain, max_version=codec.TLS_1_3):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("probe-target.example")
        server_host.listen(
            443, TlsCertServer(chain, max_version=max_version).factory
        )
        return net, client_host

    def test_origin_answers_modern_browser_expectation(self, site_chain):
        """The invariant the modern scorecard checks lean on: a genuine
        TLS 1.3 origin's answer to a 2020-era browser matches that
        profile's expected cipher, extension set and ALPN exactly."""
        from repro.tls.fingerprint import browser_profile

        net, client_host = self._rig(site_chain)
        browser = browser_profile("chrome-2020")
        result = ProbeClient(client_host, browser=browser).probe(
            "probe-target.example"
        )
        assert result.ok
        served = result.server_hello
        assert served.version == codec.TLS_1_2  # frozen legacy field
        assert served.selected_version == codec.TLS_1_3
        assert served.cipher_suite == browser.expected_server_cipher
        assert served.extension_types == browser.expected_server_extension_types
        assert served.alpn_protocol == browser.expected_alpn

    def test_legacy_client_gets_legacy_answer(self, site_chain):
        net, client_host = self._rig(site_chain)
        result = ProbeClient(client_host).probe("probe-target.example")
        assert result.ok
        served = result.server_hello
        assert served.selected_version == codec.TLS_1_2
        assert served.extensions is None

    def test_fallback_scsv_draws_inappropriate_fallback(self, site_chain):
        """RFC 7507: a fallback retry offering less than the origin
        speaks is refused with a dedicated fatal alert."""
        net, client_host = self._rig(site_chain, max_version=codec.TLS_1_2)
        sock = client_host.connect("probe-target.example", 443)
        hello = ClientHello(
            client_random=_rand32(9),
            version=codec.TLS_1_1,
            cipher_suites=(0x002F, codec.TLS_FALLBACK_SCSV),
            server_name="probe-target.example",
        )
        sock.send(codec.encode_handshake_record(hello, version=hello.version))
        records, _ = codec.decode_records(sock.recv())
        assert records[0].content_type == codec.CONTENT_ALERT
        alert = Alert.from_payload(records[0].payload)
        assert alert.description == codec.ALERT_INAPPROPRIATE_FALLBACK

    def test_scsv_at_full_strength_is_served(self, site_chain):
        """A client that offers SCSV while already at the origin's
        ceiling is not a fallback — it must be answered normally."""
        net, client_host = self._rig(site_chain, max_version=codec.TLS_1_2)
        sock = client_host.connect("probe-target.example", 443)
        hello = ClientHello(
            client_random=_rand32(10),
            cipher_suites=(0x002F, codec.TLS_FALLBACK_SCSV),
            server_name="probe-target.example",
        )
        sock.send(codec.encode_handshake_record(hello, version=hello.version))
        records, _ = codec.decode_records(sock.recv())
        assert records[0].content_type == codec.CONTENT_HANDSHAKE


class TestProbeEndToEnd:
    def build_network(self, chain):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("probe-target.example")
        server = TlsCertServer(chain)
        server_host.listen(443, server.factory)
        return net, client_host, server

    def test_probe_receives_chain(self, site_chain):
        net, client_host, server = self.build_network(site_chain)
        probe = ProbeClient(client_host)
        result = probe.probe("probe-target.example")
        assert result.ok
        assert [c.encode() for c in result.chain] == [
            c.encode() for c in site_chain
        ]
        assert result.leaf.subject.common_name == "probe-target.example"
        assert result.server_hello is not None
        assert server.handshakes_served == 1

    def test_probe_chain_bytes_exact(self, site_chain):
        net, client_host, _ = self.build_network(site_chain)
        result = ProbeClient(client_host).probe("probe-target.example")
        assert result.der_chain == tuple(c.encode() for c in site_chain)

    def test_probe_connection_refused(self, site_chain):
        net = Network()
        client_host = net.add_host("client.example")
        result = ProbeClient(client_host).probe("missing.example")
        assert not result.ok
        assert "connect" in result.error

    def test_probe_sni_selects_chain(self, site_chain, root_ca, keystore):
        other_key = keystore.key("other-site", 512)
        other_leaf = root_ca.issue(
            Name.build(common_name="other.example"),
            SubjectPublicKeyInfo(other_key.n, other_key.e),
            dns_names=["other.example"],
        )
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("probe-target.example")
        server = TlsCertServer(
            site_chain, sni_chains={"other.example": [other_leaf]}
        )
        server_host.listen(443, server.factory)

        probe = ProbeClient(client_host)
        default = probe.probe("probe-target.example")
        assert default.leaf.subject.common_name == "probe-target.example"

        # Connect to the same host but ask (via SNI) for the other name.
        sock = client_host.connect("probe-target.example", 443)
        hello = ClientHello(client_random=_rand32(3), server_name="other.example")
        sock.send(codec.encode_handshake_record(hello))
        records, _ = codec.decode_records(sock.recv())
        stream = b"".join(
            r.payload for r in records if r.content_type == codec.CONTENT_HANDSHAKE
        )
        messages, _ = codec.decode_handshakes(stream)
        certs = [
            codec.Certificate.from_body(m.body)
            for m in messages
            if m.msg_type == codec.HS_CERTIFICATE
        ]
        assert certs[0].der_chain == (other_leaf.encode(),)

    def test_probe_keeps_server_hello_without_certificate(self):
        """A flight with a ServerHello but no Certificate fails the
        probe yet preserves the parsed hello — the server-leg audit
        grades whatever made it onto the wire."""
        from repro.netsim.network import Protocol

        class HelloOnlyServer(Protocol):
            def factory(self):
                return HelloOnlyServer()

            def data_received(self, sock, data):
                hello = ServerHello(
                    server_random=_rand32(4), cipher_suite=0xC02F
                )
                sock.send(codec.encode_handshake_record(hello))

        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("probe-target.example")
        server_host.listen(443, HelloOnlyServer().factory)
        result = ProbeClient(client_host).probe("probe-target.example")
        assert not result.ok
        assert result.error == "no Certificate message received"
        assert result.server_hello is not None
        assert result.server_hello.cipher_suite == 0xC02F

    def test_server_rejects_garbage(self, site_chain):
        net, client_host, _ = self.build_network(site_chain)
        sock = client_host.connect("probe-target.example", 443)
        sock.send(b"\x63garbage-that-is-not-tls")
        records, _ = codec.decode_records(sock.recv())
        assert records[0].content_type == codec.CONTENT_ALERT

    def test_large_chain_spans_records(self, intermediate_ca, root_ca, keystore):
        # Enough certificates to exceed one 2^14-byte record.
        chain = []
        for i in range(40):
            key = keystore.key("bulk", 1024)
            chain.append(
                intermediate_ca.issue(
                    Name.build(common_name=f"bulk{i}.example", organization="X" * 60),
                    SubjectPublicKeyInfo(key.n, key.e),
                    dns_names=[f"bulk{i}.example"],
                )
            )
        assert sum(len(c.encode()) for c in chain) > 0x4000
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("probe-target.example")
        server_host.listen(443, TlsCertServer(chain).factory)
        result = ProbeClient(client_host).probe("probe-target.example")
        assert result.ok
        assert len(result.chain) == 40
