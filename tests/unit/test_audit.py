"""Unit tests for the appliance security audit subsystem."""

import json

import pytest

from repro.audit import (
    ADVERSARIAL_SCENARIOS,
    AuditHarness,
    MIMICRY_KEY,
    OUTCOME_BLOCK,
    OUTCOME_DIVERGENT,
    OUTCOME_DOWNGRADED,
    OUTCOME_INTERCEPT,
    OUTCOME_MASK,
    OUTCOME_OK,
    OUTCOME_PASS,
    SCENARIOS,
    audit_catalog,
    build_scorecard,
    letter_grade,
    scenario_by_key,
)
from repro.audit.scorecard import ScenarioObservation
from repro.analysis.tables import audit_grade_table, client_leg_table
from repro.proxy import (
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    UpstreamHelloPolicy,
)
from repro.reporting import (
    render_audit_grade_table,
    render_client_leg_table,
    render_scorecard,
)
from repro.x509 import Name


@pytest.fixture(scope="module")
def harness():
    return AuditHarness(seed=17, pki_key_bits=512)


def make_profile(**overrides):
    """A fully vigilant product: notices every scenario's defect."""
    defaults = dict(
        key="audit-test-product",
        issuer=Name.build(common_name="Audit Test CA", organization="AuditTest"),
        category=ProxyCategory.BUSINESS_FIREWALL,
        leaf_key_bits=512,
        ca_key_bits=512,
        hash_name="sha1",
        forged_upstream=ForgedUpstreamPolicy.BLOCK,
        min_upstream_key_bits=1024,
        rejects_deprecated_hashes=True,
        min_tls_version=(3, 1),
        checks_revocation=True,
    )
    defaults.update(overrides)
    return ProxyProfile(**defaults)


class TestScenarioRegistry:
    def test_at_least_eight_adversarial_scenarios(self):
        assert len(ADVERSARIAL_SCENARIOS) >= 8

    def test_keys_are_unique(self):
        keys = [scenario.key for scenario in SCENARIOS]
        assert len(keys) == len(set(keys))

    def test_exactly_one_control(self):
        controls = [s for s in SCENARIOS if s.defect is None]
        assert len(controls) == 1
        assert controls[0].key == "baseline"


# What a vigilant product's policy should produce, per scenario kind.
_EXPECTED = {
    ForgedUpstreamPolicy.BLOCK: OUTCOME_BLOCK,
    ForgedUpstreamPolicy.MASK: OUTCOME_MASK,
    ForgedUpstreamPolicy.PASS_THROUGH: OUTCOME_PASS,
}


class TestScenarioPolicyMatrix:
    """Every scenario × every ForgedUpstreamPolicy."""

    @pytest.mark.parametrize("policy", list(ForgedUpstreamPolicy))
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.key)
    def test_vigilant_product_outcome(self, harness, scenario, policy):
        profile = make_profile(
            key=f"matrix-{policy.value}", forged_upstream=policy
        )
        observation = harness.run_scenario(profile, scenario)
        if scenario.defect is None:
            assert observation.outcome == OUTCOME_INTERCEPT
        else:
            assert observation.outcome == _EXPECTED[policy], observation.evidence


class TestPostureDivergence:
    def test_unnoticed_defect_is_masked_despite_block_policy(self, harness):
        """A product that skips expiry checks forges over an expired
        origin even though its policy would block noticed forgeries."""
        profile = make_profile(key="no-expiry", validates_expiry=False)
        scenario = scenario_by_key()["expired-leaf"]
        observation = harness.run_scenario(profile, scenario)
        assert observation.outcome == OUTCOME_MASK

    def test_threshold_knobs_gate_weak_key(self, harness):
        scenario = scenario_by_key()["weak-key"]
        lax = make_profile(key="lax-key", min_upstream_key_bits=0)
        assert harness.run_scenario(lax, scenario).outcome == OUTCOME_MASK
        strict = make_profile(key="strict-key", min_upstream_key_bits=1024)
        assert harness.run_scenario(strict, scenario).outcome == OUTCOME_BLOCK

    def test_caching_product_reuses_warm_verdict(self, harness):
        """caches_validation: the warm-up verdict masks later attacks."""
        cacher = make_profile(key="cacher", caches_validation=True)
        for scenario in ADVERSARIAL_SCENARIOS:
            observation = harness.run_scenario(cacher, scenario)
            assert observation.outcome == OUTCOME_MASK, scenario.key

    def test_downgrade_accepted_below_floor(self, harness):
        tolerant = make_profile(key="sslv3-ok", min_tls_version=(3, 0))
        for key in ("version-downgrade", "weak-cipher"):
            scenario = scenario_by_key()[key]
            assert harness.run_scenario(tolerant, scenario).outcome == OUTCOME_MASK


class TestScorecard:
    def test_letter_grade_boundaries(self):
        assert letter_grade(1.0) == "A"
        assert letter_grade(0.9) == "A"
        assert letter_grade(0.75) == "B"
        assert letter_grade(0.5) == "C"
        assert letter_grade(0.375) == "D"
        assert letter_grade(0.0) == "F"

    def test_build_scorecard_points(self):
        observations = [
            ScenarioObservation("baseline", OUTCOME_INTERCEPT, "ok"),
        ] + [
            ScenarioObservation(s.key, OUTCOME_BLOCK, "blocked")
            for s in ADVERSARIAL_SCENARIOS
        ]
        card = build_scorecard("perfect", "Test", observations)
        assert card.functional
        assert card.grade == "A"
        assert card.score == card.max_score == len(ADVERSARIAL_SCENARIOS)

    def test_broken_product_flagged_nonfunctional(self):
        observations = [
            ScenarioObservation("baseline", OUTCOME_BLOCK, "refused everything"),
        ] + [
            ScenarioObservation(s.key, OUTCOME_BLOCK, "blocked")
            for s in ADVERSARIAL_SCENARIOS
        ]
        card = build_scorecard("deadbolt", "Test", observations)
        assert not card.functional

    def test_pass_through_earns_half_marks(self):
        observations = [
            ScenarioObservation("baseline", OUTCOME_INTERCEPT, "ok"),
        ] + [
            ScenarioObservation(s.key, OUTCOME_PASS, "relayed")
            for s in ADVERSARIAL_SCENARIOS
        ]
        card = build_scorecard("relay", "Test", observations)
        assert card.fraction == pytest.approx(0.5)
        assert card.grade == "C"


class TestCatalogAudit:
    SUBSET = ["bitdefender", "kurupira", "contentwatch", "posco"]

    def test_same_seed_identical_scorecards(self):
        first = audit_catalog(seed=23, products=self.SUBSET, pki_key_bits=512)
        second = audit_catalog(seed=23, products=self.SUBSET, pki_key_bits=512)
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_workers_do_not_change_results(self):
        serial = audit_catalog(seed=23, products=self.SUBSET, pki_key_bits=512)
        threaded = audit_catalog(
            seed=23, products=self.SUBSET, pki_key_bits=512, workers=4
        )
        assert json.dumps(serial.to_dict()) == json.dumps(threaded.to_dict())

    def test_known_product_archetypes(self):
        report = audit_catalog(seed=23, products=self.SUBSET, pki_key_bits=512)
        cards = report.by_key()
        assert cards["bitdefender"].grade == "A"  # blocked the §5.2 forgery
        assert cards["kurupira"].grade == "F"  # masked it
        assert cards["kurupira"].masked == len(ADVERSARIAL_SCENARIOS)
        assert cards["contentwatch"].masked == len(ADVERSARIAL_SCENARIOS)  # TOCTOU
        assert cards["posco"].passed_through == len(ADVERSARIAL_SCENARIOS)
        assert all(card.functional for card in report.scorecards)

    def test_unknown_product_rejected(self):
        with pytest.raises(KeyError):
            audit_catalog(seed=23, products=["no-such-product"], pki_key_bits=512)

    def test_grade_table_and_rendering(self):
        report = audit_catalog(seed=23, products=self.SUBSET, pki_key_bits=512)
        rows = audit_grade_table(report.scorecards)
        assert [row.rank for row in rows] == [1, 2, 3, 4]
        assert rows[0].product_key == "bitdefender"
        text = render_audit_grade_table(rows)
        assert "bitdefender" in text and "Grade" in text
        detail = render_scorecard(report.by_key()["kurupira"])
        assert "grade F" in detail
        assert "MASK" in detail


class TestMimicry:
    def test_mimic_product_fingerprints_as_browser(self, harness):
        profile = make_profile(
            key="mimic-product", upstream_hello=UpstreamHelloPolicy.MIMIC
        )
        observation = harness.run_mimicry(profile).client_leg
        assert observation.error == ""
        assert observation.observed_ja3 == observation.expected_ja3
        assert observation.divergent_fields == ()

    def test_own_stack_product_diverges(self, harness):
        profile = make_profile(key="own-stack-product")
        observation = harness.run_mimicry(profile).client_leg
        assert observation.observed_ja3 != observation.expected_ja3
        assert "cipher_suites" in observation.divergent_fields

    def test_substitute_leg_observed(self, harness):
        profile = make_profile(
            key="downgrading-product",
            leaf_key_bits=512,
            hash_name="md5",
            substitute_tls_version=(3, 1),
        )
        probe = harness.run_mimicry(profile)
        observation = probe.client_leg
        assert observation.substitute_key_bits == 512
        assert observation.substitute_hash == "md5"
        assert observation.offered_version == (3, 3)
        assert observation.echoed_version == (3, 1)
        # The server leg sees the same downgrade, plus the bare stack.
        server = probe.server_leg
        assert server.echoed_version == (3, 1)
        assert "version" in server.divergent_fields
        assert server.compression_method == 0
        assert server.session_id_length == 0

    def test_server_leg_mimic_hidden_for_every_browser(self):
        """A negotiating mimic (substitute_cipher_suite=None) must stay
        indistinguishable whichever browser probes it — the expected
        origin answer differs per browser, and the mimic tracks it."""
        from repro.data.products import catalog_by_key
        from repro.tls.fingerprint import BROWSER_PROFILES

        profile = catalog_by_key()["bitdefender"].profile
        for browser in BROWSER_PROFILES:
            harness = AuditHarness(seed=17, pki_key_bits=512, browser=browser)
            server = harness.run_mimicry(profile).server_leg
            assert server.error == "", (browser, server.error)
            assert server.divergent_fields == (), (browser, server)
            assert server.chosen_cipher == server.expected_cipher

    def test_client_checks_graded_into_scorecard(self, harness):
        profile = make_profile(
            key="graded-product", upstream_hello=UpstreamHelloPolicy.MIMIC
        )
        card = harness.audit_product(profile)
        by_key = {check.scenario: check for check in card.client_checks}
        assert by_key[MIMICRY_KEY].outcome == OUTCOME_OK
        assert by_key[MIMICRY_KEY].points == 1.0
        # 9 adversarial + 3 client-leg + 5 server-leg checks.
        assert card.max_score == len(ADVERSARIAL_SCENARIOS) + 3 + 5
        assert card.score == card.client_score + card.server_score + sum(
            check.points for check in card.checks
        )
        assert "mimicry" in {
            check["scenario"]
            for check in card.to_dict()["client_leg"]["checks"]
        }
        assert "server-cipher" in {
            check["scenario"]
            for check in card.to_dict()["server_leg"]["checks"]
        }

    def test_catalog_mimic_unpenalised_own_stack_graded_down(self):
        report = audit_catalog(
            seed=23,
            products=["bitdefender", "kurupira", "md5-legacy"],
            pki_key_bits=512,
        )
        cards = report.by_key()
        bit_checks = {c.scenario: c for c in cards["bitdefender"].client_checks}
        kur_checks = {c.scenario: c for c in cards["kurupira"].client_checks}
        md5_checks = {c.scenario: c for c in cards["md5-legacy"].client_checks}
        # The mimic product earns full mimicry marks; own-stack loses them.
        assert bit_checks[MIMICRY_KEY].outcome == OUTCOME_OK
        assert kur_checks[MIMICRY_KEY].outcome == OUTCOME_DIVERGENT
        assert kur_checks[MIMICRY_KEY].points == 0.0
        # md5-legacy is also graded down on every substitute dimension;
        # the version-echo check now lives in the server-leg section.
        assert md5_checks["substitute-hash"].points == 0.0
        md5_server = {
            c.scenario: c for c in cards["md5-legacy"].server_checks
        }
        assert md5_server["version-echo"].outcome == OUTCOME_DOWNGRADED
        assert md5_server["server-compression"].points == 0.0
        assert md5_server["server-cipher"].points == 0.0
        # The server-leg mimic earns the full section; kurupira's bare
        # stack diverges on cipher choice and extension set.
        assert cards["bitdefender"].server_score == cards[
            "bitdefender"
        ].server_max_score
        kur_server = {c.scenario: c for c in cards["kurupira"].server_checks}
        assert kur_server["server-extensions"].points == 0.0
        assert report.to_dict()["client_leg_scenarios"][0] == "mimicry"
        assert report.to_dict()["server_leg_scenarios"][0] == "server-cipher"

    def test_browser_choice_changes_expectation_not_determinism(self):
        for browser in ("chrome", "safari"):
            first = audit_catalog(
                seed=23, products=["kurupira"], pki_key_bits=512, browser=browser
            )
            second = audit_catalog(
                seed=23, products=["kurupira"], pki_key_bits=512, browser=browser
            )
            assert first.scorecards == second.scorecards
            card = first.scorecards[0]
            assert card.client_leg is not None
            assert card.client_leg.browser == browser

    def test_client_leg_table_and_rendering(self):
        report = audit_catalog(
            seed=23, products=["bitdefender", "kurupira"], pki_key_bits=512
        )
        rows = client_leg_table(report.scorecards)
        assert [row.product_key for row in rows] == ["bitdefender", "kurupira"]
        assert rows[0].mimicry == "match"
        assert rows[1].mimicry.startswith("diverges:")
        text = render_client_leg_table(rows)
        assert "Mimicry" in text and "kurupira" in text
        grade_rows = audit_grade_table(report.scorecards)
        assert "ClientLeg" in render_audit_grade_table(grade_rows)


class TestCatalogWarmup:
    def test_warm_product_covers_every_issuer_variant(self, harness):
        """The pre-battery warm-up must mint the CA of *every* issuer
        variant, not just bucket 0 — otherwise worker threads race to
        generate the remaining variant keys mid-battery."""
        from repro.data.products import catalog

        spec = next(s for s in catalog() if s.profile.issuer_variants)
        profile = spec.profile
        harness.warm_product(profile)
        for issuer in profile.all_issuers():
            cache_key = f"{profile.key}|{issuer.rfc4514()}"
            assert cache_key in harness.forger._cas

    def test_warm_product_plain_profile(self, harness):
        from repro.data.products import catalog

        spec = next(s for s in catalog() if not s.profile.issuer_variants)
        harness.warm_product(spec.profile)
        cache_key = f"{spec.profile.key}|{spec.profile.issuer.rfc4514()}"
        assert cache_key in harness.forger._cas


class TestServerLegObservationPaths:
    def test_captured_hello_graded_despite_probe_error(self, harness):
        """A substitute ServerHello that made it onto the wire is
        graded even when the rest of the probe failed — zeroing it
        would misreport a mimicking stack as detectable."""
        from repro.tls.codec import ServerHello
        from repro.tls.fingerprint import (
            CANONICAL_SERVER_EXTENSION_TYPES,
            browser_profile,
            build_own_server_extensions,
        )

        chrome = browser_profile("chrome")
        served = ServerHello(
            server_random=bytes(32),
            cipher_suite=chrome.expected_server_cipher,
            version=chrome.version,
            session_id=b"\x05" * 32,
            extensions=build_own_server_extensions(
                CANONICAL_SERVER_EXTENSION_TYPES,
                chrome.client_hello(bytes(32), "x.example"),
            ),
        )
        observation = harness._observe_server_leg(
            served, "substitute flight missing ServerHello or Certificate"
        )
        assert observation.error == ""
        assert observation.divergent_fields == ()
        assert observation.chosen_cipher == chrome.expected_server_cipher

    def test_missing_hello_reports_error(self, harness):
        observation = harness._observe_server_leg(None, "alert: desc=40")
        assert observation.error == "alert: desc=40"
        assert observation.observed_ja3s is None
        observation = harness._observe_server_leg(None)
        assert observation.error == "substitute flight missing ServerHello"
