"""Consistency tests for the calibration datasets.

These guard the numerical contract between the paper's published
tables and the sampling weights: if someone edits the catalog, these
tests keep aggregate category/country shapes anchored to the paper.
"""

import pytest

from repro.data import countries as country_data
from repro.data import products as product_data
from repro.data import sites as site_data
from repro.proxy.profile import ForgedUpstreamPolicy, ProxyCategory


class TestCountryData:
    def test_study1_named_rows_match_paper_totals(self):
        named_proxied = sum(c.proxied for c in country_data.STUDY1_COUNTRIES)
        named_total = sum(c.total for c in country_data.STUDY1_COUNTRIES)
        assert named_proxied + country_data.STUDY1_OTHER.proxied == (
            country_data.STUDY1_TOTAL.proxied
        )
        # Paper total column is self-consistent to within rounding.
        assert named_total + country_data.STUDY1_OTHER.total == pytest.approx(
            country_data.STUDY1_TOTAL.total, rel=0.001
        )

    def test_study2_overall_rate_is_0_41_percent(self):
        total = country_data.STUDY2_TOTAL
        assert total.rate == pytest.approx(0.0041, abs=0.0002)

    def test_other_tail_preserves_aggregates(self):
        for study in (1, 2):
            tail = country_data.other_tail(study)
            aggregate = (
                country_data.STUDY1_OTHER if study == 1 else country_data.STUDY2_OTHER
            )
            assert sum(r.proxied for r in tail) == aggregate.proxied
            assert sum(r.total for r in tail) == aggregate.total

    def test_country_table_has_unique_codes(self):
        for study in (1, 2):
            codes = [row.code for row in country_data.country_table(study)]
            assert len(codes) == len(set(codes))

    def test_china_rate_exceptionally_low(self):
        china = country_data.STUDY2_COUNTRIES[0]
        assert china.code == "CN"
        assert china.rate < 0.0003  # paper: 0.02%

    def test_campaign_calibration_totals(self):
        impressions = sum(c.impressions for c in country_data.STUDY2_CAMPAIGNS)
        cost = sum(c.cost_usd for c in country_data.STUDY2_CAMPAIGNS)
        # Note: the paper's Table 2 "Total" row (5,079,298 impressions,
        # $6,090.19) does not equal the sum of its own campaign rows
        # (4,986,240, $5,971.67); we encode the per-campaign rows and
        # live with the paper's ~2% slack.
        assert impressions == 4986240
        assert cost == pytest.approx(5971.67, abs=1.0)

    def test_measurement_yields(self):
        assert country_data.measurement_yield(1) == pytest.approx(0.617, abs=0.01)
        assert country_data.measurement_yield(2) == pytest.approx(2.47, abs=0.05)


class TestProductCatalog:
    @pytest.fixture(scope="class")
    def specs(self):
        return product_data.catalog()

    def test_unique_keys(self, specs):
        keys = [spec.key for spec in specs]
        assert len(keys) == len(set(keys))

    def test_study1_category_shares_match_table5(self, specs):
        """Aggregate study-1 weights per category ≈ the paper's Table 5."""
        totals = {}
        for spec in specs:
            totals[spec.category] = totals.get(spec.category, 0) + spec.study1_weight
        grand = sum(totals.values())
        paper = {
            ProxyCategory.BUSINESS_PERSONAL_FIREWALL: 68.86,
            ProxyCategory.ORGANIZATION: 12.66,
            ProxyCategory.MALWARE: 8.65,
            ProxyCategory.UNKNOWN: 7.14,
        }
        for category, expected in paper.items():
            share = 100 * totals.get(category, 0) / grand
            assert share == pytest.approx(expected, abs=3.0), category

    def test_study2_category_shares_match_table6(self, specs):
        totals = {}
        for spec in specs:
            totals[spec.category] = totals.get(spec.category, 0) + spec.study2_weight
        grand = sum(totals.values())
        paper = {
            ProxyCategory.BUSINESS_PERSONAL_FIREWALL: 70.93,
            ProxyCategory.UNKNOWN: 10.75,
            ProxyCategory.MALWARE: 5.06,
            ProxyCategory.ORGANIZATION: 6.96,
            ProxyCategory.TELECOM: 0.88,
        }
        for category, expected in paper.items():
            share = 100 * totals.get(category, 0) / grand
            assert share == pytest.approx(expected, abs=2.0), category

    def test_study1_1024bit_share_matches_52(self, specs):
        """§5.2: 50.59% of substitutes carried 1024-bit keys."""
        downgraded = sum(
            spec.study1_weight
            for spec in specs
            if spec.profile.leaf_key_bits == 1024
        )
        grand = sum(spec.study1_weight for spec in specs)
        assert 100 * downgraded / grand == pytest.approx(50.59, abs=2.5)

    def test_table4_top_weights_exact(self, specs):
        by_key = {spec.key: spec for spec in specs}
        expected = {
            "bitdefender": 4788,
            "psafe": 1200,
            "sendori": 966,
            "eset": 927,
            "null-issuer": 829,
            "kaspersky": 589,
            "fortinet": 310,
            "kurupira": 267,
            "posco": 167,
            "qustodio": 109,
        }
        for key, weight in expected.items():
            assert by_key[key].study1_weight == weight

    def test_malware_weights_study2(self, specs):
        """§6.4's new discoveries carry the paper's exact counts."""
        by_key = {spec.key: spec for spec in specs}
        assert by_key["objectify"].study2_weight == 1069
        assert by_key["superfish"].study2_weight == 610
        assert by_key["wiredtools"].study2_weight == 131
        assert by_key["widgits"].study2_weight == 67
        assert by_key["impressx"].study2_weight == 16
        assert by_key["kowsar"].study2_weight == 268
        assert by_key["dsp"].study2_weight == 204
        assert by_key["lg-uplus"].study2_weight == 375

    def test_iopfail_is_the_only_key_reuser(self, specs):
        reusers = [spec.key for spec in specs if spec.profile.reuses_leaf_key]
        assert reusers == ["iopfail"]

    def test_iopfail_crypto_profile(self, specs):
        iopfail = product_data.catalog_by_key()["iopfail"]
        assert iopfail.profile.leaf_key_bits == 512
        assert iopfail.profile.hash_name == "md5"
        assert iopfail.profile.issuer.common_name == "IopFailZeroAccessCreate"
        assert iopfail.profile.issuer.organization is None

    def test_kurupira_masks_bitdefender_blocks(self, specs):
        by_key = product_data.catalog_by_key()
        assert by_key["kurupira"].profile.forged_upstream is ForgedUpstreamPolicy.MASK
        assert by_key["bitdefender"].profile.forged_upstream is ForgedUpstreamPolicy.BLOCK

    def test_digicert_masquerade_copies_issuer(self, specs):
        spec = product_data.catalog_by_key()["digicert-masquerade"]
        assert spec.profile.copies_upstream_issuer
        assert spec.study1_weight == 49  # the paper's exact count

    def test_known_issuer_map_excludes_unknowns(self):
        mapping = product_data.known_issuer_categories()
        assert "kowsar" not in mapping
        assert "MYInternetS" not in mapping
        assert "gw-7f3a" not in mapping
        assert mapping["Bitdefender"] is ProxyCategory.BUSINESS_PERSONAL_FIREWALL

    def test_egress_plans(self):
        by_key = product_data.catalog_by_key()
        assert by_key["dsp"].egress_ips == 1
        assert by_key["information-technology"].egress_ips == 3
        assert by_key["myinternets"].egress_ips == 6
        assert by_key["bitdefender"].egress_ips is None


class TestSiteData:
    def test_17_probe_sites_in_study2(self):
        sites = site_data.study2_probe_sites()
        assert len(sites) == 17
        assert sites[0].hostname == site_data.AUTHORS_SITE  # tested first

    def test_category_counts_match_table1(self):
        sites = site_data.study2_probe_sites()
        by_type = {}
        for site in sites:
            by_type[site.host_type] = by_type.get(site.host_type, 0) + 1
        assert by_type == {
            "Popular": 6,
            "Business": 5,
            "Pornographic": 5,
            "Authors'": 1,
        }

    def test_success_probabilities_reproduce_table8_volumes(self):
        total_impressions = sum(
            c.impressions for c in country_data.STUDY2_CAMPAIGNS
        )
        for host_type, connections in site_data.TABLE8_CONNECTIONS.items():
            p = site_data.per_site_success_probability(host_type, total_impressions)
            sites = len(site_data.sites_of_type(host_type))
            expected = (
                total_impressions * site_data.CLIENT_RUN_PROBABILITY * sites * p
            )
            assert expected == pytest.approx(connections, rel=0.001)

    def test_universe_contains_table1_sites_at_rank(self):
        universe = site_data.synthetic_alexa_universe(size=3000)
        by_host = {hostname: rank for hostname, rank, _ in universe}
        assert by_host["qq.com"] == 9
        assert by_host["airdroid.com"] == 31000 or "airdroid.com" not in by_host

    def test_universe_size_and_uniqueness(self):
        universe = site_data.synthetic_alexa_universe(size=1000)
        assert len(universe) == 1000
        hostnames = [hostname for hostname, _, _ in universe]
        assert len(set(hostnames)) == 1000
