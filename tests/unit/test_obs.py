"""Unit tests for the telemetry layer (`repro.obs`).

The registry's contract has three parts the rest of the suite leans
on: the deterministic/process/timing sections never bleed into each
other, snapshots merge exactly like the report database (fixed-order
counter addition), and the JSON exporter round-trips losslessly.
"""

import json
import threading

import pytest

from repro.httpmin import HttpRequest, HttpServer
from repro.measure.database import ReportDatabase
from repro.measure.server import ReportingServer
from repro.netsim import Network
from repro.obs import (
    HandshakeEventLog,
    Histogram,
    MetricsRegistry,
    metric_key,
    read_json,
    to_json,
    to_prometheus,
    write_json,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("proxy.decisions", {}) == "proxy.decisions"

    def test_labels_sorted(self):
        key = metric_key("x", {"b": 2, "a": 1})
        assert key == "x{a=1,b=2}"
        assert key == metric_key("x", {"a": 1, "b": 2})


class TestCountersAndGauges:
    def test_counter_handle_and_inc_agree(self):
        registry = MetricsRegistry()
        handle = registry.counter("events", kind="a")
        handle.inc()
        registry.inc("events", kind="a")
        registry.inc("events", n=3, kind="a")
        assert handle.value == 5
        snap = registry.snapshot()
        assert snap["deterministic"]["counters"] == {"events{kind=a}": 5}

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("vault.entries", seed="7")
        gauge.set(3)
        gauge.set(11)
        assert gauge.value == 11
        assert registry.snapshot()["deterministic"]["gauges"] == {
            "vault.entries{seed=7}": 11
        }

    def test_process_counters_stay_out_of_deterministic_section(self):
        registry = MetricsRegistry()
        registry.process_counter("keystore.generated").inc()
        snap = registry.snapshot()
        assert snap["deterministic"]["counters"] == {}
        assert snap["process"]["counters"] == {"keystore.generated": 1}


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        hist = Histogram((10, 100))
        for value in (1, 10, 11, 100, 101):
            hist.observe(value)
        assert hist.bucket_counts == [2, 2]
        assert hist.inf_count == 1
        assert hist.count == 5
        assert hist.total == 223

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((10, 10))
        with pytest.raises(ValueError):
            Histogram((100, 10))

    def test_dict_round_trip(self):
        hist = Histogram((5, 50))
        for value in (1, 7, 70):
            hist.observe(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_merge_adds_and_rejects_mismatched_bounds(self):
        left = Histogram((5, 50))
        right = Histogram((5, 50))
        left.observe(1)
        right.observe(100)
        left.merge(right)
        assert left.count == 2
        assert left.inf_count == 1
        with pytest.raises(ValueError):
            left.merge(Histogram((1, 2)))

    def test_registry_rejects_redeclared_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("sizes", (1, 2))
        registry.histogram("sizes", (1, 2)).observe(1)
        with pytest.raises(ValueError):
            registry.histogram("sizes", (1, 2, 3))


class TestSpans:
    def test_nested_paths(self):
        registry = MetricsRegistry()
        with registry.span("study.run"):
            with registry.span("study.plan"):
                pass
            with registry.span("study.merge"):
                pass
        spans = registry.timing_profile()
        assert set(spans) == {
            "study.run",
            "study.run/study.plan",
            "study.run/study.merge",
        }
        assert spans["study.run"]["count"] == 1
        assert spans["study.run"]["total_s"] >= (
            spans["study.run/study.plan"]["total_s"]
        )

    def test_attrs_do_not_change_the_path(self):
        registry = MetricsRegistry()
        with registry.span("study.shard", country="br"):
            pass
        with registry.span("study.shard", country="us"):
            pass
        assert registry.timing_profile()["study.shard"]["count"] == 2

    def test_span_stack_is_per_thread(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(2)

        def worker(name):
            with registry.span(name):
                barrier.wait()

        threads = [
            threading.Thread(target=worker, args=(name,)) for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Concurrent roots never nest under each other.
        assert set(registry.timing_profile()) == {"a", "b"}


class TestSnapshotMerge:
    def test_counters_add_and_histograms_merge(self):
        shard = MetricsRegistry()
        shard.inc("study.sessions", n=10, mode="fast")
        shard.histogram("study.shard_sessions", (100, 1000)).observe(10)
        parent = MetricsRegistry()
        parent.inc("study.sessions", n=5, mode="fast")
        parent.merge_snapshot(shard.snapshot())
        parent.merge_snapshot(shard.snapshot())
        det = parent.snapshot()["deterministic"]
        assert det["counters"]["study.sessions{mode=fast}"] == 25
        assert det["histograms"]["study.shard_sessions"]["count"] == 2

    def test_sections_filter(self):
        child = MetricsRegistry()
        child.inc("deterministic.thing")
        child.process_counter("process.thing").inc()
        with child.span("phase"):
            pass
        parent = MetricsRegistry()
        parent.merge_snapshot(child.snapshot(), sections=("process", "timing"))
        snap = parent.snapshot()
        assert snap["deterministic"]["counters"] == {}
        assert snap["process"]["counters"] == {"process.thing": 1}
        assert "phase" in snap["timing"]["spans"]

    def test_merge_order_invariance_for_counters(self):
        shards = []
        for n in (1, 2, 3):
            shard = MetricsRegistry()
            shard.inc("c", n=n)
            shards.append(shard.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in shards:
            forward.merge_snapshot(snap)
        for snap in reversed(shards):
            backward.merge_snapshot(snap)
        assert (
            forward.deterministic_snapshot() == backward.deterministic_snapshot()
        )


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("events", n=4, kind="a")
    registry.gauge("level").set(2)
    hist = registry.histogram("sizes", (10, 100), kind="a")
    for value in (5, 50, 500):
        hist.observe(value)
    registry.process_counter("local").inc()
    with registry.span("outer"):
        with registry.span("inner"):
            pass
    return registry


class TestExporters:
    def test_json_round_trip_is_lossless(self):
        registry = _populated_registry()
        rebuilt = MetricsRegistry.from_snapshot(json.loads(to_json(registry)))
        assert rebuilt.snapshot() == registry.snapshot()

    def test_write_and_read_json(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "metrics.json"
        write_json(registry, path)
        assert read_json(path).snapshot() == registry.snapshot()
        # The file itself is canonical: byte-comparable across runs.
        write_json(registry.snapshot(), tmp_path / "twin.json")
        assert path.read_bytes() == (tmp_path / "twin.json").read_bytes()

    def test_prometheus_rendering(self):
        text = to_prometheus(_populated_registry())
        assert 'repro_events{kind="a",section="deterministic"} 4' in text
        assert 'repro_local{section="process"} 1' in text
        # Histogram buckets are cumulative, with the +Inf catch-all.
        assert 'repro_sizes_bucket{kind="a",le="10"} 1' in text
        assert 'repro_sizes_bucket{kind="a",le="100"} 2' in text
        assert 'repro_sizes_bucket{kind="a",le="+Inf"} 3' in text
        assert 'repro_sizes_count{kind="a"} 3' in text
        assert 'repro_span_count{span="outer/inner"} 1' in text


class TestHandshakeEventLog:
    def test_records_and_connection_ids(self):
        log = HandshakeEventLog()
        first, second = log.connection(), log.connection()
        assert (first, second) == (0, 1)
        log.record(first, "client-hello", ja3="abc")
        log.record(second, "blocked")
        log.record(first, "server-hello")
        assert [e.event for e in log.for_connection(first)] == [
            "client-hello",
            "server-hello",
        ]
        dumped = log.to_dicts()
        assert dumped[0] == {
            "connection": 0,
            "seq": 0,
            "event": "client-hello",
            "detail": {"ja3": "abc"},
        }
        assert [d["seq"] for d in dumped] == [0, 1, 2]

    def test_limit_drops_but_still_counts(self):
        registry = MetricsRegistry()
        log = HandshakeEventLog(limit=2, registry=registry)
        conn = log.connection()
        for _ in range(5):
            log.record(conn, "relay")
        assert len(log) == 2
        assert log.dropped == 3
        counters = registry.snapshot()["deterministic"]["counters"]
        assert counters["handshake.events{event=relay}"] == 5
        assert counters["handshake.events_dropped"] == 3


class TestAbandonedReports:
    def _truncated_post(self, path: str, server: HttpServer) -> None:
        net = Network()
        client = net.add_host("client.example")
        net.add_host("www.example").listen(80, server.factory)
        sock = client.connect("www.example", 80)
        encoded = HttpRequest("POST", path, body=b"x" * 64).encode()
        sock.send(encoded[:-10])  # dies mid-body
        sock.close()

    def test_http_server_fires_abandoned_hook(self):
        server = HttpServer()
        seen = []
        server.on_abandoned = seen.append
        self._truncated_post("/report", server)
        assert server.requests_abandoned == 1
        assert len(seen) == 1
        assert seen[0].startswith(b"POST /report")

    def test_truncated_report_counts_as_report_failure(self):
        database = ReportDatabase()
        reporting = ReportingServer(database, None, study=1)
        self._truncated_post("/report", reporting.http)
        assert database.failures.report_failed == 1
        counters = reporting.metrics.snapshot()["deterministic"]["counters"]
        assert counters["reports.rejected{reason=truncated}"] == 1

    def test_truncated_ad_fetch_is_not_a_report_failure(self):
        database = ReportDatabase()
        reporting = ReportingServer(database, None, study=1)
        self._truncated_post("/ad", reporting.http)
        assert database.failures.report_failed == 0
        assert reporting.http.requests_abandoned == 1


class TestRenderMetricsTable:
    def test_sections_render(self):
        from repro.reporting import render_metrics_table

        text = render_metrics_table(_populated_registry().snapshot())
        assert "== Phase profile (wall clock) ==" in text
        assert "== Deterministic counters ==" in text
        assert "== Process-local counters (scheduling-dependent) ==" in text
        # Nested spans indent under their parent.
        assert "\n  inner" in text or "  inner " in text

    def test_counter_cap(self):
        from repro.reporting import render_metrics_table

        registry = MetricsRegistry()
        for index in range(40):
            registry.inc("series", idx=index)
        text = render_metrics_table(registry.snapshot(), max_counter_rows=30)
        assert "... (10 more series)" in text

    def test_empty_snapshot(self):
        from repro.reporting import render_metrics_table

        assert render_metrics_table(MetricsRegistry().snapshot()) == (
            "(no metrics recorded)"
        )
