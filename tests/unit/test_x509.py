"""Unit tests for the X.509 model, codec, issuance and validation."""

import datetime as dt

import pytest

from repro.asn1 import oids
from repro.crypto.keystore import KeyStore
from repro.x509 import (
    CertificateAuthority,
    Name,
    RootStore,
    SelfSignedParams,
    X509Error,
    parse_certificate,
    pem_decode,
    pem_decode_all,
    pem_encode,
    validate_chain,
    verify_certificate_signature,
)
from repro.x509.model import SubjectPublicKeyInfo, Validity
from repro.x509.pem import PemError


@pytest.fixture(scope="module")
def site_cert(intermediate_ca, keystore):
    key = keystore.key("site", 512)
    return intermediate_ca.issue(
        Name.build(common_name="tlsresearch.byu.edu", organization="BYU"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["tlsresearch.byu.edu", "www.tlsresearch.byu.edu"],
    )


class TestName:
    def test_build_and_accessors(self):
        name = Name.build(
            common_name="example.com", organization="Example Corp", country="US"
        )
        assert name.common_name == "example.com"
        assert name.organization == "Example Corp"
        assert name.country == "US"
        assert name.organizational_unit is None

    def test_rfc4514_rendering(self):
        name = Name.build(common_name="a", organization="b")
        assert name.rfc4514() == "O=b, CN=a"

    def test_empty_name_is_null_issuer(self):
        name = Name()
        assert name.is_empty
        assert name.rfc4514() == ""
        assert name.organization is None

    def test_encode_decode_round_trip(self):
        from repro.asn1.types import decode
        from repro.x509.parse import parse_name

        name = Name.build(common_name="x", organization="y", country="US")
        decoded, rest = decode(name.encode())
        assert rest == b""
        assert parse_name(decoded) == name


class TestIssuance:
    def test_self_signed_root_verifies_itself(self, root_ca):
        assert verify_certificate_signature(root_ca.certificate, root_ca.certificate)

    def test_root_is_ca(self, root_ca):
        assert root_ca.certificate.is_ca

    def test_leaf_is_not_ca(self, site_cert):
        assert not site_cert.is_ca

    def test_issued_cert_fields(self, site_cert, intermediate_ca):
        assert site_cert.subject.common_name == "tlsresearch.byu.edu"
        assert site_cert.issuer == intermediate_ca.name
        assert site_cert.public_key_bits == 512
        assert site_cert.signature_algorithm == "sha256WithRSAEncryption"
        assert site_cert.serial_number > 0

    def test_dns_names(self, site_cert):
        assert site_cert.dns_names == [
            "tlsresearch.byu.edu",
            "www.tlsresearch.byu.edu",
        ]

    def test_issue_with_md5(self, root_ca, keystore):
        key = keystore.key("md5-leaf", 512)
        cert = root_ca.issue(
            Name.build(common_name="weak.example"),
            SubjectPublicKeyInfo(key.n, key.e),
            hash_name="md5",
        )
        assert cert.signature_algorithm == "md5WithRSAEncryption"
        assert verify_certificate_signature(cert, root_ca.certificate)

    def test_serial_numbers_unique(self, root_ca, keystore):
        key = keystore.key("serial-test", 512)
        spki = SubjectPublicKeyInfo(key.n, key.e)
        serials = {
            root_ca.issue(Name.build(common_name=f"s{i}.example"), spki).serial_number
            for i in range(10)
        }
        assert len(serials) == 10


class TestParse:
    def test_round_trip_preserves_bytes(self, site_cert):
        parsed = parse_certificate(site_cert.encode())
        assert parsed.encode() == site_cert.encode()
        assert parsed.fingerprint() == site_cert.fingerprint()

    def test_parsed_fields_match(self, site_cert):
        parsed = parse_certificate(site_cert.encode())
        assert parsed.subject == site_cert.subject
        assert parsed.issuer == site_cert.issuer
        assert parsed.serial_number == site_cert.serial_number
        assert parsed.public_key_bits == site_cert.public_key_bits
        assert parsed.signature == site_cert.signature
        assert parsed.tbs.validity == site_cert.tbs.validity

    def test_parsed_signature_still_verifies(self, site_cert, intermediate_ca):
        parsed = parse_certificate(site_cert.encode())
        assert verify_certificate_signature(parsed, intermediate_ca.certificate)

    def test_truncated_rejected(self, site_cert):
        with pytest.raises(X509Error):
            parse_certificate(site_cert.encode()[:40])

    def test_trailing_bytes_rejected(self, site_cert):
        with pytest.raises(X509Error, match="trailing"):
            parse_certificate(site_cert.encode() + b"\x00")

    def test_garbage_rejected(self):
        with pytest.raises(X509Error):
            parse_certificate(b"not a certificate")

    def test_non_sequence_rejected(self):
        from repro.asn1.types import Integer

        with pytest.raises(X509Error, match="expected Sequence"):
            parse_certificate(Integer(5).encode())


class TestPem:
    def test_round_trip(self, site_cert):
        pem = pem_encode(site_cert.encode())
        assert pem.startswith("-----BEGIN CERTIFICATE-----")
        assert pem_decode(pem) == site_cert.encode()

    def test_concatenated_chain(self, site_cert, root_ca):
        blob = pem_encode(site_cert.encode()) + pem_encode(root_ca.certificate.encode())
        decoded = pem_decode_all(blob)
        assert decoded == [site_cert.encode(), root_ca.certificate.encode()]

    def test_lines_are_wrapped(self, site_cert):
        pem = pem_encode(site_cert.encode())
        for line in pem.splitlines():
            assert len(line) <= 64

    def test_unterminated_rejected(self):
        with pytest.raises(PemError, match="unterminated"):
            pem_decode_all("-----BEGIN CERTIFICATE-----\nYWJj\n")

    def test_end_without_begin_rejected(self):
        with pytest.raises(PemError):
            pem_decode_all("-----END CERTIFICATE-----\n")

    def test_bad_base64_rejected(self):
        text = "-----BEGIN CERTIFICATE-----\n!!!\n-----END CERTIFICATE-----\n"
        with pytest.raises(PemError, match="base64"):
            pem_decode_all(text)

    def test_decode_one_rejects_many(self, site_cert):
        blob = pem_encode(site_cert.encode()) * 2
        with pytest.raises(PemError, match="exactly one"):
            pem_decode(blob)


class TestHostnameMatching:
    def test_exact_match(self, site_cert):
        assert site_cert.matches_hostname("tlsresearch.byu.edu")

    def test_mismatch(self, site_cert):
        assert not site_cert.matches_hostname("evil.example")

    def test_wildcard(self, root_ca, keystore):
        key = keystore.key("wild", 512)
        cert = root_ca.issue(
            Name.build(common_name="*.example.com"),
            SubjectPublicKeyInfo(key.n, key.e),
        )
        assert cert.matches_hostname("www.example.com")
        assert not cert.matches_hostname("example.com")
        assert not cert.matches_hostname("a.b.example.com")


class TestChainValidation:
    def test_valid_chain(self, site_cert, intermediate_ca, root_ca, now):
        store = RootStore([root_ca.certificate])
        result = validate_chain(
            [site_cert, intermediate_ca.certificate],
            store,
            hostname="tlsresearch.byu.edu",
            at_time=now,
        )
        assert result.valid
        assert result.trust_root.fingerprint() == root_ca.certificate.fingerprint()
        assert not result.trusted_via_injected_root

    def test_untrusted_root_rejected(self, site_cert, intermediate_ca, now):
        result = validate_chain(
            [site_cert, intermediate_ca.certificate], RootStore(), at_time=now
        )
        assert not result.valid
        assert "no trusted root" in result.reason

    def test_injected_root_flagged(self, site_cert, intermediate_ca, root_ca, now):
        store = RootStore()
        store.inject(root_ca.certificate)
        result = validate_chain(
            [site_cert, intermediate_ca.certificate], store, at_time=now
        )
        assert result.valid
        assert result.trusted_via_injected_root

    def test_hostname_mismatch_fails(self, site_cert, intermediate_ca, root_ca, now):
        store = RootStore([root_ca.certificate])
        result = validate_chain(
            [site_cert, intermediate_ca.certificate],
            store,
            hostname="other.example",
            at_time=now,
        )
        assert not result.valid
        assert "hostname" in result.reason

    def test_expired_cert_fails(self, site_cert, intermediate_ca, root_ca):
        store = RootStore([root_ca.certificate])
        result = validate_chain(
            [site_cert, intermediate_ca.certificate],
            store,
            at_time=dt.datetime(2030, 1, 1, tzinfo=dt.timezone.utc),
        )
        assert not result.valid
        assert "validity" in result.reason

    def test_broken_chain_order_fails(self, site_cert, root_ca, now):
        # Missing intermediate: leaf's issuer is not in the store.
        store = RootStore([root_ca.certificate])
        result = validate_chain([site_cert], store, at_time=now)
        assert not result.valid

    def test_empty_chain(self, root_ca):
        assert not validate_chain([], RootStore([root_ca.certificate]))

    def test_intermediate_without_ca_flag_fails(
        self, root_ca, keystore, now
    ):
        # Issue a "CA" without the CA bit, then use it to sign a leaf.
        bad_int_key = keystore.key("bad-intermediate", 512)
        bad_int_cert = root_ca.issue(
            Name.build(common_name="Bad Intermediate"),
            SubjectPublicKeyInfo(bad_int_key.n, bad_int_key.e),
            is_ca=False,
        )
        bad_ca = CertificateAuthority(bad_int_cert, bad_int_key)
        leaf_key = keystore.key("bad-leaf", 512)
        leaf = bad_ca.issue(
            Name.build(common_name="victim.example"),
            SubjectPublicKeyInfo(leaf_key.n, leaf_key.e),
        )
        store = RootStore([root_ca.certificate])
        result = validate_chain([leaf, bad_int_cert], store, at_time=now)
        assert not result.valid
        assert any("CA flag" in error for error in result.errors)

    def test_tampered_leaf_signature_fails(
        self, site_cert, intermediate_ca, root_ca, now
    ):
        from repro.x509.model import Certificate

        tampered = Certificate(
            tbs=site_cert.tbs,
            signature_oid=site_cert.signature_oid,
            signature=bytes(64),
        )
        store = RootStore([root_ca.certificate])
        result = validate_chain(
            [tampered, intermediate_ca.certificate], store, at_time=now
        )
        assert not result.valid
        assert any("signature" in error for error in result.errors)


class TestRootStore:
    def test_copy_is_independent(self, root_ca, keystore):
        store = RootStore([root_ca.certificate])
        clone = store.copy()
        extra_key = keystore.key("extra-root", 512)
        extra = CertificateAuthority.self_signed(
            SelfSignedParams(subject=Name.build(common_name="Extra"), key=extra_key)
        )
        clone.inject(extra.certificate)
        assert not store.contains(extra.certificate)
        assert clone.contains(extra.certificate)
        assert clone.injected_count == 1
        assert store.injected_count == 0

    def test_remove(self, root_ca):
        store = RootStore([root_ca.certificate])
        store.remove(root_ca.certificate)
        assert len(store) == 0

    def test_find_issuer_roots(self, site_cert, intermediate_ca, root_ca):
        store = RootStore([root_ca.certificate])
        assert store.find_issuer_roots(intermediate_ca.certificate) == [
            root_ca.certificate
        ]
        assert store.find_issuer_roots(site_cert) == []


class TestCertificateMemoisation:
    """encode()/fingerprint() are memoised on the frozen dataclass."""

    def test_encode_returns_raw_and_is_cached(self, root_ca):
        cert = root_ca.certificate
        assert cert.encode() == cert.raw
        assert cert.encode() is cert.encode()  # same object, no re-encode

    def test_fingerprint_matches_fresh_hash(self, root_ca):
        import hashlib

        cert = root_ca.certificate
        fresh = hashlib.sha256(cert.to_asn1().encode()).hexdigest()
        assert cert.fingerprint() == fresh
        assert cert.fingerprint() is cert.fingerprint()

    def test_memo_survives_pickling(self, root_ca):
        import pickle

        cert = root_ca.certificate
        fingerprint = cert.fingerprint()
        clone = pickle.loads(pickle.dumps(cert))
        assert clone == cert
        assert clone.fingerprint() == fingerprint
        assert clone.encode() == cert.encode()

    def test_rawless_certificate_encodes_consistently(self, root_ca):
        from dataclasses import replace

        cert = root_ca.certificate
        bare = replace(cert, raw=b"")
        assert bare.encode() == cert.encode()
        assert bare.fingerprint() == cert.fingerprint()
