"""Unit tests for the minimal HTTP layer."""

import pytest

from repro.httpmin import HttpClient, HttpError, HttpRequest, HttpResponse, HttpServer
from repro.netsim import Network


@pytest.fixture()
def web():
    net = Network()
    client_host = net.add_host("client.example")
    server_host = net.add_host("www.example")
    server = HttpServer()
    server.route("GET", "/", lambda req, remote: HttpResponse(200, body=b"index"))
    server.route(
        "POST",
        "/report",
        lambda req, remote: HttpResponse(200, body=b"got " + str(len(req.body)).encode()),
    )
    server_host.listen(80, server.factory)
    return net, HttpClient(client_host), server


class TestCodec:
    def test_request_round_trip(self):
        request = HttpRequest(
            "POST", "/x", headers={"Host": "h", "X-Extra": "1"}, body=b"body"
        )
        decoded, rest = HttpRequest.try_decode(request.encode())
        assert rest == b""
        assert decoded.method == "POST"
        assert decoded.path == "/x"
        assert decoded.headers["x-extra"] == "1"
        assert decoded.body == b"body"

    def test_response_round_trip(self):
        response = HttpResponse(200, body=b"hello", headers={"X-A": "b"})
        decoded, rest = HttpResponse.try_decode(response.encode())
        assert rest == b""
        assert decoded.status == 200
        assert decoded.body == b"hello"
        assert decoded.ok

    def test_incomplete_headers_buffered(self):
        partial = b"GET / HTTP/1.1\r\nHost: x"
        decoded, rest = HttpRequest.try_decode(partial)
        assert decoded is None
        assert rest == partial

    def test_incomplete_body_buffered(self):
        encoded = HttpRequest("POST", "/", body=b"12345").encode()
        decoded, rest = HttpRequest.try_decode(encoded[:-2])
        assert decoded is None

    def test_pipelined_requests(self):
        data = HttpRequest("GET", "/a").encode() + HttpRequest("GET", "/b").encode()
        first, rest = HttpRequest.try_decode(data)
        second, leftover = HttpRequest.try_decode(rest)
        assert first.path == "/a"
        assert second.path == "/b"
        assert leftover == b""

    def test_bad_request_line(self):
        with pytest.raises(HttpError):
            HttpRequest.try_decode(b"NONSENSE\r\n\r\n")

    def test_bad_header_line(self):
        with pytest.raises(HttpError):
            HttpRequest.try_decode(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")

    def test_bad_status_code(self):
        with pytest.raises(HttpError):
            HttpResponse.try_decode(b"HTTP/1.1 abc Bad\r\n\r\n")


class TestClientServer:
    def test_get(self, web):
        _, client, server = web
        response = client.get("www.example", "/")
        assert response.ok
        assert response.body == b"index"
        assert server.requests_handled == 1

    def test_post(self, web):
        _, client, _ = web
        response = client.post("www.example", "/report", b"x" * 100)
        assert response.body == b"got 100"

    def test_404(self, web):
        _, client, _ = web
        assert client.get("www.example", "/missing").status == 404

    def test_handler_exception_becomes_500(self, web):
        net, client, server = web

        def boom(request, remote):
            raise RuntimeError("kaput")

        server.route("GET", "/boom", boom)
        response = client.get("www.example", "/boom")
        assert response.status == 500
        assert b"kaput" in response.body

    def test_malformed_request_gets_400(self, web):
        net, client, server = web
        sock = client.host.connect("www.example", 80)
        sock.send(b"NOT HTTP AT ALL\r\n\r\n")
        response, _ = HttpResponse.try_decode(sock.recv())
        assert response.status == 400
        assert server.parse_errors == 1

    def test_keep_alive_multiple_requests(self, web):
        net, client, server = web
        sock = client.host.connect("www.example", 80)
        sock.send(HttpRequest("GET", "/", headers={"Host": "www.example"}).encode())
        first, rest = HttpResponse.try_decode(sock.recv())
        sock.send(HttpRequest("GET", "/", headers={"Host": "www.example"}).encode())
        second, _ = HttpResponse.try_decode(sock.recv())
        assert first.ok and second.ok
        assert server.requests_handled == 2
