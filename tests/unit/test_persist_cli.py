"""Tests for database persistence and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.measure.persist import load_database, save_database
from repro.study import StudyConfig, StudyRunner
from repro.study.whitelist import run_whitelist_experiment


@pytest.fixture(scope="module")
def small_study():
    return StudyRunner(StudyConfig(study=1, seed=13, scale=0.005, mode="fast")).run()


class TestPersistence:
    def test_round_trip_counts(self, small_study, tmp_path):
        db = small_study.database
        path = tmp_path / "reports.jsonl"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.mismatch_count == db.mismatch_count
        assert loaded.matched_count == db.matched_count
        assert loaded.totals_by_country() == db.totals_by_country()
        assert loaded.totals_by_host_type() == db.totals_by_host_type()

    def test_round_trip_records_identical(self, small_study, tmp_path):
        db = small_study.database
        path = tmp_path / "reports.jsonl"
        save_database(db, path)
        loaded = load_database(path)
        original = sorted(db.records, key=lambda r: r.leaf.fingerprint)
        restored = sorted(loaded.records, key=lambda r: r.leaf.fingerprint)
        assert original == restored

    def test_round_trip_failures(self, small_study, tmp_path):
        db = small_study.database
        db.failures.policy_denied = 7
        path = tmp_path / "reports.jsonl"
        save_database(db, path)
        assert load_database(path).failures.policy_denied == 7

    def test_analysis_identical_after_reload(self, small_study, tmp_path):
        from repro.analysis import classification_table

        path = tmp_path / "reports.jsonl"
        save_database(small_study.database, path)
        loaded = load_database(path)
        assert classification_table(loaded) == classification_table(
            small_study.database
        )

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "failures"}\n')
        with pytest.raises(ValueError, match="header"):
            load_database(path)

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="bad JSON"):
            load_database(path)

    def test_count_mismatch_rejected(self, small_study, tmp_path):
        path = tmp_path / "reports.jsonl"
        save_database(small_study.database, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["mismatch_count"] += 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="mismatch count"):
            load_database(path)

    def test_unknown_row_type_rejected(self, small_study, tmp_path):
        path = tmp_path / "reports.jsonl"
        save_database(small_study.database, path)
        with path.open("a") as handle:
            handle.write('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown row type"):
            load_database(path)


class TestCli:
    def test_study1_runs_and_prints_tables(self, capsys, tmp_path):
        export = tmp_path / "db.jsonl"
        code = main(
            [
                "study1",
                "--scale",
                "0.002",
                "--seed",
                "3",
                "--export",
                str(export),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 3" in out
        assert "Table 5" in out
        assert "Bitdefender" in out
        assert export.exists()
        assert load_database(export).total_measurements > 0

    def test_study2_prints_host_types_and_heatmap(self, capsys):
        code = main(["study2", "--scale", "0.001", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 7" in out
        assert "Table 8" in out
        assert "Figure 7" in out

    def test_scan_selects_table1_sites(self, capsys):
        code = main(["scan", "--universe", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "qq.com" in out
        assert "airdroid.com" in out

    def test_ablation_matrix(self, capsys):
        code = main(["ablation"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bypassed-local-root" in out
        assert "rogue-ca" in out
        assert "flagged" in out

    def test_whitelist_command(self, capsys):
        code = main(["whitelist", "--sessions", "30000", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "facebook-class rate" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWhitelistExperiment:
    def test_rates_reproduce_both_papers(self):
        result = run_whitelist_experiment(seed=5, sessions=150_000)
        assert 0.0030 < result.low_profile_rate < 0.0055
        assert 0.0010 < result.high_profile_rate < 0.0032
        assert result.rate_ratio > 1.4

    def test_whitelisting_products_listed(self):
        result = run_whitelist_experiment(seed=5, sessions=1000)
        assert "bitdefender" in result.whitelisting_products
        assert "eset" in result.whitelisting_products
        assert "kurupira" not in result.whitelisting_products
