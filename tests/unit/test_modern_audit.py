"""Unit tests for the TLS 1.3-era audit checks.

The version-aware battery: a 2020-era browser profile offers TLS 1.3
via supported_versions, and the server leg gains three graded checks —
ALPN answer, resumption honouring (a double probe presenting back the
product's own session id), and TLS 1.3 downgrade posture with the
RFC 8446 sentinel.
"""

import pytest

from repro.audit import (
    ALPN_MISMATCH_KEY,
    AuditHarness,
    ModernLegObservation,
    OUTCOME_DIVERGENT,
    OUTCOME_DOWNGRADED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_WEAK,
    RESUMPTION_KEY,
    ServerLegObservation,
    TLS13_DOWNGRADE_KEY,
    build_server_checks,
)
from repro.data.products import catalog_by_key
from repro.proxy import AlpnPolicy, ProxyCategory, ProxyProfile
from repro.proxy.profile import ServerSessionPolicy
from repro.tls import codec
from repro.x509 import Name

MODERN_KEYS = (ALPN_MISMATCH_KEY, RESUMPTION_KEY, TLS13_DOWNGRADE_KEY)


@pytest.fixture(scope="module")
def harness():
    return AuditHarness(seed=23, pki_key_bits=512, browser="chrome-2020")


@pytest.fixture(scope="module")
def legacy_harness():
    return AuditHarness(seed=23, pki_key_bits=512)


def modern_profile(**overrides):
    """A product with a fully modern TLS posture."""
    defaults = dict(
        key="modern-test-product",
        issuer=Name.build(common_name="Modern CA", organization="ModernTest"),
        category=ProxyCategory.BUSINESS_FIREWALL,
        leaf_key_bits=512,
        ca_key_bits=512,
        max_tls_version=codec.TLS_1_3,
        alpn=AlpnPolicy.ECHO,
        server_session_id=ServerSessionPolicy.FRESH,
        issues_session_tickets=True,
        resumes_sessions=True,
    )
    defaults.update(overrides)
    return ProxyProfile(**defaults)


def modern_rows(card):
    return {
        check.scenario: check
        for check in card.server_checks
        if check.scenario in MODERN_KEYS
    }


class TestEngineTls13Negotiation:
    def test_modern_product_negotiates_tls13(self, harness):
        probe = harness.run_mimicry(modern_profile())
        modern = probe.server_leg.modern
        assert modern is not None
        assert modern.offered_max_version == codec.TLS_1_3
        assert modern.negotiated_version == codec.TLS_1_3
        assert not modern.downgrade_sentinel

    def test_legacy_product_downgrades_silently(self, harness):
        probe = harness.run_mimicry(modern_profile(max_tls_version=codec.TLS_1_2))
        modern = probe.server_leg.modern
        assert modern.negotiated_version == codec.TLS_1_2
        assert not modern.downgrade_sentinel

    def test_downgrade_knob_with_sentinel(self, harness):
        probe = harness.run_mimicry(
            modern_profile(
                downgrade_tls13=True,
                sets_downgrade_sentinel=True,
            )
        )
        modern = probe.server_leg.modern
        assert modern.negotiated_version == codec.TLS_1_2
        assert modern.downgrade_sentinel

    def test_legacy_browser_observes_no_modern_leg(self, legacy_harness):
        probe = legacy_harness.run_mimicry(modern_profile())
        assert probe.server_leg.modern is None
        keys = {check.scenario for check in build_server_checks(probe.server_leg)}
        assert not (set(MODERN_KEYS) & keys)


class TestAlpnPolicies:
    def test_echo_answers_h2(self, harness):
        probe = harness.run_mimicry(modern_profile(alpn=AlpnPolicy.ECHO))
        assert probe.server_leg.modern.served_alpn == "h2"

    def test_own_answers_http11(self, harness):
        probe = harness.run_mimicry(modern_profile(alpn=AlpnPolicy.OWN))
        assert probe.server_leg.modern.served_alpn == "http/1.1"

    def test_strip_answers_nothing(self, harness):
        probe = harness.run_mimicry(modern_profile(alpn=AlpnPolicy.STRIP))
        assert probe.server_leg.modern.served_alpn is None


class TestResumptionProbe:
    def test_honouring_product_echoes_its_own_id(self, harness):
        probe = harness.run_mimicry(modern_profile())
        modern = probe.server_leg.modern
        assert modern.session_id_issued
        assert modern.resumption_honoured is True

    def test_refusing_product_is_caught(self, harness):
        probe = harness.run_mimicry(modern_profile(resumes_sessions=False))
        modern = probe.server_leg.modern
        assert modern.session_id_issued
        assert modern.resumption_honoured is False


class TestModernGrading:
    def test_fully_modern_product_earns_all_three(self, harness):
        card = harness.audit_product(modern_profile())
        rows = modern_rows(card)
        assert len(rows) == 3
        for check in rows.values():
            assert check.outcome == OUTCOME_OK
            assert check.points == 1.0

    def test_disclosed_downgrade_earns_half(self, harness):
        card = harness.audit_product(
            modern_profile(downgrade_tls13=True, sets_downgrade_sentinel=True)
        )
        check = modern_rows(card)[TLS13_DOWNGRADE_KEY]
        assert check.outcome == OUTCOME_DOWNGRADED
        assert check.points == 0.5
        assert "sentinel" in check.evidence

    def test_silent_downgrade_fails(self, harness):
        card = harness.audit_product(modern_profile(max_tls_version=codec.TLS_1_2))
        check = modern_rows(card)[TLS13_DOWNGRADE_KEY]
        assert check.outcome == OUTCOME_DOWNGRADED
        assert check.points == 0.0

    def test_alpn_strip_fails(self, harness):
        card = harness.audit_product(modern_profile(alpn=AlpnPolicy.STRIP))
        check = modern_rows(card)[ALPN_MISMATCH_KEY]
        assert check.outcome == OUTCOME_DIVERGENT
        assert check.points == 0.0

    def test_refused_resumption_fails_with_evidence(self, harness):
        card = harness.audit_product(modern_profile(resumes_sessions=False))
        check = modern_rows(card)[RESUMPTION_KEY]
        assert check.outcome == OUTCOME_DIVERGENT
        assert check.points == 0.0
        assert "refuses" in check.evidence


class TestModernCheckBuilder:
    """Direct grading-table coverage for ModernLegObservation corners."""

    def _observation(self, **overrides):
        defaults = dict(
            expected_alpn="h2",
            served_alpn="h2",
            offered_max_version=codec.TLS_1_3,
            negotiated_version=codec.TLS_1_3,
            downgrade_sentinel=False,
            session_id_issued=True,
            resumption_honoured=True,
        )
        defaults.update(overrides)
        return ServerLegObservation(
            browser="chrome-2020",
            expected_ja3s="x",
            observed_ja3s="x",
            divergent_fields=(),
            chosen_cipher=0x1301,
            cipher_rank=1,
            expected_cipher=0x1301,
            extension_types=(43, 51, 16, 35),
            expected_extension_types=(43, 51, 16, 35),
            offered_version=codec.TLS_1_2,
            echoed_version=codec.TLS_1_2,
            compression_method=0,
            session_id_length=32,
            modern=ModernLegObservation(**defaults),
        )

    def _check(self, key, **overrides):
        checks = build_server_checks(self._observation(**overrides))
        return {check.scenario: check for check in checks}[key]

    def test_never_issuing_sessions_is_weak(self):
        check = self._check(
            RESUMPTION_KEY, session_id_issued=False, resumption_honoured=False
        )
        assert check.outcome == OUTCOME_WEAK
        assert "never issues" in check.evidence

    def test_failed_resume_probe_is_error(self):
        check = self._check(
            RESUMPTION_KEY,
            resumption_honoured=None,
            resumption_error="connect: refused",
        )
        assert check.outcome == OUTCOME_ERROR
        assert "connect: refused" in check.evidence

    def test_probe_error_emits_all_eight_rows(self):
        observation = ServerLegObservation(
            browser="chrome-2020",
            expected_ja3s="x",
            observed_ja3s=None,
            divergent_fields=(),
            chosen_cipher=None,
            cipher_rank=None,
            expected_cipher=0x1301,
            extension_types=(),
            expected_extension_types=(),
            offered_version=codec.TLS_1_2,
            echoed_version=None,
            compression_method=None,
            session_id_length=None,
            error="probe fell over",
            modern=ModernLegObservation(
                expected_alpn="h2",
                served_alpn=None,
                offered_max_version=codec.TLS_1_3,
                negotiated_version=None,
                downgrade_sentinel=False,
                session_id_issued=False,
                resumption_honoured=None,
            ),
        )
        checks = build_server_checks(observation)
        assert len(checks) == 8
        assert all(check.outcome == OUTCOME_ERROR for check in checks)
        assert set(MODERN_KEYS) <= {check.scenario for check in checks}


class TestCatalogAnchors:
    """The catalog postures the acceptance criteria pin."""

    @pytest.fixture(scope="class")
    def cards(self, harness):
        return {
            key: harness.audit_product(catalog_by_key()[key].profile)
            for key in ("bitdefender", "eset", "fortinet", "kurupira")
        }

    def test_bitdefender_and_eset_pass_all_three(self, cards):
        for key in ("bitdefender", "eset"):
            for check in modern_rows(cards[key]).values():
                assert check.points == 1.0, (key, check.scenario)

    def test_fortinet_disclosed_downgrade(self, cards):
        rows = modern_rows(cards["fortinet"])
        assert rows[TLS13_DOWNGRADE_KEY].points == 0.5
        assert rows[ALPN_MISMATCH_KEY].points == 0.0
        assert rows[RESUMPTION_KEY].points == 0.0

    def test_kurupira_fails_each(self, cards):
        for check in modern_rows(cards["kurupira"]).values():
            assert check.points == 0.0, check.scenario

    def test_every_product_grades_all_three(self, harness):
        for key, spec in catalog_by_key().items():
            card = harness.audit_product(spec.profile)
            assert len(modern_rows(card)) == 3, key

    def test_modern_json_round_trip(self, cards):
        data = cards["bitdefender"].to_dict()
        modern = data["server_leg"]["modern"]
        assert modern["negotiated_version"] == [3, 4]
        assert modern["served_alpn"] == "h2"
        assert modern["resumption_honoured"] is True

    def test_detection_reasons_gain_modern_signals(self, harness):
        entry_ok = harness.survey_product(catalog_by_key()["bitdefender"])
        assert "alpn" not in entry_ok.detection_reasons
        assert "tls13-downgrade" not in entry_ok.detection_reasons
        entry_bad = harness.survey_product(catalog_by_key()["kurupira"])
        assert "alpn" in entry_bad.detection_reasons
        assert "tls13-downgrade" in entry_bad.detection_reasons
