"""Unit tests for Flash socket policy files, server and scanner."""

import pytest

from repro.netsim import Network
from repro.policy import (
    PolicyError,
    PolicyFile,
    PolicyRule,
    PolicyScanner,
    PolicyServer,
    fetch_policy,
)


class TestPolicyRule:
    def test_wildcard_domain(self):
        rule = PolicyRule(domain="*", to_ports="443")
        assert rule.permits("anything.example", 443)

    def test_exact_domain(self):
        rule = PolicyRule(domain="a.example", to_ports="*")
        assert rule.permits("a.example", 1)
        assert not rule.permits("b.example", 1)

    def test_subdomain_wildcard(self):
        rule = PolicyRule(domain="*.example.com", to_ports="*")
        assert rule.permits("www.example.com", 80)
        assert rule.permits("example.com", 80)
        assert not rule.permits("example.org", 80)

    def test_port_list(self):
        rule = PolicyRule(to_ports="80,443")
        assert rule.permits("x", 443)
        assert rule.permits("x", 80)
        assert not rule.permits("x", 8080)

    def test_port_range(self):
        rule = PolicyRule(to_ports="440-450")
        assert rule.permits("x", 443)
        assert not rule.permits("x", 439)

    def test_garbage_port_entries_ignored(self):
        rule = PolicyRule(to_ports="abc,443,x-y")
        assert rule.permits("x", 443)
        assert not rule.permits("x", 80)


class TestPolicyFile:
    def test_xml_round_trip(self):
        policy = PolicyFile(
            (PolicyRule("*", "443"), PolicyRule("*.byu.edu", "80,443"))
        )
        parsed = PolicyFile.from_xml(policy.to_xml())
        assert parsed == policy

    def test_permissive_factory(self):
        policy = PolicyFile.permissive()
        assert policy.is_permissive_for_tls

    def test_restrictive_policy_not_permissive(self):
        policy = PolicyFile((PolicyRule(domain="partner.example", to_ports="443"),))
        assert not policy.is_permissive_for_tls

    def test_empty_policy_denies(self):
        assert not PolicyFile().permits("x", 443)

    def test_bad_xml_rejected(self):
        with pytest.raises(PolicyError):
            PolicyFile.from_xml("<not-even-xml")

    def test_wrong_root_rejected(self):
        with pytest.raises(PolicyError):
            PolicyFile.from_xml("<something-else/>")

    def test_unknown_elements_ignored(self):
        xml = (
            "<cross-domain-policy><site-control permitted-cross-domain-policies"
            '="master-only"/><allow-access-from domain="*" to-ports="443"/>'
            "</cross-domain-policy>"
        )
        policy = PolicyFile.from_xml(xml)
        assert policy.is_permissive_for_tls


class TestPolicyServer:
    def build(self, policy, port=843):
        net = Network()
        client = net.add_host("client.example")
        server_host = net.add_host("site.example")
        server = PolicyServer(policy)
        server_host.listen(port, server.factory)
        return net, client, server

    def test_fetch_round_trip(self):
        policy = PolicyFile.permissive("443")
        net, client, server = self.build(policy)
        fetched = fetch_policy(client, "site.example")
        assert fetched == policy
        assert server.requests_served == 1

    def test_fetch_on_alternate_port(self):
        policy = PolicyFile.permissive()
        net, client, _ = self.build(policy, port=80)
        assert fetch_policy(client, "site.example", port=80) == policy

    def test_non_policy_request_hangs_up(self):
        net, client, server = self.build(PolicyFile.permissive())
        sock = client.connect("site.example", 843)
        sock.send(b"GET / HTTP/1.1\r\n\r\n plus some extra to exceed length")
        assert sock.closed or sock.recv() == b""
        assert server.requests_served == 0

    def test_fetch_garbage_policy_raises(self):
        net = Network()
        client = net.add_host("client.example")
        bad_host = net.add_host("bad.example")

        class Garbage(PolicyServer):
            def data_received(self, sock, data):
                sock.send(b"<<<definitely not xml>>>\x00")
                sock.close()

        bad_host.listen(843, lambda: Garbage(PolicyFile()))
        with pytest.raises(PolicyError):
            fetch_policy(client, "bad.example")


class TestScanner:
    def build_universe(self):
        net = Network()
        client = net.add_host("scanner.example")
        permissive = PolicyFile.permissive("443")
        restrictive = PolicyFile((PolicyRule(domain="own.example", to_ports="80"),))

        sites = [
            ("qq.com", 9, "popular", permissive),
            ("big-closed.com", 1, "popular", None),
            ("promodj.com", 3500, "popular", permissive),
            ("locked.com", 10, "business", restrictive),
            ("airdroid.com", 30000, "business", permissive),
            ("pornclipstv.com", 90000, "porn", permissive),
        ]
        for hostname, _, _, policy in sites:
            host = net.add_host(hostname)
            if policy is not None:
                server = PolicyServer(policy)
                host.listen(843, server.factory)
        return client, [(h, r, c) for h, r, c, _ in sites]

    def test_scan_classifies_sites(self):
        client, sites = self.build_universe()
        scanner = PolicyScanner(client)
        results = {r.hostname: r for r in scanner.scan(sites)}
        assert results["qq.com"].permissive
        assert not results["big-closed.com"].has_policy
        assert results["locked.com"].has_policy
        assert not results["locked.com"].permissive

    def test_selection_prefers_rank(self):
        client, sites = self.build_universe()
        scanner = PolicyScanner(client)
        results = scanner.scan(sites)
        selected = scanner.select_probe_sites(
            results, {"popular": 1, "business": 1, "porn": 1}
        )
        assert [s.hostname for s in selected["popular"]] == ["qq.com"]
        assert [s.hostname for s in selected["business"]] == ["airdroid.com"]
        assert [s.hostname for s in selected["porn"]] == ["pornclipstv.com"]

    def test_selection_respects_count(self):
        client, sites = self.build_universe()
        scanner = PolicyScanner(client)
        results = scanner.scan(sites)
        selected = scanner.select_probe_sites(results, {"popular": 5})
        assert len(selected["popular"]) == 2  # only two permissive popular sites
