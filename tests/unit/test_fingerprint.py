"""Unit tests for ClientHello fingerprinting and browser profiles."""

import pytest

from repro.tls import codec
from repro.tls.codec import ClientHello
from repro.tls.fingerprint import (
    BROWSER_PROFILES,
    browser_profile,
    build_own_stack_extensions,
    encode_groups_body,
    encode_point_formats_body,
    fingerprint_client_hello,
    fingerprint_divergence,
    parse_groups_body,
    parse_point_formats_body,
)


class TestFingerprint:
    def test_ja3_string_layout(self):
        hello = ClientHello(
            client_random=bytes(32),
            version=(3, 3),
            cipher_suites=(0x002F, 0xC013),
            extensions=(
                (codec.EXT_SERVER_NAME, codec.encode_sni_extension_body("a.example")),
                (codec.EXT_SUPPORTED_GROUPS, encode_groups_body((23, 24))),
                (codec.EXT_EC_POINT_FORMATS, encode_point_formats_body((0,))),
            ),
        )
        fp = fingerprint_client_hello(hello)
        assert fp.ja3_string() == "771,47-49171,0-10-11,23-24,0"
        assert len(fp.digest()) == 32

    def test_fingerprint_ignores_randoms_and_sni_host(self):
        profile = browser_profile("firefox")
        a = profile.client_hello(bytes(32), "one.example")
        b = profile.client_hello(bytes([7] * 32), "two.example")
        assert fingerprint_client_hello(a) == fingerprint_client_hello(b)

    def test_divergence_names_differing_dimensions(self):
        chrome = browser_profile("chrome").fingerprint()
        safari = browser_profile("safari").fingerprint()
        diverging = fingerprint_divergence(chrome, safari)
        assert "cipher_suites" in diverging
        assert "version" not in diverging
        assert fingerprint_divergence(chrome, chrome) == ()

    def test_group_and_point_format_bodies_round_trip(self):
        assert parse_groups_body(encode_groups_body((23, 24, 25))) == (23, 24, 25)
        assert parse_point_formats_body(encode_point_formats_body((0, 1))) == (0, 1)
        assert parse_groups_body(b"") == ()
        assert parse_point_formats_body(b"") == ()


class TestBrowserRegistry:
    def test_four_profiles_with_distinct_fingerprints(self):
        assert set(BROWSER_PROFILES) == {"chrome", "firefox", "ie", "safari"}
        digests = {p.fingerprint().digest() for p in BROWSER_PROFILES.values()}
        assert len(digests) == 4

    def test_profiles_round_trip_losslessly(self):
        for profile in BROWSER_PROFILES.values():
            hello = profile.client_hello(bytes(32), "probe.example")
            body = hello.to_handshake().body
            decoded = ClientHello.from_body(body)
            assert decoded == hello
            assert decoded.to_handshake().body == body
            assert decoded.server_name == "probe.example"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown browser profile"):
            browser_profile("netscape")


class TestOwnStackExtensions:
    def test_sni_only_default_matches_historical_shape(self):
        exts = build_own_stack_extensions((codec.EXT_SERVER_NAME,), "x.example")
        assert exts == (
            (codec.EXT_SERVER_NAME, codec.encode_sni_extension_body("x.example")),
        )

    def test_no_server_name_yields_no_block(self):
        assert build_own_stack_extensions((codec.EXT_SERVER_NAME,), None) is None

    def test_explicit_empty_stack_sends_no_extension_block(self):
        """A pre-extension stack (empty type list) yields None — no
        extensions block on the wire, not an empty one."""
        assert build_own_stack_extensions((), "x.example") is None

    def test_canned_bodies_for_known_types(self):
        exts = build_own_stack_extensions(
            (codec.EXT_SUPPORTED_GROUPS, codec.EXT_EC_POINT_FORMATS, 0xABCD), None
        )
        assert exts is not None
        by_type = dict(exts)
        assert parse_groups_body(by_type[codec.EXT_SUPPORTED_GROUPS]) == (23, 24, 25)
        assert by_type[0xABCD] == b""
