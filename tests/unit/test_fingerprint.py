"""Unit tests for ClientHello fingerprinting and browser profiles."""

import pytest

from repro.tls import codec
from repro.tls.codec import ClientHello, ServerHello
from repro.tls.fingerprint import (
    BROWSER_PROFILES,
    CANONICAL_SERVER_EXTENSION_TYPES,
    LEGACY_BROWSER_KEYS,
    MODERN_BROWSER_KEYS,
    MODERN_SERVER_EXTENSION_TYPES,
    browser_profile,
    build_modern_server_extensions,
    build_own_server_extensions,
    build_own_stack_extensions,
    encode_groups_body,
    encode_point_formats_body,
    fingerprint_client_hello,
    fingerprint_divergence,
    fingerprint_server_hello,
    origin_alpn_selection,
    parse_groups_body,
    parse_point_formats_body,
    server_fingerprint_divergence,
)


class TestFingerprint:
    def test_ja3_string_layout(self):
        hello = ClientHello(
            client_random=bytes(32),
            version=(3, 3),
            cipher_suites=(0x002F, 0xC013),
            extensions=(
                (codec.EXT_SERVER_NAME, codec.encode_sni_extension_body("a.example")),
                (codec.EXT_SUPPORTED_GROUPS, encode_groups_body((23, 24))),
                (codec.EXT_EC_POINT_FORMATS, encode_point_formats_body((0,))),
            ),
        )
        fp = fingerprint_client_hello(hello)
        assert fp.ja3_string() == "771,47-49171,0-10-11,23-24,0"
        assert len(fp.digest()) == 32

    def test_fingerprint_ignores_randoms_and_sni_host(self):
        profile = browser_profile("firefox")
        a = profile.client_hello(bytes(32), "one.example")
        b = profile.client_hello(bytes([7] * 32), "two.example")
        assert fingerprint_client_hello(a) == fingerprint_client_hello(b)

    def test_divergence_names_differing_dimensions(self):
        chrome = browser_profile("chrome").fingerprint()
        safari = browser_profile("safari").fingerprint()
        diverging = fingerprint_divergence(chrome, safari)
        assert "cipher_suites" in diverging
        assert "version" not in diverging
        assert fingerprint_divergence(chrome, chrome) == ()

    def test_group_and_point_format_bodies_round_trip(self):
        assert parse_groups_body(encode_groups_body((23, 24, 25))) == (23, 24, 25)
        assert parse_point_formats_body(encode_point_formats_body((0, 1))) == (0, 1)
        assert parse_groups_body(b"") == ()
        assert parse_point_formats_body(b"") == ()


class TestBrowserRegistry:
    def test_both_eras_registered_with_distinct_fingerprints(self):
        assert set(BROWSER_PROFILES) == set(LEGACY_BROWSER_KEYS) | set(
            MODERN_BROWSER_KEYS
        )
        digests = {p.fingerprint().digest() for p in BROWSER_PROFILES.values()}
        assert len(digests) == len(BROWSER_PROFILES)

    def test_modern_profiles_offer_tls13_legacy_do_not(self):
        for key in MODERN_BROWSER_KEYS:
            assert browser_profile(key).offers_tls13, key
        for key in LEGACY_BROWSER_KEYS:
            assert not browser_profile(key).offers_tls13, key

    def test_profiles_round_trip_losslessly(self):
        for profile in BROWSER_PROFILES.values():
            hello = profile.client_hello(bytes(32), "probe.example")
            body = hello.to_handshake().body
            decoded = ClientHello.from_body(body)
            assert decoded == hello
            assert decoded.to_handshake().body == body
            assert decoded.server_name == "probe.example"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown browser profile"):
            browser_profile("netscape")


class TestOwnStackExtensions:
    def test_sni_only_default_matches_historical_shape(self):
        exts = build_own_stack_extensions((codec.EXT_SERVER_NAME,), "x.example")
        assert exts == (
            (codec.EXT_SERVER_NAME, codec.encode_sni_extension_body("x.example")),
        )

    def test_no_server_name_yields_no_block(self):
        assert build_own_stack_extensions((codec.EXT_SERVER_NAME,), None) is None

    def test_explicit_empty_stack_sends_no_extension_block(self):
        """A pre-extension stack (empty type list) yields None — no
        extensions block on the wire, not an empty one."""
        assert build_own_stack_extensions((), "x.example") is None

    def test_canned_bodies_for_known_types(self):
        exts = build_own_stack_extensions(
            (codec.EXT_SUPPORTED_GROUPS, codec.EXT_EC_POINT_FORMATS, 0xABCD), None
        )
        assert exts is not None
        by_type = dict(exts)
        assert parse_groups_body(by_type[codec.EXT_SUPPORTED_GROUPS]) == (23, 24, 25)
        assert by_type[0xABCD] == b""


class TestServerFingerprint:
    def test_ja3s_string_layout(self):
        hello = ServerHello(
            server_random=bytes(32),
            cipher_suite=0xC02F,
            version=(3, 3),
            extensions=(
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
                (codec.EXT_SESSION_TICKET, b""),
            ),
        )
        fp = fingerprint_server_hello(hello)
        assert fp.ja3s_string() == "771,49199,65281-35"
        assert len(fp.digest()) == 32

    def test_fingerprint_ignores_random_and_session_id(self):
        a = ServerHello(server_random=bytes(32), cipher_suite=0x002F)
        b = ServerHello(
            server_random=bytes([9] * 32),
            cipher_suite=0x002F,
            session_id=b"\x01" * 32,
        )
        assert fingerprint_server_hello(a) == fingerprint_server_hello(b)

    def test_divergence_names_differing_dimensions(self):
        expected = browser_profile("chrome").server_fingerprint()
        observed = fingerprint_server_hello(
            ServerHello(
                server_random=bytes(32), cipher_suite=0x002F, version=(3, 1)
            )
        )
        diverging = server_fingerprint_divergence(expected, observed)
        assert diverging == ("version", "cipher_suite", "extension_types")
        assert server_fingerprint_divergence(expected, expected) == ()


class TestExpectedServerResponses:
    def test_every_profile_expects_an_offered_rsa_suite(self):
        """The expected origin answer must be drawn from the browser's
        own offer — an origin cannot choose an un-offered suite."""
        for profile in BROWSER_PROFILES.values():
            assert profile.expected_server_cipher in profile.cipher_suites
            assert profile.expected_server_cipher not in codec.WEAK_CIPHER_SUITES

    def test_expected_extensions_are_subset_of_offer(self):
        """A server may only answer extensions the client offered."""
        for profile in BROWSER_PROFILES.values():
            offered = {ext_type for ext_type, _ in profile.extensions}
            assert set(profile.expected_server_extension_types) <= offered

    def test_expected_answer_is_canonical_filtered_by_offer(self):
        """Each browser's expectation is its era's canonical origin
        answer restricted to that browser's offer, in canonical order."""
        for key in LEGACY_BROWSER_KEYS:
            profile = browser_profile(key)
            offered = {ext_type for ext_type, _ in profile.extensions}
            filtered = tuple(
                t for t in CANONICAL_SERVER_EXTENSION_TYPES if t in offered
            )
            assert profile.expected_server_extension_types == filtered
        for key in MODERN_BROWSER_KEYS:
            profile = browser_profile(key)
            offered = {ext_type for ext_type, _ in profile.extensions}
            # The modern answer is protocol-determined; a browser must
            # still have offered the answerable slots (ALPN, tickets).
            assert (
                profile.expected_server_extension_types
                == MODERN_SERVER_EXTENSION_TYPES
            )
            assert codec.EXT_ALPN in offered
            assert codec.EXT_SESSION_TICKET in offered
            assert codec.EXT_KEY_SHARE in offered

    def test_server_fingerprints_distinct_across_browsers(self):
        digests = {
            p.server_fingerprint().digest() for p in BROWSER_PROFILES.values()
        }
        # chrome and firefox expect the same answer; ie and safari
        # differ; the three modern browsers share one expectation.
        assert len(digests) == 4

    def test_modern_profiles_expect_h2_legacy_expect_nothing(self):
        for key in MODERN_BROWSER_KEYS:
            assert browser_profile(key).expected_alpn == "h2"
        for key in LEGACY_BROWSER_KEYS:
            assert browser_profile(key).expected_alpn is None


class TestOwnServerExtensions:
    def _chrome_hello(self):
        return browser_profile("chrome").client_hello(bytes(32), "x.example")

    def test_mimic_config_reproduces_expected_answer(self):
        """The canonical server set against a 2014 browser offer yields
        exactly that browser's expected extension answer."""
        for key in LEGACY_BROWSER_KEYS:
            profile = browser_profile(key)
            hello = profile.client_hello(bytes(32), "x.example")
            built = build_own_server_extensions(
                CANONICAL_SERVER_EXTENSION_TYPES, hello
            )
            assert built is not None
            assert (
                tuple(t for t, _ in built)
                == profile.expected_server_extension_types
            )

    def test_modern_answer_reproduces_expected_answer(self):
        """The protocol-determined TLS 1.3 answer against a modern
        browser offer yields exactly its expected extension answer."""
        for key in MODERN_BROWSER_KEYS:
            profile = browser_profile(key)
            hello = profile.client_hello(bytes(32), "x.example")
            built = build_modern_server_extensions(
                hello,
                alpn_protocol=origin_alpn_selection(hello),
                grant_session_ticket=True,
            )
            assert (
                tuple(t for t, _ in built)
                == profile.expected_server_extension_types
            )
            by_type = dict(built)
            assert by_type[codec.EXT_SUPPORTED_VERSIONS] == bytes(codec.TLS_1_3)
            assert codec.parse_alpn_body(by_type[codec.EXT_ALPN]) == ("h2",)

    def test_unoffered_types_filtered_out(self):
        hello = ClientHello(client_random=bytes(32), server_name="x.example")
        built = build_own_server_extensions(
            (codec.EXT_RENEGOTIATION_INFO, codec.EXT_SESSION_TICKET), hello
        )
        assert built is None

    def test_canned_server_bodies(self):
        built = build_own_server_extensions(
            CANONICAL_SERVER_EXTENSION_TYPES, self._chrome_hello()
        )
        by_type = dict(built)
        assert by_type[codec.EXT_RENEGOTIATION_INFO] == b"\x00"
        assert by_type[codec.EXT_SESSION_TICKET] == b""
        assert by_type[codec.EXT_ALPN] == b"\x00\x09\x08http/1.1"
        assert parse_point_formats_body(by_type[codec.EXT_EC_POINT_FORMATS]) == (0,)


class TestOriginCipherNegotiation:
    def test_negotiation_reproduces_expected_cipher_per_browser(self):
        """negotiate_origin_cipher over each browser's offer must land
        on that browser's declared expected_server_cipher — the
        property that lets a negotiating mimic stay hidden against
        every browser instead of one."""
        from repro.tls.fingerprint import negotiate_origin_cipher

        for profile in BROWSER_PROFILES.values():
            hello = profile.client_hello(bytes(32), "x.example")
            negotiated = negotiate_origin_cipher(
                hello, tls13=profile.offers_tls13
            )
            assert negotiated == profile.expected_server_cipher

    def test_negotiation_skips_ecdsa_and_falls_back(self):
        from repro.tls.fingerprint import negotiate_origin_cipher

        ecdsa_only = ClientHello(
            client_random=bytes(32),
            server_name="x.example",
            cipher_suites=(0xC02B, 0xC00A, 0xC009),
        )
        assert negotiate_origin_cipher(ecdsa_only) == 0x002F
        mixed = ClientHello(
            client_random=bytes(32),
            server_name="x.example",
            cipher_suites=(0xC02B, 0xC014, 0xC02F),
        )
        assert negotiate_origin_cipher(mixed) == 0xC014

    def test_tls13_negotiation_takes_first_offered_13_suite(self):
        from repro.tls.fingerprint import negotiate_origin_cipher

        hello = browser_profile("firefox-2020").client_hello(
            bytes(32), "x.example"
        )
        assert negotiate_origin_cipher(hello, tls13=True) == 0x1301
        # No 1.3 suite offered → era baseline fallback.
        legacy = browser_profile("chrome").client_hello(bytes(32), "x.example")
        assert negotiate_origin_cipher(legacy, tls13=True) == 0x1301


class TestGreaseFiltering:
    """JA3/JA3S must filter RFC 8701 GREASE values (regression pin).

    GREASE values exist to vary per connection; a fingerprint that
    kept them would make the same browser hash differently every
    handshake.  The codec still round-trips them losslessly — only
    the JA3 string drops them.
    """

    def _hello(self, grease: bool) -> ClientHello:
        extensions = [
            (codec.EXT_SERVER_NAME, codec.encode_sni_extension_body("g.example")),
            (codec.EXT_SUPPORTED_GROUPS,
             encode_groups_body(((0x2A2A, 23, 24) if grease else (23, 24)))),
            (codec.EXT_EC_POINT_FORMATS, encode_point_formats_body((0,))),
        ]
        if grease:
            extensions.insert(0, (0x2A2A, b""))
        return ClientHello(
            client_random=bytes(32),
            server_name="g.example",
            version=(3, 3),
            cipher_suites=(0x2A2A, 0x002F, 0xC013) if grease else (0x002F, 0xC013),
            extensions=tuple(extensions),
        )

    def test_grease_twin_hellos_hash_identically(self):
        with_grease = fingerprint_client_hello(self._hello(grease=True))
        without = fingerprint_client_hello(self._hello(grease=False))
        assert with_grease == without
        assert with_grease.digest() == without.digest()
        # Pinned: identical to the pre-GREASE layout pin above.
        assert with_grease.ja3_string() == "771,47-49171,0-10-11,23-24,0"

    def test_grease_survives_codec_round_trip(self):
        hello = self._hello(grease=True)
        decoded = ClientHello.from_body(hello.to_handshake().body)
        assert decoded == hello
        assert 0x2A2A in decoded.cipher_suites
        assert 0x2A2A in decoded.extension_types

    def test_chrome_2020_ja3_carries_no_grease(self):
        fp = browser_profile("chrome-2020").fingerprint()
        for value in fp.cipher_suites + fp.extension_types + fp.groups:
            assert not codec.is_grease(value), value
        # The same draw twice — GREASE pinned, so stable by
        # construction — and the digest survives a codec round trip.
        hello = browser_profile("chrome-2020").client_hello(bytes(32), "x.example")
        decoded = ClientHello.from_body(hello.to_handshake().body)
        assert fingerprint_client_hello(decoded).digest() == fp.digest()

    def test_server_hello_grease_extension_filtered(self):
        hello = ServerHello(
            server_random=bytes(32),
            cipher_suite=0xC02F,
            version=(3, 3),
            extensions=((0x4A4A, b""), (codec.EXT_RENEGOTIATION_INFO, b"\x00")),
        )
        assert fingerprint_server_hello(hello).ja3s_string() == "771,49199,65281"
