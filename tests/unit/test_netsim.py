"""Unit tests for the network simulator."""

import pytest

from repro.netsim import (
    ConnectionRefused,
    ConnectionReset,
    Interceptor,
    NetsimError,
    Network,
    Protocol,
    StreamSocket,
)


class Echo(Protocol):
    """Echoes every byte back, uppercased."""

    def data_received(self, sock, data):
        sock.send(data.upper())


class Greeter(Protocol):
    def connection_made(self, sock):
        sock.send(b"hello")


class Closer(Protocol):
    def data_received(self, sock, data):
        sock.close()


class TestNetworkBasics:
    def test_add_and_lookup_host(self):
        net = Network()
        host = net.add_host("a.example", ip="10.0.0.1")
        assert net.host("a.example") is host
        assert net.host_by_ip("10.0.0.1") is host
        assert "a.example" in net

    def test_auto_ip_assignment_unique(self):
        net = Network()
        ips = {net.add_host(f"h{i}.example").ip for i in range(50)}
        assert len(ips) == 50

    def test_duplicate_hostname_rejected(self):
        net = Network()
        net.add_host("dup.example")
        with pytest.raises(NetsimError):
            net.add_host("dup.example")

    def test_unknown_host_refused(self):
        net = Network()
        client = net.add_host("client.example")
        with pytest.raises(ConnectionRefused):
            client.connect("nowhere.example", 80)
        assert net.connections_refused == 1

    def test_no_listener_refused(self):
        net = Network()
        client = net.add_host("client.example")
        net.add_host("server.example")
        with pytest.raises(ConnectionRefused):
            client.connect("server.example", 80)


class TestDataPath:
    def make_pair(self, protocol_factory):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("server.example")
        server_host.listen(80, protocol_factory)
        return net, client_host

    def test_synchronous_echo(self):
        net, client_host = self.make_pair(Echo)
        sock = client_host.connect("server.example", 80)
        sock.send(b"abc")
        assert sock.recv() == b"ABC"

    def test_connection_made_fires(self):
        net, client_host = self.make_pair(Greeter)
        sock = client_host.connect("server.example", 80)
        assert sock.recv() == b"hello"

    def test_recv_with_limit(self):
        net, client_host = self.make_pair(Echo)
        sock = client_host.connect("server.example", 80)
        sock.send(b"abcdef")
        assert sock.recv(2) == b"AB"
        assert sock.pending == 4
        assert sock.recv() == b"CDEF"

    def test_send_after_close_raises(self):
        net, client_host = self.make_pair(Echo)
        sock = client_host.connect("server.example", 80)
        sock.close()
        with pytest.raises(ConnectionReset):
            sock.send(b"x")

    def test_send_to_closed_peer_raises(self):
        net, client_host = self.make_pair(Closer)
        sock = client_host.connect("server.example", 80)
        sock.send(b"first")  # server closes during delivery; send completes
        with pytest.raises(ConnectionReset):
            sock.send(b"second")  # now the socket is observably dead

    def test_close_is_idempotent(self):
        net, client_host = self.make_pair(Echo)
        sock = client_host.connect("server.example", 80)
        sock.close()
        sock.close()

    def test_connection_counter(self):
        net, client_host = self.make_pair(Echo)
        for _ in range(3):
            client_host.connect("server.example", 80).close()
        assert net.connections_opened == 3

    def test_empty_send_is_noop(self):
        net, client_host = self.make_pair(Echo)
        sock = client_host.connect("server.example", 80)
        sock.send(b"")
        assert sock.recv() == b""


class Passthrough(Interceptor):
    """Intercepts port 80 and relays bytes to the real destination."""

    def __init__(self):
        self.seen = b""

    def intercepts(self, hostname, port):
        return port == 80

    def accept(self, network, client_sock, hostname, port):
        outer = self

        class Relay(Protocol):
            def __init__(self):
                self.upstream = None

            def data_received(self, sock, data):
                outer.seen += data
                if self.upstream is None:
                    proxy_host = network.host("proxybox.example")
                    self.upstream = network.connect_upstream(
                        proxy_host, hostname, port
                    )
                self.upstream.send(data)
                reply = self.upstream.recv()
                if reply:
                    sock.send(reply)

        client_sock.protocol = Relay()


class TestInterception:
    def test_interceptor_sees_and_relays(self):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("server.example")
        net.add_host("proxybox.example")
        server_host.listen(80, Echo)
        tap = Passthrough()
        client_host.add_interceptor(tap)

        sock = client_host.connect("server.example", 80)
        sock.send(b"secret")
        assert sock.recv() == b"SECRET"
        assert tap.seen == b"secret"
        assert net.connections_intercepted == 1

    def test_non_matching_port_not_intercepted(self):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("server.example")
        net.add_host("proxybox.example")
        server_host.listen(8443, Echo)
        tap = Passthrough()
        client_host.add_interceptor(tap)

        sock = client_host.connect("server.example", 8443)
        sock.send(b"direct")
        assert sock.recv() == b"DIRECT"
        assert tap.seen == b""
        assert net.connections_intercepted == 0

    def test_remove_interceptor(self):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("server.example")
        net.add_host("proxybox.example")
        server_host.listen(80, Echo)
        tap = Passthrough()
        client_host.add_interceptor(tap)
        client_host.remove_interceptor(tap)
        sock = client_host.connect("server.example", 80)
        sock.send(b"x")
        assert tap.seen == b""

    def test_first_matching_interceptor_wins(self):
        net = Network()
        client_host = net.add_host("client.example")
        server_host = net.add_host("server.example")
        net.add_host("proxybox.example")
        server_host.listen(80, Echo)
        first, second = Passthrough(), Passthrough()
        client_host.add_interceptor(first)
        client_host.add_interceptor(second)
        sock = client_host.connect("server.example", 80)
        sock.send(b"x")
        assert first.seen == b"x"
        assert second.seen == b""


class TestStreamSocketPair:
    def test_pair_without_network(self):
        a, b = StreamSocket.pair("a", "b")
        a.send(b"ping")
        assert b.recv() == b"ping"
        b.send(b"pong")
        assert a.recv() == b"pong"

    def test_bytes_sent_counter(self):
        a, b = StreamSocket.pair("a", "b")
        a.send(b"12345")
        assert a.bytes_sent == 5
        assert b.bytes_sent == 0
