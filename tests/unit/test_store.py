"""Unit tests for the segmented on-disk report store."""

import json
import os

import pytest

from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.store import (
    ReportStore,
    StoreError,
    iter_store_mismatches,
    load_store,
    scan_store,
)
from repro.obs.metrics import MetricsRegistry


def make_record(mismatch=True, country="US", ip="11.0.0.1", host="h", htype="Popular"):
    leaf = CertSummary(
        subject_cn=host,
        subject_org=None,
        issuer_cn="CA",
        issuer_org="Org",
        issuer_ou=None,
        serial_number=1,
        key_bits=1024,
        signature_algorithm="sha1WithRSAEncryption",
        fingerprint="f" * 64,
        public_key_fingerprint="k" * 64,
    )
    return MeasurementRecord(
        study=1,
        campaign="test",
        client_ip=ip,
        country=country,
        hostname=host,
        host_type=htype,
        mismatch=mismatch,
        leaf=leaf,
        chain=(leaf,),
    )


def fill(store, db, n=60):
    """The same mixed stream into a store and an in-memory database."""
    for i in range(n):
        country = ("US", "BR", "??")[i % 3]
        if i % 10 == 0:
            record = make_record(country=country, ip=f"10.0.0.{i}", host=f"s{i % 4}")
            store.add_mismatch(record)
            db.add_mismatch(record)
        else:
            store.add_matched_bulk(country, "Popular", f"s{i % 4}", 3)
            db.add_matched_bulk(country, "Popular", f"s{i % 4}", 3)
    store.add_failure("probe_failed", 2)
    db.failures.probe_failed += 2


class TestRoundTrip:
    def test_scan_matches_in_memory_signature(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        db = ReportDatabase()
        fill(store, db)
        store.close()
        aggregator = scan_store(tmp_path / "s")
        assert aggregator.aggregate_signature() == db.aggregate_signature()
        assert store.aggregator.aggregate_signature() == db.aggregate_signature()
        assert aggregator.totals_by_country() == db.totals_by_country()
        assert aggregator.totals_by_host_type() == db.totals_by_host_type()
        assert aggregator.distinct_proxied_ips() == db.distinct_proxied_ips()
        assert aggregator.proxied_rate == db.proxied_rate

    def test_load_store_rebuilds_database(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        db = ReportDatabase()
        fill(store, db)
        store.close()
        rebuilt = load_store(tmp_path / "s")
        assert rebuilt.aggregate_signature() == db.aggregate_signature()
        assert sorted(r.client_ip for r in iter_store_mismatches(tmp_path / "s")) == (
            sorted(r.client_ip for r in db.records)
        )

    def test_unknown_country_shard_is_quoted(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        store.add_mismatch(make_record(country=None))
        store.close()
        names = os.listdir(tmp_path / "s")
        assert "%3F%3F" in names
        assert "_meta" not in names  # no failures recorded
        aggregator = scan_store(tmp_path / "s")
        assert aggregator.totals_by_country() == {"??": (1, 1)}

    def test_append_database(self, tmp_path):
        db = ReportDatabase()
        db.add_mismatch(make_record())
        db.add_matched_bulk("US", "Popular", "h", 9)
        db.failures.connect_failed = 4
        store = ReportStore(tmp_path / "s")
        store.append_database(db)
        store.close()
        assert scan_store(tmp_path / "s").aggregate_signature() == (
            db.aggregate_signature()
        )

    def test_type_guards(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        with pytest.raises(ValueError):
            store.add_mismatch(make_record(mismatch=False))
        with pytest.raises(ValueError):
            store.add_matched(make_record(mismatch=True))
        with pytest.raises(ValueError):
            store.add_failure("no_such_counter")
        store.close()
        with pytest.raises(StoreError):
            store.add_matched_bulk("US", "Popular", "h", 1)


class TestSegmentsAndBatching:
    def test_segments_rotate_at_threshold(self, tmp_path):
        registry = MetricsRegistry()
        store = ReportStore(
            tmp_path / "s", registry, batch_rows=4, segment_bytes=256
        )
        for i in range(40):
            store.add_mismatch(make_record(ip=f"10.0.0.{i}"))
        store.close()
        segments = [p.name for p in (tmp_path / "s" / "US").iterdir()]
        assert len(segments) > 1
        assert all(name.endswith(".jsonl") for name in segments)
        assert not any(".open" in name for name in segments)
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["store.segments_written"] == len(segments)
        assert counters["store.bytes_written"] > 0

    def test_batching_coalesces_matched_rows(self, tmp_path):
        registry = MetricsRegistry()
        store = ReportStore(tmp_path / "s", registry, batch_rows=1000)
        for _ in range(500):
            store.add_matched_bulk("US", "Popular", "h", 1)
        store.close()
        rows = [
            json.loads(line)
            for line in (tmp_path / "s" / "US" / "seg-000001.jsonl")
            .read_bytes()
            .splitlines()
        ]
        assert rows == [{"t": "c", "ht": "Popular", "h": "h", "n": 500}]
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["reports.batches"] == 1

    def test_auto_flush_at_batch_rows(self, tmp_path):
        registry = MetricsRegistry()
        store = ReportStore(tmp_path / "s", registry, batch_rows=10)
        for i in range(25):
            store.add_matched_bulk("US", "Popular", f"h{i}", 1)
        assert store.pending == 5
        store.close()
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["reports.batches"] == 3
        histogram = registry.deterministic_snapshot()["histograms"][
            "store.batch_rows"
        ]
        assert histogram["count"] == 3

    def test_backpressure_overloaded_and_defer(self, tmp_path):
        registry = MetricsRegistry()
        store = ReportStore(
            tmp_path / "s", registry, batch_rows=4, max_pending=6, auto_flush=False
        )
        for i in range(6):
            store.add_matched_bulk("US", "Popular", f"h{i}", 1)
        assert store.overloaded
        store.defer()
        store.defer()
        store.flush()
        assert not store.overloaded
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["store.backpressure_events"] == 2
        store.close()


class TestRecoveryAndCompaction:
    def test_recover_heals_torn_open_segment(self, tmp_path):
        store = ReportStore(tmp_path / "s", batch_rows=1000)
        db = ReportDatabase()
        fill(store, db, n=30)
        store.flush()
        # Simulate a crash: a half-written row on the active segment,
        # never sealed.
        shard = store.segments.shard("US")
        shard.handle.write(b'{"t":"c","ht":"Pop')
        shard.handle.flush()
        shard.handle.close()
        shard.handle = None

        registry = MetricsRegistry()
        reopened = ReportStore(tmp_path / "s", registry)
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["reports.rejected{reason=torn-segment}"] == 1
        reopened.close()
        aggregator = scan_store(tmp_path / "s")
        assert aggregator.aggregate_signature() == db.aggregate_signature()

    def test_recover_seals_clean_open_segments(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        store.add_matched_bulk("US", "Popular", "h", 5)
        store.flush()
        shard = store.segments.shard("US")
        shard.handle.close()  # writer dies without sealing
        shard.handle = None

        registry = MetricsRegistry()
        ReportStore(tmp_path / "s", registry)
        counters = registry.deterministic_snapshot()["counters"]
        assert "reports.rejected{reason=torn-segment}" not in counters
        names = os.listdir(tmp_path / "s" / "US")
        assert names == ["seg-000001.jsonl"]

    def test_scan_heal_truncates_damaged_sealed_segment(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        db = ReportDatabase()
        fill(store, db, n=30)
        store.close()
        segment = tmp_path / "s" / "US" / "seg-000001.jsonl"
        intact = segment.read_bytes()
        segment.write_bytes(intact + b'{"t":"m","r":{"trunc')
        registry = MetricsRegistry()
        aggregator = scan_store(tmp_path / "s", registry, heal=True)
        counters = registry.deterministic_snapshot()["counters"]
        assert counters["reports.rejected{reason=torn-segment}"] == 1
        assert aggregator.aggregate_signature() == db.aggregate_signature()
        assert segment.read_bytes() == intact  # tail gone, rows intact

    def test_compact_preserves_signature_and_coalesces(self, tmp_path):
        store = ReportStore(tmp_path / "s", batch_rows=2, segment_bytes=200)
        db = ReportDatabase()
        fill(store, db, n=60)
        stats = store.compact()
        store.close()
        assert stats["rows_after"] < stats["rows_before"]
        for shard_dir in (tmp_path / "s").iterdir():
            assert len(list(shard_dir.iterdir())) == 1
        assert scan_store(tmp_path / "s").aggregate_signature() == (
            db.aggregate_signature()
        )

    def test_compaction_crash_leftovers_are_skipped(self, tmp_path):
        """A compacted segment's seal header excludes replaced segments."""
        store = ReportStore(tmp_path / "s", batch_rows=2, segment_bytes=200)
        db = ReportDatabase()
        fill(store, db, n=40)
        store.flush()
        store.segments.seal_all()
        old_segments = sorted(p.name for p in (tmp_path / "s" / "US").iterdir())
        store.compact()
        store.close()
        # Resurrect one replaced segment, as if the crash hit between
        # the compacted segment's rename and the unlinks.
        survivor = next(p for p in (tmp_path / "s" / "US").iterdir())
        header = json.loads(survivor.read_bytes().splitlines()[0])
        assert header["t"] == "seal"
        assert set(old_segments) <= set(header["compacts"])
        resurrected = tmp_path / "s" / "US" / old_segments[0]
        resurrected.write_bytes(b'{"t":"c","ht":"Popular","h":"s0","n":999}\n')
        aggregator = scan_store(tmp_path / "s")
        assert aggregator.aggregate_signature() == db.aggregate_signature()

    def test_appends_continue_after_reopen(self, tmp_path):
        store = ReportStore(tmp_path / "s")
        db = ReportDatabase()
        fill(store, db, n=20)
        store.close()
        store2 = ReportStore(tmp_path / "s")
        fill(store2, db, n=20)
        store2.close()
        assert scan_store(tmp_path / "s").aggregate_signature() == (
            db.aggregate_signature()
        )
