"""Unit and property tests for the Certificate Transparency log."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keystore import KeyStore
from repro.mitigation.ctlog import (
    CtLog,
    CtMonitor,
    MerkleTree,
    verify_inclusion,
)
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import ProxyCategory, ProxyProfile
from repro.x509 import Name
from repro.x509.model import SubjectPublicKeyInfo


class TestMerkleTree:
    def test_empty_root_is_hash_of_empty(self):
        assert MerkleTree().root() == hashlib.sha256(b"").digest()

    def test_single_leaf_root(self):
        tree = MerkleTree()
        tree.append(b"hello")
        assert tree.root() == hashlib.sha256(b"\x00hello").digest()

    def test_two_leaf_root(self):
        tree = MerkleTree()
        tree.append(b"a")
        tree.append(b"b")
        left = hashlib.sha256(b"\x00a").digest()
        right = hashlib.sha256(b"\x00b").digest()
        assert tree.root() == hashlib.sha256(b"\x01" + left + right).digest()

    def test_root_changes_with_each_append(self):
        tree = MerkleTree()
        roots = set()
        for i in range(20):
            tree.append(f"leaf-{i}".encode())
            roots.add(tree.root())
        assert len(roots) == 20

    def test_historic_roots_stable(self):
        tree = MerkleTree()
        historic = []
        for i in range(16):
            tree.append(f"leaf-{i}".encode())
            historic.append(tree.root())
        for size, expected in enumerate(historic, start=1):
            assert tree.root(size) == expected

    def test_oversize_root_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree().root(1)

    @given(count=st.integers(1, 64), index=st.data())
    @settings(max_examples=60)
    def test_inclusion_proofs_verify(self, count, index):
        tree = MerkleTree()
        blobs = [f"leaf-{i}".encode() for i in range(count)]
        for blob in blobs:
            tree.append(blob)
        i = index.draw(st.integers(0, count - 1))
        proof = tree.inclusion_proof(i)
        assert verify_inclusion(blobs[i], i, count, proof, tree.root())

    @given(count=st.integers(2, 40), index=st.data())
    @settings(max_examples=60)
    def test_inclusion_proof_rejects_wrong_leaf(self, count, index):
        tree = MerkleTree()
        blobs = [f"leaf-{i}".encode() for i in range(count)]
        for blob in blobs:
            tree.append(blob)
        i = index.draw(st.integers(0, count - 1))
        proof = tree.inclusion_proof(i)
        assert not verify_inclusion(b"forged", i, count, proof, tree.root())

    @given(count=st.integers(1, 40), index=st.data())
    @settings(max_examples=60)
    def test_inclusion_proof_rejects_wrong_root(self, count, index):
        tree = MerkleTree()
        blobs = [f"leaf-{i}".encode() for i in range(count)]
        for blob in blobs:
            tree.append(blob)
        i = index.draw(st.integers(0, count - 1))
        proof = tree.inclusion_proof(i)
        assert not verify_inclusion(blobs[i], i, count, proof, b"\x00" * 32)

    @given(old=st.integers(1, 30), extra=st.integers(0, 30))
    @settings(max_examples=80)
    def test_consistency_proof_structure(self, old, extra):
        """Consistency proofs exist and old roots are recomputable."""
        tree = MerkleTree()
        for i in range(old + extra):
            tree.append(f"leaf-{i}".encode())
        proof = tree.consistency_proof(old)
        # Self-consistency: proof is empty iff nothing was appended...
        if extra == 0:
            assert proof == []
        # ...and the recorded old root never changes.
        assert tree.root(old) == tree.root(old)

    def test_bad_proof_requests(self):
        tree = MerkleTree()
        tree.append(b"x")
        with pytest.raises(ValueError):
            tree.inclusion_proof(1)
        with pytest.raises(ValueError):
            tree.consistency_proof(0)
        with pytest.raises(ValueError):
            tree.consistency_proof(2)


@pytest.fixture(scope="module")
def ct_keystore():
    return KeyStore(seed=77)


@pytest.fixture(scope="module")
def log(ct_keystore):
    return CtLog(log_id="repro-log-1", key=ct_keystore.key("ct-log", 512))


@pytest.fixture(scope="module")
def site_cert(intermediate_ca, keystore):
    key = keystore.key("ct-site", 512)
    return intermediate_ca.issue(
        Name.build(common_name="ct.example", organization="CT Example"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["ct.example"],
    )


class TestCtLog:
    def test_sct_verifies(self, log, site_cert):
        sct = log.submit(site_cert)
        assert log.verify_sct(sct, log.key.public)
        assert sct.certificate_fingerprint == site_cert.fingerprint()

    def test_sct_signature_binds_certificate(self, log, site_cert):
        from dataclasses import replace

        sct = log.submit(site_cert)
        tampered = replace(sct, certificate_fingerprint="0" * 64)
        assert not log.verify_sct(tampered, log.key.public)

    def test_inclusion_proof_round_trip(self, log, site_cert):
        sct = log.submit(site_cert)
        proof, root, size = log.prove_inclusion(sct.leaf_index)
        assert verify_inclusion(site_cert.encode(), sct.leaf_index, size, proof, root)

    def test_monitor_flags_rogue_issuance(self, log, site_cert, keystore):
        # The legitimate cert is already logged; now a rogue CA logs one.
        forger = SubstituteCertForger(KeyStore(seed=88), seed=88)
        rogue_profile = ProxyProfile(
            key="rogue-public-ca",
            issuer=Name.build(common_name="Rogue CA", organization="Untrustworthy CA"),
            category=ProxyCategory.UNKNOWN,
            leaf_key_bits=1024,
            hash_name="sha1",
        )
        rogue = forger.forge(rogue_profile, site_cert, "ct.example")
        log.submit(rogue.leaf)
        monitor = CtMonitor(
            hostname="ct.example",
            legitimate_issuers=frozenset({"Repro Trust"}),
        )
        flagged = monitor.audit(log)
        assert len(flagged) == 1
        assert flagged[0].issuer.organization == "Untrustworthy CA"

    def test_monitor_ignores_legitimate_issuance(self, log, site_cert):
        monitor = CtMonitor(
            hostname="ct.example",
            legitimate_issuers=frozenset(
                {"Repro Trust", "Untrustworthy CA"}  # accept both now
            ),
        )
        assert monitor.audit(log) == []

    def test_local_root_proxies_invisible_to_ct(self, log, site_cert):
        """The §7 limitation: proxy certs never reach the log, so the
        monitor sees nothing even though clients are being intercepted."""
        forger = SubstituteCertForger(KeyStore(seed=89), seed=89)
        av_profile = ProxyProfile(
            key="ct-invisible-av",
            issuer=Name.build(common_name="AV CA", organization="LocalAV"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=1024,
            hash_name="sha1",
        )
        forger.forge(av_profile, site_cert, "ct.example")  # never submitted
        monitor = CtMonitor(
            hostname="ct.example",
            legitimate_issuers=frozenset({"Repro Trust", "Untrustworthy CA"}),
        )
        assert monitor.audit(log) == []  # interception invisible to CT
