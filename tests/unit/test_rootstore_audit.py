"""Tests for the root-store auditor."""

import pytest

from repro.analysis.rootstore import (
    RootStoreAuditor,
    materialize_client_store,
)
from repro.crypto.keystore import KeyStore
from repro.data import products as product_data
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import ProxyCategory, ProxyProfile
from repro.x509 import Name, RootStore


@pytest.fixture(scope="module")
def forger():
    return SubstituteCertForger(KeyStore(seed=61), seed=61)


@pytest.fixture(scope="module")
def factory(root_ca):
    return RootStore([root_ca.certificate])


class TestAuditor:
    def test_factory_store_is_clean(self, factory):
        auditor = RootStoreAuditor(factory)
        assert auditor.audit(factory.copy()) == []

    def test_injected_root_found_and_attributed(self, factory, forger):
        profile = ProxyProfile(
            key="audit-av",
            issuer=Name.build(common_name="Bitdefender CA", organization="Bitdefender"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=1024,
            hash_name="sha1",
        )
        store = materialize_client_store(factory, profile, forger)
        findings = RootStoreAuditor(factory).audit(store)
        assert len(findings) == 1
        assert findings[0].issuer_organization == "Bitdefender"
        assert findings[0].category is ProxyCategory.BUSINESS_PERSONAL_FIREWALL

    def test_malware_root_classified_as_malware(self, factory, forger):
        profile = product_data.catalog_by_key()["superfish"].profile
        store = materialize_client_store(factory, profile, forger)
        findings = RootStoreAuditor(factory).audit(store)
        assert len(findings) == 1
        assert findings[0].category is ProxyCategory.MALWARE

    def test_rogue_ca_product_leaves_no_trace(self, factory, forger):
        """The injects_root=False path: nothing for the auditor to find."""
        profile = ProxyProfile(
            key="audit-rogue",
            issuer=Name.build(common_name="Rogue", organization="Rogue CA"),
            category=ProxyCategory.UNKNOWN,
            leaf_key_bits=1024,
            hash_name="sha1",
            injects_root=False,
        )
        store = materialize_client_store(factory, profile, forger)
        assert RootStoreAuditor(factory).audit(store) == []

    def test_clean_client_store(self, factory, forger):
        store = materialize_client_store(factory, None, forger)
        assert RootStoreAuditor(factory).audit(store) == []

    def test_census_over_population(self, factory, forger):
        catalog = product_data.catalog_by_key()
        profiles = [
            None,
            None,
            catalog["bitdefender"].profile,
            catalog["superfish"].profile,
            catalog["kaspersky"].profile,
            None,
        ]
        stores = [
            materialize_client_store(factory, p, forger) for p in profiles
        ]
        census = RootStoreAuditor(factory).census(stores)
        assert census.stores_audited == 6
        assert census.stores_with_injections == 3
        assert census.injection_rate == pytest.approx(0.5)
        assert (
            census.findings_by_category[ProxyCategory.BUSINESS_PERSONAL_FIREWALL] == 2
        )
        assert census.findings_by_category[ProxyCategory.MALWARE] == 1

    def test_null_issuer_root_reads_unknown(self, factory, forger):
        profile = product_data.catalog_by_key()["null-issuer"].profile
        store = materialize_client_store(factory, profile, forger)
        findings = RootStoreAuditor(factory).audit(store)
        assert len(findings) == 1
        assert findings[0].category is ProxyCategory.UNKNOWN
        assert findings[0].subject == "(empty subject)"

    def test_empty_census(self, factory):
        census = RootStoreAuditor(factory).census([])
        assert census.injection_rate == 0.0
