"""Unit tests for the typed ASN.1 object model."""

import datetime as dt

import pytest

from repro.asn1.der import Asn1Error
from repro.asn1.types import (
    BitString,
    Boolean,
    ContextExplicit,
    ContextPrimitive,
    GeneralizedTime,
    IA5String,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    PrintableString,
    Raw,
    Sequence,
    Set,
    UtcTime,
    Utf8String,
    decode,
    decode_all,
)


def round_trip(value):
    decoded, rest = decode(value.encode())
    assert rest == b""
    return decoded


class TestBoolean:
    def test_true_is_ff(self):
        assert Boolean(True).encode() == b"\x01\x01\xff"

    def test_false(self):
        assert Boolean(False).encode() == b"\x01\x01\x00"

    def test_round_trip(self):
        assert round_trip(Boolean(True)) == Boolean(True)
        assert round_trip(Boolean(False)) == Boolean(False)

    def test_bad_length(self):
        with pytest.raises(Asn1Error):
            decode(b"\x01\x02\x00\x00")


class TestInteger:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x02\x01\x00"),
            (127, b"\x02\x01\x7f"),
            (128, b"\x02\x02\x00\x80"),
            (256, b"\x02\x02\x01\x00"),
            (-1, b"\x02\x01\xff"),
            (-128, b"\x02\x01\x80"),
            (-129, b"\x02\x02\xff\x7f"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert Integer(value).encode() == expected

    def test_round_trip_large(self):
        big = 2**2048 - 12345
        assert round_trip(Integer(big)).value == big

    def test_non_minimal_rejected(self):
        with pytest.raises(Asn1Error, match="non-minimal"):
            decode(b"\x02\x02\x00\x01")

    def test_non_minimal_negative_rejected(self):
        with pytest.raises(Asn1Error, match="non-minimal"):
            decode(b"\x02\x02\xff\xff")

    def test_empty_rejected(self):
        with pytest.raises(Asn1Error, match="empty"):
            decode(b"\x02\x00")


class TestBitString:
    def test_round_trip(self):
        assert round_trip(BitString(b"\xaa\xbb")) == BitString(b"\xaa\xbb")

    def test_unused_bits_preserved(self):
        value = round_trip(BitString(b"\xa0", unused_bits=4))
        assert value.unused_bits == 4

    def test_invalid_unused_bits(self):
        with pytest.raises(Asn1Error):
            BitString(b"\x00", unused_bits=8)

    def test_unused_bits_on_empty(self):
        with pytest.raises(Asn1Error):
            BitString(b"", unused_bits=3)


class TestOid:
    @pytest.mark.parametrize(
        "dotted,expected_content",
        [
            ("1.2.840.113549.1.1.11", bytes.fromhex("2a864886f70d01010b")),
            ("2.5.4.3", bytes.fromhex("550403")),
            ("2.16.840.1.101.3.4.2.1", bytes.fromhex("608648016503040201")),
        ],
    )
    def test_known_encodings(self, dotted, expected_content):
        assert ObjectIdentifier(dotted).content() == expected_content

    def test_round_trip(self):
        for dotted in ("0.9.2342", "1.3.6.1.4.1.11129.2.4.2", "2.999.1"):
            assert round_trip(ObjectIdentifier(dotted)).dotted == dotted

    def test_single_arc_rejected(self):
        with pytest.raises(Asn1Error):
            ObjectIdentifier("1")

    def test_bad_root_rejected(self):
        with pytest.raises(Asn1Error):
            ObjectIdentifier("3.1")

    def test_first_arc_range(self):
        with pytest.raises(Asn1Error):
            ObjectIdentifier("0.40")

    def test_name_lookup(self):
        assert ObjectIdentifier("2.5.4.10").name == "O"
        assert ObjectIdentifier("1.2.3.4").name == "1.2.3.4"

    def test_truncated_arc(self):
        with pytest.raises(Asn1Error, match="truncated"):
            decode(b"\x06\x02\x55\x84")

    def test_non_minimal_arc(self):
        with pytest.raises(Asn1Error, match="non-minimal"):
            decode(b"\x06\x03\x55\x80\x03")


class TestStrings:
    @pytest.mark.parametrize(
        "cls,text",
        [
            (Utf8String, "Bitdefender"),
            (Utf8String, "naïve—✓"),
            (PrintableString, "US"),
            (IA5String, "mail@example.com"),
        ],
    )
    def test_round_trip(self, cls, text):
        assert round_trip(cls(text)).value == text

    def test_utf8_tag(self):
        assert Utf8String("a").encode()[0] == 0x0C

    def test_printable_tag(self):
        assert PrintableString("a").encode()[0] == 0x13


class TestTimes:
    def test_utc_time_round_trip(self):
        moment = dt.datetime(2014, 10, 8, 16, 0, 0, tzinfo=dt.timezone.utc)
        assert round_trip(UtcTime(moment)).value == moment

    def test_utc_time_century_rule(self):
        # 49 -> 2049, 50 -> 1950 per RFC 5280.
        decoded, _ = decode(b"\x17\x0d" + b"490101000000Z")
        assert decoded.value.year == 2049
        decoded, _ = decode(b"\x17\x0d" + b"500101000000Z")
        assert decoded.value.year == 1950

    def test_generalized_time_round_trip(self):
        moment = dt.datetime(2014, 1, 6, 8, 30, 15, tzinfo=dt.timezone.utc)
        assert round_trip(GeneralizedTime(moment)).value == moment

    def test_bad_utc_time(self):
        with pytest.raises(Asn1Error):
            decode(b"\x17\x0d" + b"991301000000Z")

    def test_naive_datetime_becomes_utc(self):
        value = UtcTime(dt.datetime(2014, 6, 1, 12, 0, 0))
        assert value.value.tzinfo is dt.timezone.utc


class TestConstructed:
    def test_sequence_round_trip(self):
        seq = Sequence([Integer(5), Utf8String("x"), Null()])
        assert round_trip(seq) == seq

    def test_nested_sequences(self):
        inner = Sequence([Integer(1)])
        outer = Sequence([inner, Sequence([inner, inner])])
        assert round_trip(outer) == outer

    def test_set_sorts_encodings(self):
        # DER SET OF must sort member encodings; INTEGER 1 sorts before NULL
        # because tag 0x02 < 0x05.
        unsorted = Set([Null(), Integer(1)])
        assert unsorted.encode() == Set([Integer(1), Null()]).encode()

    def test_sequence_indexing(self):
        seq = Sequence([Integer(1), Integer(2)])
        assert seq[0] == Integer(1)
        assert len(seq) == 2
        assert [item.value for item in seq] == [1, 2]

    def test_context_explicit_round_trip(self):
        wrapped = ContextExplicit(3, Sequence([Integer(7)]))
        decoded = round_trip(wrapped)
        assert isinstance(decoded, ContextExplicit)
        assert decoded.number == 3
        assert decoded.inner == Sequence([Integer(7)])

    def test_context_primitive_round_trip(self):
        value = ContextPrimitive(2, b"www.example.com")
        decoded = round_trip(value)
        assert decoded == value

    def test_unknown_tag_preserved_as_raw(self):
        blob = b"\x45\x03abc"  # application-class tag
        decoded, rest = decode(blob)
        assert isinstance(decoded, Raw)
        assert decoded.encode() == blob
        assert rest == b""


class TestDecodeAll:
    def test_multiple_values(self):
        data = Integer(1).encode() + Null().encode() + OctetString(b"z").encode()
        values = decode_all(data)
        assert values == [Integer(1), Null(), OctetString(b"z")]

    def test_empty(self):
        assert decode_all(b"") == []
