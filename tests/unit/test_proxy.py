"""Unit tests for proxy profiles, the forger and the MitM engine."""

import pytest

from repro.crypto.keystore import KeyStore
from repro.netsim import Network
from repro.proxy import (
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    SubjectRewrite,
    SubstituteCertForger,
    TlsProxyEngine,
)
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509 import Name, RootStore, validate_chain, verify_certificate_signature
from repro.x509.model import SubjectPublicKeyInfo


@pytest.fixture(scope="module")
def forger():
    return SubstituteCertForger(KeyStore(seed=42), seed=42)


@pytest.fixture(scope="module")
def origin_leaf(intermediate_ca, keystore):
    key = keystore.key("origin-site", 512)
    return intermediate_ca.issue(
        Name.build(common_name="secure.example", organization="Origin Org"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["secure.example"],
    )


def make_profile(**overrides):
    defaults = dict(
        key="testproduct",
        issuer=Name.build(common_name="Test CA", organization="Test Product"),
        category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
        leaf_key_bits=1024,
        hash_name="sha1",
    )
    defaults.update(overrides)
    return ProxyProfile(**defaults)


class TestProfile:
    def test_intercepts_tls_port_only(self):
        profile = make_profile()
        assert profile.intercepts("any.example", 443)
        assert not profile.intercepts("any.example", 80)

    def test_whitelist_exact_and_subdomain(self):
        profile = make_profile(whitelist=frozenset({"facebook.com"}))
        assert profile.is_whitelisted("facebook.com")
        assert profile.is_whitelisted("www.facebook.com")
        assert not profile.is_whitelisted("notfacebook.com")
        assert not profile.intercepts("facebook.com", 443)

    def test_leaf_key_label_per_bucket(self):
        profile = make_profile()
        assert profile.leaf_key_label("h", 1) != profile.leaf_key_label("h", 2)

    def test_leaf_key_label_shared_when_reusing(self):
        profile = make_profile(reuses_leaf_key=True)
        assert profile.leaf_key_label("h", 1) == profile.leaf_key_label("h", 2)

    def test_issuer_variants_rotate_by_bucket(self):
        variants = (
            Name.build(organization="A"),
            Name.build(organization="B"),
        )
        profile = make_profile(issuer_variants=variants)
        assert profile.issuer_for_bucket(0).organization == "A"
        assert profile.issuer_for_bucket(1).organization == "B"
        assert profile.issuer_for_bucket(2).organization == "A"


class TestForger:
    def test_substitute_has_profile_issuer(self, forger, origin_leaf):
        forged = forger.forge(make_profile(), origin_leaf, "secure.example")
        assert forged.leaf.issuer.organization == "Test Product"
        assert forged.leaf.subject.common_name == "secure.example"

    def test_substitute_signed_by_product_ca(self, forger, origin_leaf):
        profile = make_profile()
        forged = forger.forge(profile, origin_leaf, "secure.example")
        ca_cert = forged.ca_chain[0]
        assert verify_certificate_signature(forged.leaf, ca_cert)

    def test_substitute_key_size_downgrade(self, forger, origin_leaf):
        profile = make_profile(leaf_key_bits=512)
        forged = forger.forge(profile, origin_leaf, "secure.example")
        assert forged.leaf.public_key_bits == 512

    def test_md5_signature(self, forger, origin_leaf):
        profile = make_profile(hash_name="md5")
        forged = forger.forge(profile, origin_leaf, "secure.example")
        assert forged.leaf.signature_algorithm == "md5WithRSAEncryption"

    def test_issuer_copying(self, forger, origin_leaf):
        profile = make_profile(key="copycat", copies_upstream_issuer=True)
        forged = forger.forge(profile, origin_leaf, "secure.example")
        # Claims the origin's issuer ...
        assert forged.leaf.issuer == origin_leaf.issuer
        # ... but the signature is the proxy's, not the real CA's.
        assert forged.leaf.fingerprint() != origin_leaf.fingerprint()

    def test_wildcard_subnet_rewrite(self, forger, origin_leaf):
        profile = make_profile(
            key="wildcarder", subject_rewrite=SubjectRewrite.WILDCARD_SUBNET
        )
        forged = forger.forge(
            profile, origin_leaf, "secure.example", site_ip="203.0.113.77"
        )
        assert forged.leaf.subject.common_name == "203.0.113.*"
        assert not forged.leaf.matches_hostname("secure.example")

    def test_wrong_domain_rewrite(self, forger, origin_leaf):
        profile = make_profile(
            key="misdirect",
            subject_rewrite=SubjectRewrite.WRONG_DOMAIN,
            wrong_domain="mail.google.com",
        )
        forged = forger.forge(profile, origin_leaf, "secure.example")
        assert forged.leaf.subject.common_name == "mail.google.com"

    def test_key_reuse_across_hosts_and_buckets(self, forger, origin_leaf):
        profile = make_profile(key="iopfail-like", reuses_leaf_key=True, leaf_key_bits=512)
        one = forger.forge(profile, origin_leaf, "a.example", client_bucket=0)
        two = forger.forge(profile, origin_leaf, "b.example", client_bucket=5)
        assert one.leaf.tbs.public_key.n == two.leaf.tbs.public_key.n

    def test_normal_products_use_distinct_keys_per_bucket(self, forger, origin_leaf):
        profile = make_profile()
        one = forger.forge(profile, origin_leaf, "secure.example", client_bucket=0)
        two = forger.forge(profile, origin_leaf, "secure.example", client_bucket=1)
        assert one.leaf.tbs.public_key.n != two.leaf.tbs.public_key.n

    def test_forge_is_deterministic_and_cached(self, origin_leaf):
        store = KeyStore(seed=9)
        first = SubstituteCertForger(store, seed=9)
        again = SubstituteCertForger(KeyStore(seed=9), seed=9)
        profile = make_profile()
        a = first.forge(profile, origin_leaf, "secure.example", client_bucket=3)
        b = again.forge(profile, origin_leaf, "secure.example", client_bucket=3)
        assert a.leaf.encode() == b.leaf.encode()
        # Second identical call hits the cache.
        before = first.certificates_forged
        first.forge(profile, origin_leaf, "secure.example", client_bucket=3)
        assert first.certificates_forged == before
        assert first.cache_hits == 1

    def test_validates_only_with_injected_root(self, forger, origin_leaf, now):
        profile = make_profile()
        forged = forger.forge(profile, origin_leaf, "secure.example")
        clean_store = RootStore()
        assert not validate_chain(list(forged.chain), clean_store, at_time=now)
        infected = RootStore()
        infected.inject(forged.ca_chain[0])
        verdict = validate_chain(list(forged.chain), infected, at_time=now)
        assert verdict.valid
        assert verdict.trusted_via_injected_root


class ProxiedWorld:
    """A client + origin + attached proxy engine, ready to probe."""

    def __init__(self, profile, origin_chain, trust_roots, forger):
        self.network = Network()
        self.client = self.network.add_host("victim.example")
        origin = self.network.add_host("secure.example", ip="203.0.113.9")
        origin.listen(443, TlsCertServer(origin_chain).factory)
        self.engine = TlsProxyEngine(
            profile,
            forger,
            upstream_host=self.client,
            upstream_trust=trust_roots,
            client_bucket=2,
        )
        self.client.add_interceptor(self.engine)

    def probe(self):
        return ProbeClient(self.client).probe("secure.example", 443)


class TestEngine:
    def test_interception_replaces_certificate(
        self, forger, origin_leaf, intermediate_ca, root_ca
    ):
        world = ProxiedWorld(
            make_profile(),
            [origin_leaf, intermediate_ca.certificate],
            RootStore([root_ca.certificate]),
            forger,
        )
        result = world.probe()
        assert result.ok
        assert result.leaf.issuer.organization == "Test Product"
        assert result.leaf.fingerprint() != origin_leaf.fingerprint()
        assert world.engine.intercepted == 1

    def test_substitute_matches_direct_forge(
        self, forger, origin_leaf, intermediate_ca, root_ca
    ):
        """Wire-mode output must equal a direct forger call byte-for-byte."""
        profile = make_profile()
        world = ProxiedWorld(
            profile,
            [origin_leaf, intermediate_ca.certificate],
            RootStore([root_ca.certificate]),
            forger,
        )
        result = world.probe()
        direct = forger.forge(
            profile,
            origin_leaf,
            "secure.example",
            site_ip="203.0.113.9",
            client_bucket=2,
        )
        assert result.der_chain == tuple(c.encode() for c in direct.chain)

    def test_whitelisted_host_passes_through(
        self, forger, origin_leaf, intermediate_ca, root_ca
    ):
        profile = make_profile(whitelist=frozenset({"secure.example"}))
        world = ProxiedWorld(
            profile,
            [origin_leaf, intermediate_ca.certificate],
            RootStore([root_ca.certificate]),
            forger,
        )
        result = world.probe()
        assert result.ok
        assert result.leaf.fingerprint() == origin_leaf.fingerprint()
        assert world.engine.whitelisted == 1
        assert world.engine.intercepted == 0

    def test_block_policy_rejects_forged_upstream(
        self, forger, origin_leaf, intermediate_ca
    ):
        """Bitdefender-style: untrusted upstream chain → fatal alert."""
        # Proxy's trust store does NOT contain the origin's root.
        world = ProxiedWorld(
            make_profile(forged_upstream=ForgedUpstreamPolicy.BLOCK),
            [origin_leaf, intermediate_ca.certificate],
            RootStore(),
            forger,
        )
        result = world.probe()
        assert not result.ok
        assert "alert" in result.error
        assert world.engine.blocked_forged_upstream == 1

    def test_mask_policy_hides_forged_upstream(
        self, forger, origin_leaf, intermediate_ca
    ):
        """Kurupira-style: untrusted upstream silently replaced."""
        world = ProxiedWorld(
            make_profile(forged_upstream=ForgedUpstreamPolicy.MASK),
            [origin_leaf, intermediate_ca.certificate],
            RootStore(),
            forger,
        )
        result = world.probe()
        assert result.ok
        assert result.leaf.issuer.organization == "Test Product"
        assert world.engine.masked_forged_upstream == 1

    def test_pass_through_policy_relays_forged_upstream(
        self, forger, origin_leaf, intermediate_ca
    ):
        world = ProxiedWorld(
            make_profile(forged_upstream=ForgedUpstreamPolicy.PASS_THROUGH),
            [origin_leaf, intermediate_ca.certificate],
            RootStore(),
            forger,
        )
        result = world.probe()
        assert result.ok
        assert result.leaf.fingerprint() == origin_leaf.fingerprint()
        assert world.engine.passed_through_forged_upstream == 1

    def test_upstream_unreachable_fails_closed(self, forger):
        network = Network()
        client = network.add_host("victim.example")
        engine = TlsProxyEngine(
            make_profile(),
            forger,
            upstream_host=client,
            upstream_trust=RootStore(),
        )
        client.add_interceptor(engine)
        # secure.example does not exist in this network.
        result = ProbeClient(client).probe("secure.example", 443)
        assert not result.ok
        assert engine.upstream_failures == 1

    def test_non_tls_port_not_intercepted(
        self, forger, origin_leaf, intermediate_ca, root_ca
    ):
        world = ProxiedWorld(
            make_profile(),
            [origin_leaf, intermediate_ca.certificate],
            RootStore([root_ca.certificate]),
            forger,
        )
        assert not world.engine.intercepts("secure.example", 80)
