"""Tests for keyUsage / SKI / AKI extensions and DNS-override routing."""

import pytest

from repro.netsim import Network, Protocol
from repro.x509 import Name
from repro.x509.model import (
    KEY_USAGE_BITS,
    SubjectPublicKeyInfo,
    key_usage_extension,
)
from repro.x509.parse import parse_certificate


@pytest.fixture(scope="module")
def leaf(intermediate_ca, keystore):
    key = keystore.key("ext-site", 512)
    return intermediate_ca.issue(
        Name.build(common_name="ext.example"),
        SubjectPublicKeyInfo(key.n, key.e),
        dns_names=["ext.example"],
    )


class TestKeyUsage:
    def test_leaf_key_usage(self, leaf):
        assert leaf.key_usage == ("digitalSignature", "keyEncipherment")

    def test_ca_key_usage(self, root_ca, intermediate_ca):
        assert intermediate_ca.certificate.key_usage == ("keyCertSign", "cRLSign")

    def test_key_usage_survives_parse(self, leaf):
        parsed = parse_certificate(leaf.encode())
        assert parsed.key_usage == leaf.key_usage

    def test_all_flags_round_trip(self):
        from repro.asn1.types import BitString, decode

        for index, name in enumerate(KEY_USAGE_BITS):
            ext = key_usage_extension((name,))
            bits, _ = decode(ext.value)
            assert isinstance(bits, BitString)
            # Named-bit lists drop trailing zeros: total bits == index+1.
            assert len(bits.data) * 8 - bits.unused_bits == index + 1

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown key usage"):
            key_usage_extension(("flyingSignature",))

    def test_empty_usage(self):
        ext = key_usage_extension(())
        from repro.asn1.types import BitString, decode

        bits, _ = decode(ext.value)
        assert bits == BitString(b"", 0)


class TestKeyIdentifiers:
    def test_ski_present_and_20_bytes(self, leaf):
        assert leaf.subject_key_identifier is not None
        assert len(leaf.subject_key_identifier) == 20

    def test_aki_matches_issuer_ski(self, leaf, intermediate_ca):
        assert (
            leaf.authority_key_identifier
            == intermediate_ca.certificate.subject_key_identifier
        )

    def test_identifiers_survive_parse(self, leaf):
        parsed = parse_certificate(leaf.encode())
        assert parsed.subject_key_identifier == leaf.subject_key_identifier
        assert parsed.authority_key_identifier == leaf.authority_key_identifier

    def test_same_key_same_ski(self, leaf, intermediate_ca, keystore):
        key = keystore.key("ext-site", 512)
        other = intermediate_ca.issue(
            Name.build(common_name="other.example"),
            SubjectPublicKeyInfo(key.n, key.e),
        )
        assert other.subject_key_identifier == leaf.subject_key_identifier

    def test_absent_on_legacy_certs(self, keystore):
        """Certificates without the extensions read as None, not crash."""
        from repro.x509.ca import CertificateAuthority, SelfSignedParams

        legacy = CertificateAuthority.self_signed(
            SelfSignedParams(
                subject=Name.build(common_name="Legacy Root"),
                key=keystore.key("legacy-root", 512),
            )
        ).certificate
        assert legacy.subject_key_identifier is None
        assert legacy.authority_key_identifier is None
        assert legacy.key_usage == ()


class Echo(Protocol):
    def data_received(self, sock, data):
        sock.send(b"from:" + sock.label.encode())


class TestDnsOverrides:
    def test_override_redirects_connection(self):
        net = Network()
        client = net.add_host("victim.example")
        net.add_host("bank.example").listen(80, Echo)
        net.add_host("attacker.example").listen(80, Echo)

        sock = client.connect("bank.example", 80)
        sock.send(b"x")
        assert b"bank.example" in sock.recv()

        client.dns_overrides["bank.example"] = "attacker.example"
        sock = client.connect("bank.example", 80)
        sock.send(b"x")
        assert b"attacker.example" in sock.recv()

    def test_other_clients_unaffected(self):
        net = Network()
        victim = net.add_host("victim.example")
        clean = net.add_host("clean.example")
        net.add_host("bank.example").listen(80, Echo)
        net.add_host("attacker.example").listen(80, Echo)
        victim.dns_overrides["bank.example"] = "attacker.example"

        sock = clean.connect("bank.example", 80)
        sock.send(b"x")
        assert b"bank.example" in sock.recv()

    def test_override_to_missing_host_refused(self):
        from repro.netsim import ConnectionRefused

        net = Network()
        client = net.add_host("victim.example")
        net.add_host("bank.example").listen(80, Echo)
        client.dns_overrides["bank.example"] = "gone.example"
        with pytest.raises(ConnectionRefused):
            client.connect("bank.example", 80)
