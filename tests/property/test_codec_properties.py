"""Property-based tests: DER, PEM and name codecs must round-trip."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1.types import (
    BitString,
    Boolean,
    IA5String,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    PrintableString,
    Sequence,
    UtcTime,
    Utf8String,
    decode,
)
from repro.x509.model import Name, NameAttribute
from repro.x509.pem import pem_decode_all, pem_encode

# --- strategies -------------------------------------------------------

printable_text = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '()+,-./:=?",
    max_size=40,
)

oid_strategy = st.builds(
    lambda root, second, rest: ObjectIdentifier(
        ".".join(str(x) for x in [root, second, *rest])
    ),
    st.integers(0, 2),
    st.integers(0, 39),
    st.lists(st.integers(0, 2**32), max_size=6),
)

utc_datetimes = st.datetimes(
    min_value=dt.datetime(1950, 1, 1),
    max_value=dt.datetime(2049, 12, 31, 23, 59, 59),
).map(lambda d: d.replace(tzinfo=dt.timezone.utc, microsecond=0))

simple_values = st.one_of(
    st.booleans().map(Boolean),
    st.integers(min_value=-(2**256), max_value=2**256).map(Integer),
    st.binary(max_size=64).map(OctetString),
    st.binary(max_size=64).map(BitString),
    st.just(Null()),
    oid_strategy,
    st.text(max_size=40).map(Utf8String),
    printable_text.map(PrintableString),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40).map(
        IA5String
    ),
    utc_datetimes.map(UtcTime),
)

nested_values = st.recursive(
    simple_values,
    lambda children: st.lists(children, max_size=5).map(Sequence),
    max_leaves=12,
)


class TestDerRoundTrip:
    @given(value=nested_values)
    @settings(max_examples=300)
    def test_encode_decode_identity(self, value):
        decoded, rest = decode(value.encode())
        assert rest == b""
        assert decoded == value

    @given(value=nested_values)
    @settings(max_examples=150)
    def test_reencoding_is_stable(self, value):
        once = value.encode()
        decoded, _ = decode(once)
        assert decoded.encode() == once

    @given(value=st.integers(min_value=-(2**512), max_value=2**512))
    def test_integer_round_trip(self, value):
        decoded, rest = decode(Integer(value).encode())
        assert rest == b""
        assert decoded.value == value

    @given(data=st.binary(max_size=200))
    def test_decoder_never_crashes_unexpectedly(self, data):
        """Arbitrary bytes either decode or raise Asn1Error — nothing else."""
        from repro.asn1.der import Asn1Error

        try:
            decode(data)
        except Asn1Error:
            pass


class TestPemRoundTrip:
    @given(blobs=st.lists(st.binary(min_size=1, max_size=300), max_size=5))
    @settings(max_examples=100)
    def test_concatenated_blocks_round_trip(self, blobs):
        text = "".join(pem_encode(blob) for blob in blobs)
        assert pem_decode_all(text) == blobs

    @given(blob=st.binary(min_size=1, max_size=1000))
    def test_noise_between_blocks_ignored(self, blob):
        text = "some html\n" + pem_encode(blob) + "trailing junk\n"
        assert pem_decode_all(text) == [blob]


class TestNameRoundTrip:
    @given(
        attrs=st.lists(
            st.tuples(
                st.sampled_from(
                    ["2.5.4.3", "2.5.4.10", "2.5.4.11", "2.5.4.7", "2.5.4.8"]
                ),
                st.text(max_size=30),
            ),
            max_size=6,
        )
    )
    @settings(max_examples=150)
    def test_name_round_trip(self, attrs):
        from repro.asn1.types import decode as asn1_decode
        from repro.x509.parse import parse_name

        name = Name(tuple(NameAttribute(oid, value) for oid, value in attrs))
        decoded, rest = asn1_decode(name.encode())
        assert rest == b""
        assert parse_name(decoded) == name
