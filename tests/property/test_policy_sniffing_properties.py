"""Property tests for CombinedPolicyHttpServer protocol sniffing.

The §3.1 arrangement serves Flash policy requests and HTTP on one
port, deciding by the first bytes.  The sniffing decision must be
invariant under TCP segmentation: however the client's bytes are
split — byte-at-a-time included — the same delegate must answer with
the same response.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.httpmin.codec import HttpRequest, HttpResponse
from repro.httpmin.server import HttpServer
from repro.measure.server import CombinedPolicyHttpServer
from repro.netsim.network import StreamSocket
from repro.policy.model import PolicyFile
from repro.policy.server import POLICY_REQUEST

_AD_BODY = b"sniffed-http-ok"


def make_connection() -> tuple[StreamSocket, StreamSocket]:
    """A client socket wired to a fresh combined-server connection."""
    http = HttpServer()
    http.route("GET", "/ad", lambda request, remote: HttpResponse(200, body=_AD_BODY))
    combined = CombinedPolicyHttpServer(PolicyFile.permissive("443"), http)
    client, server = StreamSocket.pair("client", "server")
    server.protocol = combined.factory()
    return client, server


def feed_in_chunks(client: StreamSocket, payload: bytes, cuts: list[int]) -> bytes:
    """Send ``payload`` split at ``cuts``; return everything received."""
    offsets = sorted({cut % (len(payload) + 1) for cut in cuts})
    pieces = []
    previous = 0
    for offset in [*offsets, len(payload)]:
        if offset > previous:
            pieces.append(payload[previous:offset])
            previous = offset
    received = b""
    for piece in pieces:
        if client.closed:
            break
        client.send(piece)
        received += client.recv()
    received += client.recv()
    return received


http_request_bytes = st.sampled_from(
    [
        HttpRequest("GET", "/ad").encode(),
        HttpRequest("GET", "/ad", headers={"X-Extra": "1"}).encode(),
    ]
)
cut_lists = st.lists(st.integers(min_value=0, max_value=400), max_size=8)


class TestPolicySniffingProperties:
    @given(cuts=cut_lists)
    @settings(max_examples=150)
    def test_policy_request_any_split(self, cuts):
        client, _ = make_connection()
        reply = feed_in_chunks(client, POLICY_REQUEST, cuts)
        assert reply.endswith(b"\x00")
        assert b"<cross-domain-policy>" in reply

    @given(payload=http_request_bytes, cuts=cut_lists)
    @settings(max_examples=150)
    def test_http_request_any_split(self, payload, cuts):
        client, _ = make_connection()
        reply = feed_in_chunks(client, payload, cuts)
        response, _ = HttpResponse.try_decode(reply)
        assert response is not None
        assert response.status == 200
        assert response.body == _AD_BODY

    def test_policy_request_byte_at_a_time(self):
        client, _ = make_connection()
        reply = feed_in_chunks(
            client, POLICY_REQUEST, list(range(len(POLICY_REQUEST)))
        )
        assert b"<cross-domain-policy>" in reply

    def test_http_request_byte_at_a_time(self):
        payload = HttpRequest("GET", "/ad").encode()
        client, _ = make_connection()
        reply = feed_in_chunks(client, payload, list(range(len(payload))))
        response, _ = HttpResponse.try_decode(reply)
        assert response is not None and response.status == 200

    @given(prefix_len=st.integers(min_value=1, max_value=len(POLICY_REQUEST) - 1))
    @settings(max_examples=30)
    def test_policy_prefix_keeps_server_waiting(self, prefix_len):
        """Any strict prefix of the policy request is ambiguous: the
        sniffer must buffer silently, then answer once completed."""
        client, _ = make_connection()
        client.send(POLICY_REQUEST[:prefix_len])
        assert client.recv() == b""
        assert not client.closed
        client.send(POLICY_REQUEST[prefix_len:])
        assert b"<cross-domain-policy>" in client.recv()
