"""Property-based tests: TLS 1.2/1.3 hello codecs must be lossless.

The version-aware audit reads its evidence from wire-parsed hellos, so
the codec must round-trip every ClientHello/ServerHello it could meet —
GREASE values, supported_versions, key_share, ALPN and unknown
extensions included — byte for byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tls import codec
from repro.tls.codec import ClientHello, ServerHello

# --- strategies -------------------------------------------------------

randoms = st.binary(min_size=32, max_size=32)

versions = st.sampled_from(
    [codec.TLS_1_0, codec.TLS_1_1, codec.TLS_1_2, codec.TLS_1_3]
)

grease_values = st.sampled_from(sorted(codec.GREASE_VALUES))

cipher_suites = st.lists(
    st.one_of(
        st.sampled_from(
            [0x002F, 0x0035, 0xC02F, 0x1301, 0x1302, 0x1303, codec.TLS_FALLBACK_SCSV]
        ),
        grease_values,
        st.integers(min_value=0, max_value=0xFFFF),
    ),
    min_size=1,
    max_size=12,
).map(tuple)

alpn_protocols = st.lists(
    st.sampled_from(["h2", "http/1.1", "spdy/3.1", "h3"]),
    min_size=1,
    max_size=3,
).map(tuple)


def _extension(type_value, body):
    return (type_value, body)


client_extensions = st.lists(
    st.one_of(
        st.builds(
            _extension,
            st.just(codec.EXT_SUPPORTED_VERSIONS),
            st.lists(
                st.one_of(versions.map(bytes), grease_values.map(lambda v: v.to_bytes(2, "big"))),
                min_size=1,
                max_size=4,
            ).map(lambda vs: codec.encode_supported_versions_body(
                tuple((b[0], b[1]) for b in vs)
            )),
        ),
        st.builds(
            _extension,
            st.just(codec.EXT_KEY_SHARE),
            st.lists(
                st.tuples(
                    st.one_of(st.sampled_from([29, 23, 24]), grease_values),
                    st.binary(min_size=1, max_size=40),
                ),
                min_size=1,
                max_size=3,
            ).map(lambda entries: codec.encode_key_share_body(tuple(entries))),
        ),
        st.builds(
            _extension, st.just(codec.EXT_ALPN), alpn_protocols.map(codec.encode_alpn_body)
        ),
        st.builds(_extension, st.just(codec.EXT_SESSION_TICKET), st.binary(max_size=16)),
        st.builds(
            _extension,
            st.one_of(grease_values, st.integers(0, 0xFFFF)),
            st.binary(max_size=30),
        ),
    ),
    max_size=6,
).map(tuple)

client_hellos = st.builds(
    lambda random, version, suites, session_id, extensions: ClientHello(
        client_random=random,
        version=version,
        cipher_suites=suites,
        session_id=session_id,
        extensions=extensions,
    ),
    randoms,
    versions,
    cipher_suites,
    st.binary(max_size=32),
    st.one_of(st.none(), client_extensions),
)

server_extensions = st.lists(
    st.one_of(
        st.builds(
            _extension,
            st.just(codec.EXT_SUPPORTED_VERSIONS),
            versions.map(codec.encode_selected_version_body),
        ),
        st.builds(
            _extension,
            st.just(codec.EXT_KEY_SHARE),
            st.builds(
                codec.encode_server_key_share_body,
                st.sampled_from([29, 23, 24]),
                st.binary(min_size=1, max_size=40),
            ),
        ),
        st.builds(
            _extension,
            st.just(codec.EXT_ALPN),
            alpn_protocols.map(codec.encode_alpn_body),
        ),
        st.builds(
            _extension,
            st.one_of(grease_values, st.integers(0, 0xFFFF)),
            st.binary(max_size=30),
        ),
    ),
    max_size=5,
).map(tuple)

server_hellos = st.builds(
    lambda random, version, suite, session_id, compression, extensions: ServerHello(
        server_random=random,
        cipher_suite=suite,
        version=version,
        session_id=session_id,
        compression_method=compression,
        extensions=extensions,
    ),
    randoms,
    versions,
    st.integers(min_value=0, max_value=0xFFFF),
    st.binary(max_size=32),
    st.integers(min_value=0, max_value=255),
    st.one_of(st.none(), server_extensions),
)


class TestClientHelloRoundTrip:
    @given(hello=client_hellos)
    @settings(max_examples=200)
    def test_body_round_trip_is_identity(self, hello):
        body = hello.to_handshake().body
        decoded = ClientHello.from_body(body)
        assert decoded.client_random == hello.client_random
        assert decoded.version == hello.version
        assert decoded.cipher_suites == hello.cipher_suites
        assert decoded.session_id == hello.session_id
        assert decoded.extensions == hello.extensions
        assert decoded.to_handshake().body == body

    @given(hello=client_hellos)
    @settings(max_examples=100)
    def test_grease_survives_while_derived_views_filter_it(self, hello):
        decoded = ClientHello.from_body(hello.to_handshake().body)
        original_extensions = hello.extensions or ()
        assert (decoded.extensions or ()) == original_extensions
        # Derived views never surface GREASE...
        for version in decoded.offered_versions:
            assert ((version[0] << 8) | version[1]) not in codec.GREASE_VALUES
        # ...but the wire bytes keep every GREASE value.
        grease_suites = [
            s for s in hello.cipher_suites if s in codec.GREASE_VALUES
        ]
        assert [
            s for s in decoded.cipher_suites if s in codec.GREASE_VALUES
        ] == grease_suites


class TestServerHelloRoundTrip:
    @given(hello=server_hellos)
    @settings(max_examples=200)
    def test_body_round_trip_is_identity(self, hello):
        body = hello.to_handshake().body
        decoded = ServerHello.from_body(body)
        assert decoded == hello
        assert decoded.to_handshake().body == body

    @given(hello=server_hellos)
    @settings(max_examples=100)
    def test_selected_version_consistent_with_wire(self, hello):
        decoded = ServerHello.from_body(hello.to_handshake().body)
        body = decoded.extension_body(codec.EXT_SUPPORTED_VERSIONS)
        if body is not None and len(body) == 2:
            assert decoded.selected_version == (body[0], body[1])
        else:
            assert decoded.selected_version == decoded.version


class TestRecordLayerTolerance:
    @given(
        minor=st.integers(min_value=0, max_value=4),
        payload=st.binary(min_size=1, max_size=64),
    )
    def test_plausible_versions_round_trip(self, minor, payload):
        record = codec.Record(codec.CONTENT_HANDSHAKE, (3, minor), payload)
        records, rest = codec.decode_records(record.encode())
        assert records == [record]
        assert rest == b""
