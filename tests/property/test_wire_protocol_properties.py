"""Property-based tests for the TLS, HTTP and policy wire codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.httpmin.codec import HttpRequest, HttpResponse
from repro.policy.model import PolicyFile, PolicyRule
from repro.tls import codec
from repro.tls.codec import (
    Certificate as CertificateMessage,
    ClientHello,
    HandshakeMessage,
    Record,
    ServerHello,
)

hostnames = st.from_regex(r"[a-z][a-z0-9\-]{0,20}(\.[a-z][a-z0-9\-]{1,10}){1,3}", fullmatch=True)
random32 = st.binary(min_size=32, max_size=32)


class TestTlsCodecProperties:
    @given(
        client_random=random32,
        server_name=st.one_of(st.none(), hostnames),
        session_id=st.binary(max_size=32),
        suites=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=20).map(tuple),
    )
    @settings(max_examples=200)
    def test_client_hello_round_trip(self, client_random, server_name, session_id, suites):
        hello = ClientHello(
            client_random=client_random,
            server_name=server_name,
            session_id=session_id,
            cipher_suites=suites,
        )
        decoded = ClientHello.from_body(hello.to_handshake().body)
        assert decoded == hello

    extension_lists = st.one_of(
        st.none(),
        st.lists(
            st.tuples(st.integers(0, 0xFFFF), st.binary(max_size=60)), max_size=8
        ).map(tuple),
    )

    @given(
        client_random=random32,
        session_id=st.binary(max_size=32),
        suites=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=20).map(tuple),
        compression=st.lists(st.integers(0, 255), min_size=1, max_size=4).map(tuple),
        extensions=extension_lists,
        version=st.tuples(st.integers(2, 3), st.integers(0, 4)),
    )
    @settings(max_examples=300)
    def test_client_hello_lossless_round_trip(
        self, client_random, session_id, suites, compression, extensions, version
    ):
        """Full-fidelity: arbitrary extension lists (unknown types and
        bodies included), compression methods and versions survive a
        parse → re-encode cycle byte-for-byte."""
        hello = ClientHello(
            client_random=client_random,
            version=version,
            cipher_suites=suites,
            session_id=session_id,
            compression_methods=compression,
            extensions=extensions,
        )
        body = hello.to_handshake().body
        decoded = ClientHello.from_body(body)
        assert decoded.to_handshake().body == body
        assert decoded.cipher_suites == suites
        assert decoded.compression_methods == compression
        assert decoded.extensions == extensions
        assert decoded.session_id == session_id

    @given(server_random=random32, cipher=st.integers(0, 0xFFFF), session=st.binary(max_size=32))
    @settings(max_examples=100)
    def test_server_hello_round_trip(self, server_random, cipher, session):
        hello = ServerHello(
            server_random=server_random, cipher_suite=cipher, session_id=session
        )
        assert ServerHello.from_body(hello.to_handshake().body) == hello

    @given(
        server_random=random32,
        session_id=st.binary(max_size=32),
        cipher=st.integers(0, 0xFFFF),
        compression=st.integers(0, 255),
        extensions=st.one_of(
            st.none(),
            st.lists(
                st.tuples(st.integers(0, 0xFFFF), st.binary(max_size=60)),
                max_size=8,
            ).map(tuple),
        ),
        version=st.tuples(st.integers(2, 3), st.integers(0, 4)),
    )
    @settings(max_examples=300)
    def test_server_hello_lossless_round_trip(
        self, server_random, session_id, cipher, compression, extensions, version
    ):
        """Full-fidelity: arbitrary extension lists (unknown types and
        bodies included), a real compression byte and versions survive
        a parse → re-encode cycle byte-for-byte — the ClientHello
        property, mirrored for the server leg."""
        hello = ServerHello(
            server_random=server_random,
            cipher_suite=cipher,
            version=version,
            session_id=session_id,
            compression_method=compression,
            extensions=extensions,
        )
        body = hello.to_handshake().body
        decoded = ServerHello.from_body(body)
        assert decoded.to_handshake().body == body
        assert decoded == hello
        assert decoded.compression_method == compression
        assert decoded.extensions == extensions

    @given(
        server_random=random32,
        extensions=st.lists(
            st.tuples(st.integers(0, 0xFFFF), st.binary(max_size=30)),
            min_size=1,
            max_size=4,
        ).map(tuple),
        garbage=st.binary(min_size=1, max_size=8),
    )
    @settings(max_examples=100)
    def test_server_hello_rejects_trailing_garbage(
        self, server_random, extensions, garbage
    ):
        """Bytes after the extensions block are never silently dropped
        (the bug that used to swallow the whole block)."""
        hello = ServerHello(
            server_random=server_random,
            cipher_suite=0x002F,
            extensions=extensions,
        )
        with pytest.raises(codec.TlsError):
            ServerHello.from_body(hello.to_handshake().body + garbage)

    @given(chain=st.lists(st.binary(min_size=1, max_size=2000), max_size=6).map(tuple))
    @settings(max_examples=100)
    def test_certificate_message_round_trip(self, chain):
        message = CertificateMessage(chain)
        assert CertificateMessage.from_body(message.to_handshake().body) == message

    @given(
        messages=st.lists(
            st.tuples(st.integers(0, 255), st.binary(max_size=500)), max_size=5
        )
    )
    @settings(max_examples=100)
    def test_handshake_stream_round_trip(self, messages):
        stream = b"".join(
            HandshakeMessage(t, body).encode() for t, body in messages
        )
        decoded, rest = codec.decode_handshakes(stream)
        assert rest == b""
        assert [(m.msg_type, m.body) for m in decoded] == messages

    @given(payloads=st.lists(st.binary(max_size=1000), min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_record_stream_round_trip(self, payloads):
        stream = b"".join(
            Record(codec.CONTENT_HANDSHAKE, (3, 1), p).encode() for p in payloads
        )
        records, rest = codec.decode_records(stream)
        assert rest == b""
        assert [r.payload for r in records] == payloads

    @given(payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=3), cut=st.integers(1, 4))
    @settings(max_examples=100)
    def test_truncated_stream_buffers_tail(self, payloads, cut):
        stream = b"".join(
            Record(codec.CONTENT_HANDSHAKE, (3, 1), p).encode() for p in payloads
        )
        truncated = stream[:-cut]
        records, rest = codec.decode_records(truncated)
        # Whatever parsed plus the leftover must re-assemble the input.
        reassembled = b"".join(r.encode() for r in records) + rest
        assert reassembled == truncated


class TestHttpCodecProperties:
    header_names = st.from_regex(r"[A-Za-z][A-Za-z0-9\-]{0,15}", fullmatch=True)
    header_values = st.from_regex(r"[ -~]{0,40}", fullmatch=True).map(str.strip)

    @given(
        method=st.sampled_from(["GET", "POST", "PUT", "HEAD"]),
        path=st.from_regex(r"/[a-zA-Z0-9/\-_\.]{0,30}", fullmatch=True),
        body=st.binary(max_size=2000),
        headers=st.dictionaries(header_names, header_values, max_size=5),
    )
    @settings(max_examples=150)
    def test_request_round_trip(self, method, path, body, headers):
        headers.pop("Content-Length", None)
        # HTTP header names are case-insensitive; keep one per lowercase
        # name so the round-trip comparison is well-defined.
        headers = {name.lower(): value for name, value in headers.items()}
        request = HttpRequest(method, path, headers=headers, body=body)
        decoded, rest = HttpRequest.try_decode(request.encode())
        assert rest == b""
        assert decoded.method == method
        assert decoded.path == path
        assert decoded.body == body
        for name, value in headers.items():
            assert decoded.headers[name.lower()] == value

    @given(status=st.integers(100, 599), body=st.binary(max_size=2000))
    @settings(max_examples=100)
    def test_response_round_trip(self, status, body):
        response = HttpResponse(status, body=body)
        decoded, rest = HttpResponse.try_decode(response.encode())
        assert rest == b""
        assert decoded.status == status
        assert decoded.body == body

    @given(body=st.binary(max_size=200), cut=st.integers(1, 10))
    @settings(max_examples=50)
    def test_truncation_never_yields_message(self, body, cut):
        encoded = HttpRequest("POST", "/r", body=body).encode()
        if cut >= len(encoded):
            return
        decoded, _ = HttpRequest.try_decode(encoded[:-cut])
        assert decoded is None


class TestPolicyProperties:
    domains = st.from_regex(r"(\*|(\*\.)?[a-z][a-z0-9\-]{0,12}(\.[a-z]{2,6}){1,2})", fullmatch=True)
    ports = st.one_of(
        st.just("*"),
        st.lists(st.integers(1, 65535), min_size=1, max_size=4).map(
            lambda items: ",".join(str(i) for i in items)
        ),
    )

    @given(rules=st.lists(st.tuples(domains, ports), max_size=5))
    @settings(max_examples=150)
    def test_policy_xml_round_trip(self, rules):
        policy = PolicyFile(tuple(PolicyRule(d, p) for d, p in rules))
        assert PolicyFile.from_xml(policy.to_xml()) == policy

    @given(
        rules=st.lists(st.tuples(domains, ports), max_size=5),
        domain=st.from_regex(r"[a-z]{3,10}\.[a-z]{2,4}", fullmatch=True),
        port=st.integers(1, 65535),
    )
    @settings(max_examples=150)
    def test_permits_survives_round_trip(self, rules, domain, port):
        policy = PolicyFile(tuple(PolicyRule(d, p) for d, p in rules))
        decoded = PolicyFile.from_xml(policy.to_xml())
        assert policy.permits(domain, port) == decoded.permits(domain, port)
