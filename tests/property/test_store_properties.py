"""Property-based tests for the segmented report store.

Two invariants the paper-scale ingest path rests on:

* **round-trip** — any mix of records, bulk counters and failures
  written through a :class:`ReportStore` (at any batching/segment
  geometry) reads back with the exact in-memory aggregate signature;
* **crash recovery** — truncating a segment at any byte boundary loses
  at most the torn tail: the scan still decodes every complete row
  before the tear, counts exactly one torn segment, and healing makes
  the store clean again.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.store import ReportStore, scan_store
from repro.obs.metrics import MetricsRegistry

_COUNTRIES = ["US", "BR", "??", "DE"]
_HOSTS = ["site-a.test", "site-b.test"]
_TYPES = ["Popular", "Business"]


def _summary(tag: str) -> CertSummary:
    return CertSummary(
        subject_cn=f"cn-{tag}",
        subject_org=None,
        issuer_cn="CA",
        issuer_org=f"org-{tag}",
        issuer_ou=None,
        serial_number=len(tag),
        key_bits=1024,
        signature_algorithm="sha1WithRSAEncryption",
        fingerprint=f"fp-{tag}",
        public_key_fingerprint=f"pk-{tag}",
    )


_mismatch = st.builds(
    lambda country, host, htype, ip, tag, chain_len: MeasurementRecord(
        study=1,
        campaign="prop",
        client_ip=f"10.0.0.{ip}",
        country=country,
        hostname=host,
        host_type=htype,
        mismatch=True,
        leaf=_summary(tag),
        chain=tuple(_summary(f"{tag}-{i}") for i in range(chain_len)),
    ),
    country=st.sampled_from(_COUNTRIES),
    host=st.sampled_from(_HOSTS),
    htype=st.sampled_from(_TYPES),
    ip=st.integers(0, 30),
    tag=st.text("abcdef", min_size=1, max_size=4),
    chain_len=st.integers(0, 2),
)

_bulk = st.tuples(
    st.sampled_from(_COUNTRIES),
    st.sampled_from(_TYPES),
    st.sampled_from(_HOSTS),
    st.integers(1, 50),
)

_op = st.one_of(
    _mismatch,
    _bulk,
    st.tuples(
        st.sampled_from(["probe_failed", "report_failed", "connect_failed"]),
        st.integers(1, 3),
    ),
)


def _apply(ops, store, db):
    for op in ops:
        if isinstance(op, MeasurementRecord):
            store.add_mismatch(op)
            db.add_mismatch(op)
        elif len(op) == 4:
            country, htype, host, count = op
            store.add_matched_bulk(country, htype, host, count)
            db.add_matched_bulk(country, htype, host, count)
        else:
            name, count = op
            store.add_failure(name, count)
            setattr(db.failures, name, getattr(db.failures, name) + count)


class TestStoreProperties:
    @given(
        ops=st.lists(_op, max_size=40),
        batch_rows=st.integers(1, 16),
        segment_bytes=st.integers(64, 4096),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_signature(self, ops, batch_rows, segment_bytes):
        with tempfile.TemporaryDirectory() as tmp:
            store = ReportStore(
                os.path.join(tmp, "s"),
                batch_rows=batch_rows,
                segment_bytes=segment_bytes,
            )
            db = ReportDatabase()
            _apply(ops, store, db)
            assert store.aggregator.aggregate_signature() == (
                db.aggregate_signature()
            )
            store.close()
            aggregator = scan_store(os.path.join(tmp, "s"))
            assert aggregator.aggregate_signature() == db.aggregate_signature()
            assert aggregator.totals_by_country() == db.totals_by_country()
            assert aggregator.totals_by_host_type() == db.totals_by_host_type()

    @given(
        ops=st.lists(_op, min_size=3, max_size=25),
        cut=st.integers(1, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_loses_at_most_the_tail(self, ops, cut):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s")
            store = ReportStore(path, batch_rows=4, segment_bytes=512)
            db = ReportDatabase()
            _apply(ops, store, db)
            store.close()
            segments = store.segments.segment_paths()
            victim = segments[len(segments) // 2]
            data = victim.read_bytes()
            keep = len(data) - min(cut, len(data) - 1)
            victim.write_bytes(data[:keep])

            registry = MetricsRegistry()
            aggregator = scan_store(path, registry, heal=True)
            counters = registry.deterministic_snapshot()["counters"]
            torn = counters.get("reports.rejected{reason=torn-segment}", 0)
            # Torn iff the cut landed mid-row; a cut exactly on a row
            # boundary leaves a clean (shorter) segment.
            expected_torn = 0 if data[:keep].endswith(b"\n") or keep == 0 else 1
            assert torn == expected_torn
            # Whatever survived is a prefix of the original rows: every
            # aggregate stays <= the uncut value, and healing leaves a
            # store that scans clean.
            assert aggregator.total_measurements <= db.total_measurements
            healed = MetricsRegistry()
            again = scan_store(path, healed)
            assert (
                healed.deterministic_snapshot()["counters"].get(
                    "reports.rejected{reason=torn-segment}", 0
                )
                == 0
            )
            assert again.aggregate_signature() == aggregator.aggregate_signature()
