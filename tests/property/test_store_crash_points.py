"""Property tests for crash-point recovery (the chaos tentpole).

The contract under test: killing the store writer at *any* declared
crash point, at *any* cadence, tear behaviour and segment geometry,
then reopening and replaying, always converges to the exact fault-free
aggregate signature with zero loss — and every torn tail the simulated
crashes leave behind is healed and accounted under
``reports.rejected{reason=torn-segment}`` exactly once.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import CRASH_POINTS, FaultPlan
from repro.faults.recovery import ResilientStoreWriter, apply_op
from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.store import scan_store
from repro.obs.metrics import MetricsRegistry

_COUNTRIES = ["US", "BR", "??"]
_HOSTS = ["site-a.test", "site-b.test"]
_TYPES = ["Popular", "Business"]


def _summary(tag: str) -> CertSummary:
    return CertSummary(
        subject_cn=f"cn-{tag}",
        subject_org=None,
        issuer_cn="CA",
        issuer_org=f"org-{tag}",
        issuer_ou=None,
        serial_number=len(tag),
        key_bits=1024,
        signature_algorithm="sha1WithRSAEncryption",
        fingerprint=f"fp-{tag}",
        public_key_fingerprint=f"pk-{tag}",
    )


_mismatch = st.builds(
    lambda country, host, htype, ip, tag: (
        "m",
        MeasurementRecord(
            study=1,
            campaign="crash",
            client_ip=f"10.0.0.{ip}",
            country=country,
            hostname=host,
            host_type=htype,
            mismatch=True,
            leaf=_summary(tag),
            chain=(),
        ),
    ),
    country=st.sampled_from(_COUNTRIES),
    host=st.sampled_from(_HOSTS),
    htype=st.sampled_from(_TYPES),
    ip=st.integers(0, 30),
    tag=st.text("abcdef", min_size=1, max_size=4),
)

_bulk = st.tuples(
    st.just("c"),
    st.sampled_from(_COUNTRIES),
    st.sampled_from(_TYPES),
    st.sampled_from(_HOSTS),
    st.integers(1, 50),
)

_failure = st.tuples(
    st.just("f"),
    st.sampled_from(["probe_failed", "report_failed", "connect_failed"]),
    st.integers(1, 3),
)

_ops = st.lists(st.one_of(_mismatch, _bulk, _failure), min_size=1, max_size=40)


def _reference(ops):
    database = ReportDatabase()
    for op in ops:
        apply_op(database, op)
    return database


class TestCrashPointRecovery:
    @given(
        ops=_ops,
        point=st.sampled_from(CRASH_POINTS),
        cadence=st.integers(1, 3),
        tear=st.booleans(),
        batch_rows=st.integers(1, 8),
        segment_bytes=st.integers(64, 2048),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_crash_point_heals_to_the_exact_signature(
        self, ops, point, cadence, tear, batch_rows, segment_bytes, seed
    ):
        reference = _reference(ops).aggregate_signature()
        plan = FaultPlan(
            seed=seed, crash_every={point: cadence}, tear=tear
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s")
            registry = MetricsRegistry()
            writer = ResilientStoreWriter(
                path,
                plan,
                registry,
                batch_rows=batch_rows,
                segment_bytes=segment_bytes,
            )
            stats = writer.deliver(list(ops))
            if point == "compact":
                writer.compact()
                writer.close()
            # Exact loss accounting: a crash-only plan never loses an op.
            assert stats["failed"] == 0
            assert stats["submitted"] == stats["delivered"] == len(ops)
            # Byte-identical recovery at arbitrary geometry.
            assert scan_store(path).aggregate_signature() == reference
            # Every torn tail the simulated crashes produced was healed
            # at reopen and counted exactly once.
            counters = registry.deterministic_snapshot()["counters"]
            torn = counters.get("reports.rejected{reason=torn-segment}", 0)
            assert torn == writer.torn_tails
            if tear is False:
                assert torn == 0
            # A fresh scan sees a clean store: healing is durable.
            rescan = MetricsRegistry()
            scan_store(path, rescan)
            assert (
                rescan.deterministic_snapshot()["counters"].get(
                    "reports.rejected{reason=torn-segment}", 0
                )
                == 0
            )

    @given(
        ops=_ops,
        cadences=st.fixed_dictionaries(
            {},
            optional={point: st.integers(1, 3) for point in CRASH_POINTS},
        ),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_combined_crash_plans_also_converge(self, ops, cadences, seed):
        reference = _reference(ops).aggregate_signature()
        plan = FaultPlan(seed=seed, crash_every=dict(cadences))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s")
            writer = ResilientStoreWriter(
                path, plan, MetricsRegistry(), batch_rows=3, segment_bytes=384
            )
            stats = writer.deliver(list(ops))
            writer.compact()
            writer.close()
            assert stats["failed"] == 0
            assert scan_store(path).aggregate_signature() == reference

    @given(ops=_ops, rate=st.floats(0.05, 0.5), seed=st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_lossy_plans_hold_the_exact_loss_invariant(self, ops, rate, seed):
        plan = FaultPlan(
            seed=seed, rates={"drop": rate}, crash_every={"flush": 2}
        )
        with tempfile.TemporaryDirectory() as tmp:
            writer = ResilientStoreWriter(
                os.path.join(tmp, "s"),
                plan,
                MetricsRegistry(),
                batch_rows=3,
                segment_bytes=512,
            )
            stats = writer.deliver(list(ops))
            assert stats["submitted"] == stats["delivered"] + stats["failed"]
            assert stats["failed"] == len(writer.gate.dropped)
            # The surviving set is exactly the non-dropped prefix ops.
            survivors = [
                op
                for index, op in enumerate(ops)
                if index not in writer.gate.dropped
            ]
            assert scan_store(
                os.path.join(tmp, "s")
            ).aggregate_signature() == _reference(survivors).aggregate_signature()
