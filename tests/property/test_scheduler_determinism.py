"""Property: wire-mode results are scheduler-interleaving-independent.

The refactor's bar (ISSUE 10): at any admission cap, and under *any*
per-tick task ordering, a wire study must reproduce the serial run's
``aggregate_signature()``, every per-engine handshake event log, and
the deterministic metrics section byte for byte.  Hypothesis drives the
"any ordering" half by seeding the scheduler's shuffle rng — each
example executes the same session plan under a different interleaving.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.study import StudyConfig, StudyRunner

# ~60 planned sessions: big enough for dozens of interleaved chains,
# small enough that each hypothesis example stays around a second.
_SCALE = 0.00002
_SEED = 9


def _run(wire_concurrency: int = 1, shuffle_seed: int | None = None):
    """One wire study; returns its full determinism fingerprint."""
    runner = StudyRunner(
        StudyConfig(
            study=2,
            seed=_SEED,
            scale=_SCALE,
            mode="wire",
            wire_concurrency=wire_concurrency,
        )
    )
    if shuffle_seed is not None:
        runner._wire_shuffle = random.Random(shuffle_seed)
    result = runner.run()
    engine_logs = {}
    for key, host in result.notes["wire_client_hosts"].items():
        for interceptor in host.interceptors:
            events = getattr(interceptor, "events", None)
            if events is not None:
                engine_logs[key] = events.to_dicts()
    return (
        result.database.aggregate_signature(),
        result.metrics["deterministic"],
        engine_logs,
        result.sessions_run,
    )


class TestSchedulerInterleavingDeterminism:
    # The serial baseline is pure per (study, seed, scale); computing
    # it once keeps each hypothesis example to a single study run.
    _baseline = None

    @classmethod
    def baseline(cls):
        if cls._baseline is None:
            cls._baseline = _run(wire_concurrency=1)
        return cls._baseline

    @given(shuffle_seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_shuffled_schedule_matches_serial_baseline(self, shuffle_seed):
        serial_sig, serial_metrics, serial_logs, serial_sessions = self.baseline()
        sig, metrics, logs, sessions = _run(
            wire_concurrency=16, shuffle_seed=shuffle_seed
        )
        assert sessions == serial_sessions
        assert sig == serial_sig
        assert metrics == serial_metrics
        assert logs.keys() == serial_logs.keys()
        for key in serial_logs:
            assert logs[key] == serial_logs[key], f"engine {key} diverged"
