"""Property-based tests for the network simulator's byte transport."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Network, Protocol, StreamSocket


class Collector(Protocol):
    """Accumulates everything received."""

    def __init__(self):
        self.received = b""
        self.closed = False

    def data_received(self, sock, data):
        self.received += data

    def connection_lost(self, sock):
        self.closed = True


class TestStreamProperties:
    @given(chunks=st.lists(st.binary(min_size=1, max_size=100), max_size=30))
    @settings(max_examples=150)
    def test_bytes_arrive_in_order_and_complete(self, chunks):
        collector = Collector()
        net = Network()
        client_host = net.add_host("c.example")
        server_host = net.add_host("s.example")
        server_host.listen(1, lambda: collector)
        sock = client_host.connect("s.example", 1)
        for chunk in chunks:
            sock.send(chunk)
        assert collector.received == b"".join(chunks)

    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=50), max_size=20),
        read_sizes=st.lists(st.integers(1, 64), max_size=40),
    )
    @settings(max_examples=150)
    def test_pull_side_reassembles_stream(self, chunks, read_sizes):
        """Arbitrary recv() chunking yields the same byte stream."""
        a, b = StreamSocket.pair("a", "b")
        for chunk in chunks:
            a.send(chunk)
        out = b""
        for size in read_sizes:
            out += b.recv(size)
        out += b.recv()
        assert out == b"".join(chunks)

    @given(data=st.binary(min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_echo_round_trip_any_bytes(self, data):
        class Echo(Protocol):
            def data_received(self, sock, received):
                sock.send(received)

        net = Network()
        client_host = net.add_host("c.example")
        server_host = net.add_host("s.example")
        server_host.listen(1, Echo)
        sock = client_host.connect("s.example", 1)
        sock.send(data)
        assert sock.recv() == data

    @given(close_after=st.integers(0, 5), chunks=st.integers(1, 8))
    @settings(max_examples=80)
    def test_close_notifies_exactly_once(self, close_after, chunks):
        collector = Collector()
        net = Network()
        client_host = net.add_host("c.example")
        server_host = net.add_host("s.example")
        server_host.listen(1, lambda: collector)
        sock = client_host.connect("s.example", 1)
        from repro.netsim import ConnectionReset

        sent = 0
        for i in range(chunks):
            if i == close_after:
                sock.close()
            try:
                sock.send(b"x")
                sent += 1
            except ConnectionReset:
                break
        sock.close()
        assert collector.received == b"x" * sent
        assert collector.closed
