"""Wire-path fault injection: an on-path relay hop plus a server hook.

:class:`FaultRelay` is a netsim :class:`Interceptor` meant for a
:class:`~repro.netsim.network.PathHop` on the client's access path to
the reporting server.  It models the consumer-network failure modes
the paper's clients actually lived behind: connections that never
reach the collector, resets mid-POST, truncated uploads, and flipped
bytes.  Fault decisions are keyed on a per-target *report-connection
ordinal*, and only connections whose first bytes say ``POST /report``
are ever faulted — ad fetches and Flash policy probes pass through
untouched, which keeps the study's policy/probe ledger (and therefore
``aggregate_signature()``) out of the blast radius.

Kind semantics, chosen for exact accounting:

* ``connect-refused`` / ``reset`` — the relay never opens the upstream
  leg, so the server never sees the attempt; the client retries and
  delivery recovers without any server-side ledger change.
* ``truncate`` — the upstream leg sees a prefix and then a close, so
  the server's abandoned-request accounting fires (that is the point);
  delivery still recovers via client retry, but the failure ledger —
  and hence the signature — records the event.
* ``corrupt`` — one byte is XOR-flipped in flight; whatever the server
  makes of the damage (parse error, rejected report) stands.

:func:`server_fault_hook` covers the server-side kinds: injected 500s,
503+``Retry-After`` slow-downs and 429s, returned *before* the report
handler runs so an injected error never touches the database.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.faults.plan import FaultPlan
from repro.httpmin.codec import HttpRequest, HttpResponse
from repro.netsim.network import (
    ConnectionReset,
    Host,
    Interceptor,
    Network,
    Protocol,
    StreamSocket,
)
from repro.obs.metrics import MetricsRegistry

_REPORT_PREFIX = b"POST /report"


class FaultRelay(Interceptor):
    """On-path relay that injects wire faults into report submissions."""

    def __init__(
        self,
        plan: FaultPlan,
        registry: MetricsRegistry | None = None,
        hostname: str = "tlsresearch.byu.edu",
        port: int = 80,
    ) -> None:
        self.plan = plan
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.hostname = hostname
        self.port = port
        self.report_connections = 0
        self.faulted_connections = 0

    def intercepts(self, hostname: str, port: int) -> bool:
        return hostname == self.hostname and port == self.port

    def accept(
        self,
        network: Network,
        client_sock: StreamSocket,
        hostname: str,
        port: int,
    ) -> None:
        client_sock.protocol = _RelayConnection(
            self, network, client_sock, hostname, port
        )

    def next_report_ordinal(self) -> int:
        ordinal = self.report_connections
        self.report_connections += 1
        return ordinal

    def count(self, kind: str) -> None:
        self.faulted_connections += 1
        self.metrics.inc("faults.injected", kind=kind)


class _RelayConnection(Protocol):
    """One relayed connection: classify, decide, forward (or not)."""

    def __init__(
        self,
        relay: FaultRelay,
        network: Network,
        client_sock: StreamSocket,
        hostname: str,
        port: int,
    ) -> None:
        self.relay = relay
        self.network = network
        self.client_sock = client_sock
        self.hostname = hostname
        self.port = port
        self.upstream: StreamSocket | None = None
        self._probe = b""
        self._decided = False
        self.mode: str | None = None
        self.cut_at = 0  # byte offset for reset/truncate/corrupt
        self.seen = 0  # original-stream bytes consumed
        self.forwarded = 0  # bytes actually sent upstream

    # -- classification --------------------------------------------------

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        if not self._decided:
            self._probe += data
            probe = self._probe
            if len(probe) < len(_REPORT_PREFIX) and _REPORT_PREFIX.startswith(probe):
                return  # could still be a report POST; wait for bytes
            self._decide(probe.startswith(_REPORT_PREFIX))
            data, self._probe = self._probe, b""
            if self.client_sock.closed:
                return
        self._feed(data)

    def _decide(self, is_report: bool) -> None:
        self._decided = True
        if not is_report:
            return  # ad/policy traffic: transparent passthrough
        plan = self.relay.plan
        ordinal = self.relay.next_report_ordinal()
        site = ("wire", self.hostname, self.port, ordinal)
        for kind in ("connect-refused", "reset", "truncate", "corrupt"):
            if plan.fires(kind, *site):
                self.mode = kind
                break
        if self.mode == "connect-refused":
            self.relay.count("connect-refused")
            self.client_sock.close()
        elif self.mode == "reset":
            # Swallow a seeded number of bytes, then cut the client off;
            # the upstream leg is never opened.
            self.relay.count("reset")
            self.cut_at = plan.roll(256, "reset-at", *site)
        elif self.mode == "truncate":
            # Forward at least the request line (so the server's
            # abandoned accounting can classify the corpse), then stop.
            self.relay.count("truncate")
            self.cut_at = len(_REPORT_PREFIX) + 4 + plan.roll(256, "truncate-at", *site)
        elif self.mode == "corrupt":
            # Flip a byte well past the request line and headers: body
            # damage keeps the HTTP framing intact (the server reads a
            # complete request and rejects the broken PEM) instead of
            # wedging the exchange on a mangled Content-Length.
            self.cut_at = 256 + plan.roll(512, "corrupt-at", *site)

    # -- data path -------------------------------------------------------

    def _feed(self, data: bytes) -> None:
        if self.mode == "connect-refused":
            return  # already closed; drop anything in flight
        if self.mode == "reset":
            self.seen += len(data)
            if self.seen >= self.cut_at and not self.client_sock.closed:
                self.client_sock.close()
            return
        if self.mode == "truncate":
            keep = max(0, self.cut_at - self.forwarded)
            chopped = len(data) > keep
            data = data[:keep]
            if data:
                self._ensure_upstream()
                self.forwarded += len(data)
                try:
                    self.upstream.send(data)
                except ConnectionReset:
                    pass
            if chopped:
                # The corpse is complete: cut both legs so the server's
                # abandoned accounting fires and the client retries.
                if self.upstream is not None and not self.upstream.closed:
                    self.upstream.close()
                if not self.client_sock.closed:
                    self.client_sock.close()
            return
        if self.mode == "corrupt":
            offset = self.cut_at - self.forwarded
            if 0 <= offset < len(data):
                data = (
                    data[:offset]
                    + bytes([data[offset] ^ 0xFF])
                    + data[offset + 1 :]
                )
                self.relay.count("corrupt")
        self._ensure_upstream()
        self.forwarded += len(data)
        try:
            self.upstream.send(data)
        except ConnectionReset:
            if not self.client_sock.closed:
                self.client_sock.close()

    def _ensure_upstream(self) -> None:
        if self.upstream is not None:
            return
        src = self.client_sock.remote_host
        self.upstream = self.network.connect_upstream(src, self.hostname, self.port)
        self.upstream.protocol = _DownPipe(self.client_sock)

    def connection_lost(self, sock: StreamSocket) -> None:
        if self.upstream is not None and not self.upstream.closed:
            self.upstream.close()


class _DownPipe(Protocol):
    """Server→client direction: verbatim forwarding, close propagation."""

    def __init__(self, client_sock: StreamSocket) -> None:
        self.client_sock = client_sock

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        if not self.client_sock.closed:
            self.client_sock.send(data)

    def connection_lost(self, sock: StreamSocket) -> None:
        if not self.client_sock.closed:
            self.client_sock.close()


# -- server-side kinds ---------------------------------------------------

def server_fault_hook(
    plan: FaultPlan, registry: MetricsRegistry | None = None
) -> Callable[[HttpRequest, "Host | None"], HttpResponse | None]:
    """A ``ReportingServer.fault_hook``: inject 500/503/429 answers.

    Consulted before the report handler, so an injected error returns
    without touching the database or the store — the client's retry
    (which the injected ``Retry-After`` paces) delivers the report on a
    later ordinal and the end state matches the fault-free run exactly.
    """
    metrics = registry if registry is not None else MetricsRegistry()
    requests = itertools.count()

    def hook(request: HttpRequest, remote: "Host | None") -> HttpResponse | None:
        ordinal = next(requests)
        if plan.fires("server-5xx", "server", ordinal):
            metrics.inc("faults.injected", kind="server-5xx")
            return HttpResponse(500, body=b"injected server fault")
        if plan.fires("server-slow", "server", ordinal):
            metrics.inc("faults.injected", kind="server-slow")
            pause = 1 + plan.roll(4, "server-slow", ordinal)
            return HttpResponse(
                503,
                headers={"Retry-After": str(pause)},
                body=b"injected slow server",
            )
        if plan.fires("429", "server", ordinal):
            metrics.inc("faults.injected", kind="429")
            return HttpResponse(
                429, headers={"Retry-After": "1"}, body=b"injected backpressure"
            )
        return None

    return hook
