"""Recovery supervision: deliver an op stream through injected faults.

The fast-mode study merge normally appends each shard database to the
report store in fixed (plan, sub) order.  Under a fault plan the same
operations — mismatch records, matched bulk counters, failure-ledger
increments — flow through two hazards instead:

* a :class:`FaultGate` that models the transport: transient kinds
  (``reset``, ``429``) cost seeded-backoff retries before the op gets
  through, ``drop`` loses it outright (the only unrecoverable kind);
* a :class:`CrashSchedule` wired into the store's crash points, which
  kills the writer mid-flush/rotate/seal/compact.

:class:`ResilientStoreWriter` pairs them with recovery: after a crash
it reopens the store (healing torn tails), consults ``ops_durable`` to
find exactly which applied ops the dead instance never made durable,
and replays from the first lost one.  Because the store's crash points
fire before any byte of the cycle is written, the durable set is
always a prefix of the applied ops — replay is exact, never
double-counts, and a plan without ``drop`` reproduces the fault-free
``aggregate_signature()`` byte-identically.

The loss invariant is accounted exactly: ``submitted == delivered +
failed`` where ``failed`` is precisely the gate's dropped set.
"""

from __future__ import annotations

import pathlib
from collections import Counter
from typing import Callable, Iterable

from repro.faults.plan import Backoff, FaultPlan
from repro.measure.database import ReportDatabase
from repro.measure.store import InjectedCrash, ReportStore
from repro.obs.metrics import BACKOFF_TICK_BUCKETS, MetricsRegistry

#: Transient gate kinds: injected, retried with backoff, recoverable.
GATE_TRANSIENT_KINDS = ("reset", "429")


class CrashSchedule:
    """Stateful crash trigger for the store's named crash points.

    ``crash-<point>=N`` fires an :class:`InjectedCrash` at every Nth
    occurrence of that point.  The occurrence immediately after a fire
    is always skipped, so recovery makes progress even at cadence 1 —
    the reopened writer's first flush is never re-killed at the same
    point.
    """

    def __init__(
        self, plan: FaultPlan, registry: MetricsRegistry | None = None
    ) -> None:
        self.every = dict(plan.crash_every)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.fired: Counter[str] = Counter()
        self._seen: Counter[str] = Counter()
        self._skip: set[str] = set()

    def __call__(self, point: str) -> None:
        every = self.every.get(point)
        if not every:
            return
        if point in self._skip:
            self._skip.discard(point)
            return
        self._seen[point] += 1
        if self._seen[point] % every == 0:
            self._skip.add(point)
            self.fired[point] += 1
            self.metrics.inc("faults.injected", kind=f"crash-{point}")
            raise InjectedCrash(point)


class FaultGate:
    """Per-op transport hazard for the fast-mode delivery stream.

    Decisions are keyed on the global op ordinal, which the parent
    process assigns in fixed plan order — so the injected fault
    sequence is identical for any worker count.  Each ordinal is
    evaluated exactly once; crash-recovery replays of already-evaluated
    ordinals reuse the cached verdict without re-counting metrics.
    """

    def __init__(self, plan: FaultPlan, registry: MetricsRegistry | None = None) -> None:
        self.plan = plan
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.backoff = Backoff(plan.seed)
        self.dropped: set[int] = set()
        self.injected: Counter[str] = Counter()
        self.retries = 0
        self.ticks_waited = 0
        self._evaluated = -1
        self._h_backoff = self.metrics.histogram(
            "faults.backoff_ticks", BACKOFF_TICK_BUCKETS
        )

    def attempt(self, index: int) -> bool:
        """True when op ``index`` gets through (possibly after retries)."""
        if index <= self._evaluated:
            return index not in self.dropped
        self._evaluated = index
        if self.plan.fires("drop", "gate", index):
            self._count("drop")
            return self._drop(index, "drop")
        for kind in GATE_TRANSIENT_KINDS:
            if self.plan.rates.get(kind, 0.0) <= 0.0:
                continue
            attempt = 0
            while self.plan.fires(kind, "gate", index, attempt):
                self._count(kind)
                self.retries += 1
                self.metrics.inc("faults.retries", kind=kind)
                delay = self.backoff.delay(
                    attempt,
                    "gate",
                    kind,
                    index,
                    retry_after=1 if kind == "429" else None,
                )
                self.ticks_waited += delay
                self._h_backoff.observe(delay)
                attempt += 1
                if attempt >= self.plan.retries:
                    return self._drop(index, kind)
        return True

    def _count(self, kind: str) -> None:
        self.injected[kind] += 1
        self.metrics.inc("faults.injected", kind=kind)

    def _drop(self, index: int, kind: str) -> bool:
        self.dropped.add(index)
        self.metrics.inc("faults.dropped", kind=kind)
        return False


# -- the op stream -------------------------------------------------------

def database_ops(database: ReportDatabase) -> Iterable[tuple]:
    """One shard database as an ordered op stream.

    Mirrors ``ReportStore.append_database`` exactly — mismatches, then
    matched bulk counters, then failure increments — so fault-free
    delivery reproduces the unfaulted merge byte for byte.
    """
    for record in database.records:
        yield ("m", record)
    for (country, host_type, hostname), count in database.matched_counts.items():
        yield ("c", country, host_type, hostname, count)
    for name, value in vars(database.failures).items():
        if value:
            yield ("f", name, value)


def apply_op(sink, op: tuple) -> None:
    """Apply one op to a :class:`ReportStore` or :class:`ReportDatabase`."""
    kind = op[0]
    if kind == "m":
        sink.add_mismatch(op[1])
    elif kind == "c":
        sink.add_matched_bulk(op[1], op[2], op[3], op[4])
    elif hasattr(sink, "add_failure"):
        sink.add_failure(op[1], op[2])
    else:
        setattr(sink.failures, op[1], getattr(sink.failures, op[1]) + op[2])


class ResilientStoreWriter:
    """Crash-surviving, fault-gated delivery into a report store.

    Owns the store instance(s): the plan's crash schedule is installed
    as the crash hook, and every :class:`InjectedCrash` is answered by
    reopening the directory (which heals torn tails) and replaying the
    ops the dead writer had accepted but not flushed.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        plan: FaultPlan,
        registry: MetricsRegistry | None = None,
        *,
        batch_rows: int = 4096,
        segment_bytes: int | None = None,
        crash_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.path = path
        self.plan = plan
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.gate = FaultGate(plan, self.metrics)
        self.schedule = (
            crash_hook
            if crash_hook is not None
            else CrashSchedule(plan, self.metrics) if plan.has_crashes() else None
        )
        self._batch_rows = plan.batch_rows or batch_rows
        self._segment_bytes = plan.segment_bytes or segment_bytes
        self.recoveries = 0
        self.torn_tails = 0
        self.store = self._open()

    def _open(self) -> ReportStore:
        kwargs: dict = {"batch_rows": self._batch_rows}
        if self._segment_bytes is not None:
            kwargs["segment_bytes"] = self._segment_bytes
        return ReportStore(
            self.path,
            self.metrics,
            crash_hook=self.schedule,
            crash_tear=self.plan.tear,
            **kwargs,
        )

    def _recover(self) -> None:
        self.recoveries += 1
        self.torn_tails += self.store.crash_torn_segments
        self.metrics.inc("store.recoveries")
        self.store = self._open()

    def deliver(self, ops) -> dict:
        """Drive every op to delivered-or-dropped; close the store.

        Returns the exact loss accounting: ``submitted`` ops in,
        ``delivered`` made durable, ``failed`` dropped by the gate,
        with ``submitted == delivered + failed`` always.
        """
        ops = ops if isinstance(ops, list) else list(ops)
        i = 0
        applied: list[int] = []  # global indices applied to self.store
        while True:
            try:
                while i < len(ops):
                    if not self.gate.attempt(i):
                        i += 1
                        continue
                    apply_op(self.store, ops[i])
                    applied.append(i)
                    i += 1
                self.store.close()
                break
            except InjectedCrash:
                # Durability is a prefix of the applied ops (crash
                # points fire before the cycle's writes), so the first
                # lost op is applied[ops_durable]; everything before it
                # is safely on disk and never replayed.
                survivors = self.store.ops_durable
                if survivors < len(applied):
                    i = applied[survivors]
                applied.clear()
                self._recover()
        submitted = len(ops)
        failed = len(self.gate.dropped)
        return {
            "plan": self.plan.describe(),
            "submitted": submitted,
            "delivered": submitted - failed,
            "failed": failed,
            "recoveries": self.recoveries,
            "torn_tails": self.torn_tails,
            "retries": self.gate.retries,
            "injected": dict(sorted(self.gate.injected.items())),
            "crashes": dict(
                sorted(self.schedule.fired.items())
                if isinstance(self.schedule, CrashSchedule)
                else []
            ),
        }

    def compact(self) -> dict:
        """Run store compaction, riding through injected crashes."""
        while True:
            try:
                return self.store.compact()
            except InjectedCrash:
                self._recover()

    def close(self) -> None:
        """Close the store, riding through injected seal/flush crashes."""
        while True:
            try:
                self.store.close()
                return
            except InjectedCrash:
                self._recover()
