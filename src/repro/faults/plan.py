"""Seeded fault plans: every injected failure is a pure hash decision.

A :class:`FaultPlan` is parsed from a compact ``key=value`` string
(the ``--faults`` CLI argument) and answers one question everywhere a
fault *could* happen: "does this fault fire at this site?".  The
answer is ``stable_hash(seed, "fault", kind, *site) < rate * 2**64``
— a pure function of the plan seed and the site coordinates, never of
wall clock, process id or worker count.  Fast-mode delivery faults key
on the global operation ordinal (assigned in fixed plan order in the
parent process), wire faults on a per-target connection ordinal, and
store crashes on a per-point occurrence counter, so the same plan
reproduces the same faults for any ``--workers`` value.

Plan grammar (comma-separated, order-insensitive)::

    reset=0.05,429=0.02,crash-rotate=1,segment-bytes=4096,seed=7

* ``<kind>=<rate>`` — probability in [0, 1] for a fault kind:
  ``connect-refused``, ``reset``, ``truncate``, ``corrupt``, ``stall``
  (wire path), ``server-5xx``, ``server-slow``, ``429`` (reporting
  server), ``drop`` (unrecoverable loss in the fast-mode gate).
* ``crash-<point>=<N>`` — kill the store writer at every Nth hit of a
  named crash point (``flush``, ``rotate``, ``seal``, ``compact``).
* ``seed=<int>`` — decision seed (default 0).
* ``retries=<int>`` — retry budget for recovery loops (default 8).
* ``deadline=<int>`` — per-session/submission backoff budget in
  cooperative ticks (default 256).
* ``tear=<0|1>`` — whether a simulated crash leaves a torn half-row in
  the active segment (default 1).
* ``segment-bytes=<int>`` / ``batch-rows=<int>`` — store geometry
  overrides so small runs still roll/flush segments often enough to
  exercise the crash points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import stable_hash

WIRE_FAULT_KINDS = ("connect-refused", "reset", "truncate", "corrupt", "stall")
SERVER_FAULT_KINDS = ("server-5xx", "server-slow", "429")
GATE_FAULT_KINDS = ("reset", "429", "drop")
RATE_KINDS = frozenset(WIRE_FAULT_KINDS + SERVER_FAULT_KINDS + ("drop",))
CRASH_POINTS = ("flush", "rotate", "seal", "compact")

_SPAN = 1 << 64


class FaultPlanError(ValueError):
    """Raised for an unparsable or inconsistent plan string."""


@dataclass
class FaultPlan:
    """A deterministic fault schedule."""

    seed: int = 0
    rates: dict[str, float] = field(default_factory=dict)
    crash_every: dict[str, int] = field(default_factory=dict)
    retries: int = 8
    deadline: int = 256
    tear: bool = True
    segment_bytes: int | None = None
    batch_rows: int | None = None

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        plan = cls(seed=seed)
        for token in filter(None, (part.strip() for part in text.split(","))):
            key, sep, value = token.partition("=")
            if not sep:
                raise FaultPlanError(f"fault rule {token!r} is not key=value")
            key = key.strip()
            value = value.strip()
            try:
                if key in RATE_KINDS:
                    rate = float(value)
                    if not 0.0 <= rate <= 1.0:
                        raise FaultPlanError(f"rate for {key!r} must be in [0, 1]")
                    plan.rates[key] = rate
                elif key.startswith("crash-"):
                    point = key[len("crash-"):]
                    if point not in CRASH_POINTS:
                        raise FaultPlanError(
                            f"unknown crash point {point!r} "
                            f"(valid: {', '.join(CRASH_POINTS)})"
                        )
                    every = int(value)
                    if every < 1:
                        raise FaultPlanError("crash cadence must be >= 1")
                    plan.crash_every[point] = every
                elif key == "seed":
                    plan.seed = int(value)
                elif key == "retries":
                    plan.retries = max(1, int(value))
                elif key == "deadline":
                    plan.deadline = max(1, int(value))
                elif key == "tear":
                    plan.tear = bool(int(value))
                elif key == "segment-bytes":
                    plan.segment_bytes = max(64, int(value))
                elif key == "batch-rows":
                    plan.batch_rows = max(1, int(value))
                else:
                    raise FaultPlanError(
                        f"unknown fault rule {key!r} (kinds: "
                        f"{', '.join(sorted(RATE_KINDS))}; crash-<point>, seed, "
                        "retries, deadline, tear, segment-bytes, batch-rows)"
                    )
            except ValueError as exc:
                if isinstance(exc, FaultPlanError):
                    raise
                raise FaultPlanError(f"bad value in {token!r}: {exc}") from None
        return plan

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts.extend(f"{kind}={rate:g}" for kind, rate in sorted(self.rates.items()))
        parts.extend(
            f"crash-{point}={every}"
            for point, every in sorted(self.crash_every.items())
        )
        return ",".join(parts)

    # -- decisions -------------------------------------------------------

    def rate(self, kind: str) -> float:
        return self.rates.get(kind, 0.0)

    def fires(self, kind: str, *site) -> bool:
        """Does fault ``kind`` fire at ``site``?  Pure hash decision."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return stable_hash(self.seed, "fault", kind, *site) < int(rate * _SPAN)

    def roll(self, span: int, *site) -> int:
        """A deterministic integer in ``[0, span)`` for ``site``."""
        return stable_hash(self.seed, "roll", *site) % span

    def stall_ticks(self, *site) -> int:
        """Client-side stall (cooperative ticks) for a submission."""
        if not self.fires("stall", *site):
            return 0
        return 1 + self.roll(8, "stall", *site)

    # -- plan shape ------------------------------------------------------

    def has_wire_faults(self) -> bool:
        return any(self.rates.get(kind, 0.0) > 0 for kind in WIRE_FAULT_KINDS)

    def has_server_faults(self) -> bool:
        return any(self.rates.get(kind, 0.0) > 0 for kind in SERVER_FAULT_KINDS)

    def has_gate_faults(self) -> bool:
        return any(self.rates.get(kind, 0.0) > 0 for kind in GATE_FAULT_KINDS)

    def has_crashes(self) -> bool:
        return bool(self.crash_every)


class Backoff:
    """Bounded exponential backoff with seeded full jitter, in ticks.

    ``delay()`` returns the wait before retry ``attempt`` (0-based):
    a jittered draw from ``[1, min(cap, base << attempt)]``, floored by
    the server's ``Retry-After`` when one was given.  Time here is
    cooperative ticks — nothing sleeps; callers account the ticks
    against a deadline budget so "waiting" is deterministic and free.
    """

    def __init__(self, seed: int = 0, base: int = 1, cap: int = 64) -> None:
        if base < 1 or cap < base:
            raise ValueError("need 1 <= base <= cap")
        self.seed = seed
        self.base = base
        self.cap = cap

    def delay(self, attempt: int, *site, retry_after: int | None = None) -> int:
        window = min(self.cap, self.base << min(attempt, 16))
        jitter = stable_hash(self.seed, "backoff", attempt, *site) % window
        delay = 1 + jitter
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay
