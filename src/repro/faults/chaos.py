"""The ``repro chaos`` fault matrix: inject, recover, prove it.

Runs one drill per fault kind against a real (small) world — ingest
loop, reporting server, report store — each in a fresh temporary
store, and checks the two invariants the chaos layer promises:

* **exact loss accounting** — every drill holds
  ``submitted == delivered + failed`` exactly;
* **byte-identical recovery** — drills whose faults are recoverable
  (connection-level, back-pressure, server errors, store crashes)
  reproduce the fault-free ``aggregate_signature()`` byte for byte.
  Truncation and corruption are deliberately visible (the server's
  failure ledger records them), so those drills check accounting only.

Everything is seeded, so two runs of the matrix — at any ``--workers``
value for the embedded fast-mode study drill — produce identical
deterministic metrics; the CI chaos smoke diffs exactly that.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

from repro.crypto.keystore import KeyStore
from repro.faults.plan import CRASH_POINTS, FaultPlan
from repro.faults.recovery import ResilientStoreWriter, database_ops
from repro.faults.wire import FaultRelay, server_fault_hook
from repro.measure.database import ReportDatabase
from repro.measure.ingest import IngestLoop, ReportSubmission
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.server import ReportingServer
from repro.measure.store import scan_store
from repro.netsim.network import Network, PathHop
from repro.obs.metrics import SECTION_DETERMINISTIC, MetricsRegistry
from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import Name, SubjectPublicKeyInfo
from repro.x509.pem import pem_encode

_COLLECTOR = "collector.chaos"

# One drill per wire/server kind; rates sized so a small report batch
# still sees several injections at the default seed.
WIRE_DRILLS: tuple[tuple[str, str, bool], ...] = (
    # (name, plan rules, recoverable → signature must match fault-free)
    ("connect-refused", "connect-refused=0.3", True),
    ("reset", "reset=0.3", True),
    ("stall", "stall=0.5", True),
    ("server-5xx", "server-5xx=0.3", True),
    ("server-slow", "server-slow=0.3", True),
    ("429", "429=0.3", True),
    ("truncate", "truncate=0.3", False),
    ("corrupt", "corrupt=0.4", False),
)


@dataclass
class DrillOutcome:
    """One drill's verdicts, as the chaos table prints them."""

    name: str
    plan: str
    submitted: int
    delivered: int
    failed: int
    retries: int
    recoveries: int
    injected: dict
    invariant_ok: bool
    signature_ok: bool | None  # None: lossy by design, not checked

    @property
    def ok(self) -> bool:
        return self.invariant_ok and self.signature_ok is not False


class _ChaosWorld:
    """A reporting stack small enough to rebuild per drill."""

    def __init__(self, seed: int) -> None:
        keystore = KeyStore(seed=seed)
        root = CertificateAuthority.self_signed(
            SelfSignedParams(
                subject=Name.build(
                    common_name="Chaos Root CA", organization="Chaos Trust"
                ),
                key=keystore.key("chaos-root", 512),
            )
        )
        leaf_key = keystore.key("chaos-leaf", 512)
        leaf = root.issue(
            Name.build(common_name=_COLLECTOR, organization="Chaos"),
            SubjectPublicKeyInfo(leaf_key.n, leaf_key.e),
            dns_names=[_COLLECTOR],
        )
        self.body = (
            pem_encode(leaf.encode()) + pem_encode(root.certificate.encode())
        ).encode("ascii")
        # An expected fingerprint no report ever matches: every report
        # lands as a full mismatch record (keyed by client IP), so the
        # aggregate signature is sensitive to every single delivery.
        self.expected = "00" * 32

    def run_ingest(
        self,
        store_dir,
        registry: MetricsRegistry,
        plan: FaultPlan | None,
        reports: int,
    ) -> dict:
        from repro.faults.plan import Backoff
        from repro.measure.store import ReportStore

        store = ReportStore(store_dir, registry, batch_rows=8)
        server = ReportingServer(
            None, None, study=1, registry=registry, store=store
        )
        server.expect(_COLLECTOR, self.expected, "Popular")
        network = Network()
        network.add_host(_COLLECTOR).listen(80, server.http.factory)
        hop = None
        if plan is not None:
            if plan.has_server_faults():
                server.fault_hook = server_fault_hook(plan, registry)
            if plan.has_wire_faults():
                hop = PathHop("chaos-relay")
                hop.add_interceptor(
                    FaultRelay(plan, registry, hostname=_COLLECTOR, port=80)
                )
        loop = IngestLoop(
            _COLLECTOR,
            store=store,
            registry=registry,
            max_connections=8,
            backoff=Backoff(plan.seed if plan else 0),
            deadline_ticks=plan.deadline if plan else None,
        )
        for index in range(reports):
            client = network.add_host(
                f"client-{index}.chaos", ip=f"10.77.{index // 256}.{index % 256}"
            )
            if hop is not None:
                client.access_path.append(hop)
            stall = plan.stall_ticks("ingest", index) if plan is not None else 0
            loop.submit(
                ReportSubmission(
                    client=client,
                    hostname=_COLLECTOR,
                    body=self.body,
                    stall_ticks=stall,
                )
            )
        stats = loop.run()
        store.close()
        return stats


def _synthetic_database(n: int) -> ReportDatabase:
    """A seedless, hand-built database for the store crash drills."""
    database = ReportDatabase()
    leaf = CertSummary(
        subject_cn="chaos", subject_org=None, issuer_cn="Chaos CA",
        issuer_org="Chaos", issuer_ou=None, serial_number=7, key_bits=512,
        signature_algorithm="sha256WithRSAEncryption",
        fingerprint="ab" * 32, public_key_fingerprint="cd" * 32,
    )
    for index in range(n):
        database.add_mismatch(
            MeasurementRecord(
                study=1, campaign="chaos", client_ip=f"10.66.0.{index % 250}",
                country="US" if index % 3 else "DE", hostname=f"h{index % 5}.chaos",
                host_type="Popular", mismatch=True, leaf=leaf, chain=(),
                chain_valid=False, via="fast", product_key=None,
            )
        )
    database.add_matched_bulk("US", "Popular", "h0.chaos", 900)
    database.add_matched_bulk("DE", "Business", "h1.chaos", 400)
    database.failures.report_failed = 2
    database.failures.sessions_started = n
    return database


def run_chaos_matrix(
    seed: int = 0,
    reports: int = 48,
    workers: int = 1,
    scale: float = 0.001,
    vault: str | None = None,
    registry: MetricsRegistry | None = None,
) -> list[DrillOutcome]:
    """Run every drill; merge deterministic metrics into ``registry``."""
    master = registry if registry is not None else MetricsRegistry()
    outcomes: list[DrillOutcome] = []

    def fold(drill_registry: MetricsRegistry) -> None:
        master.merge_snapshot(
            drill_registry.snapshot(), sections=(SECTION_DETERMINISTIC,)
        )

    world = _ChaosWorld(seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        # Fault-free reference: the signature every recoverable wire
        # drill must land on exactly.
        ref_registry = MetricsRegistry()
        ref_stats = world.run_ingest(f"{tmp}/ref", ref_registry, None, reports)
        reference = scan_store(f"{tmp}/ref").aggregate_signature()
        assert ref_stats["delivered"] == reports

        for name, rules, recoverable in WIRE_DRILLS:
            plan = FaultPlan.parse(rules, seed=seed)
            drill_registry = MetricsRegistry()
            stats = world.run_ingest(
                f"{tmp}/wire-{name}", drill_registry, plan, reports
            )
            signature = scan_store(f"{tmp}/wire-{name}").aggregate_signature()
            counters = drill_registry.deterministic_snapshot()["counters"]
            injected = {
                key.split("kind=", 1)[1].rstrip("}"): value
                for key, value in counters.items()
                if key.startswith("faults.injected{")
            }
            retries = sum(
                value
                for key, value in counters.items()
                if key.startswith("ingest.retries{")
            )
            fold(drill_registry)
            outcomes.append(
                DrillOutcome(
                    name=f"wire:{name}",
                    plan=plan.describe(),
                    submitted=stats["submitted"],
                    delivered=stats["delivered"],
                    failed=stats["failed"],
                    retries=retries,
                    recoveries=0,
                    injected=injected,
                    invariant_ok=stats["submitted"]
                    == stats["delivered"] + stats["failed"],
                    signature_ok=(signature == reference) if recoverable else None,
                )
            )

        # Store crash drills: one per declared crash point, each against
        # a synthetic op stream with tight segment geometry so every
        # point actually fires.
        database = _synthetic_database(reports)
        crash_reference = database.aggregate_signature()
        ops = list(database_ops(database))
        for point in CRASH_POINTS:
            # seal fires once per close, so only cadence 1 reaches it in
            # a single-delivery drill; the hot points use cadence 2.
            cadence = 1 if point == "seal" else 2
            plan = FaultPlan.parse(
                f"crash-{point}={cadence},segment-bytes=512,batch-rows=4", seed=seed
            )
            drill_registry = MetricsRegistry()
            writer = ResilientStoreWriter(
                f"{tmp}/crash-{point}", plan, drill_registry
            )
            stats = writer.deliver(ops)
            if point == "compact":
                # deliver() alone never compacts; run the maintenance
                # pass the crash point lives in, riding through crashes.
                writer.compact()
                writer.close()
                stats["recoveries"] = writer.recoveries
                stats["crashes"] = dict(writer.schedule.fired)
            signature = scan_store(f"{tmp}/crash-{point}").aggregate_signature()
            fold(drill_registry)
            outcomes.append(
                DrillOutcome(
                    name=f"store:crash-{point}",
                    plan=plan.describe(),
                    submitted=stats["submitted"],
                    delivered=stats["delivered"],
                    failed=stats["failed"],
                    retries=stats["retries"],
                    recoveries=stats["recoveries"],
                    injected=dict(stats["crashes"]),
                    invariant_ok=stats["submitted"]
                    == stats["delivered"] + stats["failed"],
                    signature_ok=signature == crash_reference,
                )
            )

        # Lossy gate drill: drops are unrecoverable by construction, so
        # only the exact-loss invariant is on trial.
        plan = FaultPlan.parse("drop=0.15,reset=0.2,crash-flush=2", seed=seed)
        drill_registry = MetricsRegistry()
        writer = ResilientStoreWriter(f"{tmp}/lossy", plan, drill_registry)
        stats = writer.deliver(ops)
        fold(drill_registry)
        outcomes.append(
            DrillOutcome(
                name="store:lossy-drop",
                plan=plan.describe(),
                submitted=stats["submitted"],
                delivered=stats["delivered"],
                failed=stats["failed"],
                retries=stats["retries"],
                recoveries=stats["recoveries"],
                injected=dict(stats["injected"]),
                invariant_ok=stats["submitted"]
                == stats["delivered"] + stats["failed"]
                and stats["failed"] > 0,
                signature_ok=None,
            )
        )

        # End-to-end study drill: a faulted fast-mode study (gate +
        # crash points on the streamed store) must reproduce the
        # fault-free study's signature at any worker count.
        from repro.study.runner import StudyConfig, StudyRunner

        base = dict(study=1, seed=seed, scale=scale, workers=workers, vault=vault)
        clean = StudyRunner(
            StudyConfig(report_store=f"{tmp}/study-ref", **base)
        ).run()
        faulted = StudyRunner(
            StudyConfig(
                report_store=f"{tmp}/study-chaos",
                faults="reset=0.05,429=0.05,crash-flush=3,crash-rotate=2,"
                "segment-bytes=2048,batch-rows=16",
                **base,
            )
        ).run()
        study_sig = scan_store(f"{tmp}/study-chaos").aggregate_signature()
        study_ref = scan_store(f"{tmp}/study-ref").aggregate_signature()
        note = faulted.notes["faults"]
        master.merge_snapshot(faulted.metrics, sections=(SECTION_DETERMINISTIC,))
        outcomes.append(
            DrillOutcome(
                name="study1:recoverable",
                plan=note["plan"],
                submitted=note["submitted"],
                delivered=note["delivered"],
                failed=note["failed"],
                retries=note["retries"],
                recoveries=note["recoveries"],
                injected=dict(note["injected"]),
                invariant_ok=note["submitted"]
                == note["delivered"] + note["failed"],
                signature_ok=study_sig == study_ref,
            )
        )
        del clean
    return outcomes
