"""Deterministic fault injection & recovery (the chaos layer).

Everything here is seeded: a :class:`FaultPlan` turns
``stable_hash(seed, site, kind)`` into fault schedules for the wire
path (:mod:`repro.faults.wire`), the reporting server, and the report
store's named crash points, while :mod:`repro.faults.recovery`
supervises crash-then-reopen healing and exactly-accounted delivery.
:mod:`repro.faults.chaos` runs the whole drill matrix behind the
``repro chaos`` CLI.
"""

from repro.faults.plan import (
    CRASH_POINTS,
    GATE_FAULT_KINDS,
    SERVER_FAULT_KINDS,
    WIRE_FAULT_KINDS,
    Backoff,
    FaultPlan,
    FaultPlanError,
)
from repro.faults.recovery import (
    CrashSchedule,
    FaultGate,
    ResilientStoreWriter,
    apply_op,
    database_ops,
)
from repro.faults.wire import FaultRelay, server_fault_hook

__all__ = [
    "Backoff",
    "CRASH_POINTS",
    "CrashSchedule",
    "FaultGate",
    "FaultPlan",
    "FaultPlanError",
    "FaultRelay",
    "GATE_FAULT_KINDS",
    "ResilientStoreWriter",
    "SERVER_FAULT_KINDS",
    "WIRE_FAULT_KINDS",
    "apply_op",
    "database_ops",
    "server_fault_hook",
]
