"""Wire-mode TLS MitM engine.

A netsim interceptor that does exactly what the measured products do
(Figure 3 of the paper): terminate the client's TLS handshake, open
its own connection to the origin, obtain the real certificate, forge a
substitute, and serve it.  Whitelisted hosts are relayed untouched —
the behaviour Huang et al. observed for Facebook and that motivated
the paper's choice of low-profile probe targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashes import hash_by_signature_oid
from repro.netsim.network import (
    ConnectionRefused,
    ConnectionReset,
    Interceptor,
    Network,
    Protocol,
    StreamSocket,
)
from repro.obs.events import HandshakeEventLog
from repro.obs.metrics import MetricsRegistry
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import (
    DEFECT_DEPRECATED_HASH,
    DEFECT_PROTOCOL_DOWNGRADE,
    DEFECT_REVOKED,
    DEFECT_WEAK_KEY,
    DEPRECATED_HASHES,
    AlpnPolicy,
    ForgedUpstreamPolicy,
    ProxyProfile,
    ServerSessionPolicy,
    UpstreamHelloPolicy,
)
from repro.tls import codec
from repro.tls.fingerprint import (
    TLS13_CIPHER_SUITES,
    build_modern_server_extensions,
    build_own_server_extensions,
    build_own_stack_extensions,
    fingerprint_client_hello,
    fingerprint_server_hello,
    negotiate_origin_cipher,
    origin_alpn_selection,
)
from repro.tls.codec import (
    Alert,
    Certificate as CertificateMessage,
    ClientHello,
    HandshakeMessage,
    ServerHello,
    TlsError,
    version_name,
)
from repro.x509.model import Certificate
from repro.x509.parse import X509Error, parse_certificate
from repro.x509.store import RootStore
from repro.x509.verify import ChainDefect, collect_chain_defects


@dataclass(frozen=True)
class UpstreamObservation:
    """Everything the proxy learned from its origin-facing handshake."""

    chain: tuple[Certificate, ...]
    raw: tuple[bytes, ...]  # DER exactly as received, for pass-through
    version: tuple[int, int]  # version the origin negotiated
    cipher_suite: int | None

    @property
    def leaf(self) -> Certificate:
        return self.chain[0]


class TlsProxyEngine(Interceptor):
    """On-path TLS interception for one product profile.

    ``upstream_host`` is the netsim host the proxy originates its
    origin-facing connections from; ``upstream_trust`` is the proxy's
    own root store, used to judge whether the *origin's* certificate is
    genuine (the §5.2 forged-certificate experiments hinge on this).
    """

    def __init__(
        self,
        profile: ProxyProfile,
        forger: SubstituteCertForger,
        upstream_host,
        upstream_trust: RootStore,
        client_bucket: int = 0,
        rng: random.Random | None = None,
        upstream_via_interceptors: bool = False,
        revoked_serials: frozenset[int] = frozenset(),
        registry: MetricsRegistry | None = None,
        events: HandshakeEventLog | None = None,
    ) -> None:
        self.profile = profile
        self.forger = forger
        self.upstream_host = upstream_host
        self.upstream_trust = upstream_trust
        self.client_bucket = client_bucket
        # When True the origin-facing leg goes through the upstream
        # host's own interceptors — how one middlebox ends up behind
        # another (the §5.2 chained-attack experiment).
        self.upstream_via_interceptors = upstream_via_interceptors
        # The revocation data visible to this proxy (a CRL snapshot);
        # consulted only when the profile ``checks_revocation``.
        self.revoked_serials = revoked_serials
        self._rng = rng or random.Random(0xBEEF)
        # Per-hostname verdicts reused when the profile caches
        # validation instead of re-checking every connection.
        self._validation_cache: dict[str, tuple[ChainDefect, ...]] = {}
        # Session ids the substitute leg has handed out (FRESH policy).
        # A profile that ``resumes_sessions`` honours these when a
        # client presents one back; everyone else mints anew — the
        # resumption-honouring defect the modern audit grades.
        self._issued_session_ids: set[bytes] = set()
        # Decision counters live on the registry (deterministic: the
        # decisions an engine takes are a pure function of seed and
        # plan); the historical attribute names remain as live views.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._c_intercepted = self.metrics.counter(
            "proxy.decisions", decision="intercepted"
        )
        self._c_whitelisted = self.metrics.counter(
            "proxy.decisions", decision="whitelisted"
        )
        self._c_blocked = self.metrics.counter(
            "proxy.decisions", decision="blocked-forged-upstream"
        )
        self._c_masked = self.metrics.counter(
            "proxy.decisions", decision="masked-forged-upstream"
        )
        self._c_passed_through = self.metrics.counter(
            "proxy.decisions", decision="passed-through-forged-upstream"
        )
        self._c_upstream_failures = self.metrics.counter(
            "proxy.upstream_failures"
        )
        self._c_validation_cache_hits = self.metrics.counter(
            "proxy.validation_cache_hits"
        )
        self._c_bytes_client_in = self.metrics.counter(
            "proxy.bytes", direction="client-in"
        )
        self._c_bytes_client_out = self.metrics.counter(
            "proxy.bytes", direction="client-out"
        )
        self._c_bytes_relayed = self.metrics.counter(
            "proxy.bytes", direction="relayed"
        )
        # Ordered per-connection handshake records — ClientHello,
        # upstream leg, decision, served ServerHello — with JA3/JA3S
        # digests; the audit harness dumps these alongside scorecards.
        # Pass a shared log to pool many engines' histories in one
        # place (connection ids then stay unique across engines).
        self.events = (
            events
            if events is not None
            else HandshakeEventLog(registry=self.metrics)
        )
        # The ClientHello this engine most recently sent on its
        # origin-facing leg — what a fingerprinting origin (or the
        # audit harness) observes instead of the browser's hello.
        self.last_upstream_hello: ClientHello | None = None
        # The substitute ServerHello this engine most recently served
        # back to a client — the server-leg dual, and what a JA3S-style
        # client-side observer fingerprints.
        self.last_served_hello: ServerHello | None = None

    # -- decision counters (live views onto the registry) --------------------

    @property
    def intercepted(self) -> int:
        return self._c_intercepted.value

    @property
    def whitelisted(self) -> int:
        return self._c_whitelisted.value

    @property
    def blocked_forged_upstream(self) -> int:
        return self._c_blocked.value

    @property
    def masked_forged_upstream(self) -> int:
        return self._c_masked.value

    @property
    def passed_through_forged_upstream(self) -> int:
        return self._c_passed_through.value

    @property
    def upstream_failures(self) -> int:
        return self._c_upstream_failures.value

    @property
    def validation_cache_hits(self) -> int:
        return self._c_validation_cache_hits.value

    def noticed_upstream_defects(
        self, observation: UpstreamObservation, hostname: str
    ) -> tuple[ChainDefect, ...]:
        """The upstream defects this product's posture actually catches.

        Chain problems are filtered through the profile's validation
        knobs; key-strength, signature-hash, protocol-version and
        revocation checks are applied here because they need the
        observed connection, not just the chain.
        """
        profile = self.profile
        noticed = [
            defect
            for defect in collect_chain_defects(
                list(observation.chain), self.upstream_trust, hostname=hostname
            )
            if profile.notices_defect(defect.code)
        ]
        leaf = observation.leaf
        if (
            profile.min_upstream_key_bits
            and leaf.public_key_bits < profile.min_upstream_key_bits
        ):
            noticed.append(
                ChainDefect(
                    DEFECT_WEAK_KEY,
                    f"{leaf.public_key_bits}-bit upstream key below the "
                    f"product's {profile.min_upstream_key_bits}-bit floor",
                )
            )
        if profile.rejects_deprecated_hashes and self._hash_deprecated(leaf):
            noticed.append(
                ChainDefect(
                    DEFECT_DEPRECATED_HASH,
                    f"upstream leaf signed with {leaf.signature_algorithm}",
                )
            )
        if profile.notices_defect(DEFECT_PROTOCOL_DOWNGRADE):
            # A product that enforces a protocol floor also vets the
            # negotiated suite: NULL/export/RC4-MD5 is a downgrade even
            # on a modern version.
            if observation.version < profile.min_tls_version:
                noticed.append(
                    ChainDefect(
                        DEFECT_PROTOCOL_DOWNGRADE,
                        f"origin negotiated {version_name(observation.version)}, "
                        f"below {version_name(profile.min_tls_version)}",
                    )
                )
            elif observation.cipher_suite in codec.WEAK_CIPHER_SUITES:
                noticed.append(
                    ChainDefect(
                        DEFECT_PROTOCOL_DOWNGRADE,
                        "origin negotiated weak cipher suite "
                        f"{observation.cipher_suite:#06x}",
                    )
                )
        if (
            profile.checks_revocation
            and leaf.serial_number in self.revoked_serials
        ):
            noticed.append(
                ChainDefect(
                    DEFECT_REVOKED,
                    f"upstream leaf serial {leaf.serial_number:#x} is revoked",
                )
            )
        return tuple(noticed)

    def upstream_client_hello(self, client_hello: ClientHello) -> ClientHello:
        """The hello this product offers the origin for ``client_hello``.

        MIMIC replays the client's offer (fresh random, no session
        resumption); OWN_STACK substitutes the product's fixed suite,
        extension set and version — the fingerprint divergence the
        mimicry audit measures.
        """
        client_random = self._rng.getrandbits(256).to_bytes(32, "big")
        if self.profile.upstream_hello is UpstreamHelloPolicy.MIMIC:
            return ClientHello(
                client_random=client_random,
                server_name=client_hello.server_name,
                version=client_hello.version,
                cipher_suites=client_hello.cipher_suites,
                compression_methods=client_hello.compression_methods,
                extensions=client_hello.extensions,
            )
        profile = self.profile
        # ``server_name`` reflects what is actually on the wire: a
        # stack whose extension set has no SNI slot sends no name
        # (and must not have one synthesised by ClientHello).
        server_name = (
            client_hello.server_name
            if codec.EXT_SERVER_NAME in profile.own_extension_types
            else None
        )
        return ClientHello(
            client_random=client_random,
            server_name=server_name,
            # The stack's own version, capped by the client's offer —
            # a proxy cannot sensibly negotiate above what the flow it
            # fronts asked for, and this keeps the historical
            # echo-the-client behaviour for pre-1.2 clients.
            version=min(client_hello.version, profile.own_tls_version),
            cipher_suites=profile.own_cipher_suites,
            extensions=build_own_stack_extensions(
                profile.own_extension_types, server_name
            ),
        )

    @staticmethod
    def _hash_deprecated(leaf: Certificate) -> bool:
        try:
            return hash_by_signature_oid(leaf.signature_oid).name in DEPRECATED_HASHES
        except KeyError:
            return True  # unknown algorithm: a vigilant product balks

    # -- Interceptor interface ---------------------------------------------

    def intercepts(self, hostname: str, port: int) -> bool:
        if port not in self.profile.intercept_ports:
            return False
        # Whitelisted hosts are still claimed so the engine can relay
        # them transparently (the client must not see a difference).
        return True

    def accept(
        self, network: Network, client_sock: StreamSocket, hostname: str, port: int
    ) -> None:
        client_sock.protocol = _MitmConnection(self, network, hostname, port)


class _MitmConnection(Protocol):
    """Per-connection state machine for the proxy's client-facing leg."""

    def __init__(
        self, engine: TlsProxyEngine, network: Network, hostname: str, port: int
    ) -> None:
        self.engine = engine
        self.network = network
        self.hostname = hostname
        self.port = port
        self._buffer = b""
        self._conn = engine.events.connection()
        # Raw bytes already consumed from ``_buffer`` as complete
        # records, kept only until the relay decision: a whitelisted
        # connection replays them verbatim upstream.
        self._consumed = b""
        # Handshake-message reassembly across record boundaries
        # (RFC 5246 §6.2.1): one message may span several records.
        self._handshake = b""
        self._relay: StreamSocket | None = None  # pass-through upstream leg
        self._done = False

    # -- protocol callbacks -------------------------------------------------

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        self.engine._c_bytes_client_in.inc(len(data))
        if self._relay is not None:
            self._pump_relay(sock, data)
            return
        self._buffer += data
        try:
            records, rest = codec.decode_records(self._buffer)
        except TlsError:
            self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
            return
        # Trim the buffer to the unparsed tail: without this every
        # chunk re-decodes (and re-processes) all prior records —
        # quadratic on split delivery.  The consumed bytes only matter
        # until the relay decision (a whitelisted connection replays
        # them verbatim); afterwards they would grow without bound.
        if not self._done:
            self._consumed += self._buffer[: len(self._buffer) - len(rest)]
        self._buffer = rest
        for record in records:
            if record.content_type != codec.CONTENT_HANDSHAKE:
                continue
            # Reassemble the handshake stream: a message may span
            # record boundaries, so an isolated per-record parse would
            # drop (or fatal on) a fragmented ClientHello.
            self._handshake += record.payload
            messages, self._handshake = codec.decode_handshakes(self._handshake)
            for message in messages:
                if message.msg_type == codec.HS_CLIENT_HELLO and not self._done:
                    try:
                        hello = ClientHello.from_body(message.body)
                    except TlsError:
                        self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
                        return
                    self._handle_client_hello(sock, hello)
                    if self._relay is not None:
                        # Everything received so far (later records of
                        # this chunk included) was already replayed
                        # upstream verbatim; stop interpreting it.
                        return
                    self._done = True
                    # The hello is answered; the replay copy is dead.
                    self._consumed = b""

    def connection_lost(self, sock: StreamSocket) -> None:
        if self._relay is not None and not self._relay.closed:
            self._relay.close()

    # -- decision logic -------------------------------------------------------

    def _handle_client_hello(self, sock: StreamSocket, hello: ClientHello) -> None:
        engine = self.engine
        profile = engine.profile
        target = hello.server_name or self.hostname
        engine.events.record(
            self._conn,
            "client-hello",
            target=target,
            version=version_name(hello.version),
            ja3=fingerprint_client_hello(hello).digest(),
        )

        if profile.is_whitelisted(target):
            engine._c_whitelisted.inc()
            engine.events.record(self._conn, "relay", target=target)
            self._start_relay(sock, hello)
            return

        observation = self._fetch_upstream_chain(hello)
        if observation is None or not observation.chain:
            engine._c_upstream_failures.inc()
            engine.events.record(self._conn, "upstream-failure", target=target)
            self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
            return
        engine.events.record(
            self._conn,
            "upstream-certificate",
            target=target,
            chain_len=len(observation.chain),
            version=version_name(observation.version),
        )

        defects: tuple | None = None
        if profile.caches_validation:
            cached = engine._validation_cache.get(target)
            if cached is not None:
                # Verdict reuse: whatever the origin presents now, the
                # product trusts its earlier conclusion — and skips the
                # (expensive) re-validation entirely, like the real
                # appliances Waked et al. caught doing this.
                engine._c_validation_cache_hits.inc()
                defects = cached
        if defects is None:
            defects = engine.noticed_upstream_defects(observation, target)
            if profile.caches_validation:
                engine._validation_cache[target] = defects
        if defects:
            policy = profile.forged_upstream
            if policy is ForgedUpstreamPolicy.BLOCK:
                engine._c_blocked.inc()
                engine.events.record(
                    self._conn, "blocked", target=target, defects=len(defects)
                )
                self._fatal(sock, codec.ALERT_BAD_CERTIFICATE)
                return
            if policy is ForgedUpstreamPolicy.PASS_THROUGH:
                engine._c_passed_through.inc()
                # Relay the upstream DER verbatim, as captured.
                self._serve_chain(sock, hello, list(observation.raw))
                return
            engine._c_masked.inc()  # MASK falls through to forge

        forged = engine.forger.forge(
            profile,
            observation.leaf,
            target,
            site_ip=self._site_ip(),
            client_bucket=engine.client_bucket,
        )
        engine._c_intercepted.inc()
        self._serve_chain(sock, hello, [c.encode() for c in forged.chain])

    def _site_ip(self) -> str:
        host = self.network.host_or_none(self.hostname)
        return host.ip if host is not None else "203.0.113.1"

    # -- wire helpers ---------------------------------------------------------

    def _fetch_upstream_chain(
        self, hello: ClientHello
    ) -> UpstreamObservation | None:
        """Run the proxy's own partial handshake against the origin."""
        engine = self.engine
        try:
            if engine.upstream_via_interceptors:
                # queued=False: the origin-facing leg (even through a
                # second middlebox) must answer synchronously inside
                # whatever delivery event is being processed.
                upstream = self.network.connect(
                    engine.upstream_host, self.hostname, self.port, queued=False
                )
            else:
                upstream = self.network.connect_upstream(
                    engine.upstream_host, self.hostname, self.port
                )
        except ConnectionRefused:
            return None
        try:
            upstream_hello = engine.upstream_client_hello(hello)
            engine.last_upstream_hello = upstream_hello
            engine.events.record(
                self._conn,
                "upstream-hello",
                ja3=fingerprint_client_hello(upstream_hello).digest(),
            )
            upstream.send(
                codec.encode_handshake_record(
                    upstream_hello, version=upstream_hello.version
                )
            )
            raw = upstream.recv()
        except ConnectionReset:
            return None
        finally:
            upstream.close()
        try:
            records, _ = codec.decode_records(raw)
            handshake_stream = b"".join(
                r.payload for r in records if r.content_type == codec.CONTENT_HANDSHAKE
            )
            messages, _ = codec.decode_handshakes(handshake_stream)
            server_hello: ServerHello | None = None
            der_chain: tuple[bytes, ...] | None = None
            for message in messages:
                if message.msg_type == codec.HS_SERVER_HELLO:
                    server_hello = ServerHello.from_body(message.body)
                elif message.msg_type == codec.HS_CERTIFICATE:
                    der_chain = CertificateMessage.from_body(message.body).der_chain
            if der_chain is None:
                return None
            parsed = tuple(parse_certificate(der) for der in der_chain)
            return UpstreamObservation(
                chain=parsed,
                raw=der_chain,
                version=(
                    server_hello.version if server_hello else hello.version
                ),
                cipher_suite=(
                    server_hello.cipher_suite if server_hello else None
                ),
            )
        except (TlsError, X509Error):
            return None

    def _alpn_answer_body(self, hello: ClientHello) -> bytes | None:
        """The 1.2-path ALPN body per the profile's policy (None = skip)."""
        profile = self.engine.profile
        if profile.alpn is AlpnPolicy.STRIP:
            return None
        if profile.alpn is AlpnPolicy.ECHO:
            selected = origin_alpn_selection(hello)
            return codec.encode_alpn_body((selected,)) if selected else None
        # OWN: the canned http/1.1 answer — the historical wire bytes.
        return codec.encode_alpn_body(("http/1.1",))

    def _serve_chain(
        self, sock: StreamSocket, hello: ClientHello, der_chain: list[bytes]
    ) -> None:
        engine = self.engine
        profile = engine.profile
        offered_max = hello.max_offered_version
        if codec.TLS_FALLBACK_SCSV in hello.cipher_suites and (
            offered_max < min(profile.max_tls_version, codec.TLS_1_2)
        ):
            # RFC 7507: the client is retrying at a downgraded version
            # while this leg could do better — refuse the fallback.
            self._fatal(sock, codec.ALERT_INAPPROPRIATE_FALLBACK)
            return
        # Effective version: the client's best offer (supported_versions
        # aware), capped by the product's ceiling and — pre-1.3 — by the
        # configured substitute version.  A 1.3-capable product with the
        # downgrade knob set pushes 1.3 offers back to 1.2, the Waked
        # et al. appliance defect.
        negotiated = min(offered_max, profile.max_tls_version)
        if profile.substitute_tls_version is not None:
            negotiated = min(negotiated, profile.substitute_tls_version)
        if negotiated >= codec.TLS_1_3 and profile.downgrade_tls13:
            negotiated = codec.TLS_1_2
        tls13 = negotiated >= codec.TLS_1_3
        # The legacy version field: frozen at 1.2 under a 1.3
        # negotiation (RFC 8446 §4.1.3), the plain echo-with-caps
        # otherwise — which reproduces the historical behaviour for
        # every pre-1.3 client.
        version = codec.TLS_1_2 if tls13 else min(hello.version, negotiated)
        session_id = b""
        if (
            profile.resumes_sessions
            and hello.session_id
            and hello.session_id in engine._issued_session_ids
        ):
            # Honoured resumption: echo the id this leg handed out.
            session_id = hello.session_id
        elif profile.server_session_id is ServerSessionPolicy.ECHO:
            session_id = hello.session_id
        elif profile.server_session_id is ServerSessionPolicy.FRESH:
            session_id = engine._rng.getrandbits(256).to_bytes(32, "big")
            engine._issued_session_ids.add(session_id)
        cipher_suite = profile.substitute_cipher_suite
        if cipher_suite is None:
            cipher_suite = negotiate_origin_cipher(hello, tls13=tls13)
        elif tls13 and cipher_suite not in TLS13_CIPHER_SUITES:
            # A canned pre-1.3 suite cannot ride a 1.3 negotiation; a
            # product that actually speaks 1.3 picks from RFC 8446.
            cipher_suite = negotiate_origin_cipher(hello, tls13=True)
        server_random = engine._rng.getrandbits(256).to_bytes(32, "big")
        if (
            profile.sets_downgrade_sentinel
            and offered_max >= codec.TLS_1_3
            and negotiated < codec.TLS_1_3
        ):
            server_random = codec.stamp_downgrade_sentinel(server_random, negotiated)
        if tls13:
            alpn_protocol = None
            if profile.alpn is not AlpnPolicy.STRIP and hello.alpn_protocols:
                alpn_protocol = (
                    origin_alpn_selection(hello)
                    if profile.alpn is AlpnPolicy.ECHO
                    else "http/1.1"
                )
            extensions: tuple[tuple[int, bytes], ...] | None = (
                build_modern_server_extensions(
                    hello, alpn_protocol, profile.issues_session_tickets
                )
            )
        else:
            extensions = build_own_server_extensions(
                profile.own_server_extension_types,
                hello,
                alpn_body=self._alpn_answer_body(hello),
            )
        server_hello = ServerHello(
            server_random=server_random,
            cipher_suite=cipher_suite,
            version=version,
            session_id=session_id,
            compression_method=profile.substitute_compression_method,
            extensions=extensions,
        )
        engine.last_served_hello = server_hello
        engine.events.record(
            self._conn,
            "server-hello",
            version=version_name(negotiated),
            ja3s=fingerprint_server_hello(server_hello).digest(),
        )
        engine.events.record(
            self._conn, "certificate", chain_len=len(der_chain)
        )
        flight = codec.encode_server_flight(
            server_hello,
            [
                CertificateMessage(tuple(der_chain)),
                HandshakeMessage(codec.HS_SERVER_HELLO_DONE, b""),
            ],
            offered_version=hello.version,
        )
        engine._c_bytes_client_out.inc(len(flight))
        sock.send(flight)

    def _start_relay(self, sock: StreamSocket, hello: ClientHello) -> None:
        """Transparent pass-through for whitelisted destinations."""
        try:
            self._relay = self.network.connect_upstream(
                self.engine.upstream_host, self.hostname, self.port
            )
        except ConnectionRefused:
            self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
            return
        # Replay everything received so far — records already consumed
        # plus any buffered tail — verbatim.
        replayed = self._consumed + self._buffer
        self._relay.send(replayed)
        self.engine._c_bytes_relayed.inc(len(replayed))
        self._consumed = b""
        self._buffer = b""
        self._drain_relay(sock)

    def _pump_relay(self, sock: StreamSocket, data: bytes) -> None:
        relay = self._relay
        if relay is None or relay.closed:
            sock.close()
            return
        try:
            relay.send(data)
        except ConnectionReset:
            sock.close()
            return
        self.engine._c_bytes_relayed.inc(len(data))
        self._drain_relay(sock)

    def _drain_relay(self, sock: StreamSocket) -> None:
        """Forward everything the upstream leg has buffered.

        A single ``recv()`` per pump strands any reply that arrives
        without a matching client write; drain until empty instead.
        """
        relay = self._relay
        if relay is None:
            return
        while True:
            reply = relay.recv()
            if not reply:
                return
            self.engine._c_bytes_relayed.inc(len(reply))
            sock.send(reply)

    def _fatal(self, sock: StreamSocket, description: int) -> None:
        self.engine.events.record(self._conn, "alert", description=description)
        record = Alert(2, description).encode_record()
        try:
            sock.send(record)
            self.engine._c_bytes_client_out.inc(len(record))
        except ConnectionReset:
            pass
        sock.close()
