"""Wire-mode TLS MitM engine.

A netsim interceptor that does exactly what the measured products do
(Figure 3 of the paper): terminate the client's TLS handshake, open
its own connection to the origin, obtain the real certificate, forge a
substitute, and serve it.  Whitelisted hosts are relayed untouched —
the behaviour Huang et al. observed for Facebook and that motivated
the paper's choice of low-profile probe targets.
"""

from __future__ import annotations

import random

from repro.netsim.network import (
    ConnectionRefused,
    ConnectionReset,
    Interceptor,
    Network,
    Protocol,
    StreamSocket,
)
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import ForgedUpstreamPolicy, ProxyProfile
from repro.tls import codec
from repro.tls.codec import (
    Alert,
    Certificate as CertificateMessage,
    ClientHello,
    HandshakeMessage,
    Record,
    ServerHello,
    TlsError,
)
from repro.x509.model import Certificate
from repro.x509.parse import X509Error, parse_certificate
from repro.x509.store import RootStore
from repro.x509.verify import validate_chain


class TlsProxyEngine(Interceptor):
    """On-path TLS interception for one product profile.

    ``upstream_host`` is the netsim host the proxy originates its
    origin-facing connections from; ``upstream_trust`` is the proxy's
    own root store, used to judge whether the *origin's* certificate is
    genuine (the §5.2 forged-certificate experiments hinge on this).
    """

    def __init__(
        self,
        profile: ProxyProfile,
        forger: SubstituteCertForger,
        upstream_host,
        upstream_trust: RootStore,
        client_bucket: int = 0,
        rng: random.Random | None = None,
        upstream_via_interceptors: bool = False,
    ) -> None:
        self.profile = profile
        self.forger = forger
        self.upstream_host = upstream_host
        self.upstream_trust = upstream_trust
        self.client_bucket = client_bucket
        # When True the origin-facing leg goes through the upstream
        # host's own interceptors — how one middlebox ends up behind
        # another (the §5.2 chained-attack experiment).
        self.upstream_via_interceptors = upstream_via_interceptors
        self._rng = rng or random.Random(0xBEEF)
        # Decision counters, inspected by tests and experiments.
        self.intercepted = 0
        self.whitelisted = 0
        self.blocked_forged_upstream = 0
        self.masked_forged_upstream = 0
        self.passed_through_forged_upstream = 0
        self.upstream_failures = 0

    # -- Interceptor interface ---------------------------------------------

    def intercepts(self, hostname: str, port: int) -> bool:
        if port not in self.profile.intercept_ports:
            return False
        # Whitelisted hosts are still claimed so the engine can relay
        # them transparently (the client must not see a difference).
        return True

    def accept(
        self, network: Network, client_sock: StreamSocket, hostname: str, port: int
    ) -> None:
        client_sock.protocol = _MitmConnection(self, network, hostname, port)


class _MitmConnection(Protocol):
    """Per-connection state machine for the proxy's client-facing leg."""

    def __init__(
        self, engine: TlsProxyEngine, network: Network, hostname: str, port: int
    ) -> None:
        self.engine = engine
        self.network = network
        self.hostname = hostname
        self.port = port
        self._buffer = b""
        self._relay: StreamSocket | None = None  # pass-through upstream leg
        self._done = False

    # -- protocol callbacks -------------------------------------------------

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        if self._relay is not None:
            self._pump_relay(sock, data)
            return
        self._buffer += data
        try:
            records, rest = codec.decode_records(self._buffer)
        except TlsError:
            self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
            return
        for record in records:
            if record.content_type != codec.CONTENT_HANDSHAKE:
                continue
            try:
                messages, _ = codec.decode_handshakes(record.payload)
            except TlsError:
                self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
                return
            for message in messages:
                if message.msg_type == codec.HS_CLIENT_HELLO and not self._done:
                    hello = ClientHello.from_body(message.body)
                    self._handle_client_hello(sock, hello)
                    if self._relay is None:
                        self._done = True

    def connection_lost(self, sock: StreamSocket) -> None:
        if self._relay is not None and not self._relay.closed:
            self._relay.close()

    # -- decision logic -------------------------------------------------------

    def _handle_client_hello(self, sock: StreamSocket, hello: ClientHello) -> None:
        engine = self.engine
        profile = engine.profile
        target = hello.server_name or self.hostname

        if profile.is_whitelisted(target):
            engine.whitelisted += 1
            self._start_relay(sock, hello)
            return

        upstream = self._fetch_upstream_chain(hello)
        if upstream is None:
            engine.upstream_failures += 1
            self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
            return
        upstream_chain, upstream_raw = upstream

        verdict = validate_chain(
            list(upstream_chain), engine.upstream_trust, hostname=target
        )
        if not verdict.valid:
            policy = profile.forged_upstream
            if policy is ForgedUpstreamPolicy.BLOCK:
                engine.blocked_forged_upstream += 1
                self._fatal(sock, codec.ALERT_BAD_CERTIFICATE)
                return
            if policy is ForgedUpstreamPolicy.PASS_THROUGH:
                engine.passed_through_forged_upstream += 1
                # Relay the upstream DER verbatim, as captured.
                self._serve_chain(sock, hello, list(upstream_raw))
                return
            engine.masked_forged_upstream += 1  # MASK falls through to forge

        forged = engine.forger.forge(
            profile,
            upstream_chain[0],
            target,
            site_ip=self._site_ip(),
            client_bucket=engine.client_bucket,
        )
        engine.intercepted += 1
        self._serve_chain(sock, hello, [c.encode() for c in forged.chain])

    def _site_ip(self) -> str:
        host = self.network.host_or_none(self.hostname)
        return host.ip if host is not None else "203.0.113.1"

    # -- wire helpers ---------------------------------------------------------

    def _fetch_upstream_chain(
        self, hello: ClientHello
    ) -> tuple[tuple[Certificate, ...], tuple[bytes, ...]] | None:
        """Run the proxy's own partial handshake against the origin."""
        engine = self.engine
        try:
            if engine.upstream_via_interceptors:
                upstream = self.network.connect(
                    engine.upstream_host, self.hostname, self.port
                )
            else:
                upstream = self.network.connect_upstream(
                    engine.upstream_host, self.hostname, self.port
                )
        except ConnectionRefused:
            return None
        try:
            upstream_hello = ClientHello(
                client_random=engine._rng.getrandbits(256).to_bytes(32, "big"),
                server_name=hello.server_name,
                version=hello.version,
            )
            upstream.send(
                codec.encode_handshake_record(upstream_hello, version=hello.version)
            )
            raw = upstream.recv()
        except ConnectionReset:
            return None
        finally:
            upstream.close()
        try:
            records, _ = codec.decode_records(raw)
            handshake_stream = b"".join(
                r.payload for r in records if r.content_type == codec.CONTENT_HANDSHAKE
            )
            messages, _ = codec.decode_handshakes(handshake_stream)
            for message in messages:
                if message.msg_type == codec.HS_CERTIFICATE:
                    der_chain = CertificateMessage.from_body(message.body).der_chain
                    parsed = tuple(parse_certificate(der) for der in der_chain)
                    return parsed, der_chain
        except (TlsError, X509Error):
            return None
        return None

    def _serve_chain(
        self, sock: StreamSocket, hello: ClientHello, der_chain: list[bytes]
    ) -> None:
        server_hello = ServerHello(
            server_random=self.engine._rng.getrandbits(256).to_bytes(32, "big"),
            cipher_suite=0x002F,
            version=hello.version,
        )
        payload = (
            server_hello.to_handshake().encode()
            + CertificateMessage(tuple(der_chain)).to_handshake().encode()
            + HandshakeMessage(codec.HS_SERVER_HELLO_DONE, b"").encode()
        )
        for start in range(0, len(payload), 0x4000):
            record = Record(
                codec.CONTENT_HANDSHAKE, hello.version, payload[start : start + 0x4000]
            )
            sock.send(record.encode())

    def _start_relay(self, sock: StreamSocket, hello: ClientHello) -> None:
        """Transparent pass-through for whitelisted destinations."""
        try:
            self._relay = self.network.connect_upstream(
                self.engine.upstream_host, self.hostname, self.port
            )
        except ConnectionRefused:
            self._fatal(sock, codec.ALERT_HANDSHAKE_FAILURE)
            return
        # Replay everything buffered so far (the ClientHello) verbatim.
        self._relay.send(self._buffer)
        reply = self._relay.recv()
        if reply:
            sock.send(reply)

    def _pump_relay(self, sock: StreamSocket, data: bytes) -> None:
        relay = self._relay
        if relay is None or relay.closed:
            sock.close()
            return
        try:
            relay.send(data)
        except ConnectionReset:
            sock.close()
            return
        reply = relay.recv()
        if reply:
            sock.send(reply)

    def _fatal(self, sock: StreamSocket, description: int) -> None:
        try:
            sock.send(Alert(2, description).encode_record())
        except ConnectionReset:
            pass
        sock.close()
