"""TLS interception proxies — the object the paper measures.

A TLS proxy terminates the client's handshake, fetches the origin
server's real certificate over its own upstream connection, forges a
*substitute certificate* for the requested name, and serves it signed
by a CA the client has been made to trust (usually a root injected at
product install time — Figure 2(c) of the paper).

* :class:`ProxyProfile` — the observable behaviour of one product:
  issuer strings, substitute key size, signature hash, whitelists,
  issuer-copying, subject rewriting, shared leaf keys, and how the
  product reacts when the *upstream* certificate is itself forged
  (§5.2: Kurupira masks it, Bitdefender blocks it).
* :class:`SubstituteCertForger` — turns (profile, upstream leaf) into a
  signed substitute certificate.  Shared by the wire-mode engine and
  the fast-mode study driver, which is what makes the two modes
  provably equivalent.
* :class:`TlsProxyEngine` — a netsim :class:`~repro.netsim.Interceptor`
  that performs the full MitM on real sockets.
"""

from repro.proxy.engine import TlsProxyEngine, UpstreamObservation
from repro.proxy.forger import ForgedCertificate, SubstituteCertForger
from repro.proxy.profile import (
    AlpnPolicy,
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
    SubjectRewrite,
    UpstreamHelloPolicy,
)

__all__ = [
    "AlpnPolicy",
    "ForgedCertificate",
    "ForgedUpstreamPolicy",
    "ProxyCategory",
    "ProxyProfile",
    "SubjectRewrite",
    "SubstituteCertForger",
    "TlsProxyEngine",
    "UpstreamHelloPolicy",
    "UpstreamObservation",
]
