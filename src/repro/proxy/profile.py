"""Behaviour profiles for TLS interception products.

A profile captures everything about a product that is *observable from
the substitute certificates it emits* plus its documented reaction to
forged upstream certificates.  The product catalog in
:mod:`repro.data.products` instantiates one profile per product named
in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.tls.codec import DEFAULT_CIPHER_SUITES, EXT_SERVER_NAME, TLS_1_2, TLS_1_3
from repro.x509.model import Name
from repro.x509.verify import (
    CHAIN_OF_TRUST_DEFECTS,
    DEFECT_EXPIRED,
    DEFECT_HOSTNAME,
)

# Defect codes for upstream problems that lie outside the chain checks
# in :mod:`repro.x509.verify` — the proxy notices these (or not) on the
# origin-facing leg of the interception.
DEFECT_WEAK_KEY = "weak-key"
DEFECT_DEPRECATED_HASH = "deprecated-hash"
DEFECT_PROTOCOL_DOWNGRADE = "protocol-downgrade"
DEFECT_REVOKED = "revoked"

# Signature hashes a vigilant 2014-era appliance refuses upstream.
DEPRECATED_HASHES = frozenset({"md5"})

# Lowest wire version in the simulation; a profile whose
# ``min_tls_version`` is this value accepts any negotiated version.
SSL_3_0 = (3, 0)


class ProxyCategory(str, enum.Enum):
    """The paper's ten issuer-classification categories (Tables 5/6)."""

    BUSINESS_PERSONAL_FIREWALL = "Business/Personal Firewall"
    BUSINESS_FIREWALL = "Business Firewall"
    PERSONAL_FIREWALL = "Personal Firewall"
    PARENTAL_CONTROL = "Parental Control"
    ORGANIZATION = "Organization"
    SCHOOL = "School"
    MALWARE = "Malware"
    UNKNOWN = "Unknown"
    TELECOM = "Telecom"
    CERTIFICATE_AUTHORITY = "Certificate Authority"


class ForgedUpstreamPolicy(str, enum.Enum):
    """What a proxy does when the origin presents an untrusted chain.

    * ``BLOCK`` — refuse the connection with a fatal alert.  What
      Bitdefender did in the authors' lab test (§5.2), and the safe
      default.
    * ``MASK`` — forge a trusted substitute anyway, hiding the attack
      from the user.  Kurupira's negligent behaviour: an attacker
      behind the filter gets a free, invisible MitM.
    * ``PASS_THROUGH`` — relay the original (untrusted) certificate and
      let the browser warn.
    """

    BLOCK = "block"
    MASK = "mask"
    PASS_THROUGH = "pass-through"


class ServerSessionPolicy(str, enum.Enum):
    """How the substitute ServerHello fills its session-id field.

    * ``NONE`` — an empty session id: the substitute leg never offers
      resumption.  The historical engine behaviour, and a client-side
      tell (real 2014 origins hand out resumable sessions).
    * ``ECHO`` — echo whatever session id the client offered (empty
      offers stay empty — a resumption-indifferent stack).
    * ``FRESH`` — mint a fresh 32-byte session id per connection, the
      way a genuine resumption-capable origin answers a new session.
    """

    NONE = "none"
    ECHO = "echo"
    FRESH = "fresh"


class AlpnPolicy(str, enum.Enum):
    """How the substitute ServerHello answers the client's ALPN offer.

    * ``OWN`` — the product's own canned answer: always http/1.1,
      whatever the client preferred.  The historical engine behaviour,
      and an ALPN-mismatch tell against any h2-preferring origin.
    * ``ECHO`` — select like a genuine origin would (h2 over http/1.1
      within the client's offer) — the mimic setting.
    * ``STRIP`` — never answer ALPN at all, even when offered; common
      in appliances whose inspection engine cannot parse HTTP/2.
    """

    OWN = "own"
    ECHO = "echo"
    STRIP = "strip"


class UpstreamHelloPolicy(str, enum.Enum):
    """What ClientHello the proxy sends on its origin-facing leg.

    * ``MIMIC`` — replay the intercepted client's offer byte-for-byte
      (fresh random, same version/suites/compression/extensions), so a
      fingerprinting origin cannot tell the proxy from the browser.
    * ``OWN_STACK`` — speak with the product's own TLS stack: a fixed
      cipher-suite and extension set whose fingerprint diverges from
      whatever browser sits behind it — the de Carné de Carnavalet &
      van Oorschot detection signal, and what every stack the engine
      historically modelled did.
    """

    MIMIC = "mimic"
    OWN_STACK = "own_stack"


class SubjectRewrite(str, enum.Enum):
    """How a proxy mangles the substitute certificate's subject (§5.2)."""

    NONE = "none"
    WILDCARD_SUBNET = "wildcard-subnet"  # CN names only the /24 of the site
    WRONG_DOMAIN = "wrong-domain"  # CN for an unrelated domain entirely


@dataclass(frozen=True)
class ProxyProfile:
    """The observable behaviour of one interception product."""

    key: str  # stable identifier, e.g. "bitdefender"
    issuer: Name  # subject of the product's signing CA
    category: ProxyCategory
    # Aggregate profiles (the "Other (332)" long tail) rotate through
    # several issuer names, selected per client bucket; empty means the
    # single ``issuer`` is always used.
    issuer_variants: tuple[Name, ...] = ()
    # Substitute-certificate cryptography.
    leaf_key_bits: int = 1024
    hash_name: str = "sha1"
    ca_key_bits: int = 1024
    # Behaviour quirks from §5.1/5.2/6.4.
    copies_upstream_issuer: bool = False  # the false "DigiCert Inc" claims
    reuses_leaf_key: bool = False  # IopFail's single 512-bit key
    subject_rewrite: SubjectRewrite = SubjectRewrite.NONE
    wrong_domain: str = "mail.google.com"
    forged_upstream: ForgedUpstreamPolicy = ForgedUpstreamPolicy.BLOCK
    injects_root: bool = True  # False models the rogue/compromised-CA path
    whitelist: frozenset[str] = field(default_factory=frozenset)
    intercept_ports: frozenset[int] = frozenset({443})
    # §7 explicit-proxy proposals: a cooperating proxy self-identifies
    # in its substitute certificates.  None = does not disclose (every
    # product the paper measured).
    disclosure_identity: str | None = None
    # -- Upstream security posture (Waked et al. style) ----------------
    # Which defects in the *origin's* TLS offering the product actually
    # notices before deciding per ``forged_upstream``.  Defaults mirror
    # the historical engine behaviour: full chain validation, and no
    # checks beyond it.  A defect the product does not notice is forged
    # over — an invisible MASK, whatever the configured policy says.
    validates_hostname: bool = True
    validates_expiry: bool = True
    validates_chain_of_trust: bool = True
    min_upstream_key_bits: int = 0  # 0 = does not check key strength
    rejects_deprecated_hashes: bool = False
    min_tls_version: tuple[int, int] = SSL_3_0  # accepts any version
    checks_revocation: bool = False
    # Appliances that cache the upstream validation verdict per host
    # reuse it for later connections — the time-of-check/time-of-use
    # hole the audit battery's warm-then-attack probes expose.
    caches_validation: bool = False
    # -- Client-leg posture (mimicry + substitute handshake) ------------
    # How the origin-facing ClientHello is built.  OWN_STACK with the
    # defaults below reproduces the engine's historical wire bytes
    # (DEFAULT_CIPHER_SUITES, SNI-only, client's version capped at
    # ``own_tls_version`` — TLS 1.2, i.e. a straight echo).
    upstream_hello: UpstreamHelloPolicy = UpstreamHelloPolicy.OWN_STACK
    own_cipher_suites: tuple[int, ...] = DEFAULT_CIPHER_SUITES
    own_extension_types: tuple[int, ...] = (EXT_SERVER_NAME,)
    own_tls_version: tuple[int, int] = TLS_1_2
    # The client-facing substitute handshake.  ``substitute_tls_version``
    # None = echo whatever version the client offered (transparent); a
    # fixed value caps the echoed version — the substitute-leg version
    # downgrade Waked et al. graded appliances down for.  The key size
    # and signature hash of the substitute certificate itself are the
    # existing ``leaf_key_bits`` / ``hash_name`` knobs; the forger
    # honours those, ``_serve_chain`` honours these.
    substitute_tls_version: tuple[int, int] | None = None
    # The suite the substitute ServerHello answers with.  A fixed value
    # models a canned proxy stack; ``None`` negotiates like a genuine
    # RSA-certificate origin (first RSA-authenticated suite in the
    # client's preference order) — the server-leg mimic setting, and
    # correct against *any* probing browser rather than one.
    substitute_cipher_suite: int | None = 0x002F
    # -- Server-leg posture (the substitute ServerHello itself) ---------
    # Which extension types the substitute ServerHello carries (filtered
    # at serve time against what the client offered, like any real
    # server).  Empty — the historical engine shape — means no
    # extensions block at all, a JA3S divergence from every 2014 origin
    # that confirmed secure renegotiation.
    own_server_extension_types: tuple[int, ...] = ()
    # Session-id echo policy for the substitute leg.
    server_session_id: ServerSessionPolicy = ServerSessionPolicy.NONE
    # Compression method byte the substitute ServerHello advertises.
    # Nonzero is a scorecard-visible defect: no sane 2014 origin
    # negotiated TLS compression post-CRIME.
    substitute_compression_method: int = 0
    # -- Version-negotiation posture (TLS 1.3 era) ----------------------
    # The highest protocol version the substitute leg will negotiate.
    # The TLS 1.2 default reproduces every historical product: a
    # 1.3-offering client is silently capped at 1.2.  ``TLS_1_3`` lets
    # the substitute leg negotiate 1.3 via supported_versions/key_share
    # the way a genuine modern origin does.  (``substitute_tls_version``
    # still caps the pre-1.3 legacy echo below this ceiling.)
    max_tls_version: tuple[int, int] = TLS_1_2
    # A 1.3-capable product that *chooses* to downgrade clients to 1.2
    # so its inspection path stays simple — the enterprise-appliance
    # defect Waked et al. flagged.  Only meaningful with
    # ``max_tls_version`` ≥ TLS 1.3.
    downgrade_tls13: bool = False
    # Whether a downgrading substitute leg stamps the RFC 8446 §4.1.3
    # "DOWNGRD" sentinel into its server random.  A conforming stack
    # must; a product that downgrades *silently* (False) defeats the
    # client's downgrade protection entirely — the worse defect.
    sets_downgrade_sentinel: bool = False
    # ALPN answer policy for the substitute leg.
    alpn: AlpnPolicy = AlpnPolicy.OWN
    # Session-ticket issue / session-resume behaviour.  Ticket *issue*
    # on the 1.2 path is the EXT_SESSION_TICKET grant already governed
    # by ``own_server_extension_types``; this knob controls the grant
    # on the modern (1.3) path, where the served extension set is
    # protocol-determined rather than configured.
    issues_session_tickets: bool = False
    # Whether the substitute leg honours a session id it previously
    # handed out (presented back by a resuming client).  False with a
    # FRESH session policy models the Waked et al. defect: the product
    # mints resumable-looking ids it then refuses to resume.
    resumes_sessions: bool = False

    def notices_defect(self, code: str) -> bool:
        """Whether this product's posture catches the given defect code.

        Threshold checks (key size, protocol version) answer whether
        the product checks *at all*; the engine applies the thresholds
        against the observed connection.
        """
        if code == DEFECT_HOSTNAME:
            return self.validates_hostname
        if code == DEFECT_EXPIRED:
            return self.validates_expiry
        if code in CHAIN_OF_TRUST_DEFECTS:
            return self.validates_chain_of_trust
        if code == DEFECT_WEAK_KEY:
            return self.min_upstream_key_bits > 0
        if code == DEFECT_DEPRECATED_HASH:
            return self.rejects_deprecated_hashes
        if code == DEFECT_PROTOCOL_DOWNGRADE:
            return self.min_tls_version > SSL_3_0
        if code == DEFECT_REVOKED:
            return self.checks_revocation
        return True

    def intercepts(self, hostname: str, port: int) -> bool:
        """Whether this product would MitM a connection to hostname:port."""
        if port not in self.intercept_ports:
            return False
        return not self.is_whitelisted(hostname)

    def is_whitelisted(self, hostname: str) -> bool:
        hostname = hostname.lower()
        if hostname in self.whitelist:
            return True
        # Whitelists in the wild match registrable domains.
        return any(
            hostname.endswith("." + entry) for entry in self.whitelist
        )

    @property
    def issuer_organization(self) -> str | None:
        """The Issuer Organization string the analysis will see."""
        return self.issuer.organization

    def issuer_for_bucket(self, client_bucket: int) -> Name:
        """The issuer name used by the install in ``client_bucket``."""
        if not self.issuer_variants:
            return self.issuer
        return self.issuer_variants[client_bucket % len(self.issuer_variants)]

    def all_issuers(self) -> tuple[Name, ...]:
        return self.issuer_variants if self.issuer_variants else (self.issuer,)

    def leaf_key_label(self, hostname: str, client_bucket: int) -> str:
        """Key-pool label for a substitute leaf.

        Products normally generate a key per install (modelled as a
        small number of buckets); key-reusing malware uses one global
        key, which is exactly the IopFail signal the analysis hunts.
        """
        if self.reuses_leaf_key:
            return f"leaf:{self.key}"
        return f"leaf:{self.key}:{client_bucket}"
