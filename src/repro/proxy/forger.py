"""Substitute-certificate forging.

This is the single code path that produces every substitute
certificate in the reproduction — the wire-mode proxy engine and the
fast-mode study driver both call :meth:`SubstituteCertForger.forge`,
so the certificates the analysis sees are identical byte-for-byte
between modes for the same inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.keystore import KeyStore
from repro.crypto.rsa import synthetic_public_key
from repro.proxy.profile import ProxyProfile, SubjectRewrite
from repro.util import stable_hash
from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import Certificate, Name, SubjectPublicKeyInfo


@dataclass(frozen=True)
class ForgedCertificate:
    """A substitute certificate plus the CA chain that signs it."""

    leaf: Certificate
    ca_chain: tuple[Certificate, ...]

    @property
    def chain(self) -> tuple[Certificate, ...]:
        return (self.leaf, *self.ca_chain)


class SubstituteCertForger:
    """Forges substitute certificates on behalf of proxy products.

    One forger serves all products: it lazily creates each product's
    signing CA (from the shared :class:`KeyStore`, so CA keys are
    generated once), pools substitute leaf keys per profile rules, and
    applies the profile's quirks — issuer copying, subject rewriting,
    hash and key-size choices.
    """

    def __init__(self, keystore: KeyStore, seed: int = 7) -> None:
        self._keystore = keystore
        self._seed = seed
        self._cas: dict[str, CertificateAuthority] = {}
        self._leaf_keys: dict[tuple[str, int], tuple[int, int]] = {}
        self._forge_cache: dict[tuple, ForgedCertificate] = {}
        self.certificates_forged = 0
        self.cache_hits = 0

    # -- signing CAs ------------------------------------------------------

    def authority_for(
        self, profile: ProxyProfile, issuer_override: Name | None = None
    ) -> CertificateAuthority:
        """The signing CA for ``profile`` (cached per issuer name)."""
        issuer = issuer_override if issuer_override is not None else profile.issuer
        cache_key = f"{profile.key}|{issuer.rfc4514()}"
        ca = self._cas.get(cache_key)
        if ca is None:
            key = self._keystore.key(f"proxy-ca:{cache_key}", profile.ca_key_bits)
            ca = CertificateAuthority.self_signed(
                SelfSignedParams(subject=issuer, key=key)
            )
            self._cas[cache_key] = ca
        return ca

    def warm(self, profile: ProxyProfile) -> None:
        """Pre-generate every signing CA ``profile`` can reach.

        Aggregate profiles rotate issuer names per client bucket, so a
        battery (or a worker fleet) that only warms bucket 0 still
        pays — or races over — the variant CA key generation on first
        use.  Issuer-copying profiles mint CAs keyed on upstream
        issuers and cannot be warmed ahead of time.
        """
        if profile.copies_upstream_issuer:
            return
        if profile.issuer_variants:
            for issuer in profile.issuer_variants:
                self.authority_for(profile, issuer)
        else:
            self.authority_for(profile)

    # -- leaf keys ---------------------------------------------------------

    def _leaf_key(self, label: str, bits: int) -> tuple[int, int]:
        slot = (label, bits)
        key = self._leaf_keys.get(slot)
        if key is None:
            rng = random.Random(stable_hash(self._seed, label, bits))
            key = synthetic_public_key(bits, rng)
            self._leaf_keys[slot] = key
        return key

    # -- forging -----------------------------------------------------------

    def forge(
        self,
        profile: ProxyProfile,
        upstream_leaf: Certificate,
        hostname: str,
        site_ip: str = "198.51.100.1",
        client_bucket: int = 0,
    ) -> ForgedCertificate:
        """Produce the substitute certificate ``profile`` would emit.

        ``upstream_leaf`` is the certificate the proxy itself received
        from the origin; profiles copy or rewrite its fields per their
        quirks.  ``client_bucket`` selects the leaf-key pool slot
        (stand-in for "which install generated this key").

        Results are cached: all inputs (including the substitute serial
        number, derived from profile/host/bucket) are deterministic, so
        the same interception decision always yields the same bytes —
        the property the wire≡fast equivalence tests rely on, and what
        makes paper-scale runs affordable.
        """
        cache_key = (
            profile,  # frozen dataclass — hashes all behaviour knobs
            hostname,
            site_ip,
            client_bucket,
            upstream_leaf.fingerprint(),
        )
        cached = self._forge_cache.get(cache_key)
        if cached is not None:
            self.cache_hits += 1
            return cached

        issuer_override: Name | None = None
        if profile.copies_upstream_issuer:
            # The §5.2 finding: substitute claims the original's issuer
            # (e.g. "DigiCert Inc") though DigiCert never signed it.
            issuer_override = upstream_leaf.issuer
        elif profile.issuer_variants:
            issuer_override = profile.issuer_for_bucket(client_bucket)
        ca = self.authority_for(profile, issuer_override)

        subject, dns_names = self._subject_for(profile, upstream_leaf, hostname, site_ip)
        n, e = self._leaf_key(
            profile.leaf_key_label(hostname, client_bucket), profile.leaf_key_bits
        )
        extra_extensions = ()
        if profile.disclosure_identity is not None:
            from repro.mitigation.disclosure import DISCLOSURE_EXTENSION_OID
            from repro.asn1.types import Utf8String
            from repro.x509.model import Extension

            extra_extensions = (
                Extension(
                    DISCLOSURE_EXTENSION_OID,
                    critical=False,
                    value=Utf8String(profile.disclosure_identity).encode(),
                ),
            )
        leaf = ca.issue(
            subject,
            SubjectPublicKeyInfo(n, e),
            hash_name=profile.hash_name,
            dns_names=dns_names,
            not_before=upstream_leaf.validity.not_before,
            not_after=upstream_leaf.validity.not_after,
            serial_number=stable_hash(
                self._seed, profile.key, hostname, client_bucket, bits=63
            )
            | 1,
            extra_extensions=extra_extensions,
        )
        self.certificates_forged += 1
        forged = ForgedCertificate(leaf=leaf, ca_chain=(ca.certificate,))
        self._forge_cache[cache_key] = forged
        return forged

    def _subject_for(
        self,
        profile: ProxyProfile,
        upstream_leaf: Certificate,
        hostname: str,
        site_ip: str,
    ) -> tuple[Name, list[str] | None]:
        if profile.subject_rewrite is SubjectRewrite.WILDCARD_SUBNET:
            # "a wildcarded IP address ... only designated the subnet"
            subnet = ".".join(site_ip.split(".")[:3])
            cn = f"{subnet}.*"
            return Name.build(common_name=cn), [cn]
        if profile.subject_rewrite is SubjectRewrite.WRONG_DOMAIN:
            cn = profile.wrong_domain
            return Name.build(common_name=cn), [cn]
        subject = upstream_leaf.subject
        if subject.common_name is None:
            subject = Name.build(common_name=hostname)
        dns_names = upstream_leaf.dns_names or [hostname]
        return subject, list(dns_names)
