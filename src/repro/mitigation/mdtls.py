"""mdTLS-style middlebox-aware TLS — the §7 "redesign TLS" family.

The mitigation families the paper surveys all bolt detection onto an
unmodified TLS; the research direction it gestures at instead changes
the protocol so middleboxes become first-class, *authorized* parties
(mcTLS and its successors, e.g. mdTLS).  There the client holds a list
of middleboxes the origin has delegated to, and the handshake itself
proves whether the party terminating TLS is on that list — an
unauthorized interceptor cannot produce the delegation, full stop.

This module is a deliberately thin stub of that end state: it does not
model the delegated-credential handshake, only its *decision surface*,
so the ablation table can show where a protocol-level fix lands
relative to the detection-only mechanisms.  The inputs are facts the
evaluation rig already observes — was the connection intercepted, and
what identity (if any) did the interceptor disclose; a real mdTLS
deployment would derive both cryptographically.
"""

from __future__ import annotations

from dataclasses import dataclass

# Verdicts, mirroring the other mechanisms' string-valued outcomes.
MDTLS_OK = "ok"
MDTLS_AUTHORIZED = "authorized-middlebox"
MDTLS_MITM = "unauthorized-mitm-detected"


@dataclass(frozen=True)
class MdtlsClient:
    """A client enforcing middlebox-aware TLS for one origin.

    ``authorized`` holds the middlebox identities the origin has
    delegated to (the stand-in for mdTLS delegated credentials).
    """

    authorized: frozenset[str] = frozenset()

    def verdict(self, intercepted: bool, disclosed: str | None) -> str:
        """Judge one observed connection.

        * not intercepted — the origin terminated TLS: ``ok``;
        * intercepted by a middlebox whose disclosed identity the
          origin delegated to: ``authorized-middlebox``;
        * any other interception — no identity, or one the origin
          never delegated to: ``unauthorized-mitm-detected``.

        The asymmetry with certificate disclosure is the point: a
        disclosure-only client learns about *cooperating* proxies and
        nothing else, while a middlebox-aware handshake fails closed —
        silence is itself proof of an unauthorized party.
        """
        if not intercepted:
            return MDTLS_OK
        if disclosed is not None and disclosed in self.authorized:
            return MDTLS_AUTHORIZED
        return MDTLS_MITM
