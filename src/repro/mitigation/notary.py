"""Multi-path probing notaries (Perspectives / Convergence / DoubleCheck).

A notary service probes the target from vantage points *outside* the
client's network path and reports what certificate each saw.  A
client-side proxy — corporate firewall, AV product, malware — cannot
touch the notaries' paths, so disagreement between the client's view
and the notaries' quorum exposes the MitM.  The paper notes the
technique's weakness too: benign certificate changes and multi-cert
deployments cause false alarms, which the quorum threshold models.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.netsim.network import Host, Network
from repro.tls.probe import ProbeClient
from repro.x509.model import Certificate


class NotaryVerdict(str, enum.Enum):
    AGREES = "agrees"  # client view matches the quorum
    MITM_SUSPECTED = "mitm-suspected"  # quorum saw something else
    NO_QUORUM = "no-quorum"  # vantages disagree among themselves
    UNREACHABLE = "unreachable"  # notaries could not probe the host


@dataclass(frozen=True)
class NotaryObservation:
    vantage: str
    fingerprint: str | None  # None = probe failed


class NotaryService:
    """A set of vantage hosts that probe targets on request."""

    def __init__(
        self, network: Network, vantage_count: int = 5, quorum: float = 0.6
    ) -> None:
        if not 0.5 < quorum <= 1.0:
            raise ValueError("quorum must be in (0.5, 1.0]")
        self.network = network
        self.quorum = quorum
        self.vantages: list[Host] = []
        for index in range(vantage_count):
            hostname = f"notary-{index}.example"
            host = network.host_or_none(hostname) or network.add_host(hostname)
            self.vantages.append(host)

    def observe(self, hostname: str, port: int = 443) -> list[NotaryObservation]:
        """Probe ``hostname`` from every vantage point."""
        observations = []
        for vantage in self.vantages:
            result = ProbeClient(vantage).probe(hostname, port)
            observations.append(
                NotaryObservation(
                    vantage=vantage.hostname,
                    fingerprint=result.leaf.fingerprint() if result.ok else None,
                )
            )
        return observations

    def judge(
        self, client_leaf: Certificate, hostname: str, port: int = 443
    ) -> NotaryVerdict:
        """Compare the client's observed leaf against the vantage quorum."""
        observations = self.observe(hostname, port)
        seen = [o.fingerprint for o in observations if o.fingerprint is not None]
        if not seen:
            return NotaryVerdict.UNREACHABLE
        counts = Counter(seen)
        top_fingerprint, top_count = counts.most_common(1)[0]
        if top_count / len(self.vantages) < self.quorum:
            return NotaryVerdict.NO_QUORUM
        if client_leaf.fingerprint() == top_fingerprint:
            return NotaryVerdict.AGREES
        return NotaryVerdict.MITM_SUSPECTED
