"""Certificate Transparency (§7: RFC 6962-style audit logs).

A CT log is an append-only Merkle tree of certificates.  Issuers (or
servers) submit certificates and receive a signed certificate
timestamp (SCT); auditors verify inclusion proofs; monitors watch the
log for certificates naming domains they care about and flag
mis-issuance.

The tree uses RFC 6962's domain-separated hashing (leaf prefix 0x00,
node prefix 0x01) and supports both inclusion and consistency proofs,
so the append-only property is independently checkable.

What CT can and cannot do about TLS proxies mirrors the paper's §7
discussion: a *rogue public CA* mis-issuing for a domain is caught by
the domain's monitor, but a proxy signing with a *locally injected*
root never submits to any log — its certificates are invisible to CT,
and clients that accept local roots without SCTs learn nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.hashes import hash_by_name
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, pkcs1_sign, pkcs1_verify
from repro.x509.model import Certificate


def _leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + data).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


class MerkleTree:
    """An append-only Merkle tree over opaque leaf blobs (RFC 6962)."""

    def __init__(self) -> None:
        self._leaves: list[bytes] = []  # leaf hashes

    def append(self, data: bytes) -> int:
        """Append a leaf; returns its index."""
        self._leaves.append(_leaf_hash(data))
        return len(self._leaves) - 1

    @property
    def size(self) -> int:
        return len(self._leaves)

    def root(self, size: int | None = None) -> bytes:
        """Root hash over the first ``size`` leaves (default: all)."""
        size = self.size if size is None else size
        if size > self.size:
            raise ValueError(f"size {size} exceeds tree size {self.size}")
        if size == 0:
            return hashlib.sha256(b"").digest()
        return self._subtree_root(0, size)

    def _subtree_root(self, start: int, size: int) -> bytes:
        if size == 1:
            return self._leaves[start]
        split = _largest_power_of_two_below(size)
        return _node_hash(
            self._subtree_root(start, split),
            self._subtree_root(start + split, size - split),
        )

    # -- proofs -----------------------------------------------------------

    def inclusion_proof(self, index: int, size: int | None = None) -> list[bytes]:
        """Audit path for leaf ``index`` within the first ``size`` leaves."""
        size = self.size if size is None else size
        if not 0 <= index < size <= self.size:
            raise ValueError(f"bad proof request: index={index} size={size}")
        return self._path(index, 0, size)

    def _path(self, index: int, start: int, size: int) -> list[bytes]:
        if size == 1:
            return []
        split = _largest_power_of_two_below(size)
        if index < split:
            path = self._path(index, start, split)
            path.append(self._subtree_root(start + split, size - split))
        else:
            path = self._path(index - split, start + split, size - split)
            path.append(self._subtree_root(start, split))
        return path

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> list[bytes]:
        """Proof that the first ``old_size`` leaves are a prefix of the
        first ``new_size`` leaves (RFC 6962 §2.1.2)."""
        new_size = self.size if new_size is None else new_size
        if not 0 < old_size <= new_size <= self.size:
            raise ValueError(f"bad consistency request: {old_size}..{new_size}")
        if old_size == new_size:
            return []
        return self._consistency(old_size, 0, new_size, True)

    def _consistency(
        self, old: int, start: int, size: int, old_is_complete: bool
    ) -> list[bytes]:
        if old == size:
            if old_is_complete:
                return []
            return [self._subtree_root(start, size)]
        split = _largest_power_of_two_below(size)
        if old <= split:
            proof = self._consistency(old, start, split, old_is_complete)
            proof.append(self._subtree_root(start + split, size - split))
        else:
            proof = self._consistency(
                old - split, start + split, size - split, False
            )
            proof.append(self._subtree_root(start, split))
        return proof


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    power = 1
    while power * 2 < n:
        power *= 2
    return power


def verify_inclusion(
    leaf_data: bytes, index: int, size: int, proof: list[bytes], root: bytes
) -> bool:
    """Verify an inclusion proof (the RFC 9162 §2.1.3.2 algorithm).

    The audit path is ordered leaf-to-root, so verification walks
    bottom-up, tracking the leaf's position (``fn``) against the index
    of the last leaf (``sn``) to know which side each sibling is on.
    """
    if not 0 <= index < size:
        return False
    fn, sn = index, size - 1
    node = _leaf_hash(leaf_data)
    for sibling in proof:
        if sn == 0:
            return False  # proof longer than the path
        if fn & 1 or fn == sn:
            node = _node_hash(sibling, node)
            if not fn & 1:
                # Right-edge node: climb until fn is a left child.
                while fn & 1 == 0 and fn != 0:
                    fn >>= 1
                    sn >>= 1
        else:
            node = _node_hash(node, sibling)
        fn >>= 1
        sn >>= 1
    return sn == 0 and node == root


@dataclass(frozen=True)
class SignedCertificateTimestamp:
    """A log's promise that a certificate will be included."""

    log_id: str
    leaf_index: int
    certificate_fingerprint: str
    signature: bytes


@dataclass
class CtLog:
    """A CT log: Merkle tree + signing key + query interface."""

    log_id: str
    key: RsaKeyPair
    tree: MerkleTree = field(default_factory=MerkleTree)
    entries: list[Certificate] = field(default_factory=list)

    def submit(self, certificate: Certificate) -> SignedCertificateTimestamp:
        """Append a certificate and return its SCT."""
        index = self.tree.append(certificate.encode())
        self.entries.append(certificate)
        message = self._sct_message(index, certificate.fingerprint())
        signature = pkcs1_sign(self.key, hash_by_name("sha256"), message)
        return SignedCertificateTimestamp(
            log_id=self.log_id,
            leaf_index=index,
            certificate_fingerprint=certificate.fingerprint(),
            signature=signature,
        )

    def _sct_message(self, index: int, fingerprint: str) -> bytes:
        return f"{self.log_id}:{index}:{fingerprint}".encode("ascii")

    def verify_sct(
        self, sct: SignedCertificateTimestamp, public_key: RsaPublicKey
    ) -> bool:
        message = self._sct_message(sct.leaf_index, sct.certificate_fingerprint)
        return pkcs1_verify(public_key, hash_by_name("sha256"), message, sct.signature)

    def prove_inclusion(self, index: int) -> tuple[list[bytes], bytes, int]:
        """(audit path, tree root, tree size) for the leaf at ``index``."""
        size = self.tree.size
        return self.tree.inclusion_proof(index, size), self.tree.root(size), size

    def certificates_for(self, hostname: str) -> list[Certificate]:
        """Monitor query: every logged certificate covering ``hostname``."""
        return [c for c in self.entries if c.matches_hostname(hostname)]


@dataclass
class CtMonitor:
    """A domain owner's monitor: flags unexpected issuers for a domain.

    The monitor knows which issuer names legitimately sign for the
    domain; anything else appearing in the log is mis-issuance — the
    rogue-CA detection CT was built for.
    """

    hostname: str
    legitimate_issuers: frozenset[str]

    def audit(self, log: CtLog) -> list[Certificate]:
        """Return logged certificates for the domain with wrong issuers."""
        flagged = []
        for certificate in log.certificates_for(self.hostname):
            issuer = certificate.issuer.organization or certificate.issuer.common_name
            if issuer not in self.legitimate_issuers:
                flagged.append(certificate)
        return flagged
