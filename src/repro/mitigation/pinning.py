"""Certificate pinning (trust-on-first-use + preloads).

Models the Chrome-style pinning the paper describes (§7): pins bind a
hostname to public-key fingerprints, preloads ship with the browser,
and — the crucial caveat — *locally installed* trusted roots bypass
pinning entirely, "so benevolent proxies and malware can circumvent
the pinning process."  That caveat is a knob here so the ablation can
quantify exactly what it costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.x509.model import Certificate
from repro.x509.store import RootStore
from repro.x509.verify import validate_chain


class PinVerdict(str, enum.Enum):
    OK = "ok"  # matches an existing pin
    FIRST_USE = "first-use"  # no pin yet; pinned now (TOFU)
    VIOLATION = "violation"  # pin exists and the key differs
    BYPASSED_LOCAL_ROOT = "bypassed-local-root"  # Chrome's escape hatch


def _key_fingerprint(certificate: Certificate) -> str:
    import hashlib

    spki = certificate.tbs.public_key
    return hashlib.sha256(f"{spki.n}:{spki.e}".encode("ascii")).hexdigest()


@dataclass
class PinStore:
    """Hostname → pinned public-key fingerprints."""

    trust_local_roots: bool = True  # the Chrome behaviour by default
    _pins: dict[str, set[str]] = field(default_factory=dict)
    _preloaded: set[str] = field(default_factory=set)

    def preload(self, hostname: str, certificates: list[Certificate]) -> None:
        """Ship pins with the browser (no TOFU window)."""
        self._pins.setdefault(hostname, set()).update(
            _key_fingerprint(c) for c in certificates
        )
        self._preloaded.add(hostname)

    def is_preloaded(self, hostname: str) -> bool:
        return hostname in self._preloaded

    def check(
        self,
        hostname: str,
        chain: list[Certificate],
        store: RootStore | None = None,
    ) -> PinVerdict:
        """Evaluate a presented chain against the pins.

        ``store`` is the client's root store; when ``trust_local_roots``
        is set and the chain anchors in an *injected* root, pinning is
        bypassed (the Chrome rule).
        """
        if not chain:
            return PinVerdict.VIOLATION
        if self.trust_local_roots and store is not None:
            verdict = validate_chain(chain, store, hostname=hostname)
            if verdict.valid and verdict.trusted_via_injected_root:
                return PinVerdict.BYPASSED_LOCAL_ROOT
        fingerprint = _key_fingerprint(chain[0])
        pinned = self._pins.get(hostname)
        if pinned is None:
            self._pins[hostname] = {fingerprint}
            return PinVerdict.FIRST_USE
        if fingerprint in pinned:
            return PinVerdict.OK
        return PinVerdict.VIOLATION

    def pins_for(self, hostname: str) -> set[str]:
        return set(self._pins.get(hostname, set()))
