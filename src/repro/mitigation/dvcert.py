"""DVCert-style direct validation of certificates (§7, Dacosta et al.).

Client and server already share a secret (the account password); the
server proves which certificate it actually serves by MACing the
certificate fingerprint with a key derived from that secret.  An
on-path proxy can substitute the certificate but cannot forge the
attestation, so the client detects the swap — without third parties.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.x509.model import Certificate


def _derive_key(shared_secret: str, hostname: str) -> bytes:
    return hashlib.pbkdf2_hmac(
        "sha256", shared_secret.encode("utf-8"), hostname.encode("ascii"), 1000
    )


@dataclass
class DirectValidationServer:
    """The web application's side: attests its true certificate."""

    hostname: str
    certificate: Certificate

    def attest(self, shared_secret: str, challenge: bytes) -> bytes:
        """MAC(fingerprint ‖ challenge) under the shared-secret key."""
        key = _derive_key(shared_secret, self.hostname)
        message = bytes.fromhex(self.certificate.fingerprint()) + challenge
        return hmac.new(key, message, hashlib.sha256).digest()


@dataclass
class DirectValidationClient:
    """The browser's side: verifies the attestation for what *it* saw."""

    hostname: str
    shared_secret: str

    def verify(
        self, observed: Certificate, challenge: bytes, attestation: bytes
    ) -> bool:
        """True iff the server attested to the certificate we observed."""
        key = _derive_key(self.shared_secret, self.hostname)
        message = bytes.fromhex(observed.fingerprint()) + challenge
        expected = hmac.new(key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, attestation)
