"""Mitigation coverage evaluation (the A1 ablation).

Builds four attack/interception scenarios on real netsim paths and
asks each §7 mechanism whether it detects the interception:

* ``benign-av``      — AV firewall, root injected at install time;
* ``malware``        — ad-injecting malware, root injected silently;
* ``rogue-ca``       — attacker holding a cert from a compromised but
                       *publicly trusted* CA (no root injection);
* ``chained-attack`` — an external attacker with an untrusted CA
                       behind a Kurupira-style masking filter (§5.2).

The punchline the paper's §7 discussion predicts: pinning with
Chrome's local-root exemption misses everything root-injection based;
notaries and DVCert catch all four; disclosure only ever reveals the
cooperating proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keystore import KeyStore
from repro.mitigation.disclosure import read_disclosure
from repro.mitigation.dvcert import DirectValidationClient, DirectValidationServer
from repro.mitigation.mdtls import MdtlsClient
from repro.mitigation.notary import NotaryService, NotaryVerdict
from repro.mitigation.pinning import PinStore, PinVerdict
from repro.netsim.network import Network
from repro.proxy.engine import TlsProxyEngine
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import (
    ForgedUpstreamPolicy,
    ProxyCategory,
    ProxyProfile,
)
from repro.study.webpki import build_web_pki
from repro.data.sites import ProbeSite
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.x509.model import Name
from repro.x509.store import RootStore

TARGET = "secure-target.example"
SHARED_SECRET = "correct horse battery staple"


@dataclass(frozen=True)
class DetectionOutcome:
    """One scenario × mechanism result."""

    scenario: str
    intercepted: bool
    pinning: str
    pinning_strict: str  # without the local-root exemption
    notary: str
    dvcert: str
    disclosure: str | None
    # Certificate Transparency: "flagged" (monitor caught mis-issuance),
    # "invisible" (interception happened but nothing reached the log),
    # or "clean" (no interception, log consistent).
    ct_monitor: str = "clean"
    # Middlebox-aware TLS (mdTLS stub): "ok", "authorized-middlebox",
    # or "unauthorized-mitm-detected".
    mdtls: str = "ok"


@dataclass
class MitigationEvaluation:
    outcomes: list[DetectionOutcome] = field(default_factory=list)

    def by_scenario(self, name: str) -> DetectionOutcome:
        for outcome in self.outcomes:
            if outcome.scenario == name:
                return outcome
        raise KeyError(name)


def evaluate_mitigations(seed: int = 0) -> MitigationEvaluation:
    """Run every scenario and mechanism; returns the ablation table."""
    evaluation = MitigationEvaluation()
    scenarios = (
        "clean",
        "benign-av",
        "cooperative-proxy",
        "malware",
        "rogue-ca",
        "chained-attack",
    )
    for scenario in scenarios:
        evaluation.outcomes.append(_run_scenario(scenario, seed))
    return evaluation


def _run_scenario(scenario: str, seed: int) -> DetectionOutcome:
    keystore = KeyStore(seed=seed)
    forger = SubstituteCertForger(keystore, seed=seed)
    network = Network()
    site = ProbeSite(TARGET, "Business")
    pki = build_web_pki(keystore, [site], seed=seed)
    origin = network.add_host(TARGET, ip="203.0.113.50")
    origin.listen(443, TlsCertServer(pki.chain_for(TARGET)).factory)
    genuine_leaf = pki.leaf_for(TARGET)

    client = network.add_host("victim.example", ip="11.0.0.99")
    client_store = pki.root_store()  # factory roots
    interceptor_profile: ProxyProfile | None = None

    if scenario == "benign-av":
        interceptor_profile = ProxyProfile(
            key="ablation-av",
            issuer=Name.build(common_name="AV Web Shield", organization="GoodAV"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=2048,
            hash_name="sha1",
        )
    elif scenario == "cooperative-proxy":
        # A §7-style explicit proxy: intercepts like the AV product but
        # discloses its identity in the substitute certificate.
        interceptor_profile = ProxyProfile(
            key="ablation-cooperative",
            issuer=Name.build(common_name="Explicit Proxy", organization="GoodAV"),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=2048,
            hash_name="sha1",
            disclosure_identity="GoodAV Explicit Proxy v1",
        )
    elif scenario == "malware":
        interceptor_profile = ProxyProfile(
            key="ablation-malware",
            issuer=Name.build(common_name="AdInject CA", organization="Objectify Media Inc"),
            category=ProxyCategory.MALWARE,
            leaf_key_bits=1024,
            hash_name="sha1",
            forged_upstream=ForgedUpstreamPolicy.MASK,
        )
    elif scenario == "rogue-ca":
        # A compromised but publicly trusted CA: its root is ALREADY a
        # factory root; no injection needed (Figure 2(c), left arrow).
        # Pick a public CA *different* from the site's legitimate
        # issuer, as a real cross-CA mis-issuance would be.
        legitimate_org = genuine_leaf.issuer.organization
        rogue_root = next(
            ca
            for ca in pki.roots.values()
            if ca.certificate.subject.organization != legitimate_org
        )
        interceptor_profile = ProxyProfile(
            key="ablation-rogue",
            issuer=rogue_root.certificate.subject,
            category=ProxyCategory.UNKNOWN,
            leaf_key_bits=2048,
            hash_name="sha1",
            injects_root=False,
            forged_upstream=ForgedUpstreamPolicy.MASK,
        )
    if scenario == "chained-attack":
        # An external attacker with an *untrusted* CA sits on the path
        # beyond a Kurupira-style masking filter.  The filter fetches
        # upstream through a relay carrying the attacker's interceptor:
        # client -> filter -> attacker -> origin.  Because the filter
        # MASKs invalid upstream chains (§5.2), the attack is invisible
        # to the browser, which only ever sees the filter's trusted CA.
        attacker_profile = ProxyProfile(
            key="ablation-attacker",
            issuer=Name.build(common_name="Evil CA", organization="Attacker"),
            category=ProxyCategory.UNKNOWN,
            leaf_key_bits=1024,
            hash_name="sha1",
            injects_root=False,
            forged_upstream=ForgedUpstreamPolicy.MASK,
        )
        relay_host = network.add_host("relay.victim.example")
        attacker = TlsProxyEngine(
            attacker_profile,
            forger,
            upstream_host=relay_host,
            upstream_trust=pki.root_store(),
        )
        relay_host.add_interceptor(attacker)
        filter_profile = ProxyProfile(
            key="ablation-kurupira",
            issuer=Name.build(
                common_name="Kurupira WebFilter", organization="Kurupira.NET"
            ),
            category=ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
            leaf_key_bits=1024,
            hash_name="sha1",
            forged_upstream=ForgedUpstreamPolicy.MASK,  # the §5.2 negligence
        )
        filter_engine = TlsProxyEngine(
            filter_profile,
            forger,
            upstream_host=relay_host,
            upstream_trust=pki.root_store(),
            upstream_via_interceptors=True,
        )
        client.add_interceptor(filter_engine)
        ca = forger.authority_for(filter_profile)
        client_store.inject(ca.certificate)
    elif interceptor_profile is not None:
        engine = TlsProxyEngine(
            interceptor_profile,
            forger,
            upstream_host=client,
            upstream_trust=pki.root_store(),
        )
        client.add_interceptor(engine)
        if interceptor_profile.injects_root:
            ca = forger.authority_for(interceptor_profile)
            client_store.inject(ca.certificate)

    # --- observe the certificate the client actually gets ---------------
    result = ProbeClient(client).probe(TARGET, 443)
    if not result.ok:
        raise RuntimeError(f"{scenario}: probe failed: {result.error}")
    observed_leaf = result.leaf
    observed_chain = list(result.chain)
    intercepted = observed_leaf.fingerprint() != genuine_leaf.fingerprint()

    # --- pinning ----------------------------------------------------------
    pins = PinStore(trust_local_roots=True)
    pins.preload(TARGET, [genuine_leaf])
    pin_verdict = pins.check(TARGET, observed_chain, store=client_store)
    strict_pins = PinStore(trust_local_roots=False)
    strict_pins.preload(TARGET, [genuine_leaf])
    strict_verdict = strict_pins.check(TARGET, observed_chain, store=client_store)

    # --- notary -------------------------------------------------------------
    notary = NotaryService(network, vantage_count=5)
    notary_verdict = notary.judge(observed_leaf, TARGET, 443)

    # --- DVCert ----------------------------------------------------------------
    dv_server = DirectValidationServer(TARGET, genuine_leaf)
    dv_client = DirectValidationClient(TARGET, SHARED_SECRET)
    challenge = b"nonce-%d" % seed
    attestation = dv_server.attest(SHARED_SECRET, challenge)
    dv_ok = dv_client.verify(observed_leaf, challenge, attestation)
    dvcert = "ok" if dv_ok else "mitm-detected"

    # --- disclosure ---------------------------------------------------------------
    disclosed = read_disclosure(observed_leaf)

    # --- mdTLS (middlebox-aware TLS stub) -----------------------------------------
    # The origin has delegated to exactly one middlebox: the explicit
    # cooperating proxy.  Everything else that intercepts fails closed.
    mdtls_client = MdtlsClient(authorized=frozenset({"GoodAV Explicit Proxy v1"}))
    mdtls = mdtls_client.verdict(intercepted, disclosed)

    # --- Certificate Transparency ---------------------------------------------------
    # Publicly trusted CAs are obliged to log what they issue; a rogue
    # *public* CA's mis-issued certificate therefore reaches the log and
    # the domain monitor flags it.  Proxies signing with locally
    # injected roots never submit anything — CT sees nothing.
    from repro.mitigation.ctlog import CtLog, CtMonitor

    log = CtLog(log_id="repro-ablation-log", key=keystore.key("ct-ablation", 512))
    log.submit(genuine_leaf)
    if scenario == "rogue-ca":
        log.submit(observed_leaf)
    legitimate_issuer = genuine_leaf.issuer.organization
    monitor = CtMonitor(TARGET, frozenset({legitimate_issuer}))
    flagged = monitor.audit(log)
    if flagged:
        ct_verdict = "flagged"
    elif intercepted:
        ct_verdict = "invisible"
    else:
        ct_verdict = "clean"

    return DetectionOutcome(
        scenario=scenario,
        intercepted=intercepted,
        pinning=pin_verdict.value,
        pinning_strict=strict_verdict.value,
        notary=notary_verdict.value,
        dvcert=dvcert,
        disclosure=disclosed,
        ct_monitor=ct_verdict,
        mdtls=mdtls,
    )
