"""Crossbear-style MitM localization (§8).

Crossbear's idea: when a client observes a certificate that disagrees
with the notary view, it also records a traceroute to the target; the
server aggregates (observation, path) pairs from many hunters and
localizes the attacker to the deepest path element shared by all
poisoned observations and absent from all clean ones.

The same logic distinguishes the paper's interception geographies:

* a client-local AV product localizes to the victim machine itself;
* a corporate gateway localizes to the office's access hop;
* a national gateway (the §1 Iran/Syria scenario) localizes to the
  country-level hop every affected client shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.network import Host, Network
from repro.tls.probe import ProbeClient


@dataclass(frozen=True)
class HunterObservation:
    """One hunter's report: what it saw and how it got there."""

    hunter: str
    fingerprint: str | None  # leaf seen by this client (None = probe failed)
    path: tuple[str, ...]  # traceroute hop names, client first

    @property
    def ok(self) -> bool:
        return self.fingerprint is not None


@dataclass
class LocalizationResult:
    """Where the MitM sits, as far as the observations can tell."""

    target: str
    authoritative_fingerprint: str
    poisoned: list[HunterObservation] = field(default_factory=list)
    clean: list[HunterObservation] = field(default_factory=list)
    suspect_hops: tuple[str, ...] = ()

    @property
    def mitm_detected(self) -> bool:
        return bool(self.poisoned)

    @property
    def localized_to(self) -> str | None:
        """The deepest suspect hop (closest to the poisoned clients)."""
        return self.suspect_hops[0] if self.suspect_hops else None


class CrossbearHunter:
    """Coordinates hunters and localizes interception."""

    def __init__(self, network: Network, authoritative_fingerprint: str) -> None:
        self.network = network
        self.authoritative_fingerprint = authoritative_fingerprint

    def observe(self, hunter: Host, target: str, port: int = 443) -> HunterObservation:
        """One hunter probes the target and records its path."""
        result = ProbeClient(hunter).probe(target, port)
        return HunterObservation(
            hunter=hunter.hostname,
            fingerprint=result.leaf.fingerprint() if result.ok else None,
            path=tuple(self.network.traceroute(hunter, target)),
        )

    def localize(
        self, hunters: list[Host], target: str, port: int = 443
    ) -> LocalizationResult:
        """Probe from every hunter and triangulate the interceptor.

        Suspect hops are those appearing on *every* poisoned path and
        *no* clean path, ordered client-side first (the deepest common
        element is the best estimate of the MitM's position).
        """
        result = LocalizationResult(
            target=target, authoritative_fingerprint=self.authoritative_fingerprint
        )
        for hunter in hunters:
            observation = self.observe(hunter, target, port)
            if not observation.ok:
                continue
            if observation.fingerprint == self.authoritative_fingerprint:
                result.clean.append(observation)
            else:
                result.poisoned.append(observation)
        if not result.poisoned:
            return result

        shared: set[str] = set(result.poisoned[0].path)
        for observation in result.poisoned[1:]:
            shared &= set(observation.path)
        for observation in result.clean:
            shared -= set(observation.path)
        shared.discard(target)
        # Order suspects from the client side outward using the first
        # poisoned path's hop order.
        ordered = [hop for hop in result.poisoned[0].path if hop in shared]
        result.suspect_hops = tuple(ordered)
        return result
