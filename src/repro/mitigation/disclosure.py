"""Explicit proxy disclosure (§7: McGrew/Loreto IETF drafts).

The industry proposals make interception *visible*: a cooperating
proxy marks the substitute certificate so the client knows a middlebox
is present and can seek consent.  Here the marker is a non-critical
certificate extension carrying the proxy's self-declared identity —
which, exactly as the paper's analysis implies, only benevolent
proxies would ever add.
"""

from __future__ import annotations

from repro.asn1.types import Utf8String
from repro.x509.model import Certificate, Extension, TbsCertificate

# Private-arc OID for the simulated disclosure extension.
DISCLOSURE_EXTENSION_OID = "1.3.6.1.4.1.53535.1.1"


def add_disclosure(tbs: TbsCertificate, proxy_identity: str) -> TbsCertificate:
    """Return a copy of ``tbs`` carrying a disclosure extension.

    Must be applied before signing — the extension is part of the
    signed TBSCertificate, so it cannot be stripped in flight.
    """
    marker = Extension(
        DISCLOSURE_EXTENSION_OID,
        critical=False,
        value=Utf8String(proxy_identity).encode(),
    )
    return TbsCertificate(
        serial_number=tbs.serial_number,
        signature_oid=tbs.signature_oid,
        issuer=tbs.issuer,
        validity=tbs.validity,
        subject=tbs.subject,
        public_key=tbs.public_key,
        extensions=(*tbs.extensions, marker),
        version=tbs.version,
    )


def read_disclosure(certificate: Certificate) -> str | None:
    """The proxy identity disclosed in ``certificate``, if any."""
    from repro.asn1.types import decode

    for extension in certificate.tbs.extensions:
        if extension.oid != DISCLOSURE_EXTENSION_OID:
            continue
        try:
            value, rest = decode(extension.value)
        except Exception:
            return None
        if rest or not isinstance(value, Utf8String):
            return None
        return value.value
    return None
