"""Mitigation mechanisms surveyed in §7, implemented as extensions.

The paper surveys four families of TLS-MitM defences; this package
implements one representative of each so their coverage can be
compared experimentally (the A1 ablation bench):

* :mod:`repro.mitigation.pinning` — certificate pinning (Google's
  HSTS-pinning proposal).  Includes the deliberate Chrome behaviour
  the paper highlights: locally-installed roots bypass pins, so
  root-injecting proxies and malware evade it.
* :mod:`repro.mitigation.notary` — multi-path probing à la
  Perspectives/Convergence: vantage points outside the client's path
  vote on the certificate they see.
* :mod:`repro.mitigation.dvcert` — DVCert-style direct validation:
  the server attests its certificate over a channel bound to a shared
  secret, which no on-path proxy can forge.
* :mod:`repro.mitigation.disclosure` — the IETF explicit-proxy
  direction: cooperating proxies mark their substitute certificates,
  making interception visible to clients that look.
* :mod:`repro.mitigation.mdtls` — a middlebox-aware TLS (mdTLS) stub:
  the protocol-redesign direction where middleboxes are authorized
  parties and an undelegated interceptor fails closed.
"""

from repro.mitigation.disclosure import (
    DISCLOSURE_EXTENSION_OID,
    add_disclosure,
    read_disclosure,
)
from repro.mitigation.dvcert import DirectValidationClient, DirectValidationServer
from repro.mitigation.evaluate import DetectionOutcome, MitigationEvaluation, evaluate_mitigations
from repro.mitigation.mdtls import (
    MDTLS_AUTHORIZED,
    MDTLS_MITM,
    MDTLS_OK,
    MdtlsClient,
)
from repro.mitigation.notary import NotaryService, NotaryVerdict
from repro.mitigation.pinning import PinStore, PinVerdict

__all__ = [
    "DISCLOSURE_EXTENSION_OID",
    "DetectionOutcome",
    "DirectValidationClient",
    "DirectValidationServer",
    "MDTLS_AUTHORIZED",
    "MDTLS_MITM",
    "MDTLS_OK",
    "MdtlsClient",
    "MitigationEvaluation",
    "NotaryService",
    "NotaryVerdict",
    "PinStore",
    "PinVerdict",
    "add_disclosure",
    "evaluate_mitigations",
    "read_disclosure",
]
