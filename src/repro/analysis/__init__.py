"""Analysis of collected certificate reports.

Reproduces §5 and §6 of the paper over a :class:`ReportDatabase`:

* :class:`IssuerClassifier` — maps substitute-certificate issuer
  fields to the paper's ten categories (Tables 5/6) using the known
  product list plus heuristics, never the simulation's ground truth.
* :mod:`repro.analysis.tables` — the country, issuer, classification
  and host-type tables (Tables 3/4/5/6/7/8) and the Figure 7 series.
* :mod:`repro.analysis.negligence` — §5.2: key-size downgrades, MD5
  signatures, falsified CA claims, subject modifications, shared keys.
* :mod:`repro.analysis.malware` — the §6.4 malware census and the
  IP-dispersion oddities (kowsar, DSP, MYInternetS).
* :mod:`repro.analysis.mimicry` — the mimicry-prevalence study:
  per-country detectable-from-client-side rates, weighted by product
  market share, from the audit harness's server-leg survey.
"""

from repro.analysis.classifier import IssuerClassifier
from repro.analysis.malware import MalwareCensus, OddityReport, ip_dispersion_oddities, malware_census
from repro.analysis.mimicry import (
    MimicryCountryRow,
    MimicryPrevalence,
    ProductVerdict,
    mimicry_prevalence,
)
from repro.analysis.negligence import NegligenceReport, analyze_negligence
from repro.analysis.tables import (
    audit_grade_table,
    classification_table,
    client_leg_table,
    country_breakdown,
    heatmap_series,
    host_type_table,
    issuer_organization_table,
    server_leg_table,
)

__all__ = [
    "IssuerClassifier",
    "audit_grade_table",
    "MalwareCensus",
    "MimicryCountryRow",
    "MimicryPrevalence",
    "NegligenceReport",
    "OddityReport",
    "ProductVerdict",
    "analyze_negligence",
    "classification_table",
    "client_leg_table",
    "country_breakdown",
    "heatmap_series",
    "host_type_table",
    "ip_dispersion_oddities",
    "issuer_organization_table",
    "malware_census",
    "mimicry_prevalence",
    "server_leg_table",
]
