"""Mimicry-prevalence study: server-leg detectability across the catalog.

The paper's core question — can an interception product be told apart
from the origin it impersonates? — gets a population-level answer
here.  The audit harness's mimicry probe
(:func:`repro.audit.mimicry_catalog`) says, per product, whether the
substitute ServerHello it serves a given browser diverges from the
genuine origin's expected answer (JA3S dimensions plus the compression
byte).  This module weights those verdicts by each product's market
share in each country (the same per-country sampling weights the
studies calibrate against Tables 3/7) and reports the fraction of
proxied connections a *client-side* observer could have flagged from
the handshake alone — no certificate inspection, no server
cooperation.

Everything is a pure function of (survey, study), and the survey is
byte-identical for any worker count or executor kind, so the rendered
table and exported JSON are too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.scorecard import MimicrySurvey
from repro.data.countries import country_table
from repro.data.products import catalog


@dataclass(frozen=True)
class MimicryCountryRow:
    """One country's detectable-from-client-side rate.

    ``detectable`` is rounded per country; aggregate rows (Other,
    Total) carry the *sum* of their members' rounded counts, so the
    table always adds up exactly.
    """

    rank: int
    country: str
    proxied: int  # calibrated proxied-connection count (Tables 3/7)
    detectable_share: float  # market-share-weighted fraction detectable
    detectable: int  # proxied connections a client-side observer flags

    @property
    def percent(self) -> float:
        return 100.0 * self.detectable_share


@dataclass(frozen=True)
class ProductVerdict:
    """One product's survey verdict, for the report's evidence section."""

    product_key: str
    category: str
    detectable: bool
    reasons: tuple[str, ...]


@dataclass(frozen=True)
class MimicryPrevalence:
    """The catalog-wide mimicry-prevalence result for one study."""

    study: int
    seed: int
    browser: str
    rows: tuple[MimicryCountryRow, ...]
    other: MimicryCountryRow
    total: MimicryCountryRow
    verdicts: tuple[ProductVerdict, ...]  # catalog order

    def all_rows(self) -> list[MimicryCountryRow]:
        return [*self.rows, self.other, self.total]

    def to_dict(self) -> dict:
        def row_dict(row: MimicryCountryRow) -> dict:
            return {
                "country": row.country,
                "proxied": row.proxied,
                "detectable_share": round(row.detectable_share, 6),
                "detectable": row.detectable,
            }

        return {
            "study": self.study,
            "seed": self.seed,
            "browser": self.browser,
            "countries": [row_dict(row) for row in self.rows],
            "other": row_dict(self.other),
            "total": row_dict(self.total),
            "products": [
                {
                    "product": verdict.product_key,
                    "category": verdict.category,
                    "detectable": verdict.detectable,
                    "reasons": list(verdict.reasons),
                }
                for verdict in self.verdicts
            ],
        }


def mimicry_prevalence(
    survey: MimicrySurvey, study: int = 1, top_n: int = 20
) -> MimicryPrevalence:
    """Weight the survey's per-product verdicts by market share.

    For every country in the study's calibration table, the detectable
    share is the weight of surveyed products whose substitute
    ServerHello a client-side observer can flag, over the weight of
    all surveyed products — the same ``weight_in(study, country)``
    market-share model the samplers draw from, so a product that
    dominates a country drags that country's rate toward its own
    verdict.  Country rows are ranked by calibrated proxied count; the
    tail beyond ``top_n`` aggregates into an Other row, and the Total
    row weights every country by its proxied volume.
    """
    if study not in (1, 2):
        raise ValueError("study must be 1 or 2")
    entries = survey.by_key()
    surveyed = [spec for spec in catalog() if spec.key in entries]
    shares: list[tuple[str, int, float]] = []  # (code, proxied, share)
    for calibration in country_table(study):
        total_weight = 0.0
        detectable_weight = 0.0
        for spec in surveyed:
            weight = spec.weight_in(study, calibration.code)
            if weight <= 0:
                continue
            total_weight += weight
            if entries[spec.key].detectable:
                detectable_weight += weight
        share = detectable_weight / total_weight if total_weight else 0.0
        shares.append((calibration.code, calibration.proxied, share))
    shares.sort(key=lambda item: (-item[1], item[0]))
    top = shares[:top_n]
    tail = shares[top_n:]
    rows = tuple(
        MimicryCountryRow(rank + 1, code, proxied, share, round(proxied * share))
        for rank, (code, proxied, share) in enumerate(top)
    )

    def aggregate(name: str, chunk: list[tuple[str, int, float]]) -> MimicryCountryRow:
        proxied = sum(p for _, p, _ in chunk)
        # Sum the per-country rounded counts (not a re-rounded
        # aggregate) so Other + rows == Total exactly.
        detectable = sum(round(p * s) for _, p, s in chunk)
        share = (
            sum(p * s for _, p, s in chunk) / proxied if proxied else 0.0
        )
        return MimicryCountryRow(0, name, proxied, share, detectable)

    verdicts = tuple(
        ProductVerdict(
            product_key=spec.key,
            category=spec.profile.category.value,
            detectable=entries[spec.key].detectable,
            reasons=entries[spec.key].detection_reasons,
        )
        for spec in surveyed
    )
    return MimicryPrevalence(
        study=study,
        seed=survey.seed,
        browser=survey.browser,
        rows=rows,
        other=aggregate(f"Other ({len(tail)})", tail),
        total=aggregate("Total", shares),
        verdicts=verdicts,
    )
