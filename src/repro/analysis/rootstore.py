"""Root-store auditing.

The paper's conclusion calls for "stronger controls over the root
stores of browsers and operating systems" — every benevolent proxy and
every piece of interception malware alike operates by injecting a root
(Figure 2(c)).  The Netalyzer project (§8) did exactly this kind of
audit for Android.  This module audits client root stores against a
factory baseline, attributes injected roots to interception products
via the issuer classifier, and produces a population-level census.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.classifier import IssuerClassifier
from repro.measure.records import CertSummary
from repro.proxy.profile import ProxyCategory
from repro.x509.model import Certificate
from repro.x509.store import RootStore


@dataclass(frozen=True)
class InjectedRootFinding:
    """One non-factory root found in a client store."""

    fingerprint: str
    subject: str
    issuer_organization: str | None
    category: ProxyCategory
    key_bits: int


@dataclass
class RootStoreCensus:
    """Aggregate results of auditing many client stores."""

    stores_audited: int = 0
    stores_with_injections: int = 0
    findings_by_category: Counter = field(default_factory=Counter)
    findings_by_subject: Counter = field(default_factory=Counter)

    @property
    def injection_rate(self) -> float:
        if not self.stores_audited:
            return 0.0
        return self.stores_with_injections / self.stores_audited


class RootStoreAuditor:
    """Compares client root stores against the factory baseline."""

    def __init__(self, factory: RootStore) -> None:
        self._factory_fingerprints = {root.fingerprint() for root in factory}
        self._classifier = IssuerClassifier()

    def audit(self, store: RootStore) -> list[InjectedRootFinding]:
        """Every root in ``store`` that is not in the factory image."""
        findings = []
        for root in store:
            if root.fingerprint() in self._factory_fingerprints:
                continue
            summary = CertSummary.from_certificate(root)
            findings.append(
                InjectedRootFinding(
                    fingerprint=root.fingerprint(),
                    subject=root.subject.rfc4514() or "(empty subject)",
                    issuer_organization=summary.issuer_org,
                    category=self._classifier.classify(summary),
                    key_bits=root.public_key_bits,
                )
            )
        return findings

    def census(self, stores: list[RootStore]) -> RootStoreCensus:
        """Audit a population of stores and aggregate the findings."""
        census = RootStoreCensus()
        for store in stores:
            census.stores_audited += 1
            findings = self.audit(store)
            if findings:
                census.stores_with_injections += 1
            for finding in findings:
                census.findings_by_category[finding.category] += 1
                census.findings_by_subject[finding.subject] += 1
        return census


def materialize_client_store(
    factory: RootStore,
    product_profile,
    forger,
) -> RootStore:
    """Build the root store of a client running ``product_profile``.

    Root-injecting products add their CA at install time; products
    operating via a rogue public CA (``injects_root=False``) leave the
    store untouched — which is precisely why root-store auditing cannot
    catch them.
    """
    store = factory.copy()
    if product_profile is not None and product_profile.injects_root:
        ca = forger.authority_for(product_profile)
        store.inject(ca.certificate)
    return store
