"""Issuer classification (§5.1, Tables 5/6).

The paper classified proxies by manually identifying the organizations
named in substitute-certificate issuer fields.  The classifier encodes
that workflow: a curated known-product map (the outcome of the
authors' web searches), common-name fallbacks for malware that only
marks the CN, and conservative keyword heuristics — anything
unidentifiable is Unknown, never guessed into a friendly category.
"""

from __future__ import annotations

import re

from repro.data.products import known_issuer_categories
from repro.measure.records import CertSummary
from repro.proxy.profile import ProxyCategory

# Common Names identifying malware families that leave the Issuer
# Organization empty (IopFailZeroAccessCreate is the canonical case).
_KNOWN_MALWARE_CNS = {
    "iopfailzeroaccesscreate": ProxyCategory.MALWARE,
}

_SCHOOL_PATTERN = re.compile(
    r"\b(university|school|college|academy|district|institut)", re.IGNORECASE
)
_TELECOM_PATTERN = re.compile(
    r"\b(telecom|telekom|uplus|carrier|cellular|mobile network)", re.IGNORECASE
)
_FIREWALL_PATTERN = re.compile(
    r"\b(firewall|antivirus|internet security|web ?filter|utm|gateway security)",
    re.IGNORECASE,
)


class IssuerClassifier:
    """Maps issuer fields to the ten proxy categories."""

    def __init__(self, known: dict[str, ProxyCategory] | None = None) -> None:
        self._known = known if known is not None else known_issuer_categories()

    def classify(self, leaf: CertSummary) -> ProxyCategory:
        """Classify one substitute certificate's claimed issuer."""
        org = (leaf.issuer_org or "").strip()
        if org:
            category = self._known.get(org)
            if category is not None:
                return category
            return self._heuristic(org)
        # Null or blank organization: try the CN before giving up.
        cn = (leaf.issuer_cn or "").strip()
        if cn:
            known_cn = _KNOWN_MALWARE_CNS.get(cn.lower())
            if known_cn is not None:
                return known_cn
        return ProxyCategory.UNKNOWN

    def _heuristic(self, org: str) -> ProxyCategory:
        """Keyword classification for organizations not in the catalog.

        Mirrors the paper's manual binning of the long tail: recognisable
        institution types get their category; everything else is Unknown.
        """
        if _SCHOOL_PATTERN.search(org):
            return ProxyCategory.SCHOOL
        if _TELECOM_PATTERN.search(org):
            return ProxyCategory.TELECOM
        if _FIREWALL_PATTERN.search(org):
            return ProxyCategory.BUSINESS_PERSONAL_FIREWALL
        return ProxyCategory.UNKNOWN

    def display_issuer(self, leaf: CertSummary) -> str:
        """Issuer Organization as the paper's Table 4 prints it."""
        org = leaf.issuer_org
        if org is None or not org.strip():
            return "Null"
        return org
