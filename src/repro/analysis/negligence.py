"""Negligent-behaviour analysis (§5.2).

Everything here reads only certificate observables: key sizes versus
the original, signature hashes, issuer claims that cannot be true,
subjects that do not cover the probed hostname, and public keys shared
across unrelated connections.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.measure.database import ReportDatabase
from repro.measure.records import MeasurementRecord
from repro.study.webpki import ORIGINAL_KEY_BITS

# Organizations that are real public certificate authorities; a
# substitute certificate claiming one of these as issuer while failing
# public-root validation is a falsified CA signature claim.
PUBLIC_CA_ORGANIZATIONS = frozenset(
    {"DigiCert Inc", "GeoTrust Inc.", "Cybertrust Inc", "Baltimore"}
)


@dataclass(frozen=True)
class SharedKeyGroup:
    """An issuer whose every substitute certificate carries one key.

    The IopFailZeroAccessCreate signature (§5.1): "each certificate
    contained the same 512-bit public key".  Detection keys on total
    reuse within an issuer group, across many distinct client IPs.
    """

    issuer: str
    public_key_fingerprint: str
    key_bits: int
    connections: int
    distinct_ips: int
    distinct_countries: int


@dataclass
class NegligenceReport:
    """The §5.2 findings over one study's mismatch records."""

    total_mismatches: int = 0
    key_size_histogram: dict[int, int] = field(default_factory=dict)
    downgraded: int = 0  # below the original 2048 bits
    downgraded_1024: int = 0
    downgraded_512: int = 0
    upgraded: int = 0  # stronger than the original
    md5_signed: int = 0
    md5_and_512: int = 0
    sha256_signed: int = 0
    false_ca_claims: int = 0
    false_ca_organizations: Counter = field(default_factory=Counter)
    subject_mismatches: int = 0
    wrong_domain_subjects: Counter = field(default_factory=Counter)
    wildcard_subnet_subjects: int = 0
    shared_key_groups: list[SharedKeyGroup] = field(default_factory=list)

    def fraction(self, count: int) -> float:
        return count / self.total_mismatches if self.total_mismatches else 0.0


def analyze_negligence(
    database: ReportDatabase,
    original_key_bits: int = ORIGINAL_KEY_BITS,
    shared_key_min_connections: int = 5,
) -> NegligenceReport:
    """Run the full §5.2 battery over the mismatch records."""
    report = NegligenceReport()
    records = database.mismatches()
    report.total_mismatches = len(records)
    histogram: Counter[int] = Counter()
    issuer_groups: dict[str, list[MeasurementRecord]] = defaultdict(list)

    for record in records:
        leaf = record.leaf
        histogram[leaf.key_bits] += 1
        if leaf.key_bits < original_key_bits:
            report.downgraded += 1
            if leaf.key_bits == 1024:
                report.downgraded_1024 += 1
            elif leaf.key_bits == 512:
                report.downgraded_512 += 1
        elif leaf.key_bits > original_key_bits:
            report.upgraded += 1

        algorithm = leaf.signature_algorithm
        if algorithm.startswith("md5"):
            report.md5_signed += 1
            if leaf.key_bits == 512:
                report.md5_and_512 += 1
        elif algorithm.startswith("sha256"):
            report.sha256_signed += 1

        if leaf.issuer_org in PUBLIC_CA_ORGANIZATIONS and not record.chain_valid:
            report.false_ca_claims += 1
            report.false_ca_organizations[leaf.issuer_org] += 1

        if not leaf.matches_hostname(record.hostname):
            report.subject_mismatches += 1
            cn = leaf.subject_cn or ""
            if "*" in cn and any(part.isdigit() for part in cn.split(".")):
                report.wildcard_subnet_subjects += 1
            elif cn:
                report.wrong_domain_subjects[cn] += 1

        issuer_label = leaf.issuer_org or leaf.issuer_cn or "(null)"
        issuer_groups[issuer_label].append(record)

    report.key_size_histogram = dict(sorted(histogram.items()))
    for issuer, group in issuer_groups.items():
        if len(group) < shared_key_min_connections:
            continue
        keys = {r.leaf.public_key_fingerprint for r in group}
        if len(keys) != 1:
            continue
        ips = {r.client_ip for r in group}
        if len(ips) < shared_key_min_connections:
            continue  # one install probing repeatedly is not key reuse
        report.shared_key_groups.append(
            SharedKeyGroup(
                issuer=issuer,
                public_key_fingerprint=next(iter(keys)),
                key_bits=group[0].leaf.key_bits,
                connections=len(group),
                distinct_ips=len(ips),
                distinct_countries=len({r.country for r in group if r.country}),
            )
        )
    report.shared_key_groups.sort(key=lambda g: (g.key_bits, -g.connections))
    return report
