"""Table generators for the paper's evaluation artifacts."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.classifier import IssuerClassifier
from repro.audit.scorecard import ProductScorecard
from repro.measure.database import ReportDatabase
from repro.proxy.profile import ProxyCategory
from repro.tls.codec import version_name

# Fixed row order of Tables 5 and 6.
CATEGORY_ORDER: tuple[ProxyCategory, ...] = (
    ProxyCategory.BUSINESS_PERSONAL_FIREWALL,
    ProxyCategory.BUSINESS_FIREWALL,
    ProxyCategory.PERSONAL_FIREWALL,
    ProxyCategory.PARENTAL_CONTROL,
    ProxyCategory.ORGANIZATION,
    ProxyCategory.SCHOOL,
    ProxyCategory.MALWARE,
    ProxyCategory.UNKNOWN,
    ProxyCategory.TELECOM,
    ProxyCategory.CERTIFICATE_AUTHORITY,
)


@dataclass(frozen=True)
class CountryRow:
    """One row of Table 3 / Table 7."""

    rank: int
    country: str
    proxied: int
    total: int

    @property
    def percent(self) -> float:
        return 100.0 * self.proxied / self.total if self.total else 0.0


@dataclass(frozen=True)
class CountryBreakdown:
    """Tables 3/7: top countries, aggregated tail, and totals."""

    rows: tuple[CountryRow, ...]
    other: CountryRow
    total: CountryRow

    def all_rows(self) -> list[CountryRow]:
        return [*self.rows, self.other, self.total]


def country_breakdown(
    database: ReportDatabase, top_n: int = 20, order_by: str = "proxied"
) -> CountryBreakdown:
    """Per-country proxied/total counts.

    Table 3 orders by proxied count; Table 7 by total connections
    (``order_by="total"``).
    """
    if order_by not in ("proxied", "total"):
        raise ValueError("order_by must be 'proxied' or 'total'")
    totals = database.totals_by_country()
    key_index = 0 if order_by == "proxied" else 1
    ordered = sorted(totals.items(), key=lambda item: item[1][key_index], reverse=True)
    top = ordered[:top_n]
    tail = ordered[top_n:]
    rows = tuple(
        CountryRow(rank + 1, country, proxied, total)
        for rank, (country, (proxied, total)) in enumerate(top)
    )
    other = CountryRow(
        0,
        f"Other ({len(tail)})",
        sum(p for _, (p, _) in tail),
        sum(t for _, (_, t) in tail),
    )
    total_row = CountryRow(
        0,
        "Total",
        database.mismatch_count,
        database.total_measurements,
    )
    return CountryBreakdown(rows=rows, other=other, total=total_row)


@dataclass(frozen=True)
class IssuerRow:
    """One row of Table 4."""

    rank: int
    issuer_organization: str
    connections: int


def issuer_organization_table(
    database: ReportDatabase, top_n: int = 20
) -> tuple[list[IssuerRow], IssuerRow]:
    """Table 4: substitute-certificate Issuer Organization values."""
    classifier = IssuerClassifier()
    counts: Counter[str] = Counter()
    for record in database.mismatches():
        counts[classifier.display_issuer(record.leaf)] += 1
    # Ties break by name, not Counter insertion order, so the table is
    # identical whether records arrive in merge order or are read back
    # from on-disk segments (country-shard order).
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    top = ordered[:top_n]
    tail = ordered[top_n:]
    rows = [
        IssuerRow(rank + 1, issuer, count) for rank, (issuer, count) in enumerate(top)
    ]
    other = IssuerRow(0, f"Other ({len(tail)})", sum(c for _, c in tail))
    return rows, other


@dataclass(frozen=True)
class ClassificationRow:
    """One row of Table 5 / Table 6."""

    category: ProxyCategory
    connections: int
    percent: float


def classification_table(database: ReportDatabase) -> list[ClassificationRow]:
    """Tables 5/6: claimed-issuer classification of proxied connections."""
    classifier = IssuerClassifier()
    counts: Counter[ProxyCategory] = Counter()
    for record in database.mismatches():
        counts[classifier.classify(record.leaf)] += 1
    total = sum(counts.values())
    return [
        ClassificationRow(
            category=category,
            connections=counts.get(category, 0),
            percent=100.0 * counts.get(category, 0) / total if total else 0.0,
        )
        for category in CATEGORY_ORDER
    ]


@dataclass(frozen=True)
class HostTypeRow:
    """One row of Table 8."""

    host_type: str
    connections: int
    proxied: int

    @property
    def percent_proxied(self) -> float:
        return 100.0 * self.proxied / self.connections if self.connections else 0.0


def host_type_table(database: ReportDatabase) -> list[HostTypeRow]:
    """Table 8: proxied-connection breakdown by host type."""
    order = ("Popular", "Business", "Pornographic", "Authors'")
    totals = database.totals_by_host_type()
    rows = []
    for host_type in order:
        proxied, total = totals.get(host_type, (0, 0))
        rows.append(HostTypeRow(host_type, total, proxied))
    for host_type, (proxied, total) in sorted(totals.items()):
        if host_type not in order:
            rows.append(HostTypeRow(host_type, total, proxied))
    return rows


@dataclass(frozen=True)
class AuditGradeRow:
    """One row of the appliance-audit grade table (Waked et al. style)."""

    rank: int
    product_key: str
    category: str
    grade: str
    score_percent: float
    blocked: int
    passed_through: int
    masked: int
    errors: int
    functional: bool
    client_score: float = 0.0
    client_max_score: float = 0.0
    server_score: float = 0.0
    server_max_score: float = 0.0


def audit_grade_table(scorecards: Sequence[ProductScorecard]) -> list[AuditGradeRow]:
    """Rank scorecards best-first into the aggregate grade table."""
    ordered = sorted(
        scorecards, key=lambda card: (-card.fraction, card.product_key)
    )
    return [
        AuditGradeRow(
            rank=rank + 1,
            product_key=card.product_key,
            category=card.category,
            grade=card.grade,
            score_percent=100.0 * card.fraction,
            blocked=card.blocked,
            passed_through=card.passed_through,
            masked=card.masked,
            errors=card.errors,
            functional=card.functional,
            client_score=card.client_score,
            client_max_score=card.client_max_score,
            server_score=card.server_score,
            server_max_score=card.server_max_score,
        )
        for rank, card in enumerate(ordered)
    ]


def _version_echo_label(
    offered: tuple[int, int], echoed: tuple[int, int] | None
) -> str:
    """The shared ``echoed`` / ``downgraded X -> Y`` table label."""
    if echoed == offered:
        return "echoed"
    return (
        f"downgraded {version_name(offered)} -> "
        f"{version_name(echoed) if echoed else 'nothing'}"
    )


@dataclass(frozen=True)
class ClientLegRow:
    """One row of the per-product client-leg divergence table."""

    product_key: str
    browser: str
    mimicry: str  # "match" or the diverging fingerprint dimensions
    observed_ja3: str
    key_bits: str
    hash_name: str
    version_echo: str
    points: float
    max_points: float


def client_leg_table(scorecards: Sequence[ProductScorecard]) -> list[ClientLegRow]:
    """The per-product client-leg divergence table, catalog order."""
    rows: list[ClientLegRow] = []
    for card in scorecards:
        observation = card.client_leg
        if observation is None:
            continue
        if observation.error:
            rows.append(
                ClientLegRow(
                    product_key=card.product_key,
                    browser=observation.browser,
                    mimicry="error",
                    observed_ja3="-",
                    key_bits="-",
                    hash_name="-",
                    version_echo="-",
                    points=card.client_score,
                    max_points=card.client_max_score,
                )
            )
            continue
        if observation.divergent_fields:
            mimicry = "diverges: " + ", ".join(observation.divergent_fields)
        else:
            mimicry = "match"
        version_echo = _version_echo_label(
            observation.offered_version, observation.echoed_version
        )
        rows.append(
            ClientLegRow(
                product_key=card.product_key,
                browser=observation.browser,
                mimicry=mimicry,
                observed_ja3=observation.observed_ja3 or "-",
                key_bits=str(observation.substitute_key_bits or "-"),
                hash_name=observation.substitute_hash or "unknown",
                version_echo=version_echo,
                points=card.client_score,
                max_points=card.client_max_score,
            )
        )
    return rows


@dataclass(frozen=True)
class ServerLegRow:
    """One row of the per-product server-leg divergence table."""

    product_key: str
    browser: str
    server_hello: str  # "match" or the diverging JA3S dimensions
    cipher: str
    version_echo: str
    compression: str
    session: str
    points: float
    max_points: float


def server_leg_table(scorecards: Sequence[ProductScorecard]) -> list[ServerLegRow]:
    """The per-product server-leg divergence table, catalog order."""
    rows: list[ServerLegRow] = []
    for card in scorecards:
        observation = card.server_leg
        if observation is None:
            continue
        if observation.error:
            rows.append(
                ServerLegRow(
                    product_key=card.product_key,
                    browser=observation.browser,
                    server_hello="error",
                    cipher="-",
                    version_echo="-",
                    compression="-",
                    session="-",
                    points=card.server_score,
                    max_points=card.server_max_score,
                )
            )
            continue
        if observation.divergent_fields:
            server_hello = "diverges: " + ", ".join(observation.divergent_fields)
        else:
            server_hello = "match"
        version_echo = _version_echo_label(
            observation.offered_version, observation.echoed_version
        )
        chosen = observation.chosen_cipher
        rows.append(
            ServerLegRow(
                product_key=card.product_key,
                browser=observation.browser,
                server_hello=server_hello,
                cipher=f"{chosen:#06x}" if chosen is not None else "-",
                version_echo=version_echo,
                compression=(
                    "null"
                    if not observation.compression_method
                    else str(observation.compression_method)
                ),
                # The observation records only the length: a granted id
                # may be freshly minted or echoed, both resumable.
                session=("granted" if observation.session_id_length else "none"),
                points=card.server_score,
                max_points=card.server_max_score,
            )
        )
    return rows


def heatmap_series(database: ReportDatabase) -> dict[str, float]:
    """Figure 7: per-country proxy rate (fraction, 0..~0.12)."""
    return {
        country: proxied / total
        for country, (proxied, total) in database.totals_by_country().items()
        if total > 0
    }
