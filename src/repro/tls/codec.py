"""TLS record and handshake message codec.

Implements the TLS 1.0–1.3 wire format for the messages the probe
exchanges in the clear: records (RFC 5246 §6.2, RFC 8446 §5.1),
ClientHello with the server_name extension (RFC 6066), ServerHello,
Certificate and Alert.  Everything else in TLS happens after the point
at which the probe aborts, so it is deliberately out of scope.

TLS 1.3 (RFC 8446) negotiates the real version inside the
supported_versions extension while freezing the legacy version fields
at 0x0303, so this codec stays a *single* lossless hello parser: 1.3
semantics live in helpers over the extension list
(:func:`parse_supported_versions_body`, :func:`parse_key_share_groups`,
:func:`parse_alpn_body`) and in the version-aware properties
``ClientHello.max_offered_version`` / ``ServerHello.selected_version``.
GREASE values (RFC 8701) are plain integers to the codec and survive
parse → re-encode verbatim; only :mod:`repro.tls.fingerprint` filters
them, per the JA3 spec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

# Record content types.
CONTENT_CHANGE_CIPHER_SPEC = 20
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION_DATA = 23
CONTENT_HEARTBEAT = 24

# Every content type a TLS 1.0–1.2 peer can legitimately put on the
# wire.  Types in this set that a consumer does not handle (CCS,
# heartbeat) are skipped, not fatal; anything outside it cannot be a
# TLS record header at all and aborts the connection.
KNOWN_CONTENT_TYPES = frozenset(
    {
        CONTENT_CHANGE_CIPHER_SPEC,
        CONTENT_ALERT,
        CONTENT_HANDSHAKE,
        CONTENT_APPLICATION_DATA,
        CONTENT_HEARTBEAT,
    }
)

# Handshake message types.
HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_CERTIFICATE = 11
HS_SERVER_HELLO_DONE = 14

# Protocol versions (major, minor).
SSL_3_0 = (3, 0)
TLS_1_0 = (3, 1)
TLS_1_1 = (3, 2)
TLS_1_2 = (3, 3)
TLS_1_3 = (3, 4)

VERSION_NAMES = {
    SSL_3_0: "SSLv3",
    TLS_1_0: "TLSv1.0",
    TLS_1_1: "TLSv1.1",
    TLS_1_2: "TLSv1.2",
    TLS_1_3: "TLSv1.3",
}


def version_name(version: tuple[int, int]) -> str:
    """Human-readable protocol version, e.g. ``TLSv1.2``."""
    return VERSION_NAMES.get(version, f"({version[0]},{version[1]})")

# Extension types.
EXT_SERVER_NAME = 0
EXT_STATUS_REQUEST = 5
EXT_SUPPORTED_GROUPS = 10  # "elliptic_curves" in the 2014-era RFCs
EXT_EC_POINT_FORMATS = 11
EXT_SIGNATURE_ALGORITHMS = 13
EXT_HEARTBEAT = 15
EXT_ALPN = 16
EXT_PADDING = 21
EXT_SESSION_TICKET = 35
EXT_PRE_SHARED_KEY = 41
EXT_SUPPORTED_VERSIONS = 43
EXT_PSK_KEY_EXCHANGE_MODES = 45
EXT_KEY_SHARE = 51
EXT_NEXT_PROTOCOL_NEGOTIATION = 13172
EXT_CHANNEL_ID = 30032
EXT_RENEGOTIATION_INFO = 0xFF01

# GREASE (RFC 8701): reserved values clients sprinkle into cipher,
# group, version and extension lists to keep peers honest about
# ignoring unknowns.  The codec treats them as ordinary integers —
# they round-trip losslessly — and negotiation/fingerprint layers
# filter them with :func:`is_grease`.
GREASE_VALUES = frozenset((v << 8) | v for v in range(0x0A, 0xFB, 0x10))


def is_grease(value: int) -> bool:
    """True for RFC 8701 GREASE values (0x0A0A, 0x1A1A, … 0xFAFA)."""
    return value in GREASE_VALUES


# TLS_FALLBACK_SCSV (RFC 7507): a client retrying a handshake at a
# downgraded version appends this signalling suite; a server whose
# maximum version exceeds the retried offer answers with a fatal
# inappropriate_fallback alert instead of accepting the downgrade.
TLS_FALLBACK_SCSV = 0x5600

# RFC 8446 §4.1.3 downgrade sentinels: a TLS 1.3-capable server that
# negotiates an older version overwrites the last 8 bytes of its
# server random with one of these, so a 1.3-capable client can detect
# a downgrade even when a middlebox strips supported_versions.
DOWNGRADE_SENTINEL_TLS12 = b"DOWNGRD\x01"  # negotiated TLS 1.2
DOWNGRADE_SENTINEL_TLS11 = b"DOWNGRD\x00"  # negotiated TLS 1.1 or below


def stamp_downgrade_sentinel(
    server_random: bytes, negotiated: tuple[int, int]
) -> bytes:
    """Overwrite the random's last 8 bytes with the RFC 8446 sentinel."""
    sentinel = (
        DOWNGRADE_SENTINEL_TLS12
        if negotiated >= TLS_1_2
        else DOWNGRADE_SENTINEL_TLS11
    )
    return server_random[:24] + sentinel


def has_downgrade_sentinel(server_random: bytes) -> bool:
    """True when the random carries either RFC 8446 downgrade sentinel."""
    tail = server_random[-8:]
    return tail in (DOWNGRADE_SENTINEL_TLS12, DOWNGRADE_SENTINEL_TLS11)


def encode_sni_extension_body(server_name: str) -> bytes:
    """The server_name extension body for one host_name entry."""
    name_bytes = server_name.encode("ascii")
    entry = b"\x00" + _encode_vector(name_bytes, 2)  # host_name(0)
    return _encode_vector(entry, 2)


def parse_sni_extension_body(ext_body: bytes) -> str | None:
    """Best-effort host_name from a server_name extension body.

    Malformed SNI must not kill the parse: the hello is preserved
    verbatim either way, so a mangled extension simply yields no name.
    """
    try:
        sni = _Reader(ext_body)
        entries = _Reader(sni.take_vector(2))
        while entries.remaining >= 3:
            name_type = entries.take_int(1)
            name = entries.take_vector(2)
            if name_type == 0:
                return name.decode("ascii", errors="replace")
    except TlsError:
        pass
    return None

def encode_supported_versions_body(versions: tuple[tuple[int, int], ...]) -> bytes:
    """The ClientHello supported_versions body: a 1-byte-length list."""
    packed = b"".join(bytes(version) for version in versions)
    return _encode_vector(packed, 1)


def parse_supported_versions_body(ext_body: bytes) -> tuple[tuple[int, int], ...]:
    """Best-effort version list from a ClientHello supported_versions body."""
    try:
        reader = _Reader(ext_body)
        packed = reader.take_vector(1)
        if len(packed) % 2:
            return ()
        return tuple(
            (packed[i], packed[i + 1]) for i in range(0, len(packed), 2)
        )
    except TlsError:
        return ()


def encode_selected_version_body(version: tuple[int, int]) -> bytes:
    """The ServerHello supported_versions body: the one selected version."""
    return bytes(version)


def parse_selected_version_body(ext_body: bytes) -> tuple[int, int] | None:
    """The selected version from a ServerHello supported_versions body."""
    if len(ext_body) != 2:
        return None
    return (ext_body[0], ext_body[1])


def encode_key_share_body(entries: tuple[tuple[int, bytes], ...]) -> bytes:
    """The ClientHello key_share body: (group, key_exchange) entries."""
    packed = b"".join(
        struct.pack(">H", group) + _encode_vector(key, 2) for group, key in entries
    )
    return _encode_vector(packed, 2)


def encode_server_key_share_body(group: int, key: bytes) -> bytes:
    """The ServerHello key_share body: the single selected entry."""
    return struct.pack(">H", group) + _encode_vector(key, 2)


def parse_key_share_groups(ext_body: bytes) -> tuple[int, ...]:
    """Best-effort group ids from a ClientHello key_share body."""
    try:
        entries = _Reader(_Reader(ext_body).take_vector(2))
        groups = []
        while entries.remaining >= 4:
            groups.append(entries.take_int(2))
            entries.take_vector(2)
        return tuple(groups)
    except TlsError:
        return ()


def encode_alpn_body(protocols: tuple[str, ...]) -> bytes:
    """An ALPN body: a protocol-name list (client offer or server pick)."""
    packed = b"".join(
        _encode_vector(protocol.encode("ascii"), 1) for protocol in protocols
    )
    return _encode_vector(packed, 2)


def parse_alpn_body(ext_body: bytes) -> tuple[str, ...]:
    """Best-effort protocol names from an ALPN extension body."""
    try:
        names = _Reader(_Reader(ext_body).take_vector(2))
        protocols = []
        while names.remaining:
            protocols.append(
                names.take_vector(1).decode("ascii", errors="replace")
            )
        return tuple(protocols)
    except TlsError:
        return ()


# Cipher suites a 2014-era client should refuse: NULL, export-grade
# and RC4/MD5 constructions (values from the TLS registry).  The audit
# battery's downgraded origins negotiate these.
WEAK_CIPHER_SUITES = frozenset(
    {
        0x0000,  # TLS_NULL_WITH_NULL_NULL
        0x0001,  # TLS_RSA_WITH_NULL_MD5
        0x0002,  # TLS_RSA_WITH_NULL_SHA
        0x0003,  # TLS_RSA_EXPORT_WITH_RC4_40_MD5
        0x0004,  # TLS_RSA_WITH_RC4_128_MD5
        0x0008,  # TLS_RSA_EXPORT_WITH_DES40_CBC_SHA
    }
)

# A realistic cipher suite offer (values from the TLS registry).
DEFAULT_CIPHER_SUITES = (
    0x002F,  # TLS_RSA_WITH_AES_128_CBC_SHA
    0x0035,  # TLS_RSA_WITH_AES_256_CBC_SHA
    0x000A,  # TLS_RSA_WITH_3DES_EDE_CBC_SHA
    0xC013,  # TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
    0xC014,  # TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA
)


class TlsError(ValueError):
    """Raised on malformed TLS framing or handshake bodies."""


@dataclass(frozen=True)
class Record:
    """A TLS record: content type, version, opaque payload."""

    content_type: int
    version: tuple[int, int]
    payload: bytes

    def encode(self) -> bytes:
        if len(self.payload) > 0x4000:
            raise TlsError("record payload exceeds 2^14 bytes")
        return (
            struct.pack(
                ">BBBH",
                self.content_type,
                self.version[0],
                self.version[1],
                len(self.payload),
            )
            + self.payload
        )


def decode_records(data: bytes) -> tuple[list[Record], bytes]:
    """Parse complete records from ``data``; return (records, leftover)."""
    records = []
    offset = 0
    while len(data) - offset >= 5:
        content_type, major, minor, length = struct.unpack_from(">BBBH", data, offset)
        if content_type not in KNOWN_CONTENT_TYPES:
            # A realistic peer may interleave ChangeCipherSpec or
            # heartbeats (handled above by inclusion); a header byte
            # outside the TLS range means the stream is not TLS.
            raise TlsError(f"unknown record content type {content_type}")
        if major != 3 or minor > 4:
            # Every deployed TLS record version is 3.0–3.4 on the wire,
            # and TLS 1.3 *freezes* the field at 0x0303 for all
            # post-hello records (RFC 8446 §5.1) — so 0x0303 atop a 1.3
            # negotiation is legitimate, not garbage, while a header
            # version outside the family means the stream is not TLS.
            raise TlsError(f"implausible record version ({major},{minor})")
        if len(data) - offset - 5 < length:
            break  # incomplete record; caller buffers
        payload = data[offset + 5 : offset + 5 + length]
        records.append(Record(content_type, (major, minor), payload))
        offset += 5 + length
    return records, data[offset:]


@dataclass(frozen=True)
class HandshakeMessage:
    """A raw handshake message: type byte plus body."""

    msg_type: int
    body: bytes

    def encode(self) -> bytes:
        if len(self.body) > 0xFFFFFF:
            raise TlsError("handshake body too large")
        return bytes([self.msg_type]) + len(self.body).to_bytes(3, "big") + self.body


def decode_handshakes(payload: bytes) -> tuple[list[HandshakeMessage], bytes]:
    """Parse complete handshake messages; return (messages, leftover)."""
    messages = []
    offset = 0
    while len(payload) - offset >= 4:
        msg_type = payload[offset]
        length = int.from_bytes(payload[offset + 1 : offset + 4], "big")
        if len(payload) - offset - 4 < length:
            break
        messages.append(
            HandshakeMessage(msg_type, payload[offset + 4 : offset + 4 + length])
        )
        offset += 4 + length
    return messages, payload[offset:]


def encode_handshake_record(
    message: "ClientHello | ServerHello | Certificate | HandshakeMessage",
    version: tuple[int, int] = TLS_1_0,
) -> bytes:
    """Wrap one handshake message in a single record."""
    if not isinstance(message, HandshakeMessage):
        message = message.to_handshake()
    return Record(CONTENT_HANDSHAKE, version, message.encode()).encode()


def encode_server_flight(
    server_hello: "ServerHello",
    messages: "list[Certificate | HandshakeMessage]",
    offered_version: tuple[int, int],
) -> bytes:
    """Frame a ServerHello-led flight for the wire.

    The ServerHello travels before negotiation completes, so its
    record carries the record-layer version the client offered; the
    records after it speak the version the ServerHello negotiated,
    chunked at the 2^14 record limit (long chains exceed one record).
    Both the genuine-origin server and the proxy's substitute leg
    frame their flights here, so the two can never drift apart — the
    server-leg fingerprint comparison depends on them agreeing on the
    wire rules.
    """
    flight = encode_handshake_record(server_hello, version=offered_version)
    payload = b"".join(
        (
            message if isinstance(message, HandshakeMessage)
            else message.to_handshake()
        ).encode()
        for message in messages
    )
    for start in range(0, len(payload), 0x4000):
        flight += Record(
            CONTENT_HANDSHAKE,
            server_hello.version,
            payload[start : start + 0x4000],
        ).encode()
    return flight


def _encode_vector(data: bytes, length_bytes: int) -> bytes:
    return len(data).to_bytes(length_bytes, "big") + data


class _Reader:
    """Sequential reader with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def finish(self, what: str) -> None:
        """Assert exhaustion: trailing garbage after a parse is fatal.

        Every ``from_body`` parser calls this instead of silently
        ignoring whatever follows the fields it understands — a parser
        that discards trailing bytes cannot be lossless, and losing
        bytes is how the original ``ServerHello`` codec dropped the
        entire extensions block.
        """
        if self.remaining:
            raise TlsError(f"{self.remaining} trailing bytes after {what}")

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise TlsError("truncated handshake body")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def take_int(self, count: int) -> int:
        return int.from_bytes(self.take(count), "big")

    def take_vector(self, length_bytes: int) -> bytes:
        return self.take(self.take_int(length_bytes))

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset


@dataclass(frozen=True)
class ClientHello:
    """A ClientHello, preserved losslessly through parse → re-encode.

    ``extensions`` is the full extension list — ``(type, raw body)``
    pairs in wire order, unknown types included verbatim.  ``None``
    means the hello carries no extensions block at all (distinct from
    an empty block, which old SSLv3 stacks never sent but some 2014
    clients did).  Constructing with ``server_name`` and no explicit
    extension list synthesises the SNI extension, which is all the
    probe's historical hello ever carried.

    Losslessness is what makes ClientHello *fingerprintable*: a proxy
    that replays the client's offer upstream must reproduce every
    extension byte, and :mod:`repro.tls.fingerprint` must see exactly
    what was on the wire.
    """

    client_random: bytes
    server_name: str | None = None
    version: tuple[int, int] = TLS_1_2
    cipher_suites: tuple[int, ...] = DEFAULT_CIPHER_SUITES
    session_id: bytes = b""
    compression_methods: tuple[int, ...] = (0,)
    extensions: tuple[tuple[int, bytes], ...] | None = None

    def __post_init__(self) -> None:
        if len(self.client_random) != 32:
            raise TlsError("client_random must be 32 bytes")
        if self.extensions is None and self.server_name is not None:
            object.__setattr__(
                self,
                "extensions",
                ((EXT_SERVER_NAME, encode_sni_extension_body(self.server_name)),),
            )

    @property
    def extension_types(self) -> tuple[int, ...]:
        """Extension types in wire order (empty when no block)."""
        return tuple(ext_type for ext_type, _ in (self.extensions or ()))

    def extension_body(self, ext_type: int) -> bytes | None:
        """The raw body of the first extension of ``ext_type``, if any."""
        for candidate, body in self.extensions or ():
            if candidate == ext_type:
                return body
        return None

    @property
    def offered_versions(self) -> tuple[tuple[int, int], ...]:
        """Every protocol version this hello offers, GREASE filtered.

        TLS 1.3 clients freeze the legacy version field at 0x0303 and
        list their real offer in supported_versions (RFC 8446 §4.2.1);
        pre-1.3 clients offer exactly the legacy field.
        """
        body = self.extension_body(EXT_SUPPORTED_VERSIONS)
        if body is not None:
            versions = tuple(
                version
                for version in parse_supported_versions_body(body)
                if not is_grease((version[0] << 8) | version[1])
            )
            if versions:
                return versions
        return (self.version,)

    @property
    def max_offered_version(self) -> tuple[int, int]:
        """The highest version this hello offers (supported_versions aware)."""
        return max(self.offered_versions)

    @property
    def alpn_protocols(self) -> tuple[str, ...]:
        """The ALPN protocols this hello offers (empty when none)."""
        body = self.extension_body(EXT_ALPN)
        return parse_alpn_body(body) if body is not None else ()

    def to_handshake(self) -> HandshakeMessage:
        body = bytes(self.version)
        body += self.client_random
        body += _encode_vector(self.session_id, 1)
        suites = b"".join(struct.pack(">H", s) for s in self.cipher_suites)
        body += _encode_vector(suites, 2)
        body += _encode_vector(bytes(self.compression_methods), 1)
        if self.extensions is not None:
            encoded = b"".join(
                struct.pack(">H", ext_type) + _encode_vector(ext_body, 2)
                for ext_type, ext_body in self.extensions
            )
            body += _encode_vector(encoded, 2)
        return HandshakeMessage(HS_CLIENT_HELLO, body)

    @classmethod
    def from_body(cls, body: bytes) -> "ClientHello":
        reader = _Reader(body)
        version = tuple(reader.take(2))
        client_random = reader.take(32)
        session_id = reader.take_vector(1)
        suites_raw = reader.take_vector(2)
        if len(suites_raw) % 2:
            raise TlsError("odd cipher suite vector length")
        suites = tuple(
            struct.unpack(">H", suites_raw[i : i + 2])[0]
            for i in range(0, len(suites_raw), 2)
        )
        compression = tuple(reader.take_vector(1))
        extensions: tuple[tuple[int, bytes], ...] | None = None
        server_name = None
        if reader.remaining:
            ext_reader = _Reader(reader.take_vector(2))
            parsed: list[tuple[int, bytes]] = []
            while ext_reader.remaining:
                ext_type = ext_reader.take_int(2)
                ext_body = ext_reader.take_vector(2)
                parsed.append((ext_type, ext_body))
                if ext_type == EXT_SERVER_NAME and server_name is None:
                    server_name = parse_sni_extension_body(ext_body)
            extensions = tuple(parsed)
        reader.finish("ClientHello body")
        return cls(
            client_random=client_random,
            server_name=server_name,
            version=version,  # type: ignore[arg-type]
            cipher_suites=suites,
            session_id=session_id,
            compression_methods=compression,
            extensions=extensions,
        )


@dataclass(frozen=True)
class ServerHello:
    """A ServerHello, preserved losslessly through parse → re-encode.

    Mirrors :class:`ClientHello`: ``extensions`` is the full extension
    list — ``(type, raw body)`` pairs in wire order, unknown types
    included verbatim — and ``None`` means no extensions block at all
    (distinct from an empty block).  The compression byte the server
    actually chose is preserved rather than assumed null, so a parsed
    hello re-encodes to the exact wire bytes.

    Losslessness is what makes the *server* leg fingerprintable: the
    substitute ServerHello an interception product serves back to the
    client carries the product's chosen cipher, version echo and
    extension set — the JA3S-style dimensions
    :mod:`repro.tls.fingerprint` grades against the origin's expected
    response.
    """

    server_random: bytes
    cipher_suite: int
    version: tuple[int, int] = TLS_1_2
    session_id: bytes = b""
    compression_method: int = 0
    extensions: tuple[tuple[int, bytes], ...] | None = None

    def __post_init__(self) -> None:
        if len(self.server_random) != 32:
            raise TlsError("server_random must be 32 bytes")

    @property
    def extension_types(self) -> tuple[int, ...]:
        """Extension types in wire order (empty when no block)."""
        return tuple(ext_type for ext_type, _ in (self.extensions or ()))

    def extension_body(self, ext_type: int) -> bytes | None:
        """The raw body of the first extension of ``ext_type``, if any."""
        for candidate, body in self.extensions or ():
            if candidate == ext_type:
                return body
        return None

    @property
    def selected_version(self) -> tuple[int, int]:
        """The version this hello actually negotiated.

        A TLS 1.3 ServerHello keeps its legacy version field at 0x0303
        and names the real selection in supported_versions (RFC 8446
        §4.1.3); pre-1.3 servers select via the legacy field.
        """
        body = self.extension_body(EXT_SUPPORTED_VERSIONS)
        if body is not None:
            selected = parse_selected_version_body(body)
            if selected is not None:
                return selected
        return self.version

    @property
    def alpn_protocol(self) -> str | None:
        """The ALPN protocol this hello selected, if any."""
        body = self.extension_body(EXT_ALPN)
        if body is None:
            return None
        protocols = parse_alpn_body(body)
        return protocols[0] if protocols else None

    def to_handshake(self) -> HandshakeMessage:
        body = bytes(self.version)
        body += self.server_random
        body += _encode_vector(self.session_id, 1)
        body += struct.pack(">H", self.cipher_suite)
        body += bytes([self.compression_method])
        if self.extensions is not None:
            encoded = b"".join(
                struct.pack(">H", ext_type) + _encode_vector(ext_body, 2)
                for ext_type, ext_body in self.extensions
            )
            body += _encode_vector(encoded, 2)
        return HandshakeMessage(HS_SERVER_HELLO, body)

    @classmethod
    def from_body(cls, body: bytes) -> "ServerHello":
        reader = _Reader(body)
        version = tuple(reader.take(2))
        server_random = reader.take(32)
        session_id = reader.take_vector(1)
        cipher_suite = reader.take_int(2)
        compression_method = reader.take_int(1)
        extensions: tuple[tuple[int, bytes], ...] | None = None
        if reader.remaining:
            ext_reader = _Reader(reader.take_vector(2))
            parsed: list[tuple[int, bytes]] = []
            while ext_reader.remaining:
                parsed.append((ext_reader.take_int(2), ext_reader.take_vector(2)))
            extensions = tuple(parsed)
        reader.finish("ServerHello body")
        return cls(
            server_random=server_random,
            cipher_suite=cipher_suite,
            version=version,  # type: ignore[arg-type]
            session_id=session_id,
            compression_method=compression_method,
            extensions=extensions,
        )


@dataclass(frozen=True)
class Certificate:
    """The Certificate handshake message: a list of DER certificates."""

    der_chain: tuple[bytes, ...] = field(default_factory=tuple)

    def to_handshake(self) -> HandshakeMessage:
        entries = b"".join(_encode_vector(der, 3) for der in self.der_chain)
        return HandshakeMessage(HS_CERTIFICATE, _encode_vector(entries, 3))

    @classmethod
    def from_body(cls, body: bytes) -> "Certificate":
        reader = _Reader(body)
        entries = _Reader(reader.take_vector(3))
        reader.finish("Certificate body")
        chain = []
        while entries.remaining:
            chain.append(entries.take_vector(3))
        return cls(tuple(chain))


@dataclass(frozen=True)
class Alert:
    """A TLS alert (level 1=warning, 2=fatal)."""

    level: int
    description: int

    def encode_record(self, version: tuple[int, int] = TLS_1_0) -> bytes:
        return Record(
            CONTENT_ALERT, version, bytes([self.level, self.description])
        ).encode()

    @classmethod
    def from_payload(cls, payload: bytes) -> "Alert":
        if len(payload) != 2:
            raise TlsError("alert payload must be 2 bytes")
        return cls(payload[0], payload[1])


# Well-known alert descriptions used by the simulation.
ALERT_CLOSE_NOTIFY = 0
ALERT_HANDSHAKE_FAILURE = 40
ALERT_BAD_CERTIFICATE = 42
ALERT_INAPPROPRIATE_FALLBACK = 86
ALERT_UNRECOGNIZED_NAME = 112


def decode_handshake(message: HandshakeMessage):
    """Decode a raw handshake message into its typed form."""
    if message.msg_type == HS_CLIENT_HELLO:
        return ClientHello.from_body(message.body)
    if message.msg_type == HS_SERVER_HELLO:
        return ServerHello.from_body(message.body)
    if message.msg_type == HS_CERTIFICATE:
        return Certificate.from_body(message.body)
    return message
