"""TLS certificate server.

A netsim protocol that performs the server half of the probe's partial
handshake: on ClientHello it answers with ServerHello, Certificate and
ServerHelloDone.  It can hold multiple chains keyed by SNI name (a real
server farm behind one IP), falling back to a default chain.
"""

from __future__ import annotations

import random

from repro.netsim.network import Protocol, StreamSocket
from repro.tls import codec
from repro.tls.codec import (
    Alert,
    Certificate as CertificateMessage,
    ClientHello,
    HandshakeMessage,
    Record,
    ServerHello,
    TlsError,
)
from repro.tls.fingerprint import (
    TLS13_CIPHER_SUITES,
    build_modern_server_extensions,
    negotiate_origin_cipher,
    origin_alpn_selection,
)
from repro.x509.model import Certificate


class TlsCertServer(Protocol):
    """Serves a certificate chain to anyone that says ClientHello.

    The handshake intentionally stops after ServerHelloDone: the probe
    aborts there, and no measured behaviour depends on the key
    exchange.

    With ``max_version`` raised to TLS 1.3 the origin answers a
    1.3-offering client the modern way: legacy version frozen at
    0x0303, real version in supported_versions, key_share/ALPN/ticket
    answers via :func:`build_modern_server_extensions`, and RFC 7507
    fallback protection (a TLS_FALLBACK_SCSV offer below the origin's
    ceiling draws ``inappropriate_fallback``).
    """

    def __init__(
        self,
        chain: list[Certificate],
        sni_chains: dict[str, list[Certificate]] | None = None,
        cipher_suite: int = 0x002F,
        rng: random.Random | None = None,
        max_version: tuple[int, int] = codec.TLS_1_2,
    ) -> None:
        if not chain:
            raise ValueError("server needs at least one certificate")
        self.chain = chain
        self.sni_chains = sni_chains or {}
        self.cipher_suite = cipher_suite
        # Highest protocol version this origin speaks; older (or
        # downgraded) servers clamp the client's offer to it, which is
        # how the audit battery models protocol-downgrade origins.
        self.max_version = max_version
        self._rng = rng or random.Random(0x5EED)
        self._buffer = b""
        self.handshakes_served = 0

    def factory(self) -> "TlsCertServer":
        """Return a fresh per-connection protocol sharing this config."""
        clone = TlsCertServer(
            self.chain, self.sni_chains, self.cipher_suite, self._rng,
            self.max_version,
        )
        clone._parent = self  # type: ignore[attr-defined]
        return clone

    def chain_for(self, server_name: str | None) -> list[Certificate]:
        if server_name and server_name in self.sni_chains:
            return self.sni_chains[server_name]
        return self.chain

    # -- Protocol callbacks ----------------------------------------------

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        self._buffer += data
        try:
            records, self._buffer = codec.decode_records(self._buffer)
        except TlsError:
            sock.send(Alert(2, codec.ALERT_HANDSHAKE_FAILURE).encode_record())
            sock.close()
            return
        for record in records:
            if record.content_type == codec.CONTENT_ALERT:
                sock.close()
                return
            if record.content_type != codec.CONTENT_HANDSHAKE:
                continue
            self._handle_handshake_payload(sock, record)

    def _handle_handshake_payload(self, sock: StreamSocket, record: Record) -> None:
        try:
            messages, _ = codec.decode_handshakes(record.payload)
        except TlsError:
            sock.send(Alert(2, codec.ALERT_HANDSHAKE_FAILURE).encode_record())
            sock.close()
            return
        for message in messages:
            if message.msg_type == codec.HS_CLIENT_HELLO:
                self._answer_client_hello(sock, ClientHello.from_body(message.body))

    def _answer_client_hello(self, sock: StreamSocket, hello: ClientHello) -> None:
        offered_max = hello.max_offered_version
        if codec.TLS_FALLBACK_SCSV in hello.cipher_suites and (
            offered_max < min(self.max_version, codec.TLS_1_2)
        ):
            # RFC 7507: the client signalled a fallback retry but this
            # origin speaks higher than it now offers — refuse.
            sock.send(
                Alert(2, codec.ALERT_INAPPROPRIATE_FALLBACK).encode_record()
            )
            sock.close()
            return
        server_random = self._rng.getrandbits(256).to_bytes(32, "big")
        if self.max_version >= codec.TLS_1_3 and offered_max >= codec.TLS_1_3:
            cipher = (
                self.cipher_suite
                if self.cipher_suite in TLS13_CIPHER_SUITES
                else negotiate_origin_cipher(hello, tls13=True)
            )
            server_hello = ServerHello(
                server_random=server_random,
                cipher_suite=cipher,
                version=codec.TLS_1_2,  # frozen legacy field (RFC 8446)
                session_id=hello.session_id,
                extensions=build_modern_server_extensions(
                    hello,
                    origin_alpn_selection(hello),
                    grant_session_ticket=True,
                ),
            )
        else:
            version = min(hello.version, self.max_version)
            server_hello = ServerHello(
                server_random=server_random,
                cipher_suite=self.cipher_suite,
                version=version,
            )
        chain = self.chain_for(hello.server_name)
        certificate = CertificateMessage(tuple(c.encode() for c in chain))
        done = HandshakeMessage(codec.HS_SERVER_HELLO_DONE, b"")
        sock.send(
            codec.encode_server_flight(
                server_hello, [certificate, done], offered_version=hello.version
            )
        )
        self.handshakes_served += 1
        parent = getattr(self, "_parent", None)
        if parent is not None:
            parent.handshakes_served += 1
