"""The certificate probe — the heart of the measurement tool.

Reproduces §3.2 of the paper: open a TCP connection, send a
ClientHello, record the ServerHello and Certificate messages that come
back, then abort the handshake.  Whatever certificate chain arrives is
what an on-path proxy wanted the client to see.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.netsim.events import drive, settle
from repro.netsim.network import ConnectionRefused, ConnectionReset, Host
from repro.obs.metrics import MetricsRegistry
from repro.tls import codec
from repro.tls.codec import Alert, ClientHello, ServerHello, TlsError
from repro.x509.model import Certificate
from repro.x509.parse import X509Error, parse_certificate

if TYPE_CHECKING:
    from repro.tls.fingerprint import BrowserProfile


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one certificate probe."""

    ok: bool
    hostname: str
    port: int
    der_chain: tuple[bytes, ...] = ()
    server_hello: ServerHello | None = None
    error: str = ""
    chain: tuple[Certificate, ...] = field(default_factory=tuple)

    @property
    def leaf(self) -> Certificate | None:
        return self.chain[0] if self.chain else None


class ProbeClient:
    """Performs partial TLS handshakes from a client host.

    ``browser`` makes the probe impersonate one of the 2014-era
    browser profiles (:data:`repro.tls.fingerprint.BROWSER_PROFILES`)
    instead of the tool's plain SNI-only hello — what the mimicry
    audit probes with.
    """

    def __init__(
        self,
        host: Host,
        rng: random.Random | None = None,
        browser: "BrowserProfile | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self.browser = browser
        self._rng = rng or random.Random(0xFACADE)
        self.metrics = registry if registry is not None else MetricsRegistry()

    def probe(
        self, hostname: str, port: int = 443, session_id: bytes = b""
    ) -> ProbeResult:
        """Fetch the certificate chain presented for ``hostname:port``.

        ``session_id`` is presented in the ClientHello for resumption:
        the audit's resumption-honouring check hands back the id a
        product issued on an earlier probe and watches whether the
        substitute leg echoes it.
        """
        return drive(self.probe_task(hostname, port, session_id))

    def probe_task(self, hostname: str, port: int = 443, session_id: bytes = b""):
        """Resumable form of :meth:`probe`: a generator state machine.

        Yields while awaiting bytes on a scheduled transport, so a
        cooperative loop can interleave thousands of probes; on a
        synchronous network it completes without suspending.  Returns
        the :class:`ProbeResult` via ``StopIteration`` (use ``yield
        from`` or :func:`repro.netsim.events.drive`).
        """
        self.metrics.inc("probe.attempts")
        try:
            sock = self.host.connect(hostname, port)
        except ConnectionRefused as exc:
            return self._failed(hostname, port, "connect", f"connect: {exc}")
        try:
            return (yield from self._handshake(sock, hostname, port, session_id))
        finally:
            sock.close()

    def _failed(
        self, hostname: str, port: int, stage: str, error: str, **extra
    ) -> ProbeResult:
        self.metrics.inc("probe.failures", stage=stage)
        return ProbeResult(False, hostname, port, error=error, **extra)

    def _handshake(
        self, sock, hostname: str, port: int, session_id: bytes = b""
    ) -> ProbeResult:
        client_random = self._rng.getrandbits(256).to_bytes(32, "big")
        if self.browser is not None:
            hello = self.browser.client_hello(client_random, hostname, session_id)
        else:
            hello = ClientHello(
                client_random=client_random,
                server_name=hostname,
                session_id=session_id,
            )
        try:
            sock.send(codec.encode_handshake_record(hello, version=hello.version))
        except ConnectionReset as exc:
            return self._failed(hostname, port, "send", f"send: {exc}")

        # Let the scheduler deliver the hello and the server's reply
        # flight; synchronous transports have already done both.
        yield from settle(sock)
        buffer = sock.recv()
        self.metrics.inc("probe.bytes_received", n=len(buffer))
        server_hello: ServerHello | None = None
        der_chain: tuple[bytes, ...] | None = None
        try:
            records, _ = codec.decode_records(buffer)
            # Handshake messages may span record boundaries (RFC 5246
            # §6.2.1), so reassemble the handshake stream first.
            handshake_stream = b""
            for record in records:
                if record.content_type == codec.CONTENT_ALERT:
                    alert = Alert.from_payload(record.payload)
                    return self._failed(
                        hostname,
                        port,
                        "alert",
                        f"alert: level={alert.level} desc={alert.description}",
                    )
                if record.content_type == codec.CONTENT_HANDSHAKE:
                    handshake_stream += record.payload
            messages, _ = codec.decode_handshakes(handshake_stream)
            for message in messages:
                if message.msg_type == codec.HS_SERVER_HELLO:
                    server_hello = ServerHello.from_body(message.body)
                elif message.msg_type == codec.HS_CERTIFICATE:
                    cert_msg = codec.Certificate.from_body(message.body)
                    der_chain = cert_msg.der_chain
        except TlsError as exc:
            return self._failed(hostname, port, "tls", f"tls: {exc}")

        if der_chain is None:
            # Keep whatever ServerHello did arrive: the server-leg
            # audit grades a captured hello even when the flight is
            # otherwise incomplete.
            return self._failed(
                hostname,
                port,
                "no-certificate",
                "no Certificate message received",
                server_hello=server_hello,
            )

        # Parse every certificate; unparseable DER is itself a finding.
        parsed: list[Certificate] = []
        for der in der_chain:
            try:
                parsed.append(parse_certificate(der))
            except X509Error as exc:
                return self._failed(
                    hostname,
                    port,
                    "x509",
                    f"x509: {exc}",
                    der_chain=der_chain,
                    server_hello=server_hello,
                )
        # Abort: the tool closes without finishing the handshake (§3.2).
        self.metrics.inc("probe.ok")
        return ProbeResult(
            True,
            hostname,
            port,
            der_chain=der_chain,
            server_hello=server_hello,
            chain=tuple(parsed),
        )
