"""ClientHello fingerprinting and 2014/2020-era browser profiles.

A TLS interception product terminates the browser's handshake and
opens its own upstream connection — so the origin no longer sees the
browser's ClientHello, it sees the *proxy stack's*.  De Carné de
Carnavalet & van Oorschot (2020) showed that the mismatch between the
two is a reliable server-side interception signal, and Waked et al.
(2018) graded appliances on how badly their client-facing substitute
leg degrades what the browser offered.

This module provides both halves of that methodology:

* :class:`TlsFingerprint` — a JA3-style fingerprint of one hello:
  offered version, cipher-suite list, extension-type list, and the
  supported-groups / EC point-format lists when present, each in wire
  order.  ``ja3_string()`` is the canonical comma/dash form and
  ``digest()`` its stable hex digest.
* :class:`ServerFingerprint` — the JA3S-style dual for the *server*
  leg: negotiated version, chosen cipher suite and extension-type
  list of one ServerHello.  ``ja3s_string()`` / ``digest()`` mirror
  the client forms.
* :data:`BROWSER_PROFILES` — a registry of synthetic browser
  ClientHello templates the audit battery probes with, each carrying
  the *expected* genuine-origin server response (cipher choice and
  extension echo) its offer earns.  The 2014-era set (Chrome, Firefox,
  IE, Safari) matches the paper's measurement window; the ~2020-era
  set (``chrome-2020``, ``firefox-2020``, ``safari-2020``) offers
  TLS 1.3 via supported_versions/key_share, ALPN ``h2``, and — for
  Chrome and Safari — fixed GREASE values, exercising the modern
  audit checks (ALPN-mismatch, resumption-honouring, 1.3-downgrade).
  All profiles are deliberately *synthetic*: distinct, deterministic,
  plausible for their era — not bit-archaeology of specific builds.

Per the JA3 spec, GREASE values (RFC 8701) are filtered out of the
JA3/JA3S strings — two Chrome hellos differing only in their GREASE
draw must hash identically — while the underlying hellos preserve
them losslessly.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.tls import codec
from repro.tls.codec import ClientHello, ServerHello, TlsError


def _uint16_list(raw: bytes) -> tuple[int, ...]:
    if len(raw) % 2:
        raise TlsError("odd uint16 vector length")
    return tuple(
        struct.unpack(">H", raw[i : i + 2])[0] for i in range(0, len(raw), 2)
    )


def encode_groups_body(groups: tuple[int, ...]) -> bytes:
    """The supported_groups (elliptic_curves) extension body."""
    packed = b"".join(struct.pack(">H", group) for group in groups)
    return len(packed).to_bytes(2, "big") + packed


def encode_point_formats_body(formats: tuple[int, ...]) -> bytes:
    """The ec_point_formats extension body."""
    return len(formats).to_bytes(1, "big") + bytes(formats)


def encode_signature_algorithms_body(pairs: tuple[tuple[int, int], ...]) -> bytes:
    """The signature_algorithms body: (hash, signature) byte pairs."""
    packed = b"".join(bytes(pair) for pair in pairs)
    return len(packed).to_bytes(2, "big") + packed


def parse_groups_body(body: bytes) -> tuple[int, ...]:
    """Best-effort supported-groups ids from an extension body."""
    try:
        if len(body) < 2:
            return ()
        length = int.from_bytes(body[:2], "big")
        return _uint16_list(body[2 : 2 + min(length, len(body) - 2)])
    except TlsError:
        return ()


def parse_point_formats_body(body: bytes) -> tuple[int, ...]:
    """Best-effort EC point-format ids from an extension body."""
    if not body:
        return ()
    length = body[0]
    return tuple(body[1 : 1 + length])


@dataclass(frozen=True)
class TlsFingerprint:
    """A JA3-style fingerprint of one ClientHello."""

    version: int  # (major << 8) | minor, e.g. 771 for TLS 1.2
    cipher_suites: tuple[int, ...]
    extension_types: tuple[int, ...]
    groups: tuple[int, ...]
    point_formats: tuple[int, ...]

    def ja3_string(self) -> str:
        """The canonical ``ver,ciphers,extensions,groups,formats`` form."""
        return ",".join(
            [
                str(self.version),
                "-".join(str(s) for s in self.cipher_suites),
                "-".join(str(t) for t in self.extension_types),
                "-".join(str(g) for g in self.groups),
                "-".join(str(f) for f in self.point_formats),
            ]
        )

    def digest(self) -> str:
        """Stable hex digest of the JA3 string (JA3 uses MD5; so do we)."""
        return hashlib.md5(self.ja3_string().encode("ascii")).hexdigest()

    # The dimensions two fingerprints can disagree on, in report order.
    FIELDS = ("version", "cipher_suites", "extension_types", "groups", "point_formats")


def _drop_grease(values: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(value for value in values if not codec.is_grease(value))


def fingerprint_client_hello(hello: ClientHello) -> TlsFingerprint:
    """Fingerprint a hello exactly as a server-side observer would.

    GREASE values are filtered from the cipher, extension and group
    lists per the JA3 spec: they exist precisely to vary between
    connections, so a fingerprint that kept them would never be
    stable for the browsers that send them.
    """
    groups_body = hello.extension_body(codec.EXT_SUPPORTED_GROUPS)
    formats_body = hello.extension_body(codec.EXT_EC_POINT_FORMATS)
    return TlsFingerprint(
        version=(hello.version[0] << 8) | hello.version[1],
        cipher_suites=_drop_grease(tuple(hello.cipher_suites)),
        extension_types=_drop_grease(hello.extension_types),
        groups=_drop_grease(parse_groups_body(groups_body)) if groups_body else (),
        point_formats=parse_point_formats_body(formats_body) if formats_body else (),
    )


def fingerprint_divergence(
    expected: TlsFingerprint, observed: TlsFingerprint
) -> tuple[str, ...]:
    """The fingerprint dimensions on which ``observed`` differs."""
    return tuple(
        name
        for name in TlsFingerprint.FIELDS
        if getattr(expected, name) != getattr(observed, name)
    )


@dataclass(frozen=True)
class ServerFingerprint:
    """A JA3S-style fingerprint of one ServerHello.

    JA3S hashes what the *server* chose for a given client offer:
    negotiated version, the single chosen cipher suite, and the
    extension-type list in wire order.  A browser that knows what its
    usual origin answers can spot an interception product from the
    substitute ServerHello alone — the client-side dual of the JA3
    detection signal.
    """

    version: int  # (major << 8) | minor, e.g. 771 for TLS 1.2
    cipher_suite: int
    extension_types: tuple[int, ...]

    def ja3s_string(self) -> str:
        """The canonical ``ver,cipher,extensions`` form."""
        return ",".join(
            [
                str(self.version),
                str(self.cipher_suite),
                "-".join(str(t) for t in self.extension_types),
            ]
        )

    def digest(self) -> str:
        """Stable hex digest of the JA3S string (JA3S uses MD5; so do we)."""
        return hashlib.md5(self.ja3s_string().encode("ascii")).hexdigest()

    # The dimensions two server fingerprints can disagree on, in
    # report order.
    FIELDS = ("version", "cipher_suite", "extension_types")


def fingerprint_server_hello(hello: ServerHello) -> ServerFingerprint:
    """Fingerprint a ServerHello exactly as the client sees it.

    GREASE extension values are filtered like the client side; the
    version is the hello's legacy field (frozen at 0x0303 under
    TLS 1.3), matching what JA3S hashes on the wire.
    """
    return ServerFingerprint(
        version=(hello.version[0] << 8) | hello.version[1],
        cipher_suite=hello.cipher_suite,
        extension_types=_drop_grease(hello.extension_types),
    )


def server_fingerprint_divergence(
    expected: ServerFingerprint, observed: ServerFingerprint
) -> tuple[str, ...]:
    """The server-fingerprint dimensions on which ``observed`` differs."""
    return tuple(
        name
        for name in ServerFingerprint.FIELDS
        if getattr(expected, name) != getattr(observed, name)
    )


# Extension bodies below use a placeholder where the real body depends
# on the probed hostname; ``BrowserProfile.client_hello`` fills it in.
_SNI_PLACEHOLDER = b""

# Common 2014-era parameter blocks.
_P256_P384_P521 = (23, 24, 25)
_UNCOMPRESSED_ONLY = (0,)
_SHA2_ERA_SIGALGS = ((4, 1), (5, 1), (6, 1), (2, 1))  # sha256/384/512/sha1 + RSA

# Common ~2020-era parameter blocks.  X25519(29) leads the group list;
# signature schemes are the RFC 8446 names (ecdsa_secp256r1_sha256,
# rsa_pss_rsae_sha256, rsa_pkcs1_sha256, …) — each scheme id's two
# bytes ride the same (hash, sig) pair encoding as the 2014 list.
_X25519_FIRST_GROUPS = (29, 23, 24)
_MODERN_SIGALGS = ((4, 3), (8, 4), (4, 1), (5, 3), (8, 5), (5, 1), (8, 6), (6, 1))
_ALPN_H2_HTTP11_BODY = codec.encode_alpn_body(("h2", "http/1.1"))
# A deterministic x25519 client share: fingerprinting only sees the
# extension *type*, and the simulation aborts before key agreement, so
# a fixed stand-in keeps profiles reproducible.
_X25519_CLIENT_SHARE = b"\x2a" * 32
# Fixed GREASE draws for the profiles that send GREASE.  Real browsers
# randomise per connection; the registry pins one draw per profile so
# every run is byte-identical (JA3 filters them out regardless).
_CHROME_GREASE = 0x0A0A
_CHROME_GREASE_2 = 0x1A1A
_SAFARI_GREASE = 0x3A3A


@dataclass(frozen=True)
class BrowserProfile:
    """A synthetic browser ClientHello template.

    ``expected_server_cipher`` / ``expected_server_extension_types``
    describe the *expected* server response: what a well-run 2014-era
    RSA-certificate origin answers this browser's offer with — the
    first RSA-compatible suite in the browser's preference order, and
    the extensions such an origin echoes back.  The server-leg audit
    grades each product's substitute ServerHello against this
    expectation, and ``server_fingerprint()`` is its JA3S form.
    """

    key: str  # registry key, e.g. "chrome"
    name: str  # display name, e.g. "Chrome 33 (2014)"
    version: tuple[int, int]
    cipher_suites: tuple[int, ...]
    # (type, body) in wire order; an EXT_SERVER_NAME entry's body is a
    # placeholder replaced with the probed hostname at build time.
    extensions: tuple[tuple[int, bytes], ...]
    compression_methods: tuple[int, ...] = (0,)
    # The expected genuine-origin answer to this browser's offer.
    expected_server_cipher: int = 0xC02F
    expected_server_extension_types: tuple[int, ...] = ()
    # The ALPN protocol a genuine modern origin selects for this offer
    # (None for the 2014 set: the era's audit graded extension *types*
    # only, and keeping it None keeps those grades frozen).
    expected_alpn: str | None = None

    def client_hello(
        self,
        client_random: bytes,
        server_name: str,
        session_id: bytes = b"",
    ) -> ClientHello:
        """Instantiate the template against one hostname.

        ``session_id`` lets a resumption probe present the id an
        earlier handshake handed out.
        """
        materialised = tuple(
            (ext_type, codec.encode_sni_extension_body(server_name))
            if ext_type == codec.EXT_SERVER_NAME
            else (ext_type, body)
            for ext_type, body in self.extensions
        )
        return ClientHello(
            client_random=client_random,
            server_name=server_name,
            version=self.version,
            cipher_suites=self.cipher_suites,
            session_id=session_id,
            compression_methods=self.compression_methods,
            extensions=materialised,
        )

    @property
    def offers_tls13(self) -> bool:
        """True when this profile offers TLS 1.3 via supported_versions.

        This is the gate for the modern audit checks: ALPN-mismatch,
        resumption-honouring and TLS-1.3-downgrade are graded only for
        browsers that can actually observe them.
        """
        for ext_type, body in self.extensions:
            if ext_type == codec.EXT_SUPPORTED_VERSIONS:
                return codec.TLS_1_3 in codec.parse_supported_versions_body(body)
        return False

    def fingerprint(self) -> TlsFingerprint:
        """The fingerprint any hostname instantiation produces."""
        return fingerprint_client_hello(
            self.client_hello(bytes(32), "fingerprint.invalid")
        )

    def server_fingerprint(self) -> ServerFingerprint:
        """The JA3S fingerprint of the expected genuine-origin answer."""
        return ServerFingerprint(
            version=(self.version[0] << 8) | self.version[1],
            cipher_suite=self.expected_server_cipher,
            extension_types=self.expected_server_extension_types,
        )


# The cipher suites a well-run 2014 origin with an RSA certificate can
# actually serve: the RSA-authenticated suites of the era.  The ECDSA
# blocks browsers lead with need an ECDSA certificate, so a genuine
# origin's answer is the client's first offer drawn from this set.
RSA_ORIGIN_CIPHER_SUITES = frozenset(
    {
        0xC02F,  # ECDHE-RSA-AES128-GCM-SHA256
        0x009E,  # DHE-RSA-AES128-GCM-SHA256
        0x009C,  # RSA-AES128-GCM-SHA256
        0x009D,  # RSA-AES256-GCM-SHA384
        0xC028,  # ECDHE-RSA-AES256-CBC-SHA384
        0xC027,  # ECDHE-RSA-AES128-CBC-SHA256
        0xC014,  # ECDHE-RSA-AES256-CBC-SHA
        0xC013,  # ECDHE-RSA-AES128-CBC-SHA
        0x003D,  # RSA-AES256-CBC-SHA256
        0x003C,  # RSA-AES128-CBC-SHA256
        0x0039,  # DHE-RSA-AES256-CBC-SHA
        0x0035,  # RSA-AES256-CBC-SHA
        0x0033,  # DHE-RSA-AES128-CBC-SHA
        0x002F,  # RSA-AES128-CBC-SHA
        0x000A,  # RSA-3DES-EDE-CBC-SHA
    }
)


# TLS 1.3 suites (RFC 8446 §B.4): AEAD + hash only, certificate-type
# agnostic, so a genuine origin can serve any of them.
TLS13_CIPHER_SUITES = frozenset({0x1301, 0x1302, 0x1303})


def negotiate_origin_cipher(
    client_hello: ClientHello, tls13: bool = False
) -> int:
    """The suite a genuine RSA-certificate origin picks for an offer.

    Client preference order, first servable suite wins — for each
    registry browser profile this reproduces its
    ``expected_server_cipher`` exactly, which is what lets a server-leg
    mimic stay indistinguishable against *any* probing browser instead
    of hardcoding one browser's answer.  Under a TLS 1.3 negotiation
    (``tls13=True``) only the RFC 8446 suites are servable; otherwise
    only the RSA-authenticated 1.2-era suites are.  Falls back to the
    era's baseline suite when the offer carries nothing servable (a
    degenerate client no genuine origin could honestly serve).
    """
    servable = TLS13_CIPHER_SUITES if tls13 else RSA_ORIGIN_CIPHER_SUITES
    for suite in client_hello.cipher_suites:
        if suite in servable:
            return suite
    return 0x1301 if tls13 else 0x002F


# The ALPN preference a genuine modern origin applies to a client's
# protocol offer (RFC 7301 gives the *server* the pick).
ORIGIN_ALPN_PREFERENCE = ("h2", "http/1.1")


def origin_alpn_selection(client_hello: ClientHello) -> str | None:
    """The ALPN protocol a genuine origin selects, or None to skip.

    First protocol in the origin's preference order that the client
    offered; None when the client offered no ALPN (a server must not
    answer an extension that was never offered) or no overlap exists.
    """
    offered = client_hello.alpn_protocols
    for protocol in ORIGIN_ALPN_PREFERENCE:
        if protocol in offered:
            return protocol
    return None


# The server extension set a well-run 2014 origin answers with, in
# answer order, when the client offered each of them: secure
# renegotiation confirmed, a session ticket granted, OCSP stapling
# accepted, ALPN selected, and the EC point formats echoed.  A
# browser's *expected* server extensions are this list filtered by
# what that browser actually offers (a server may only answer offered
# extensions), which is also exactly what
# :func:`build_own_server_extensions` produces for a product
# configured to mimic origin behaviour.
CANONICAL_SERVER_EXTENSION_TYPES = (
    codec.EXT_RENEGOTIATION_INFO,
    codec.EXT_SESSION_TICKET,
    codec.EXT_STATUS_REQUEST,
    codec.EXT_ALPN,
    codec.EXT_EC_POINT_FORMATS,
)

# The ServerHello extension set a genuine origin answers a TLS 1.3
# negotiation with, in answer order: the selected version, the server
# key share, the ALPN pick, and a session-ticket grant when offered.
# One modelling simplification, shared by the genuine origin and the
# engine's substitute leg so the comparison stays fair: under real
# TLS 1.3 the ALPN answer rides EncryptedExtensions and tickets ride
# post-handshake NewSessionTicket — both invisible at the probe's
# abort point — so the simulation surfaces them in the (observable)
# ServerHello instead, and ticket resumption is abstracted onto the
# legacy session-id channel.
MODERN_SERVER_EXTENSION_TYPES = (
    codec.EXT_SUPPORTED_VERSIONS,
    codec.EXT_KEY_SHARE,
    codec.EXT_ALPN,
    codec.EXT_SESSION_TICKET,
)

# The x25519 share a simulated server answers key_share with; like the
# client side, only the extension type is ever compared.
_X25519_SERVER_SHARE = b"\x5c" * 32


def build_modern_server_extensions(
    client_hello: ClientHello,
    alpn_protocol: str | None,
    grant_session_ticket: bool,
) -> tuple[tuple[int, bytes], ...]:
    """The ServerHello extension list for a TLS 1.3 negotiation.

    Unlike the 1.2 path, the served set is protocol-determined rather
    than configured: supported_versions and key_share are mandatory,
    ALPN appears when a protocol was selected, and the ticket grant
    when the server issues tickets and the client offered the slot.
    """
    built = [
        (codec.EXT_SUPPORTED_VERSIONS,
         codec.encode_selected_version_body(codec.TLS_1_3)),
        (codec.EXT_KEY_SHARE,
         codec.encode_server_key_share_body(29, _X25519_SERVER_SHARE)),
    ]
    if alpn_protocol is not None:
        built.append((codec.EXT_ALPN, codec.encode_alpn_body((alpn_protocol,))))
    if grant_session_ticket and (
        codec.EXT_SESSION_TICKET in client_hello.extension_types
    ):
        built.append((codec.EXT_SESSION_TICKET, b""))
    return tuple(built)

BROWSER_PROFILES: dict[str, BrowserProfile] = {
    profile.key: profile
    for profile in (
        BrowserProfile(
            key="chrome",
            name="Chrome 33 (2014)",
            version=codec.TLS_1_2,
            cipher_suites=(
                0xC02B, 0xC02F, 0x009E, 0xC00A, 0xC014, 0x0039,
                0xC009, 0xC013, 0x0033, 0x009C, 0x0035, 0x002F,
                0x000A,
            ),
            extensions=(
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_SESSION_TICKET, b""),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_SHA2_ERA_SIGALGS)),
                (codec.EXT_STATUS_REQUEST, b"\x01\x00\x00\x00\x00"),
                (codec.EXT_NEXT_PROTOCOL_NEGOTIATION, b""),
                (codec.EXT_ALPN, b"\x00\x0c\x02h2\x08http/1.1"),
                (codec.EXT_CHANNEL_ID, b""),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_SUPPORTED_GROUPS, encode_groups_body(_P256_P384_P521)),
            ),
            # Chrome's first RSA-compatible suite: ECDHE-RSA-AES128-GCM.
            expected_server_cipher=0xC02F,
            expected_server_extension_types=CANONICAL_SERVER_EXTENSION_TYPES,
        ),
        BrowserProfile(
            key="firefox",
            name="Firefox 27 (2014)",
            version=codec.TLS_1_2,
            cipher_suites=(
                0xC02B, 0xC02F, 0xC00A, 0xC009, 0xC013, 0xC014,
                0x0033, 0x0039, 0x002F, 0x0035, 0x000A,
            ),
            extensions=(
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
                (codec.EXT_SUPPORTED_GROUPS, encode_groups_body(_P256_P384_P521)),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_SESSION_TICKET, b""),
                (codec.EXT_NEXT_PROTOCOL_NEGOTIATION, b""),
                (codec.EXT_ALPN, b"\x00\x09\x08http/1.1"),
                (codec.EXT_STATUS_REQUEST, b"\x01\x00\x00\x00\x00"),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_SHA2_ERA_SIGALGS)),
            ),
            # Firefox's first RSA-compatible suite matches Chrome's.
            expected_server_cipher=0xC02F,
            expected_server_extension_types=CANONICAL_SERVER_EXTENSION_TYPES,
        ),
        BrowserProfile(
            key="ie",
            name="Internet Explorer 11 (2014)",
            version=codec.TLS_1_2,
            cipher_suites=(
                0xC028, 0xC027, 0xC014, 0xC013, 0x0035, 0x002F,
                0xC02C, 0xC02B, 0xC024, 0xC023, 0xC00A, 0xC009,
                0x0039, 0x0033, 0x009D, 0x009C, 0x003D, 0x003C,
                0x000A,
            ),
            extensions=(
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_STATUS_REQUEST, b"\x01\x00\x00\x00\x00"),
                (codec.EXT_SUPPORTED_GROUPS, encode_groups_body(_P256_P384_P521)),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_SHA2_ERA_SIGALGS)),
                (codec.EXT_SESSION_TICKET, b""),
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
            ),
            # IE leads with ECDHE-RSA-AES256-CBC-SHA384 and offers no
            # ALPN, so the expected answer drops the ALPN slot.
            expected_server_cipher=0xC028,
            expected_server_extension_types=(
                codec.EXT_RENEGOTIATION_INFO,
                codec.EXT_SESSION_TICKET,
                codec.EXT_STATUS_REQUEST,
                codec.EXT_EC_POINT_FORMATS,
            ),
        ),
        BrowserProfile(
            key="safari",
            name="Safari 7 (2014)",
            version=codec.TLS_1_2,
            cipher_suites=(
                0xC024, 0xC023, 0xC00A, 0xC009, 0xC028, 0xC027,
                0xC014, 0xC013, 0x003D, 0x003C, 0x0035, 0x002F,
                0x000A,
            ),
            extensions=(
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_SUPPORTED_GROUPS, encode_groups_body(_P256_P384_P521)),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_SHA2_ERA_SIGALGS)),
            ),
            # Safari 7's first RSA-compatible suite (the ECDSA block
            # ahead of it needs an ECDSA certificate); its spare offer
            # only lets an origin echo the EC point formats.
            expected_server_cipher=0xC028,
            expected_server_extension_types=(codec.EXT_EC_POINT_FORMATS,),
        ),
        BrowserProfile(
            key="chrome-2020",
            name="Chrome 83 (2020)",
            version=codec.TLS_1_2,  # legacy field frozen; 1.3 via ext 43
            cipher_suites=(
                _CHROME_GREASE,
                0x1301, 0x1302, 0x1303,
                0xC02B, 0xC02F, 0xC02C, 0xC030, 0xCCA9, 0xCCA8,
                0xC013, 0xC014, 0x009C, 0x009D, 0x002F, 0x0035,
            ),
            extensions=(
                (_CHROME_GREASE, b""),
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
                (codec.EXT_SUPPORTED_GROUPS,
                 encode_groups_body((_CHROME_GREASE,) + _X25519_FIRST_GROUPS)),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_SESSION_TICKET, b""),
                (codec.EXT_ALPN, _ALPN_H2_HTTP11_BODY),
                (codec.EXT_STATUS_REQUEST, b"\x01\x00\x00\x00\x00"),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_MODERN_SIGALGS)),
                (codec.EXT_KEY_SHARE, codec.encode_key_share_body(
                    ((_CHROME_GREASE, b"\x00"), (29, _X25519_CLIENT_SHARE)))),
                (codec.EXT_PSK_KEY_EXCHANGE_MODES, b"\x01\x01"),
                (codec.EXT_SUPPORTED_VERSIONS, codec.encode_supported_versions_body(
                    ((_CHROME_GREASE >> 8, _CHROME_GREASE & 0xFF),
                     codec.TLS_1_3, codec.TLS_1_2))),
                (_CHROME_GREASE_2, b"\x00"),
            ),
            # A genuine modern origin takes Chrome's first 1.3 suite
            # and answers the protocol-determined modern extension set.
            expected_server_cipher=0x1301,
            expected_server_extension_types=MODERN_SERVER_EXTENSION_TYPES,
            expected_alpn="h2",
        ),
        BrowserProfile(
            key="firefox-2020",
            name="Firefox 77 (2020)",
            version=codec.TLS_1_2,
            cipher_suites=(
                0x1301, 0x1303, 0x1302,
                0xC02B, 0xC02F, 0xCCA9, 0xCCA8, 0xC02C, 0xC030,
                0xC013, 0xC014, 0x002F, 0x0035, 0x000A,
            ),
            extensions=(
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_SUPPORTED_GROUPS,
                 encode_groups_body(_X25519_FIRST_GROUPS + (25,))),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_SESSION_TICKET, b""),
                (codec.EXT_ALPN, _ALPN_H2_HTTP11_BODY),
                (codec.EXT_STATUS_REQUEST, b"\x01\x00\x00\x00\x00"),
                (codec.EXT_KEY_SHARE, codec.encode_key_share_body(
                    ((29, _X25519_CLIENT_SHARE),))),
                (codec.EXT_SUPPORTED_VERSIONS, codec.encode_supported_versions_body(
                    (codec.TLS_1_3, codec.TLS_1_2))),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_MODERN_SIGALGS)),
                (codec.EXT_PSK_KEY_EXCHANGE_MODES, b"\x01\x01"),
                (codec.EXT_RENEGOTIATION_INFO, b"\x00"),
            ),
            # Firefox sends no GREASE; same modern expectation.
            expected_server_cipher=0x1301,
            expected_server_extension_types=MODERN_SERVER_EXTENSION_TYPES,
            expected_alpn="h2",
        ),
        BrowserProfile(
            key="safari-2020",
            name="Safari 13 (2020)",
            version=codec.TLS_1_2,
            cipher_suites=(
                _SAFARI_GREASE,
                0x1301, 0x1302, 0x1303,
                0xC02C, 0xC02B, 0xC030, 0xC02F, 0xCCA9, 0xCCA8,
                0xC024, 0xC023, 0xC028, 0xC027, 0xC014, 0xC013,
            ),
            extensions=(
                (_SAFARI_GREASE, b""),
                (codec.EXT_SERVER_NAME, _SNI_PLACEHOLDER),
                (codec.EXT_SUPPORTED_GROUPS,
                 encode_groups_body(_X25519_FIRST_GROUPS + (25,))),
                (codec.EXT_EC_POINT_FORMATS,
                 encode_point_formats_body(_UNCOMPRESSED_ONLY)),
                (codec.EXT_ALPN, _ALPN_H2_HTTP11_BODY),
                (codec.EXT_STATUS_REQUEST, b"\x01\x00\x00\x00\x00"),
                (codec.EXT_SIGNATURE_ALGORITHMS,
                 encode_signature_algorithms_body(_MODERN_SIGALGS)),
                (codec.EXT_KEY_SHARE, codec.encode_key_share_body(
                    ((29, _X25519_CLIENT_SHARE),))),
                (codec.EXT_PSK_KEY_EXCHANGE_MODES, b"\x01\x01"),
                (codec.EXT_SUPPORTED_VERSIONS, codec.encode_supported_versions_body(
                    ((_SAFARI_GREASE >> 8, _SAFARI_GREASE & 0xFF),
                     codec.TLS_1_3, codec.TLS_1_2, codec.TLS_1_1, codec.TLS_1_0))),
                (codec.EXT_SESSION_TICKET, b""),
            ),
            expected_server_cipher=0x1301,
            expected_server_extension_types=MODERN_SERVER_EXTENSION_TYPES,
            expected_alpn="h2",
        ),
    )
}

# The era split, for callers that reason about the two sets.
MODERN_BROWSER_KEYS = ("chrome-2020", "firefox-2020", "safari-2020")
LEGACY_BROWSER_KEYS = ("chrome", "firefox", "ie", "safari")

DEFAULT_BROWSER = "chrome"


def browser_profile(key: str) -> BrowserProfile:
    """Look up a registry profile, with a helpful error."""
    try:
        return BROWSER_PROFILES[key]
    except KeyError:
        known = ", ".join(sorted(BROWSER_PROFILES))
        raise KeyError(f"unknown browser profile {key!r} (known: {known})") from None


def build_own_stack_extensions(
    extension_types: tuple[int, ...], server_name: str | None
) -> tuple[tuple[int, bytes], ...] | None:
    """Materialise a fixed product stack's extension list.

    Products that speak with their own TLS stack upstream send the
    same extension *types* every time; bodies are canned (groups,
    point formats, signature algorithms) or empty, except SNI which
    names the actual target.  Returns ``None`` — no extensions block
    on the wire — when nothing applies: both for an explicitly empty
    ``extension_types`` (a pre-extension stack) and for an SNI-only
    stack with no server name.  Callers building a ClientHello from a
    ``None`` result must not also pass ``server_name`` (which would
    synthesise an SNI extension the stack does not send).
    """
    built: list[tuple[int, bytes]] = []
    for ext_type in extension_types:
        if ext_type == codec.EXT_SERVER_NAME:
            if server_name is None:
                continue
            built.append((ext_type, codec.encode_sni_extension_body(server_name)))
        elif ext_type == codec.EXT_SUPPORTED_GROUPS:
            built.append((ext_type, encode_groups_body(_P256_P384_P521)))
        elif ext_type == codec.EXT_EC_POINT_FORMATS:
            built.append((ext_type, encode_point_formats_body(_UNCOMPRESSED_ONLY)))
        elif ext_type == codec.EXT_SIGNATURE_ALGORITHMS:
            built.append(
                (ext_type, encode_signature_algorithms_body(_SHA2_ERA_SIGALGS))
            )
        elif ext_type == codec.EXT_RENEGOTIATION_INFO:
            built.append((ext_type, b"\x00"))
        else:
            built.append((ext_type, b""))
    return tuple(built) if built else None


# The ALPN body a server answers with: one selected protocol.
_ALPN_HTTP11_SERVER_BODY = b"\x00\x09\x08http/1.1"


def build_own_server_extensions(
    extension_types: tuple[int, ...],
    client_hello: ClientHello,
    alpn_body: bytes | None = _ALPN_HTTP11_SERVER_BODY,
) -> tuple[tuple[int, bytes], ...] | None:
    """Materialise a product's substitute-ServerHello extension list.

    A server may only answer extensions the client offered, so the
    product's configured ``extension_types`` are filtered against
    ``client_hello`` (in the product's configured order — which is the
    origin's answer order for a mimicking product).  Bodies are the
    canned server-side forms: secure-renegotiation confirmation, an
    empty session-ticket grant, an empty stapling acknowledgement, an
    ALPN selection (``alpn_body``; the historical canned http/1.1 by
    default, an origin-style pick for ``AlpnPolicy.ECHO`` products, or
    ``None`` to strip the answer entirely), and echoed EC point
    formats.  Returns ``None`` — no extensions block on the wire —
    when nothing applies, which is exactly the historical engine's
    (and a bare 2014 proxy stack's) ServerHello shape.
    """
    offered = set(client_hello.extension_types)
    built: list[tuple[int, bytes]] = []
    for ext_type in extension_types:
        if ext_type not in offered:
            continue
        if ext_type == codec.EXT_RENEGOTIATION_INFO:
            built.append((ext_type, b"\x00"))
        elif ext_type == codec.EXT_EC_POINT_FORMATS:
            built.append((ext_type, encode_point_formats_body(_UNCOMPRESSED_ONLY)))
        elif ext_type == codec.EXT_ALPN:
            if alpn_body is not None:
                built.append((ext_type, alpn_body))
        else:
            built.append((ext_type, b""))
    return tuple(built) if built else None
