"""TLS wire protocol — the slice the measurement tool exercises.

The paper's Flash tool speaks just enough TLS to learn what certificate
the path presents: it sends a ``ClientHello``, reads ``ServerHello`` and
``Certificate``, and aborts.  This package implements that slice with
real record framing and handshake encodings:

* :mod:`repro.tls.codec` — record layer and handshake message codec
  (ClientHello with SNI, ServerHello, Certificate, Alert).
* :class:`TlsCertServer` — a netsim protocol that answers a ClientHello
  with its configured certificate chain.
* :class:`ProbeClient` — the client side of the measurement: partial
  handshake, collect the chain, abort.  (§3.2 of the paper.)
"""

from repro.tls.codec import (
    Alert,
    Certificate as CertificateMessage,
    ClientHello,
    HandshakeMessage,
    Record,
    ServerHello,
    TlsError,
    decode_handshake,
    decode_records,
    encode_handshake_record,
)
from repro.tls.fingerprint import (
    BROWSER_PROFILES,
    BrowserProfile,
    ServerFingerprint,
    TlsFingerprint,
    browser_profile,
    fingerprint_client_hello,
    fingerprint_divergence,
    fingerprint_server_hello,
    server_fingerprint_divergence,
)
from repro.tls.probe import ProbeClient, ProbeResult
from repro.tls.server import TlsCertServer

__all__ = [
    "Alert",
    "BROWSER_PROFILES",
    "BrowserProfile",
    "CertificateMessage",
    "ClientHello",
    "HandshakeMessage",
    "ProbeClient",
    "ProbeResult",
    "Record",
    "ServerFingerprint",
    "ServerHello",
    "TlsCertServer",
    "TlsError",
    "TlsFingerprint",
    "browser_profile",
    "decode_handshake",
    "decode_records",
    "encode_handshake_record",
    "fingerprint_client_hello",
    "fingerprint_divergence",
    "fingerprint_server_hello",
    "server_fingerprint_divergence",
]
