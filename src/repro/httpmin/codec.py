"""HTTP/1.1 request/response framing."""

from __future__ import annotations

from dataclasses import dataclass, field


class HttpError(ValueError):
    """Raised on malformed HTTP framing."""


_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


def _encode_headers(headers: dict[str, str], body: bytes) -> list[str]:
    lines = []
    seen = {name.lower() for name in headers}
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    if "content-length" not in seen:
        lines.append(f"Content-Length: {len(body)}")
    return lines


def _parse_headers(block: bytes) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in block.split(_CRLF):
        if not line:
            continue
        if b":" not in line:
            raise HttpError(f"bad header line {line!r}")
        name, _, value = line.partition(b":")
        headers[name.decode("latin-1").strip().lower()] = value.decode(
            "latin-1"
        ).strip()
    return headers


@dataclass
class HttpRequest:
    """An HTTP request with an optional body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        lines.extend(_encode_headers(self.headers, self.body))
        head = "\r\n".join(lines).encode("latin-1") + _HEADER_END
        return head + self.body

    @classmethod
    def try_decode(cls, data: bytes) -> tuple["HttpRequest | None", bytes]:
        """Decode one request if complete; return (request|None, leftover)."""
        end = data.find(_HEADER_END)
        if end < 0:
            return None, data
        head, rest = data[:end], data[end + 4 :]
        lines = head.split(_CRLF)
        parts = lines[0].decode("latin-1").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(f"bad request line {lines[0]!r}")
        headers = _parse_headers(_CRLF.join(lines[1:]))
        length = int(headers.get("content-length", "0"))
        if len(rest) < length:
            return None, data
        return (
            cls(method=parts[0], path=parts[1], headers=headers, body=rest[:length]),
            rest[length:],
        )


@dataclass
class HttpResponse:
    """An HTTP response."""

    status: int
    reason: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    _REASONS = {
        200: "OK",
        204: "No Content",
        400: "Bad Request",
        404: "Not Found",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }

    def encode(self) -> bytes:
        reason = self.reason or self._REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.extend(_encode_headers(self.headers, self.body))
        head = "\r\n".join(lines).encode("latin-1") + _HEADER_END
        return head + self.body

    @classmethod
    def try_decode(cls, data: bytes) -> tuple["HttpResponse | None", bytes]:
        end = data.find(_HEADER_END)
        if end < 0:
            return None, data
        head, rest = data[:end], data[end + 4 :]
        lines = head.split(_CRLF)
        parts = lines[0].decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise HttpError(f"bad status line {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpError(f"bad status code {parts[1]!r}") from exc
        headers = _parse_headers(_CRLF.join(lines[1:]))
        length = int(headers.get("content-length", "0"))
        if len(rest) < length:
            return None, data
        reason = parts[2] if len(parts) == 3 else ""
        return (
            cls(status=status, reason=reason, headers=headers, body=rest[:length]),
            rest[length:],
        )

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300
