"""Routing HTTP server as a netsim protocol."""

from __future__ import annotations

from typing import Callable

from repro.httpmin.codec import HttpError, HttpRequest, HttpResponse
from repro.netsim.network import Host, Protocol, StreamSocket

# Handlers receive the request and the remote host (None if unknown),
# mirroring how a real server reads the client address off the socket.
Handler = Callable[[HttpRequest, "Host | None"], HttpResponse]


class HttpServer(Protocol):
    """Dispatches requests to handlers registered per (method, path).

    One instance can serve many connections via :meth:`factory`; routes
    and counters are shared, per-connection parse state is not.
    """

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Handler] = {}
        self._buffer = b""
        self.requests_handled = 0
        self.parse_errors = 0
        self._shared_state: HttpServer | None = None

    def route(self, method: str, path: str, handler: Handler) -> None:
        self._routes[(method.upper(), path)] = handler

    def factory(self) -> "HttpServer":
        connection = HttpServer()
        connection._routes = self._routes
        connection._shared_state = self
        return connection

    # -- Protocol callbacks ----------------------------------------------

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        self._buffer += data
        while True:
            try:
                request, self._buffer = HttpRequest.try_decode(self._buffer)
            except HttpError:
                self._count_error()
                sock.send(HttpResponse(400).encode())
                sock.close()
                return
            if request is None:
                return
            self._dispatch(sock, request)
            if sock.closed:
                return

    def _dispatch(self, sock: StreamSocket, request: HttpRequest) -> None:
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is None:
            sock.send(HttpResponse(404).encode())
            return
        try:
            response = handler(request, sock.remote_host)
        except Exception as exc:  # handler bug → 500, like a real server
            response = HttpResponse(500, body=str(exc).encode("utf-8"))
        sock.send(response.encode())
        self._count_request()

    def _count_request(self) -> None:
        state = self._shared_state or self
        state.requests_handled += 1

    def _count_error(self) -> None:
        state = self._shared_state or self
        state.parse_errors += 1
