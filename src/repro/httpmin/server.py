"""Routing HTTP server as a netsim protocol."""

from __future__ import annotations

from typing import Callable

from repro.httpmin.codec import HttpError, HttpRequest, HttpResponse
from repro.netsim.network import Host, Protocol, StreamSocket
from repro.obs.metrics import MetricsRegistry

# Handlers receive the request and the remote host (None if unknown),
# mirroring how a real server reads the client address off the socket.
Handler = Callable[[HttpRequest, "Host | None"], HttpResponse]


class HttpServer(Protocol):
    """Dispatches requests to handlers registered per (method, path).

    One instance can serve many connections via :meth:`factory`; routes
    and the metrics registry are shared, per-connection parse state is
    not.  ``requests_handled``/``parse_errors`` are live views onto the
    registry's counters, so every connection's traffic aggregates on
    the template instance exactly as before.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._routes: dict[tuple[str, str], Handler] = {}
        self._buffer = b""
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._c_requests = self.metrics.counter("http.requests_handled")
        self._c_parse_errors = self.metrics.counter("http.parse_errors")
        self._c_unrouted = self.metrics.counter("http.unrouted")
        self._c_abandoned = self.metrics.counter("http.requests_abandoned")
        self._c_bytes_in = self.metrics.counter("http.bytes_in")
        # Called with the undecodable tail when a connection closes
        # mid-request — the hook the reporting server uses to count a
        # report that died before it ever parsed.
        self.on_abandoned: Callable[[bytes], None] | None = None

    def route(self, method: str, path: str, handler: Handler) -> None:
        self._routes[(method.upper(), path)] = handler

    def factory(self) -> "HttpServer":
        connection = HttpServer(registry=self.metrics)
        connection._routes = self._routes
        connection.on_abandoned = self.on_abandoned
        return connection

    @property
    def requests_handled(self) -> int:
        return self._c_requests.value

    @property
    def parse_errors(self) -> int:
        return self._c_parse_errors.value

    @property
    def requests_abandoned(self) -> int:
        return self._c_abandoned.value

    # -- Protocol callbacks ----------------------------------------------

    def data_received(self, sock: StreamSocket, data: bytes) -> None:
        self._c_bytes_in.inc(len(data))
        self._buffer += data
        while True:
            try:
                request, self._buffer = HttpRequest.try_decode(self._buffer)
            except HttpError:
                self._buffer = b""
                self._c_parse_errors.inc()
                sock.send(HttpResponse(400).encode())
                sock.close()
                return
            if request is None:
                return
            self._dispatch(sock, request)
            if sock.closed:
                return

    def connection_lost(self, sock: StreamSocket) -> None:
        # Bytes arrived but never completed a request: without this, a
        # request truncated mid-body vanishes without a trace once the
        # peer closes.
        if self._buffer:
            self._c_abandoned.inc()
            if self.on_abandoned is not None:
                self.on_abandoned(self._buffer)
            self._buffer = b""

    def _dispatch(self, sock: StreamSocket, request: HttpRequest) -> None:
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is None:
            self._c_unrouted.inc()
            sock.send(HttpResponse(404).encode())
            return
        try:
            response = handler(request, sock.remote_host)
        except Exception as exc:  # handler bug → 500, like a real server
            response = HttpResponse(500, body=str(exc).encode("utf-8"))
        sock.send(response.encode())
        self._c_requests.inc()
