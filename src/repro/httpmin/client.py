"""Pull-style HTTP client for netsim hosts."""

from __future__ import annotations

from repro.httpmin.codec import HttpError, HttpRequest, HttpResponse
from repro.netsim.events import drive, settle
from repro.netsim.network import ConnectionRefused, ConnectionReset, Host


class HttpClient:
    """Issues one-shot HTTP requests from a client host."""

    def __init__(self, host: Host) -> None:
        self.host = host

    def request(
        self,
        method: str,
        hostname: str,
        path: str,
        port: int = 80,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        """Send one request and return the response.

        Raises :class:`HttpError` on malformed or missing responses and
        lets netsim connection errors propagate — callers decide how a
        failed report should be counted.
        """
        return drive(
            self.request_task(method, hostname, path, port, body, headers)
        )

    def request_task(
        self,
        method: str,
        hostname: str,
        path: str,
        port: int = 80,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ):
        """Resumable form of :meth:`request`: a generator state machine.

        Same contract and error behaviour; yields while awaiting the
        response on a scheduled transport and returns the
        :class:`HttpResponse` via ``StopIteration``.
        """
        all_headers = {"Host": hostname}
        all_headers.update(headers or {})
        request = HttpRequest(method=method, path=path, headers=all_headers, body=body)
        sock = self.host.connect(hostname, port)
        try:
            sock.send(request.encode())
            yield from settle(sock)
            response, leftover = HttpResponse.try_decode(sock.recv())
            if response is None:
                raise HttpError("incomplete response")
            return response
        finally:
            sock.close()

    def get(self, hostname: str, path: str, port: int = 80) -> HttpResponse:
        return self.request("GET", hostname, path, port=port)

    def post(
        self,
        hostname: str,
        path: str,
        body: bytes,
        port: int = 80,
        content_type: str = "application/octet-stream",
    ) -> HttpResponse:
        return self.request(
            "POST",
            hostname,
            path,
            port=port,
            body=body,
            headers={"Content-Type": content_type},
        )


__all__ = ["HttpClient", "ConnectionRefused", "ConnectionReset"]
