"""Minimal HTTP/1.1 over netsim streams.

Used for the two HTTP jobs in the study: serving the measurement tool
(the ad payload) and receiving the tool's certificate reports as POST
bodies.  Implements just what those need — request/response framing
with Content-Length bodies — plus strict parsing so failure-injection
tests can exercise malformed traffic.
"""

from repro.httpmin.client import HttpClient
from repro.httpmin.codec import HttpError, HttpRequest, HttpResponse
from repro.httpmin.server import HttpServer

__all__ = ["HttpClient", "HttpError", "HttpRequest", "HttpResponse", "HttpServer"]
