"""The whitelist experiment — reconciling this paper with Huang et al.

Huang et al. measured TLS interception of *Facebook* connections and
found 0.20 %; this paper measured low-profile sites and found 0.41 %.
§6.3 hypothesises that benevolent proxies whitelist extremely popular
sites.  This experiment tests the hypothesis inside the simulation:
probe one Facebook-class site (whitelisted by the big consumer AV
products in the catalog) and one low-profile site with the same client
population, and compare rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data import products as product_data
from repro.population.model import ClientPopulation
from repro.util import stable_hash

HIGH_PROFILE_SITE = "facebook.example"
LOW_PROFILE_SITE = "tlsresearch.byu.edu"


@dataclass(frozen=True)
class WhitelistExperimentResult:
    """Interception rates per probed site."""

    sessions: int
    high_profile_total: int
    high_profile_proxied: int
    low_profile_total: int
    low_profile_proxied: int
    whitelisting_products: tuple[str, ...]

    @property
    def high_profile_rate(self) -> float:
        return (
            self.high_profile_proxied / self.high_profile_total
            if self.high_profile_total
            else 0.0
        )

    @property
    def low_profile_rate(self) -> float:
        return (
            self.low_profile_proxied / self.low_profile_total
            if self.low_profile_total
            else 0.0
        )

    @property
    def rate_ratio(self) -> float:
        """low-profile rate / high-profile rate (paper vs Huang ≈ 2.05)."""
        high = self.high_profile_rate
        return self.low_profile_rate / high if high else float("inf")


def run_whitelist_experiment(
    seed: int = 0, sessions: int = 200_000, study: int = 2
) -> WhitelistExperimentResult:
    """Probe a whitelisted and a non-whitelisted site with one population.

    Every sampled client probes both sites; a proxied client's product
    intercepts the low-profile site always, the high-profile site only
    if that site is not on the product's whitelist.
    """
    population = ClientPopulation(study, seed=seed, scale=0.05)
    catalog = product_data.catalog_by_key()
    rng = random.Random(stable_hash(seed, "whitelist-experiment"))

    high_total = high_proxied = 0
    low_total = low_proxied = 0
    for _ in range(sessions):
        client = population.sample_client(rng)
        high_total += 1
        low_total += 1
        if not client.is_proxied:
            continue
        profile = catalog[client.product_key].profile
        low_proxied += 1  # no probed low-profile site is whitelisted
        if not profile.is_whitelisted(HIGH_PROFILE_SITE):
            high_proxied += 1

    whitelisting = tuple(
        sorted(
            spec.key
            for spec in product_data.catalog()
            if spec.profile.is_whitelisted(HIGH_PROFILE_SITE)
        )
    )
    return WhitelistExperimentResult(
        sessions=sessions,
        high_profile_total=high_total,
        high_profile_proxied=high_proxied,
        low_profile_total=low_total,
        low_profile_proxied=low_proxied,
        whitelisting_products=whitelisting,
    )
