"""The legitimate web PKI behind the probe sites.

Builds the CA hierarchy of Figure 2(a): a handful of trusted roots,
intermediates under them, and a certificate chain for every probe
site.  The authors' site gets its real-world issuer, DigiCert High
Assurance CA-3, and a 2048-bit key — the §5.2 baseline against which
substitute-certificate downgrades are judged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.keystore import KeyStore
from repro.crypto.rsa import synthetic_public_key
from repro.data.sites import AUTHORS_SITE, ProbeSite
from repro.util import stable_hash
from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import Certificate, Name, SubjectPublicKeyInfo
from repro.x509.store import RootStore

# Root and intermediate names mirror the paper's examples (§2, §5.2).
_ROOTS = (
    ("digicert-root", "DigiCert Inc", "DigiCert High Assurance EV Root CA"),
    ("geotrust-root", "GeoTrust Inc.", "GeoTrust Global CA"),
    ("cybertrust-root", "Baltimore", "Baltimore CyberTrust Root"),
)
_INTERMEDIATES = (
    ("digicert-ha-ca3", "digicert-root", "DigiCert Inc", "DigiCert High Assurance CA-3"),
    ("geotrust-ssl", "geotrust-root", "GeoTrust Inc.", "GeoTrust SSL CA"),
    ("cybertrust-public", "cybertrust-root", "Cybertrust Inc", "Cybertrust Public SureServer SV CA"),
)
# The authors' site really chained to DigiCert High Assurance CA-3.
_AUTHORS_INTERMEDIATE = "digicert-ha-ca3"
ORIGINAL_KEY_BITS = 2048


@dataclass
class WebPki:
    """The origin PKI: roots, intermediates and per-site chains."""

    roots: dict[str, CertificateAuthority] = field(default_factory=dict)
    intermediates: dict[str, CertificateAuthority] = field(default_factory=dict)
    site_chains: dict[str, list[Certificate]] = field(default_factory=dict)

    def root_store(self) -> RootStore:
        """A factory root store trusting exactly these roots."""
        return RootStore([ca.certificate for ca in self.roots.values()])

    def chain_for(self, hostname: str) -> list[Certificate]:
        return self.site_chains[hostname]

    def leaf_for(self, hostname: str) -> Certificate:
        return self.site_chains[hostname][0]


def build_web_pki(
    keystore: KeyStore, sites: list[ProbeSite], seed: int = 0
) -> WebPki:
    """Issue the full hierarchy for ``sites``."""
    pki = WebPki()
    for key, org, cn in _ROOTS:
        ca_key = keystore.key(f"webpki:{key}", 1024)
        pki.roots[key] = CertificateAuthority.self_signed(
            SelfSignedParams(subject=Name.build(common_name=cn, organization=org), key=ca_key)
        )
    for key, root_key, org, cn in _INTERMEDIATES:
        int_key = keystore.key(f"webpki:{key}", 1024)
        pki.intermediates[key] = pki.roots[root_key].issue_intermediate(
            Name.build(common_name=cn, organization=org), int_key
        )
    intermediate_keys = [key for key, _, _, _ in _INTERMEDIATES]
    for site in sites:
        if site.hostname == AUTHORS_SITE:
            issuer_key = _AUTHORS_INTERMEDIATE
        else:
            index = stable_hash(seed, "site-issuer", site.hostname) % len(
                intermediate_keys
            )
            issuer_key = intermediate_keys[index]
        issuer = pki.intermediates[issuer_key]
        rng = random.Random(stable_hash(seed, "site-key", site.hostname))
        n, e = synthetic_public_key(ORIGINAL_KEY_BITS, rng)
        leaf = issuer.issue(
            Name.build(
                common_name=site.hostname,
                organization=_site_org(site),
            ),
            SubjectPublicKeyInfo(n, e),
            hash_name="sha1",  # the 2014 default
            dns_names=[site.hostname, f"www.{site.hostname}"],
            serial_number=stable_hash(seed, "site-serial", site.hostname, bits=63) | 1,
        )
        pki.site_chains[site.hostname] = [leaf, issuer.certificate]
    return pki


def _site_org(site: ProbeSite) -> str:
    if site.hostname == AUTHORS_SITE:
        return "Brigham Young University"
    return site.hostname.split(".")[0].title()
