"""Study orchestration: the two measurement campaigns, end to end.

:class:`StudyRunner` drives everything the paper's §4–§6 describe:
build the origin-site PKI and network, set up the reporting server,
run the ad campaigns, sample the client population, execute
measurement sessions (wire or fast mode) and hand back a
:class:`StudyResult` whose database feeds the analysis layer.
"""

from repro.study.runner import (
    StudyConfig,
    StudyResult,
    StudyRunner,
    SubShard,
    plan_subshards,
)
from repro.study.webpki import WebPki, build_web_pki

__all__ = [
    "StudyConfig",
    "StudyResult",
    "StudyRunner",
    "SubShard",
    "WebPki",
    "build_web_pki",
    "plan_subshards",
]
