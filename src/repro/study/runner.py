"""End-to-end study execution (wire and fast modes).

Both modes share every decision-making component — population,
product profiles, forger, report database — and differ only in
whether bytes actually cross the simulated network:

* **wire** — every measurement runs the full §3 pipeline on netsim
  sockets: policy check, partial TLS handshake through a real MitM
  engine, HTTP report.  Used at small scale and by the tests.
* **fast** — the same sampling and the same forger, but matched
  traffic is aggregated per (country, site) and substitute
  certificates are generated without the socket dance.  Reaches the
  paper's 12.3M-measurement scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.adwords.campaign import AdCampaign, CampaignOutcome, run_study2_campaigns
from repro.crypto.keystore import KeyStore
from repro.data import countries as country_data
from repro.data import products as product_data
from repro.data import sites as site_data
from repro.data.sites import ProbeSite
from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.server import CombinedPolicyHttpServer, ReportingServer
from repro.measure.tool import MeasurementTool
from repro.netsim.network import Network
from repro.policy.model import PolicyFile
from repro.policy.server import PolicyServer
from repro.population.model import ClientPopulation, ClientProfile
from repro.proxy.engine import TlsProxyEngine
from repro.proxy.forger import SubstituteCertForger
from repro.study.webpki import WebPki, build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.util import stable_hash

# Per-study completion constants (§4.1/§4.2 totals; see data.sites).
_STUDY1_CLIENT_RUN = 0.65
_STUDY1_SITE_SUCCESS = 0.95


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one study run."""

    study: int  # 1 or 2
    seed: int = 0
    scale: float = 0.01  # fraction of the paper's measurement volume
    mode: str = "fast"  # "fast" or "wire"
    matched_sample_limit: int = 500

    def __post_init__(self) -> None:
        if self.study not in (1, 2):
            raise ValueError("study must be 1 or 2")
        if self.mode not in ("fast", "wire"):
            raise ValueError("mode must be 'fast' or 'wire'")
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")


@dataclass
class StudyResult:
    """Everything a study run produces."""

    config: StudyConfig
    database: ReportDatabase
    campaigns: list[CampaignOutcome]
    population: ClientPopulation
    pki: WebPki
    sites: list[ProbeSite]
    sessions_run: int = 0
    notes: dict[str, object] = field(default_factory=dict)


class StudyRunner:
    """Builds and executes one study."""

    def __init__(self, config: StudyConfig) -> None:
        self.config = config
        self.keystore = KeyStore(seed=config.seed)
        self.forger = SubstituteCertForger(self.keystore, seed=config.seed)
        self.sites = (
            site_data.study1_probe_sites()
            if config.study == 1
            else site_data.study2_probe_sites()
        )
        self.pki = build_web_pki(self.keystore, self.sites, seed=config.seed)
        self.site_ips = {
            site.hostname: f"203.0.113.{10 + index}"
            for index, site in enumerate(self.sites)
        }
        self._catalog = product_data.catalog_by_key()

    # -- shared knobs ---------------------------------------------------------

    def client_run_probability(self) -> float:
        if self.config.study == 1:
            return _STUDY1_CLIENT_RUN
        return site_data.CLIENT_RUN_PROBABILITY

    def site_success_probability(self, site: ProbeSite) -> float:
        """P(a session completes a measurement of ``site``)."""
        if self.config.study == 1:
            return _STUDY1_SITE_SUCCESS
        total_impressions = sum(c.impressions for c in country_data.STUDY2_CAMPAIGNS)
        return site_data.per_site_success_probability(site.host_type, total_impressions)

    def measurements_per_session(self) -> float:
        return sum(self.site_success_probability(site) for site in self.sites)

    def total_sessions(self) -> int:
        if self.config.study == 1:
            impressions = country_data.STUDY1_CAMPAIGN.impressions
        else:
            impressions = sum(c.impressions for c in country_data.STUDY2_CAMPAIGNS)
        return int(impressions * self.client_run_probability() * self.config.scale)

    def campaign_for(self, country: str) -> str:
        if self.config.study == 1:
            return country_data.STUDY1_CAMPAIGN.name
        if country in country_data.TARGETED_COUNTRIES:
            names = {
                "CN": "China",
                "EG": "Egypt",
                "PK": "Pakistan",
                "RU": "Russia",
                "UA": "Ukraine",
            }
            return names[country]
        return "Global"

    # -- entry point -------------------------------------------------------------

    def run(self) -> StudyResult:
        config = self.config
        population = ClientPopulation(
            config.study,
            seed=config.seed,
            scale=config.scale,
            measurements_per_session=self.measurements_per_session(),
        )
        database = ReportDatabase(matched_sample_limit=config.matched_sample_limit)
        campaign_rng = random.Random(stable_hash(config.seed, "campaigns"))
        if config.study == 1:
            campaigns = [AdCampaign.study1().run(campaign_rng)]
        else:
            campaigns = run_study2_campaigns(campaign_rng)
        result = StudyResult(
            config=config,
            database=database,
            campaigns=campaigns,
            population=population,
            pki=self.pki,
            sites=self.sites,
        )
        if config.mode == "wire":
            self._run_wire(result)
        else:
            self._run_fast(result)
        result.notes["certificates_forged"] = self.forger.certificates_forged
        result.notes["forge_cache_hits"] = self.forger.cache_hits
        return result

    # -- wire mode ------------------------------------------------------------------

    def _run_wire(self, result: StudyResult) -> None:
        config = self.config
        population = result.population
        network = Network()
        server = self._build_wire_network(network, result)
        rng = random.Random(stable_hash(config.seed, "wire-sessions"))
        tool = MeasurementTool()
        client_hosts: dict[tuple[str, int], object] = {}

        n_sessions = self.total_sessions()
        for _ in range(n_sessions):
            result.database.failures.sessions_started += 1
            profile = population.sample_client(rng)
            client = self._client_host(network, profile, client_hosts)
            chosen = [
                site
                for site in self.sites
                if rng.random() < self.site_success_probability(site)
            ]
            if not chosen:
                continue
            outcome = tool.run_session(client, chosen, product_key=profile.product_key)
            result.database.failures.policy_denied += outcome.policy_denied
            result.database.failures.connect_failed += outcome.connect_failed
            result.database.failures.probe_failed += outcome.probe_failed
            result.database.failures.report_failed += outcome.report_failed
            result.sessions_run += 1
        result.notes["reporting_server"] = server

    def _build_wire_network(self, network: Network, result: StudyResult):
        """Sites, policy servers and the reporting stack."""
        population = result.population
        server = ReportingServer(
            result.database,
            population.build_geoip(),
            study=self.config.study,
            campaign=self.campaign_for("??"),
            public_roots=self.pki.root_store(),
        )
        permissive = PolicyFile.permissive("443")
        for site in self.sites:
            host = network.add_host(site.hostname, ip=self.site_ips[site.hostname])
            tls = TlsCertServer(self.pki.chain_for(site.hostname))
            host.listen(443, tls.factory)
            if site.hostname == site_data.AUTHORS_SITE:
                combined = CombinedPolicyHttpServer(permissive, server.http)
                host.listen(80, combined.factory)
            else:
                policy = PolicyServer(permissive)
                host.listen(843, policy.factory)
        # Authoritative leaves, captured from a clean vantage point.
        vantage = network.add_host("vantage.measurement.example")
        probe = ProbeClient(vantage)
        for site in self.sites:
            sample = probe.probe(site.hostname, 443)
            if not sample.ok:
                raise RuntimeError(f"vantage probe failed for {site.hostname}")
            server.expect(site.hostname, sample.leaf.fingerprint(), site.host_type)
        return server

    def _client_host(self, network: Network, profile: ClientProfile, cache: dict):
        key = (profile.country, profile.client_index)
        host = cache.get(key)
        if host is not None:
            return host
        hostname = f"client-{profile.country}-{profile.client_index}.example"
        host = network.add_host(hostname, ip=profile.ip)
        if profile.product_key is not None:
            spec = self._catalog[profile.product_key]
            engine = TlsProxyEngine(
                spec.profile,
                self.forger,
                upstream_host=host,
                upstream_trust=self.pki.root_store(),
                client_bucket=profile.client_bucket,
                rng=random.Random(
                    stable_hash(self.config.seed, "engine", profile.country, profile.client_index)
                ),
            )
            host.add_interceptor(engine)
        cache[key] = host
        return host

    # -- fast mode -----------------------------------------------------------------

    def _run_fast(self, result: StudyResult) -> None:
        config = self.config
        population = result.population
        database = result.database
        np_rng = np.random.default_rng(stable_hash(config.seed, "fast"))
        rng = random.Random(stable_hash(config.seed, "fast-records"))

        n_sessions = self.total_sessions()
        plans = population.plans
        weights = np.array([plan.measurement_weight for plan in plans])
        session_counts = np_rng.multinomial(n_sessions, weights / weights.sum())

        site_success = {
            site.hostname: self.site_success_probability(site) for site in self.sites
        }
        for plan, n_country in zip(plans, session_counts):
            if n_country == 0:
                continue
            database.failures.sessions_started += int(n_country)
            result.sessions_run += int(n_country)
            n_proxied = int(np_rng.binomial(n_country, plan.proxy_rate))
            n_clean = int(n_country) - n_proxied
            # Matched majority: aggregate counters per site.
            for site in self.sites:
                count = int(np_rng.binomial(n_clean, site_success[site.hostname]))
                database.add_matched_bulk(
                    plan.code, site.host_type, site.hostname, count
                )
            if n_proxied:
                self._fast_proxied_sessions(
                    result, plan.code, n_proxied, np_rng, rng, site_success
                )

    def _fast_proxied_sessions(
        self,
        result: StudyResult,
        country: str,
        n_proxied: int,
        np_rng,
        rng,
        site_success: dict[str, float],
    ) -> None:
        population = result.population
        specs = product_data.catalog()
        shares = np.array(
            [population.expected_product_share(spec.key, country) for spec in specs]
        )
        if shares.sum() == 0:
            return
        product_counts = np_rng.multinomial(n_proxied, shares / shares.sum())
        plan = population.plan(country)
        campaign = self.campaign_for(country)
        for spec, count in zip(specs, product_counts):
            for _ in range(int(count)):
                client_index = rng.randrange(plan.pool_size)
                ip = population._client_ip(plan, client_index, spec.key)
                bucket = client_index % product_data.NUM_CLIENT_BUCKETS
                for site in self.sites:
                    if rng.random() >= site_success[site.hostname]:
                        continue
                    self._record_proxied_measurement(
                        result, spec, country, campaign, ip, bucket, site
                    )

    def _record_proxied_measurement(
        self,
        result: StudyResult,
        spec,
        country: str,
        campaign: str,
        ip: str,
        bucket: int,
        site: ProbeSite,
    ) -> None:
        database = result.database
        profile = spec.profile
        if profile.is_whitelisted(site.hostname):
            # The proxy relays untouched: the client sees the real chain.
            database.add_matched_bulk(country, site.host_type, site.hostname, 1)
            return
        upstream_leaf = self.pki.leaf_for(site.hostname)
        forged = self.forger.forge(
            profile,
            upstream_leaf,
            site.hostname,
            site_ip=self.site_ips[site.hostname],
            client_bucket=bucket,
        )
        record = MeasurementRecord(
            study=self.config.study,
            campaign=campaign,
            client_ip=ip,
            country=country,
            hostname=site.hostname,
            host_type=site.host_type,
            mismatch=True,
            leaf=CertSummary.from_certificate(forged.leaf),
            chain=tuple(CertSummary.from_certificate(c) for c in forged.ca_chain),
            via="fast",
            product_key=spec.key,
        )
        database.add_mismatch(record)
