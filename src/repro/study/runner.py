"""End-to-end study execution (wire and fast modes).

Both modes share every decision-making component — population,
product profiles, forger, report database — and differ only in
whether bytes actually cross the simulated network:

* **wire** — every measurement runs the full §3 pipeline on netsim
  sockets: policy check, partial TLS handshake through a real MitM
  engine, HTTP report.  Used at small scale and by the tests.
* **fast** — the same sampling and the same forger, but matched
  traffic is aggregated per (country, site) and substitute
  certificates are generated without the socket dance.  Reaches the
  paper's 12.3M-measurement scale.

Fast mode is *sharded by country, work-stolen by sub-shard*: the
global session multinomial is drawn once, then every country plan
becomes one or more independent sub-shards.  Countries whose session
count exceeds ``StudyConfig.subshard_sessions`` split into fixed
sub-shards (each seeded ``stable_hash(seed, country, sub)``; unsplit
countries keep the historical ``stable_hash(seed, country)`` stream),
so the work units a pool schedules are roughly even instead of
mirroring the paper's heavily skewed country sizes.  Sub-shards run
inline (``workers=1``) or are submitted largest-first to one shared
:class:`ProcessPoolExecutor` queue that idle workers pull from —
work-stealing in effect, so a straggler country no longer serialises
the run.  Results are folded back through
:meth:`ReportDatabase.merge` in fixed (plan order, sub index) order,
so the resulting database is byte-identical for any worker count.

With a key vault attached (``StudyConfig.vault``) the parent warms
every RSA key a fast run can touch *once* before the pool spins up;
worker processes then load key material from disk in microseconds
instead of regenerating their shard's CA keys from scratch — the
difference between ``workers=N`` being N-times faster and N-times
slower.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.adwords.campaign import AdCampaign, CampaignOutcome, run_study2_campaigns
from repro.crypto.keystore import KeyStore
from repro.faults.plan import Backoff, FaultPlan
from repro.faults.recovery import FaultGate, ResilientStoreWriter, apply_op, database_ops
from repro.faults.wire import FaultRelay, server_fault_hook
from repro.data import countries as country_data
from repro.data import products as product_data
from repro.data import sites as site_data
from repro.data.sites import ProbeSite
from repro.measure.database import ReportDatabase
from repro.measure.records import CertSummary, MeasurementRecord
from repro.measure.server import CombinedPolicyHttpServer, ReportingServer
from repro.measure.store import ReportStore
from repro.measure.tool import MeasurementTool
from repro.netsim.loop import WireScheduler
from repro.netsim.network import Network, PathHop
from repro.obs.metrics import SHARD_SESSION_BUCKETS, MetricsRegistry
from repro.policy.model import PolicyFile
from repro.policy.server import PolicyServer
from repro.population.model import ClientPopulation, ClientProfile
from repro.proxy.engine import TlsProxyEngine
from repro.proxy.forger import SubstituteCertForger
from repro.study.webpki import WebPki, build_web_pki
from repro.tls.probe import ProbeClient
from repro.tls.server import TlsCertServer
from repro.util import stable_hash

# Per-study completion constants (§4.1/§4.2 totals; see data.sites).
_STUDY1_CLIENT_RUN = 0.65
_STUDY1_SITE_SUCCESS = 0.95


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one study run."""

    study: int  # 1 or 2
    seed: int = 0
    scale: float = 0.01  # fraction of the paper's measurement volume
    mode: str = "fast"  # "fast" or "wire"
    matched_sample_limit: int = 500
    # Process-pool width for fast-mode country shards.  1 = run the
    # shards inline; results are identical either way.  In wire mode
    # ``workers > 1`` is folded into ``wire_concurrency`` (one process
    # multiplexes the sessions instead of a pool).
    workers: int = 1
    # Wire-mode admission cap: how many client session chains the
    # cooperative scheduler keeps in flight at once.  1 = the
    # historical serial path; any value produces byte-identical
    # signatures, handshake event logs and deterministic metrics —
    # concurrency changes wall-clock and loop ticks, never results.
    wire_concurrency: int = 1
    # Countries above this session count split into even sub-shards so
    # the pool's work units are comparable in size.  The split plan
    # depends only on (counts, this knob), never on worker count.
    subshard_sessions: int = 25_000
    # Directory of a persistent key vault (repro.crypto.vault); None
    # disables disk persistence (the REPRO_KEY_VAULT environment
    # variable still applies).  A plain string keeps the config
    # picklable for worker initialisation.
    vault: str | None = None
    # Directory to stream fast-mode shard outcomes into as segmented
    # JSONL (repro.measure.store) instead of merging them into the
    # in-memory database; analysis then reads the segments.
    report_store: str | None = None
    # A repro.faults plan string ("reset=0.05,429=0.02,crash-flush=3,
    # ..."); None runs fault-free.  A plain string keeps the config
    # picklable; the plan's seed defaults to the study seed.
    faults: str | None = None

    def __post_init__(self) -> None:
        if self.study not in (1, 2):
            raise ValueError("study must be 1 or 2")
        if self.mode not in ("fast", "wire"):
            raise ValueError("mode must be 'fast' or 'wire'")
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.wire_concurrency < 1:
            raise ValueError("wire_concurrency must be >= 1")
        if self.wire_concurrency > 1 and self.mode != "wire":
            raise ValueError("wire_concurrency applies to wire mode only")
        if self.workers > 1 and self.mode == "wire":
            # Wire mode runs in one process; a workers request means
            # "run that many sessions concurrently", which the
            # cooperative scheduler does without a pool.
            if self.wire_concurrency == 1:
                object.__setattr__(self, "wire_concurrency", self.workers)
            object.__setattr__(self, "workers", 1)
        if self.subshard_sessions < 1:
            raise ValueError("subshard_sessions must be >= 1")
        if self.report_store is not None and self.mode != "fast":
            raise ValueError("report_store applies to fast mode only")
        if self.faults is not None:
            plan = FaultPlan.parse(self.faults, seed=self.seed)  # syntax check
            if plan.has_crashes() and self.report_store is None:
                raise ValueError(
                    "crash-<point> faults need --report-store (fast mode)"
                )

    def fault_plan(self) -> FaultPlan | None:
        if self.faults is None:
            return None
        return FaultPlan.parse(self.faults, seed=self.seed)


@dataclass
class StudyResult:
    """Everything a study run produces."""

    config: StudyConfig
    database: ReportDatabase
    campaigns: list[CampaignOutcome]
    population: ClientPopulation
    pki: WebPki
    sites: list[ProbeSite]
    sessions_run: int = 0
    notes: dict[str, object] = field(default_factory=dict)
    # Full metrics snapshot (deterministic / process / timing); the
    # deterministic section is worker- and executor-invariant.
    metrics: dict = field(default_factory=dict)


class StudyRunner:
    """Builds and executes one study."""

    def __init__(self, config: StudyConfig) -> None:
        self.config = config
        self.obs = MetricsRegistry()
        self.keystore = KeyStore(
            seed=config.seed, vault=config.vault, registry=self.obs
        )
        self.forger = SubstituteCertForger(self.keystore, seed=config.seed)
        self.sites = (
            site_data.study1_probe_sites()
            if config.study == 1
            else site_data.study2_probe_sites()
        )
        self.pki = build_web_pki(self.keystore, self.sites, seed=config.seed)
        self.site_ips = {
            site.hostname: f"203.0.113.{10 + index}"
            for index, site in enumerate(self.sites)
        }
        self._catalog = product_data.catalog_by_key()
        self._specs = product_data.catalog()
        # (product, site, bucket) → (leaf summary, chain summaries).
        self._fast_summary_cache: dict[tuple, tuple] = {}
        # Per-site completion probabilities, in site order (fast mode
        # draws them as one vector per shard).
        self._site_probs = np.array(
            [self.site_success_probability(site) for site in self.sites]
        )
        # RSA generations observed inside worker processes (set by
        # sharded runs; None for inline execution).
        self._worker_keys_generated: int | None = None
        # Test hook: a seeded random.Random here shuffles the wire
        # scheduler's per-tick task order, which the interleaving
        # determinism property uses to prove results are
        # schedule-independent.
        self._wire_shuffle: random.Random | None = None

    def warm_keys(self) -> None:
        """Touch every RSA key a fast run can need.

        The web-PKI keys were already generated (or vault-loaded) when
        this runner was built; this adds every product's signing-CA
        keys, including issuer variants and — for issuer-copying
        profiles — the CAs minted per upstream intermediate.  With a
        vault attached the material persists, so worker processes and
        later runs load it instead of re-running Miller–Rabin.
        """
        upstream_issuers = {
            self.pki.leaf_for(site.hostname).issuer.rfc4514(): self.pki.leaf_for(
                site.hostname
            ).issuer
            for site in self.sites
        }
        for spec in self._specs:
            profile = spec.profile
            if profile.copies_upstream_issuer:
                for issuer in upstream_issuers.values():
                    self.forger.authority_for(profile, issuer)
            else:
                self.forger.warm(profile)

    # -- shared knobs ---------------------------------------------------------

    def client_run_probability(self) -> float:
        if self.config.study == 1:
            return _STUDY1_CLIENT_RUN
        return site_data.CLIENT_RUN_PROBABILITY

    def site_success_probability(self, site: ProbeSite) -> float:
        """P(a session completes a measurement of ``site``)."""
        if self.config.study == 1:
            return _STUDY1_SITE_SUCCESS
        total_impressions = sum(c.impressions for c in country_data.STUDY2_CAMPAIGNS)
        return site_data.per_site_success_probability(site.host_type, total_impressions)

    def measurements_per_session(self) -> float:
        return sum(self.site_success_probability(site) for site in self.sites)

    def total_sessions(self) -> int:
        if self.config.study == 1:
            impressions = country_data.STUDY1_CAMPAIGN.impressions
        else:
            impressions = sum(c.impressions for c in country_data.STUDY2_CAMPAIGNS)
        return int(impressions * self.client_run_probability() * self.config.scale)

    def campaign_for(self, country: str) -> str:
        if self.config.study == 1:
            return country_data.STUDY1_CAMPAIGN.name
        if country in country_data.TARGETED_COUNTRIES:
            names = {
                "CN": "China",
                "EG": "Egypt",
                "PK": "Pakistan",
                "RU": "Russia",
                "UA": "Ukraine",
            }
            return names[country]
        return "Global"

    # -- entry point -------------------------------------------------------------

    def run(self) -> StudyResult:
        config = self.config
        population = ClientPopulation(
            config.study,
            seed=config.seed,
            scale=config.scale,
            measurements_per_session=self.measurements_per_session(),
        )
        database = ReportDatabase(matched_sample_limit=config.matched_sample_limit)
        campaign_rng = random.Random(stable_hash(config.seed, "campaigns"))
        if config.study == 1:
            campaigns = [AdCampaign.study1().run(campaign_rng)]
        else:
            campaigns = run_study2_campaigns(campaign_rng)
        result = StudyResult(
            config=config,
            database=database,
            campaigns=campaigns,
            population=population,
            pki=self.pki,
            sites=self.sites,
        )
        with self.obs.span("study.run", mode=config.mode):
            if config.mode == "wire":
                self._run_wire(result)
            else:
                self._run_fast(result)
        result.notes["certificates_forged"] = self.forger.certificates_forged
        result.notes["forge_cache_hits"] = self.forger.cache_hits
        # Forge traffic depends on process boundaries (each worker pays
        # its own cache misses), so it lands in the process section.
        self.obs.process_counter("forger.certificates_forged").inc(
            self.forger.certificates_forged
        )
        self.obs.process_counter("forger.cache_hits").inc(self.forger.cache_hits)
        result.metrics = self.obs.snapshot()
        return result

    # -- wire mode ------------------------------------------------------------------

    def _run_wire(self, result: StudyResult) -> None:
        """Wire mode: plan all sessions, then execute serially or scheduled.

        Planning and execution are strictly separated so concurrency
        cannot touch the sampling streams: every draw from the session
        rng (client sampling, per-site completion) happens in one
        serial pass, producing an ordered session plan.  At
        ``wire_concurrency == 1`` the plan is executed with the
        historical inline loop; above 1 the sessions become generator
        chains on a :class:`WireScheduler` — one chain per client host,
        so each client's interception engine sees its connections in
        exactly the serial order and per-engine handshake event logs
        stay byte-identical.  Either way the report multiset, the
        deterministic metrics and ``aggregate_signature()`` are the
        same; only wall-clock and loop ticks change.
        """
        config = self.config
        population = result.population
        network = Network()
        with self.obs.span("study.wire_setup"):
            server = self._build_wire_network(network, result)
        rng = random.Random(stable_hash(config.seed, "wire-sessions"))
        plan = config.fault_plan()
        self._fault_hop = None
        if plan is not None:
            tool = MeasurementTool(
                registry=self.obs,
                backoff=Backoff(plan.seed),
                report_retry_limit=plan.retries,
                session_deadline_ticks=plan.deadline,
                fault_plan=plan,
            )
            if plan.has_wire_faults():
                # One shared on-path hop: every client's route to the
                # reporting server crosses the fault relay.
                relay = FaultRelay(
                    plan, self.obs, hostname=site_data.AUTHORS_SITE, port=80
                )
                self._fault_hop = PathHop("chaos-relay")
                self._fault_hop.add_interceptor(relay)
            if plan.has_server_faults():
                server.fault_hook = server_fault_hook(plan, self.obs)
        else:
            tool = MeasurementTool(registry=self.obs)
        client_hosts: dict[tuple[str, int], object] = {}

        n_sessions = self.total_sessions()
        c_sessions = self.obs.counter("study.sessions", mode="wire")

        def fold(outcome) -> None:
            result.database.failures.policy_denied += outcome.policy_denied
            result.database.failures.connect_failed += outcome.connect_failed
            result.database.failures.probe_failed += outcome.probe_failed
            result.database.failures.report_failed += outcome.report_failed
            result.sessions_run += 1
            c_sessions.inc()

        with self.obs.span("study.wire_sessions"):
            # Planning pass: every rng draw, in the historical order.
            planned: list[tuple[object, str | None, list[ProbeSite], int]] = []
            for ordinal in range(n_sessions):
                result.database.failures.sessions_started += 1
                profile = population.sample_client(rng)
                client = self._client_host(network, profile, client_hosts)
                chosen = [
                    site
                    for site in self.sites
                    if rng.random() < self.site_success_probability(site)
                ]
                if not chosen:
                    continue
                planned.append((client, profile.product_key, chosen, ordinal))

            task_failures = 0
            if config.wire_concurrency <= 1:
                for client, product_key, chosen, ordinal in planned:
                    fold(
                        tool.run_session(
                            client,
                            chosen,
                            product_key=product_key,
                            session_ordinal=ordinal,
                        )
                    )
            else:
                task_failures = self._run_wire_scheduled(tool, planned, fold)
        # Task failures are deterministic (a session crash is a bug,
        # not a scheduling artefact), so the counter lives in the
        # deterministic section — created in both execution paths so
        # serial and concurrent snapshots stay byte-identical.
        self.obs.counter("loop.task_failures").inc(task_failures)
        result.notes["reporting_server"] = server
        result.notes["wire_concurrency"] = config.wire_concurrency
        result.notes["wire_client_hosts"] = client_hosts

    def _run_wire_scheduled(self, tool, planned, fold) -> int:
        """Execute the session plan concurrently; returns task failures.

        One chain task per client host runs that client's sessions
        sequentially (``yield from``), so per-engine connection order —
        and with it every handshake event log and engine rng stream —
        matches the serial execution exactly.  The admission cap bounds
        chains in flight; the delivery queue is drained between ticks.
        """
        chains: dict[object, list[tuple[str | None, list, int]]] = {}
        for client, product_key, chosen, ordinal in planned:
            chains.setdefault(client, []).append((product_key, chosen, ordinal))

        inflight = {"now": 0, "peak": 0}

        def chain(client, work):
            def task():
                inflight["now"] += 1
                if inflight["now"] > inflight["peak"]:
                    inflight["peak"] = inflight["now"]
                try:
                    for product_key, chosen, ordinal in work:
                        outcome = yield from tool.session_task(
                            client,
                            chosen,
                            product_key=product_key,
                            session_ordinal=ordinal,
                        )
                        fold(outcome)
                finally:
                    inflight["now"] -= 1

            return task

        network = next(iter(chains)).network if chains else None
        if network is None:
            return 0
        scheduler = WireScheduler(
            network,
            max_active=self.config.wire_concurrency,
            shuffle=getattr(self, "_wire_shuffle", None),
        )
        for client, work in chains.items():
            scheduler.spawn(chain(client, work), label=client.hostname)
        scheduler.run()
        # Concurrency-shaped telemetry (loop ticks, queue depth,
        # in-flight high-water) depends on the admission cap by
        # definition, so it lands in the process section — the
        # deterministic section stays invariant across concurrency.
        loop = scheduler.loop
        self.obs.process_counter("loop.ticks").inc(loop.ticks)
        self.obs.process_counter("loop.completed").inc(loop.completed)
        self.obs.process_gauge("wire.sessions_inflight").set(inflight["peak"])
        self.obs.process_gauge("wire.chains_peak_active").set(loop.peak_active)
        self.obs.process_gauge("wire.queue_depth_peak").set(
            network.queue.max_depth
        )
        self.obs.process_counter("wire.queue_delivered").inc(
            network.queue.delivered
        )
        self.obs.process_counter("wire.queue_dropped").inc(network.queue.dropped)
        return loop.task_failures

    def _build_wire_network(self, network: Network, result: StudyResult):
        """Sites, policy servers and the reporting stack."""
        population = result.population
        server = ReportingServer(
            result.database,
            population.build_geoip(),
            study=self.config.study,
            campaign=self.campaign_for("??"),
            public_roots=self.pki.root_store(),
            registry=self.obs,
        )
        permissive = PolicyFile.permissive("443")
        for site in self.sites:
            host = network.add_host(site.hostname, ip=self.site_ips[site.hostname])
            tls = TlsCertServer(self.pki.chain_for(site.hostname))
            host.listen(443, tls.factory)
            if site.hostname == site_data.AUTHORS_SITE:
                combined = CombinedPolicyHttpServer(permissive, server.http)
                host.listen(80, combined.factory)
            else:
                policy = PolicyServer(permissive)
                host.listen(843, policy.factory)
        # Authoritative leaves, captured from a clean vantage point.
        vantage = network.add_host("vantage.measurement.example")
        probe = ProbeClient(vantage, registry=self.obs)
        for site in self.sites:
            sample = probe.probe(site.hostname, 443)
            if not sample.ok:
                raise RuntimeError(f"vantage probe failed for {site.hostname}")
            server.expect(site.hostname, sample.leaf.fingerprint(), site.host_type)
        return server

    def _client_host(self, network: Network, profile: ClientProfile, cache: dict):
        key = (profile.country, profile.client_index)
        host = cache.get(key)
        if host is not None:
            return host
        hostname = f"client-{profile.country}-{profile.client_index}.example"
        host = network.add_host(hostname, ip=profile.ip)
        if getattr(self, "_fault_hop", None) is not None:
            host.access_path.append(self._fault_hop)
        if profile.product_key is not None:
            spec = self._catalog[profile.product_key]
            engine = TlsProxyEngine(
                spec.profile,
                self.forger,
                upstream_host=host,
                upstream_trust=self.pki.root_store(),
                client_bucket=profile.client_bucket,
                rng=random.Random(
                    stable_hash(self.config.seed, "engine", profile.country, profile.client_index)
                ),
                registry=self.obs,
            )
            host.add_interceptor(engine)
        cache[key] = host
        return host

    # -- fast mode -----------------------------------------------------------------

    def _run_fast(self, result: StudyResult) -> None:
        """Sub-sharded fast mode (inline or work-stealing pool).

        The session multinomial is drawn once from the global stream;
        every country plan then splits into a deterministic sub-shard
        plan (a function of its count and ``subshard_sessions`` only),
        and each sub-shard runs on its own seeded randomness.  Neither
        the split nor the seeding depends on worker count or execution
        order, and outcomes merge back in fixed (plan, sub) order — so
        the database is byte-identical for any ``workers`` value.
        """
        config = self.config
        population = result.population
        with self.obs.span("study.plan"):
            np_rng = np.random.default_rng(stable_hash(config.seed, "fast"))

            n_sessions = self.total_sessions()
            plans = population.plans
            weights = np.array([plan.measurement_weight for plan in plans])
            session_counts = np_rng.multinomial(n_sessions, weights / weights.sum())
            subshards = [
                shard
                for plan, count in zip(plans, session_counts)
                if count
                for shard in plan_subshards(
                    plan.code, int(count), config.subshard_sessions
                )
            ]
        if config.workers > 1 and len(subshards) > 1:
            outcomes = self._run_fast_sharded(subshards)
        else:
            outcomes = [
                self._run_fast_shard(population, shard) for shard in subshards
            ]
        plan = config.fault_plan()
        store = None
        writer = None
        if config.report_store is not None:
            if plan is not None:
                # Delivery rides through the fault gate and any store
                # crash points, with crash-then-reopen supervision.
                writer = ResilientStoreWriter(
                    config.report_store, plan, registry=self.obs
                )
                store = writer.store
            else:
                store = ReportStore(config.report_store, registry=self.obs)
            if store.segments.segment_paths():
                raise ValueError(
                    f"report store {config.report_store!r} already has segments"
                )
        # Fold the shard snapshots back in fixed (plan, sub) order —
        # the same discipline ReportDatabase.merge follows — so the
        # deterministic section is byte-identical for any worker count.
        # Fault decisions key on the global op ordinal assigned here,
        # which inherits that worker-count invariance.
        with self.obs.span("study.merge"):
            if writer is not None:
                ops: list[tuple] = []
                for outcome in outcomes:
                    ops.extend(database_ops(outcome.database))
                    result.sessions_run += outcome.sessions_run
                    self.obs.merge_snapshot(outcome.metrics)
                result.notes["faults"] = writer.deliver(ops)
            elif plan is not None:
                gate = FaultGate(plan, self.obs)
                index = 0
                for outcome in outcomes:
                    for op in database_ops(outcome.database):
                        if gate.attempt(index):
                            apply_op(result.database, op)
                        index += 1
                    result.sessions_run += outcome.sessions_run
                    self.obs.merge_snapshot(outcome.metrics)
                result.notes["faults"] = {
                    "plan": plan.describe(),
                    "submitted": index,
                    "delivered": index - len(gate.dropped),
                    "failed": len(gate.dropped),
                    "retries": gate.retries,
                    "injected": dict(sorted(gate.injected.items())),
                }
            else:
                for outcome in outcomes:
                    if store is not None:
                        store.append_database(outcome.database)
                    else:
                        result.database.merge(outcome.database)
                    result.sessions_run += outcome.sessions_run
                    self.obs.merge_snapshot(outcome.metrics)
        if store is not None:
            if writer is None:
                store.close()  # writer.deliver() closes its own store
            result.notes["report_store"] = config.report_store
        result.notes["fast_workers"] = config.workers
        result.notes["fast_shards"] = len({shard.code for shard in subshards})
        result.notes["fast_subshards"] = len(subshards)
        result.notes["keys_generated"] = self.keystore.keys_generated
        if self._worker_keys_generated is not None:
            result.notes["worker_keys_generated"] = self._worker_keys_generated

    def _run_fast_sharded(self, subshards: list["SubShard"]) -> list["FastShardOutcome"]:
        """Drain the sub-shard queue over worker processes.

        Sub-shards are submitted to one shared executor queue in
        largest-first (LPT) order, and whichever worker goes idle pulls
        the next one — work-stealing, so a skewed country no longer
        pins the whole run to one process.  Results are reassembled in
        the fixed (plan, sub) order regardless of completion order.

        Each worker rebuilds the runner from the (picklable) config —
        every certificate byte is derived from the seed, so the shard
        databases are identical to inline execution.  With a vault
        configured, the parent warms every key first so workers load
        material from disk instead of regenerating it (their
        ``keys_generated`` deltas come back in the outcomes, which the
        warm-vault tests pin to zero).  Forge-counter deltas fold back
        into this runner's forger so ``run()`` notes stay meaningful;
        cache hits are per-process, hence lower than a single shared
        cache would score.
        """
        config = self.config
        if self.keystore.vault is not None:
            with self.obs.span("study.warm_keys"):
                self.warm_keys()
        workers = min(config.workers, len(subshards))
        queue_order = sorted(
            range(len(subshards)),
            key=lambda i: (-subshards[i].sessions, i),
        )
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_fast_worker,
            initargs=(config,),
        ) as pool:
            futures = {
                index: pool.submit(_run_fast_shard_task, subshards[index])
                for index in queue_order
            }
            outcomes = [futures[index].result() for index in range(len(subshards))]
        for outcome in outcomes:
            self.forger.certificates_forged += outcome.certificates_forged
            self.forger.cache_hits += outcome.cache_hits
        self._worker_keys_generated = sum(o.keys_generated for o in outcomes)
        return outcomes

    def _run_fast_shard(
        self, population: ClientPopulation, shard: "SubShard"
    ) -> "FastShardOutcome":
        """Run one sub-shard's sessions into a fresh shard database.

        Shard metrics land on a *fresh* registry whose snapshot
        travels back in the outcome, exactly like the shard database —
        the parent merges both in fixed plan order, so worker count
        never shows in the deterministic section.
        """
        config = self.config
        plan = population.plan(shard.code)
        n_country = shard.sessions
        database = ReportDatabase(matched_sample_limit=config.matched_sample_limit)
        obs = MetricsRegistry()
        np_rng = np.random.default_rng(stable_hash(*shard.seed_parts(config.seed)))
        forged_before = self.forger.certificates_forged
        hits_before = self.forger.cache_hits
        keys_before = self.keystore.keys_generated
        with obs.span("study.shard", country=shard.code):
            database.failures.sessions_started += n_country
            n_proxied = int(np_rng.binomial(n_country, plan.proxy_rate))
            n_clean = n_country - n_proxied
            obs.inc("study.sessions", n=n_country, mode="fast")
            obs.inc("study.sessions_proxied", n=n_proxied)
            obs.histogram("study.shard_sessions", SHARD_SESSION_BUCKETS).observe(
                n_country
            )
            c_matched = obs.counter("study.measurements", verdict="matched")
            # Matched majority: one vectorised draw across all sites.
            for site, count in zip(
                self.sites, np_rng.binomial(n_clean, self._site_probs)
            ):
                database.add_matched_bulk(
                    plan.code, site.host_type, site.hostname, int(count)
                )
                c_matched.inc(int(count))
            if n_proxied:
                self._fast_proxied_sessions(
                    database, population, plan, n_proxied, np_rng, obs
                )
        return FastShardOutcome(
            code=shard.code,
            database=database,
            sessions_run=n_country,
            certificates_forged=self.forger.certificates_forged - forged_before,
            cache_hits=self.forger.cache_hits - hits_before,
            keys_generated=self.keystore.keys_generated - keys_before,
            metrics=obs.snapshot(),
        )

    def _fast_proxied_sessions(
        self,
        database: ReportDatabase,
        population: ClientPopulation,
        plan,
        n_proxied: int,
        np_rng,
        obs: MetricsRegistry,
    ) -> None:
        """Vectorised proxied-session sampling for one country shard.

        Client slots are drawn as one numpy batch per product and
        grouped by bucket; a single Bernoulli matrix per product then
        decides every (session, site) completion at once, so each
        (product, site, bucket) cell realises its binomial count while
        per-session independence across sites — which the
        distinct-IP/dispersion analyses read — is preserved.
        Certificates and summaries are shared per cell, so the
        per-measurement Python work collapses to one record
        construction.
        """
        shares = population.product_share_vector(plan.code)
        if shares.sum() == 0:
            return
        product_counts = np_rng.multinomial(n_proxied, shares / shares.sum())
        campaign = self.campaign_for(plan.code)
        n_buckets = product_data.NUM_CLIENT_BUCKETS
        c_mismatch = obs.counter("study.measurements", verdict="mismatch")
        c_relayed = obs.counter("study.whitelisted_relays")
        # Cells realised in this shard, counted at the `_fast_summaries`
        # call sites: unlike forge/cache counters (whose split depends
        # on which process served which shard) the cell count is a pure
        # function of the shard's own draws.
        c_cells = obs.counter("study.forge_cells")
        for spec, count in zip(self._specs, product_counts):
            count = int(count)
            if not count:
                continue
            profile = spec.profile
            client_indices = np_rng.integers(0, plan.pool_size, size=count)
            buckets = client_indices % n_buckets
            # Stable sort groups each bucket's sessions contiguously in
            # (random) draw order.
            order = np.argsort(buckets, kind="stable")
            grouped = client_indices[order]
            bounds = np.searchsorted(buckets[order], np.arange(n_buckets + 1))
            # Every (session, site) completion in one draw.
            completions = (
                np_rng.random((count, len(self.sites))) < self._site_probs
            )[order]
            for site_index, site in enumerate(self.sites):
                column = completions[:, site_index]
                if profile.is_whitelisted(site.hostname):
                    # The proxy relays untouched: the client sees the
                    # real chain — only the aggregate count matters.
                    database.add_matched_bulk(
                        plan.code, site.host_type, site.hostname, int(column.sum())
                    )
                    c_relayed.inc(int(column.sum()))
                    continue
                for bucket in range(n_buckets):
                    segment = slice(int(bounds[bucket]), int(bounds[bucket + 1]))
                    members = grouped[segment][column[segment]]
                    if not members.size:
                        continue
                    leaf, chain = self._fast_summaries(spec, site, bucket)
                    c_cells.inc()
                    c_mismatch.inc(int(members.size))
                    for client_index in members:
                        database.add_mismatch(
                            MeasurementRecord(
                                study=self.config.study,
                                campaign=campaign,
                                client_ip=population.client_ip(
                                    plan.code, int(client_index), spec.key
                                ),
                                country=plan.code,
                                hostname=site.hostname,
                                host_type=site.host_type,
                                mismatch=True,
                                leaf=leaf,
                                chain=chain,
                                via="fast",
                                product_key=spec.key,
                            )
                        )

    def _fast_summaries(
        self, spec, site: ProbeSite, bucket: int
    ) -> tuple[CertSummary, tuple[CertSummary, ...]]:
        """Forge (or fetch) the (product, site, bucket) substitute chain
        and its analysis summaries — computed once per cell, not per
        measurement."""
        cache_key = (spec.key, site.hostname, bucket)
        cached = self._fast_summary_cache.get(cache_key)
        if cached is not None:
            return cached
        forged = self.forger.forge(
            spec.profile,
            self.pki.leaf_for(site.hostname),
            site.hostname,
            site_ip=self.site_ips[site.hostname],
            client_bucket=bucket,
        )
        summaries = (
            CertSummary.from_certificate(forged.leaf),
            tuple(CertSummary.from_certificate(c) for c in forged.ca_chain),
        )
        self._fast_summary_cache[cache_key] = summaries
        return summaries


@dataclass(frozen=True)
class SubShard:
    """One schedulable unit of fast-mode work: a slice of a country.

    ``n_subs == 1`` means the country was not split; its randomness
    then comes from the historical ``stable_hash(seed, code)`` stream,
    so small-scale runs are unchanged by the sub-shard machinery.
    """

    code: str
    sub: int
    n_subs: int
    sessions: int

    def seed_parts(self, seed: int) -> tuple:
        if self.n_subs == 1:
            return (seed, self.code)
        return (seed, self.code, self.sub)


def plan_subshards(code: str, count: int, target: int) -> list[SubShard]:
    """Split one country's ``count`` sessions into near-even sub-shards.

    The plan is a pure function of ``(count, target)`` — it never sees
    the worker count — so every execution strategy schedules exactly
    the same units with exactly the same per-unit seeds.
    """
    n_subs = max(1, -(-count // target))
    if n_subs == 1:
        return [SubShard(code=code, sub=0, n_subs=1, sessions=count)]
    base, remainder = divmod(count, n_subs)
    return [
        SubShard(
            code=code,
            sub=sub,
            n_subs=n_subs,
            sessions=base + (1 if sub < remainder else 0),
        )
        for sub in range(n_subs)
    ]


@dataclass
class FastShardOutcome:
    """One sub-shard's results plus forge/keygen counter deltas."""

    code: str
    database: ReportDatabase
    sessions_run: int
    certificates_forged: int
    cache_hits: int
    keys_generated: int = 0
    # Shard registry snapshot (plain dicts: picklable across the pool).
    metrics: dict = field(default_factory=dict)


# Per-process worker state for the fast-mode shard pool.  Workers are
# initialised once from the picklable StudyConfig and reused for every
# shard they pull, so PKI and CA key generation amortise per process.
_FAST_WORKER: StudyRunner | None = None


def _init_fast_worker(config: StudyConfig) -> None:
    global _FAST_WORKER
    runner = StudyRunner(config)
    runner._fast_population = ClientPopulation(
        config.study,
        seed=config.seed,
        scale=config.scale,
        measurements_per_session=runner.measurements_per_session(),
    )
    _FAST_WORKER = runner


def _run_fast_shard_task(shard: SubShard) -> FastShardOutcome:
    runner = _FAST_WORKER
    assert runner is not None, "worker initialised without a runner"
    return runner._run_fast_shard(runner._fast_population, shard)
