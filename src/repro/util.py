"""Small shared utilities."""

from __future__ import annotations

import hashlib


def stable_hash(*parts: object, bits: int = 64) -> int:
    """Deterministic cross-process hash of the reprs of ``parts``.

    Python's builtin ``hash`` is salted per process, which would make
    seeded runs unreproducible; everything that derives randomness from
    labels goes through this instead.
    """
    material = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    digest = hashlib.blake2s(material, digest_size=(bits + 7) // 8).digest()
    return int.from_bytes(digest, "big") & ((1 << bits) - 1)
