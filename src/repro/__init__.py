"""repro — reproduction of "TLS Proxies: Friend or Foe?" (IMC 2016).

A self-contained Python implementation of O'Neill et al.'s TLS
interception measurement study: the certificate-probe measurement
tool, the Flash/AdWords deployment model, the interception products
themselves (as behaviour profiles driving a real MitM engine forging
real DER certificates), and the analysis pipeline that regenerates
every table and figure in the paper's evaluation.

Typical entry points:

* :class:`repro.study.StudyRunner` — run measurement study 1 or 2.
* :class:`repro.tls.ProbeClient` — the partial-handshake certificate
  probe at the heart of the method.
* :class:`repro.proxy.TlsProxyEngine` — an interception product on a
  netsim path.
* :mod:`repro.analysis` — classification, country/host-type tables,
  negligence and malware forensics.
* ``python -m repro`` — the command-line interface.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
