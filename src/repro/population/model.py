"""Client population: country plans, IP allocation and client sampling."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.data import countries as country_data
from repro.data import products as product_data
from repro.geoip.database import GeoIpDatabase, int_to_ip
from repro.population.calibration import iterative_proportional_fit
from repro.util import stable_hash

# Proxied connections per distinct proxied IP in study 1
# (11,764 connections / 8,589 IPs); reused for study 2.
REPEAT_FACTOR = 11764 / 8589

# Each country owns a /11-sized block (2M addresses) of synthetic space.
_BLOCK_BITS = 21
_BLOCK_SIZE = 1 << _BLOCK_BITS
_BASE_ADDRESS = 0x0B000000  # 11.0.0.0


@dataclass(frozen=True)
class ClientProfile:
    """One sampled client: where they are and what intercepts them."""

    country: str
    client_index: int
    ip: str
    product_key: str | None  # None = no TLS proxy on path
    client_bucket: int

    @property
    def is_proxied(self) -> bool:
        return self.product_key is not None


@dataclass(frozen=True)
class CountryPlan:
    """Per-country sampling parameters."""

    code: str
    name: str
    measurement_weight: float  # expected measurements (paper's Total column)
    proxy_rate: float
    block_start: int  # first IP (as int) of this country's block
    pool_size: int  # number of distinct client slots


class ClientPopulation:
    """Samples clients consistent with every published marginal.

    ``expected_sessions_scale`` controls pool sizes only (repeat-visit
    realism); sampling probabilities are scale-free.
    """

    def __init__(
        self,
        study: int,
        seed: int = 0,
        scale: float = 1.0,
        measurements_per_session: float = 1.0,
    ) -> None:
        if study not in (1, 2):
            raise ValueError(f"study must be 1 or 2, not {study}")
        self.study = study
        self.seed = seed
        self._specs = product_data.catalog()
        rows = country_data.country_table(study)
        self._plans: list[CountryPlan] = []
        for index, row in enumerate(rows):
            sessions = row.total * scale / max(measurements_per_session, 1e-9)
            pool = max(1, math.ceil(sessions / REPEAT_FACTOR))
            pool = min(pool, _BLOCK_SIZE - 4096)  # reserve the block top
            self._plans.append(
                CountryPlan(
                    code=row.code,
                    name=row.name,
                    measurement_weight=float(row.total),
                    proxy_rate=row.rate,
                    block_start=_BASE_ADDRESS + index * _BLOCK_SIZE,
                    pool_size=pool,
                )
            )
        self._plan_by_code = {plan.code: plan for plan in self._plans}
        self._plan_index = {plan.code: i for i, plan in enumerate(self._plans)}
        self._spec_index = {spec.key: i for i, spec in enumerate(self._specs)}
        self._country_cum_weights = np.cumsum(
            [plan.measurement_weight for plan in self._plans]
        )
        self._fitted = self._fit_product_mixture(rows)
        # Per-country conditional product distributions (cumulative).
        self._product_cum: dict[str, np.ndarray] = {}
        for col, plan in enumerate(self._plans):
            column = self._fitted[:, col]
            total = column.sum()
            if total > 0:
                self._product_cum[plan.code] = np.cumsum(column / total)

    # -- calibration -------------------------------------------------------

    def _fit_product_mixture(self, rows) -> np.ndarray:
        specs = self._specs
        seed_matrix = np.array(
            [
                [spec.weight_in(self.study, row.code) for row in rows]
                for spec in specs
            ],
            dtype=float,
        )
        total_proxied = float(sum(row.proxied for row in rows))
        base_weights = np.array(
            [
                spec.study1_weight if self.study == 1 else spec.study2_weight
                for spec in specs
            ],
            dtype=float,
        )
        row_targets = base_weights / base_weights.sum() * total_proxied
        col_targets = np.array([float(row.proxied) for row in rows])
        # Products whose bias zeroes them out everywhere they have
        # weight would make IPF infeasible; give them a floor in their
        # bias countries.
        for i in range(len(specs)):
            if row_targets[i] > 0 and seed_matrix[i].sum() == 0:
                raise ValueError(f"product {specs[i].key} has no feasible country")
        return iterative_proportional_fit(seed_matrix, row_targets, col_targets)

    # -- introspection -------------------------------------------------------

    @property
    def plans(self) -> list[CountryPlan]:
        return list(self._plans)

    def plan(self, code: str) -> CountryPlan:
        return self._plan_by_code[code]

    def expected_product_share(self, product_key: str, country: str) -> float:
        """P(product | proxied, country) from the fitted table."""
        return float(
            self.product_share_vector(country)[self._spec_index[product_key]]
        )

    def product_share_vector(self, country: str) -> np.ndarray:
        """P(product | proxied, country) for all products, catalog order.

        The fast-mode inner loop asks for every product of every
        country shard; answering with one normalised column avoids the
        per-product index scans the scalar accessor would repeat.
        """
        column = self._fitted[:, self._plan_index[country]]
        total = column.sum()
        if total == 0:
            return np.zeros(len(self._specs))
        return column / total

    # -- sampling -------------------------------------------------------------

    def sample_country(self, rng: random.Random) -> str:
        point = rng.random() * self._country_cum_weights[-1]
        index = int(np.searchsorted(self._country_cum_weights, point, side="right"))
        index = min(index, len(self._plans) - 1)
        return self._plans[index].code

    def sample_client(self, rng: random.Random) -> ClientProfile:
        """Sample one client session (country, identity, interception)."""
        country = self.sample_country(rng)
        plan = self._plan_by_code[country]
        client_index = rng.randrange(plan.pool_size)
        return self.client_profile(country, client_index)

    def client_profile(self, country: str, client_index: int) -> ClientProfile:
        """The deterministic profile of client ``client_index`` in ``country``.

        A client is either always proxied by the same product or never
        proxied — interception is a property of the machine, so repeat
        visits by one client must agree.
        """
        plan = self._plan_by_code[country]
        derived = random.Random(
            stable_hash(self.seed, "client", country, client_index)
        )
        proxied = derived.random() < plan.proxy_rate
        product_key: str | None = None
        if proxied and country in self._product_cum:
            cum = self._product_cum[country]
            point = derived.random() * cum[-1]
            row = int(np.searchsorted(cum, point, side="right"))
            row = min(row, len(self._specs) - 1)
            product_key = self._specs[row].key
        ip = self._client_ip(plan, client_index, product_key)
        return ClientProfile(
            country=country,
            client_index=client_index,
            ip=ip,
            product_key=product_key,
            client_bucket=client_index % product_data.NUM_CLIENT_BUCKETS,
        )

    def client_ip(
        self, country: str, client_index: int, product_key: str | None
    ) -> str:
        """The IP of client ``client_index`` in ``country`` (egress-aware)."""
        return self._client_ip(self._plan_by_code[country], client_index, product_key)

    def _client_ip(
        self, plan: CountryPlan, client_index: int, product_key: str | None
    ) -> str:
        if product_key is not None:
            spec = product_data.catalog_by_key()[product_key]
            if spec.egress_plan is not None:
                pool = spec.egress_plan.get(plan.code, 1)
                slot = client_index % pool
                # Egress IPs live at the top of the country block,
                # partitioned per product.
                product_index = [s.key for s in self._specs].index(product_key)
                offset = _BLOCK_SIZE - 1 - (product_index * 16 + slot)
                return int_to_ip(plan.block_start + offset)
        return int_to_ip(plan.block_start + client_index)

    # -- GeoIP ------------------------------------------------------------------

    def build_geoip(self) -> GeoIpDatabase:
        """A GeoLite-style database covering every country block."""
        db = GeoIpDatabase()
        for plan in self._plans:
            db.add_range(
                int_to_ip(plan.block_start),
                int_to_ip(plan.block_start + _BLOCK_SIZE - 1),
                plan.code,
            )
        db.freeze()
        return db
