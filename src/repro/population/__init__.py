"""Synthetic client population.

The study's subjects — Internet users whose traffic may pass a TLS
proxy — are synthesized here, calibrated so that every published
marginal holds simultaneously:

* country measurement volumes and interception rates (Tables 3/7),
* the product mixture among intercepted connections (Table 4, §6.4),
* product geography (PSafe in Brazil, POSCO and LG UPLUS in Korea,
  DSP behind one Irish IP, the Unknown surge in targeted countries).

Country × product consistency is achieved by iterative proportional
fitting (:mod:`repro.population.calibration`): the bias-seeded
product/country matrix is scaled until its row sums match the product
weights and its column sums match the per-country proxied counts.
"""

from repro.population.calibration import iterative_proportional_fit
from repro.population.model import (
    ClientPopulation,
    ClientProfile,
    CountryPlan,
    REPEAT_FACTOR,
)

__all__ = [
    "ClientPopulation",
    "ClientProfile",
    "CountryPlan",
    "REPEAT_FACTOR",
    "iterative_proportional_fit",
]
