"""Iterative proportional fitting for the product × country table."""

from __future__ import annotations

import numpy as np


def iterative_proportional_fit(
    seed_matrix: np.ndarray,
    row_targets: np.ndarray,
    col_targets: np.ndarray,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Scale ``seed_matrix`` to match row and column targets.

    Classic IPF (Deming–Stephan): alternately rescale rows and columns.
    Zero cells stay zero, preserving structural constraints such as
    "DSP appears only in Ireland".  Row and column targets must agree
    in total; infeasible structures (a positive row target whose row is
    all zeros) raise ``ValueError``.
    """
    matrix = np.asarray(seed_matrix, dtype=float).copy()
    rows = np.asarray(row_targets, dtype=float)
    cols = np.asarray(col_targets, dtype=float)
    if matrix.shape != (rows.size, cols.size):
        raise ValueError(
            f"matrix {matrix.shape} does not match targets ({rows.size},{cols.size})"
        )
    if not np.isclose(rows.sum(), cols.sum(), rtol=1e-9):
        raise ValueError(
            f"row targets sum to {rows.sum():.6g}, columns to {cols.sum():.6g}"
        )
    for name, targets, axis_sums in (
        ("row", rows, matrix.sum(axis=1)),
        ("column", cols, matrix.sum(axis=0)),
    ):
        infeasible = (targets > 0) & (axis_sums == 0)
        if infeasible.any():
            raise ValueError(
                f"infeasible {name} target at index {int(np.argmax(infeasible))}"
            )

    for _ in range(max_iterations):
        row_sums = matrix.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            row_scale = np.where(row_sums > 0, rows / row_sums, 0.0)
        matrix *= row_scale[:, None]

        col_sums = matrix.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            col_scale = np.where(col_sums > 0, cols / col_sums, 0.0)
        matrix *= col_scale[None, :]

        row_error = np.abs(matrix.sum(axis=1) - rows).max()
        scale = max(rows.max(), 1.0)
        if row_error / scale < tolerance:
            break
    return matrix
