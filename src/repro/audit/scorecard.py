"""Grading of battery outcomes into per-product scorecards.

The grading follows the Waked et al. style: every adversarial scenario
is one check, each check earns points by how the product reacted, and
the total maps onto an A–F letter grade with per-check evidence.

* ``BLOCK``  — the proxy refused the connection: full marks.
* ``PASS``   — the proxy relayed the attacked chain untouched, leaving
  the browser to warn: half marks (the user still has a chance).
* ``MASK``   — the proxy replaced the attacked chain with its own
  trusted substitute, hiding the attack entirely: zero.
* ``ERROR``  — the battery could not complete the probe: zero, with
  the failure recorded as evidence.

The baseline (genuine origin) scenario is a control, not a check: a
product that fails to intercept a healthy origin is marked
non-functional instead of graded down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.scenarios import ADVERSARIAL_SCENARIOS, SCENARIOS, scenario_by_key
from repro.tls.codec import TLS_1_3, WEAK_CIPHER_SUITES, version_name

OUTCOME_BLOCK = "BLOCK"
OUTCOME_MASK = "MASK"
OUTCOME_PASS = "PASS"
OUTCOME_INTERCEPT = "INTERCEPT"
OUTCOME_ERROR = "ERROR"

# Client-leg check outcomes (mimicry + substitute handshake).
OUTCOME_OK = "OK"
OUTCOME_DIVERGENT = "DIVERGENT"
OUTCOME_WEAK = "WEAK"
OUTCOME_DOWNGRADED = "DOWNGRADED"

_POINTS = {
    OUTCOME_BLOCK: 1.0,
    OUTCOME_PASS: 0.5,
    OUTCOME_MASK: 0.0,
    OUTCOME_ERROR: 0.0,
}

# Client-leg check keys; "mimicry" is the headline scenario.
MIMICRY_KEY = "mimicry"
SUBSTITUTE_KEY_KEY = "substitute-key"
SUBSTITUTE_HASH_KEY = "substitute-hash"

# Server-leg check keys (the substitute ServerHello itself).  The
# version-echo check lives here: what it grades is the version field
# of the served ServerHello.
SERVER_CIPHER_KEY = "server-cipher"
SERVER_EXTENSIONS_KEY = "server-extensions"
VERSION_ECHO_KEY = "version-echo"
SERVER_COMPRESSION_KEY = "server-compression"
SERVER_SESSION_KEY = "server-session"

# Modern (TLS 1.3 era) server-leg check keys, graded only when the
# probing browser offers TLS 1.3.
ALPN_MISMATCH_KEY = "alpn-mismatch"
RESUMPTION_KEY = "resumption-honouring"
TLS13_DOWNGRADE_KEY = "tls13-downgrade"

# Letter-grade floors over the score fraction, best first.
GRADE_FLOORS: tuple[tuple[float, str], ...] = (
    (0.90, "A"),
    (0.70, "B"),
    (0.50, "C"),
    (0.30, "D"),
)


def letter_grade(fraction: float) -> str:
    for floor, letter in GRADE_FLOORS:
        if fraction >= floor:
            return letter
    return "F"


@dataclass(frozen=True)
class ScenarioObservation:
    """What the harness saw one product do under one scenario."""

    scenario: str
    outcome: str
    evidence: str


@dataclass(frozen=True)
class CheckResult:
    """One graded row of a scorecard."""

    scenario: str
    title: str
    defect: str | None
    outcome: str
    points: float
    max_points: float
    evidence: str


@dataclass(frozen=True)
class ClientLegObservation:
    """What the harness saw on one product's *client-facing* leg.

    Collected by probing the product with a browser-profile
    ClientHello against a genuine origin: does the upstream hello the
    proxy emits fingerprint like the browser it fronts, and how does
    the substitute handshake it serves back compare with what the
    browser offered?
    """

    browser: str  # registry key of the probing browser profile
    expected_ja3: str  # the browser hello's fingerprint digest
    observed_ja3: str | None  # the proxy's upstream hello digest
    divergent_fields: tuple[str, ...]  # fingerprint dimensions that differ
    substitute_key_bits: int | None  # public key size of the served leaf
    substitute_hash: str | None  # signature hash of the served leaf
    offered_version: tuple[int, int]  # what the browser hello offered
    echoed_version: tuple[int, int] | None  # what the substitute leg served
    error: str = ""  # non-empty when the probe could not complete


def build_client_checks(
    observation: ClientLegObservation,
) -> tuple[CheckResult, ...]:
    """Grade a client-leg observation into scorecard checks.

    * ``mimicry`` — full marks only when the upstream hello's
      fingerprint matches the probing browser's on every dimension.
    * ``substitute-key`` — 2048-bit substitutes pass, 1024-bit earn
      half (the paper's 61% downgrade finding), anything below fails.
    * ``substitute-hash`` — SHA-2 passes, SHA-1 earns half in the 2014
      frame, MD5 (IopFail's choice) fails.

    The version-echo check moved to the server-leg section
    (:func:`build_server_checks`) alongside the other ServerHello
    parameters it actually grades.
    """
    if observation.error:
        evidence = f"client-leg probe failed: {observation.error}"
        return tuple(
            CheckResult(key, title, defect, OUTCOME_ERROR, 0.0, 1.0, evidence)
            for key, title, defect in (
                (MIMICRY_KEY, "ClientHello mimicry", "fingerprint-divergence"),
                (SUBSTITUTE_KEY_KEY, "Substitute key strength", "weak-key"),
                (SUBSTITUTE_HASH_KEY, "Substitute signature hash", "deprecated-hash"),
            )
        )
    checks = []
    if not observation.divergent_fields:
        checks.append(
            CheckResult(
                MIMICRY_KEY,
                "ClientHello mimicry",
                "fingerprint-divergence",
                OUTCOME_OK,
                1.0,
                1.0,
                f"upstream hello fingerprints as the {observation.browser} "
                f"profile ({observation.expected_ja3})",
            )
        )
    else:
        checks.append(
            CheckResult(
                MIMICRY_KEY,
                "ClientHello mimicry",
                "fingerprint-divergence",
                OUTCOME_DIVERGENT,
                0.0,
                1.0,
                "upstream hello diverges from the "
                f"{observation.browser} profile on "
                f"{', '.join(observation.divergent_fields)} "
                f"({observation.expected_ja3} != {observation.observed_ja3})",
            )
        )
    bits = observation.substitute_key_bits or 0
    key_points = 1.0 if bits >= 2048 else 0.5 if bits >= 1024 else 0.0
    checks.append(
        CheckResult(
            SUBSTITUTE_KEY_KEY,
            "Substitute key strength",
            "weak-key",
            OUTCOME_OK if key_points == 1.0 else OUTCOME_WEAK,
            key_points,
            1.0,
            f"substitute leaf carries a {bits}-bit key",
        )
    )
    hash_name = observation.substitute_hash or "unknown"
    hash_points = (
        1.0
        if hash_name in ("sha256", "sha384", "sha512")
        else 0.5
        if hash_name == "sha1"
        else 0.0
    )
    checks.append(
        CheckResult(
            SUBSTITUTE_HASH_KEY,
            "Substitute signature hash",
            "deprecated-hash",
            OUTCOME_OK if hash_points == 1.0 else OUTCOME_WEAK,
            hash_points,
            1.0,
            f"substitute leaf signed with {hash_name}",
        )
    )
    return tuple(checks)


@dataclass(frozen=True)
class ModernLegObservation:
    """The TLS 1.3-era facets of one substitute ServerHello.

    Collected only when the probing browser offers TLS 1.3: the ALPN
    answer vs the browser's expectation, the version actually
    negotiated (supported_versions-aware) with the RFC 8446 downgrade
    sentinel, and whether a session id the product handed out on the
    first probe was honoured when presented back on a second.
    """

    expected_alpn: str | None  # what the browser expects an origin to pick
    served_alpn: str | None  # what the substitute leg answered
    offered_max_version: tuple[int, int]  # the hello's true ceiling
    negotiated_version: tuple[int, int] | None  # supported_versions-aware
    downgrade_sentinel: bool  # DOWNGRD mark in the server random
    session_id_issued: bool  # first probe handed out a session id
    resumption_honoured: bool | None  # second probe echoed it; None = no probe
    resumption_error: str = ""  # non-empty when the resume probe failed


@dataclass(frozen=True)
class ServerLegObservation:
    """What the harness saw in one product's substitute *ServerHello*.

    Collected on the same mimicry probe as the client leg, from the
    hello the proxy served back to the browser: the version it echoed,
    the cipher it substituted for the browser's offer, the extension
    set it carried, its compression byte and its session-id policy —
    graded against the :class:`~repro.tls.fingerprint.BrowserProfile`'s
    *expected* genuine-origin answer.
    """

    browser: str  # registry key of the probing browser profile
    expected_ja3s: str  # digest of the expected origin answer
    observed_ja3s: str | None  # digest of the served substitute hello
    divergent_fields: tuple[str, ...]  # JA3S dimensions that differ
    chosen_cipher: int | None  # suite the substitute leg picked
    cipher_rank: int | None  # 0-based rank in the browser's offer; None = unoffered
    expected_cipher: int  # what a genuine origin answers this browser
    extension_types: tuple[int, ...]  # served extension types, wire order
    expected_extension_types: tuple[int, ...]
    offered_version: tuple[int, int]  # what the browser hello offered
    echoed_version: tuple[int, int] | None  # what the substitute leg served
    compression_method: int | None  # served compression byte
    session_id_length: int | None  # length of the served session id
    error: str = ""  # non-empty when the probe could not complete
    # TLS 1.3-era facets; None when the probing browser is 2014-era,
    # which keeps those scorecards (and their JSON) byte-identical.
    modern: ModernLegObservation | None = None


def build_server_checks(
    observation: ServerLegObservation,
) -> tuple[CheckResult, ...]:
    """Grade a server-leg observation into scorecard checks.

    * ``server-cipher`` — the substituted suite vs the browser's
      offered ordering: the genuine origin's expected answer earns
      full marks, any other *offered* suite half (functional but a
      visible divergence), an un-offered or registry-weak suite fails.
    * ``server-extensions`` — the served extension set vs the
      browser's expected origin answer; same set out of order earns
      half, missing/extra types fail.
    * ``version-echo`` — the substitute leg must serve the version the
      client offered; serving lower is a client-visible downgrade.
    * ``server-compression`` — a nonzero compression byte is a defect
      outright (no sane post-CRIME origin negotiates compression).
    * ``server-session`` — a genuine origin answers a new session with
      a resumable session id; a substitute leg that never offers one
      earns half.
    """
    if observation.error:
        evidence = f"server-leg probe failed: {observation.error}"
        rows = [
            (SERVER_CIPHER_KEY, "Substitute cipher choice", "cipher-divergence"),
            (SERVER_EXTENSIONS_KEY, "Server extension set", "extension-divergence"),
            (VERSION_ECHO_KEY, "Version echo", "protocol-downgrade"),
            (SERVER_COMPRESSION_KEY, "Server compression", "server-compression"),
            (SERVER_SESSION_KEY, "Session-id policy", "no-resumption"),
        ]
        if observation.modern is not None:
            rows += [
                (ALPN_MISMATCH_KEY, "ALPN answer", "alpn-mismatch"),
                (RESUMPTION_KEY, "Resumption honouring", "broken-resumption"),
                (TLS13_DOWNGRADE_KEY, "TLS 1.3 negotiation", "tls13-downgrade"),
            ]
        return tuple(
            CheckResult(key, title, defect, OUTCOME_ERROR, 0.0, 1.0, evidence)
            for key, title, defect in rows
        )
    # An error-free observation always carries the served hello's
    # fields (the harness grades a captured hello or takes the error
    # branch above — there is no in-between).
    checks = []
    chosen = observation.chosen_cipher
    assert chosen is not None
    if chosen in WEAK_CIPHER_SUITES:
        checks.append(
            CheckResult(
                SERVER_CIPHER_KEY,
                "Substitute cipher choice",
                "cipher-divergence",
                OUTCOME_WEAK,
                0.0,
                1.0,
                f"substitute leg chose registry-weak suite {chosen:#06x}",
            )
        )
    elif observation.cipher_rank is None:
        checks.append(
            CheckResult(
                SERVER_CIPHER_KEY,
                "Substitute cipher choice",
                "cipher-divergence",
                OUTCOME_DIVERGENT,
                0.0,
                1.0,
                f"substitute leg chose {chosen:#06x}, a suite the "
                f"{observation.browser} profile never offered — no genuine "
                "origin can answer that",
            )
        )
    elif chosen == observation.expected_cipher:
        checks.append(
            CheckResult(
                SERVER_CIPHER_KEY,
                "Substitute cipher choice",
                "cipher-divergence",
                OUTCOME_OK,
                1.0,
                1.0,
                f"substitute leg answers {chosen:#06x}, exactly what a "
                f"genuine origin picks for the {observation.browser} offer",
            )
        )
    else:
        checks.append(
            CheckResult(
                SERVER_CIPHER_KEY,
                "Substitute cipher choice",
                "cipher-divergence",
                OUTCOME_DIVERGENT,
                0.5,
                1.0,
                f"substitute leg chose {chosen:#06x} (rank "
                f"{observation.cipher_rank + 1} of the {observation.browser} "
                f"offer); a genuine origin answers "
                f"{observation.expected_cipher:#06x}",
            )
        )
    served = observation.extension_types
    expected = observation.expected_extension_types
    if served == expected:
        checks.append(
            CheckResult(
                SERVER_EXTENSIONS_KEY,
                "Server extension set",
                "extension-divergence",
                OUTCOME_OK,
                1.0,
                1.0,
                "served extension set matches the expected origin answer "
                f"({'-'.join(str(t) for t in expected) or 'none'})",
            )
        )
    elif set(served) == set(expected):
        checks.append(
            CheckResult(
                SERVER_EXTENSIONS_KEY,
                "Server extension set",
                "extension-divergence",
                OUTCOME_DIVERGENT,
                0.5,
                1.0,
                "served extensions match the expected set but not its "
                "order — a fingerprintable stack quirk",
            )
        )
    else:
        missing = [t for t in expected if t not in served]
        extra = [t for t in served if t not in expected]
        checks.append(
            CheckResult(
                SERVER_EXTENSIONS_KEY,
                "Server extension set",
                "extension-divergence",
                OUTCOME_DIVERGENT,
                0.0,
                1.0,
                "served extension set diverges from the expected origin "
                f"answer (missing {missing or 'none'}, extra {extra or 'none'})",
            )
        )
    echoed = observation.echoed_version
    if echoed == observation.offered_version:
        checks.append(
            CheckResult(
                VERSION_ECHO_KEY,
                "Version echo",
                "protocol-downgrade",
                OUTCOME_OK,
                1.0,
                1.0,
                "substitute leg echoes the offered version "
                f"{version_name(echoed)}",
            )
        )
    else:
        checks.append(
            CheckResult(
                VERSION_ECHO_KEY,
                "Version echo",
                "protocol-downgrade",
                OUTCOME_DOWNGRADED,
                0.0,
                1.0,
                f"client offered {version_name(observation.offered_version)}, "
                "substitute leg served "
                f"{version_name(echoed) if echoed else 'nothing'}",
            )
        )
    compression = observation.compression_method or 0
    if compression == 0:
        checks.append(
            CheckResult(
                SERVER_COMPRESSION_KEY,
                "Server compression",
                "server-compression",
                OUTCOME_OK,
                1.0,
                1.0,
                "substitute leg negotiates null compression",
            )
        )
    else:
        checks.append(
            CheckResult(
                SERVER_COMPRESSION_KEY,
                "Server compression",
                "server-compression",
                OUTCOME_WEAK,
                0.0,
                1.0,
                f"substitute leg negotiates compression method {compression} "
                "— a post-CRIME defect no 2014 origin exhibits",
            )
        )
    if observation.session_id_length:
        checks.append(
            CheckResult(
                SERVER_SESSION_KEY,
                "Session-id policy",
                "no-resumption",
                OUTCOME_OK,
                1.0,
                1.0,
                f"substitute leg grants a {observation.session_id_length}-byte "
                "resumable session id, like a genuine origin",
            )
        )
    else:
        checks.append(
            CheckResult(
                SERVER_SESSION_KEY,
                "Session-id policy",
                "no-resumption",
                OUTCOME_WEAK,
                0.5,
                1.0,
                "substitute leg never offers session resumption "
                "(empty session id)",
            )
        )
    if observation.modern is not None:
        checks.extend(_build_modern_checks(observation.modern))
    return tuple(checks)


def _build_modern_checks(
    modern: ModernLegObservation,
) -> tuple[CheckResult, ...]:
    """Grade the TLS 1.3-era facets of a substitute ServerHello.

    * ``alpn-mismatch`` — the served ALPN answer vs what the browser
      expects a genuine origin to pick; stripping the extension or
      answering an unexpected protocol fails.
    * ``resumption-honouring`` — the probe presents back the session
      id the product issued one connection earlier; full marks only
      when that id is echoed.  Never issuing one, or refusing an id
      the product itself handed out, fails.
    * ``tls13-downgrade`` — the negotiated (supported_versions-aware)
      protocol vs the hello's true ceiling.  Downgrading a 1.3 offer
      to 1.2 earns half *only* when the RFC 8446 sentinel in the
      server random discloses it; a silent downgrade fails outright.
    """
    checks = []
    if modern.served_alpn == modern.expected_alpn:
        checks.append(
            CheckResult(
                ALPN_MISMATCH_KEY,
                "ALPN answer",
                "alpn-mismatch",
                OUTCOME_OK,
                1.0,
                1.0,
                f"substitute leg answers ALPN {modern.served_alpn!r}, "
                "exactly what a genuine origin picks for this offer",
            )
        )
    else:
        checks.append(
            CheckResult(
                ALPN_MISMATCH_KEY,
                "ALPN answer",
                "alpn-mismatch",
                OUTCOME_DIVERGENT,
                0.0,
                1.0,
                f"substitute leg answers ALPN {modern.served_alpn!r} where "
                f"a genuine origin picks {modern.expected_alpn!r}",
            )
        )
    if modern.resumption_honoured:
        checks.append(
            CheckResult(
                RESUMPTION_KEY,
                "Resumption honouring",
                "broken-resumption",
                OUTCOME_OK,
                1.0,
                1.0,
                "substitute leg echoes the session id it issued one "
                "connection earlier — resumption is honoured",
            )
        )
    elif modern.resumption_honoured is None:
        checks.append(
            CheckResult(
                RESUMPTION_KEY,
                "Resumption honouring",
                "broken-resumption",
                OUTCOME_ERROR,
                0.0,
                1.0,
                "resume probe failed: "
                f"{modern.resumption_error or 'no second probe completed'}",
            )
        )
    elif not modern.session_id_issued:
        checks.append(
            CheckResult(
                RESUMPTION_KEY,
                "Resumption honouring",
                "broken-resumption",
                OUTCOME_WEAK,
                0.0,
                1.0,
                "substitute leg never issues resumable sessions — every "
                "connection pays a full handshake",
            )
        )
    else:
        checks.append(
            CheckResult(
                RESUMPTION_KEY,
                "Resumption honouring",
                "broken-resumption",
                OUTCOME_DIVERGENT,
                0.0,
                1.0,
                "substitute leg hands out session ids it then refuses to "
                "honour — a stack quirk no genuine origin exhibits",
            )
        )
    negotiated = modern.negotiated_version
    if negotiated is not None and negotiated >= TLS_1_3:
        checks.append(
            CheckResult(
                TLS13_DOWNGRADE_KEY,
                "TLS 1.3 negotiation",
                "tls13-downgrade",
                OUTCOME_OK,
                1.0,
                1.0,
                f"substitute leg negotiates {version_name(negotiated)} "
                "for a 1.3-offering client",
            )
        )
    elif modern.downgrade_sentinel:
        checks.append(
            CheckResult(
                TLS13_DOWNGRADE_KEY,
                "TLS 1.3 negotiation",
                "tls13-downgrade",
                OUTCOME_DOWNGRADED,
                0.5,
                1.0,
                f"client offered {version_name(modern.offered_max_version)} "
                "but the substitute leg negotiated "
                f"{version_name(negotiated) if negotiated else 'nothing'} — "
                "disclosed via the RFC 8446 downgrade sentinel",
            )
        )
    else:
        checks.append(
            CheckResult(
                TLS13_DOWNGRADE_KEY,
                "TLS 1.3 negotiation",
                "tls13-downgrade",
                OUTCOME_DOWNGRADED,
                0.0,
                1.0,
                f"client offered {version_name(modern.offered_max_version)} "
                "but the substitute leg silently negotiated "
                f"{version_name(negotiated) if negotiated else 'nothing'} "
                "with no downgrade sentinel",
            )
        )
    return tuple(checks)


@dataclass(frozen=True)
class ProductScorecard:
    """A product's full battery result."""

    product_key: str
    category: str
    functional: bool  # intercepted the genuine-origin control
    checks: tuple[CheckResult, ...]
    # Client-leg grading (mimicry + substitute handshake); empty when
    # the battery ran upstream-only.
    client_checks: tuple[CheckResult, ...] = ()
    client_leg: ClientLegObservation | None = None
    # Server-leg grading (the substitute ServerHello); empty when the
    # battery ran upstream-only.
    server_checks: tuple[CheckResult, ...] = ()
    server_leg: ServerLegObservation | None = None

    @property
    def all_checks(self) -> tuple[CheckResult, ...]:
        return self.checks + self.client_checks + self.server_checks

    @property
    def score(self) -> float:
        return sum(check.points for check in self.all_checks)

    @property
    def max_score(self) -> float:
        return sum(check.max_points for check in self.all_checks)

    @property
    def client_score(self) -> float:
        return sum(check.points for check in self.client_checks)

    @property
    def client_max_score(self) -> float:
        return sum(check.max_points for check in self.client_checks)

    @property
    def server_score(self) -> float:
        return sum(check.points for check in self.server_checks)

    @property
    def server_max_score(self) -> float:
        return sum(check.max_points for check in self.server_checks)

    @property
    def fraction(self) -> float:
        return self.score / self.max_score if self.max_score else 0.0

    @property
    def grade(self) -> str:
        return letter_grade(self.fraction)

    def outcome_count(self, outcome: str) -> int:
        return sum(1 for check in self.checks if check.outcome == outcome)

    @property
    def blocked(self) -> int:
        return self.outcome_count(OUTCOME_BLOCK)

    @property
    def masked(self) -> int:
        return self.outcome_count(OUTCOME_MASK)

    @property
    def passed_through(self) -> int:
        return self.outcome_count(OUTCOME_PASS)

    @property
    def errors(self) -> int:
        return self.outcome_count(OUTCOME_ERROR)

    def to_dict(self) -> dict:
        data = {
            "product": self.product_key,
            "category": self.category,
            "grade": self.grade,
            "score": self.score,
            "max_score": self.max_score,
            "functional": self.functional,
            "checks": [_check_dict(check) for check in self.checks],
        }
        if self.client_checks:
            observation = self.client_leg
            data["client_leg"] = {
                "browser": observation.browser if observation else None,
                "expected_ja3": observation.expected_ja3 if observation else None,
                "observed_ja3": observation.observed_ja3 if observation else None,
                "divergent_fields": (
                    list(observation.divergent_fields) if observation else []
                ),
                "substitute_key_bits": (
                    observation.substitute_key_bits if observation else None
                ),
                "substitute_hash": (
                    observation.substitute_hash if observation else None
                ),
                "offered_version": (
                    list(observation.offered_version) if observation else None
                ),
                "echoed_version": (
                    list(observation.echoed_version)
                    if observation and observation.echoed_version
                    else None
                ),
                "error": observation.error if observation else "",
                "checks": [_check_dict(check) for check in self.client_checks],
            }
        if self.server_checks:
            server = self.server_leg
            data["server_leg"] = {
                "browser": server.browser if server else None,
                "expected_ja3s": server.expected_ja3s if server else None,
                "observed_ja3s": server.observed_ja3s if server else None,
                "divergent_fields": (
                    list(server.divergent_fields) if server else []
                ),
                "chosen_cipher": server.chosen_cipher if server else None,
                "cipher_rank": server.cipher_rank if server else None,
                "expected_cipher": server.expected_cipher if server else None,
                "extension_types": (
                    list(server.extension_types) if server else []
                ),
                "expected_extension_types": (
                    list(server.expected_extension_types) if server else []
                ),
                "offered_version": (
                    list(server.offered_version) if server else None
                ),
                "echoed_version": (
                    list(server.echoed_version)
                    if server and server.echoed_version
                    else None
                ),
                "compression_method": (
                    server.compression_method if server else None
                ),
                "session_id_length": (
                    server.session_id_length if server else None
                ),
                "error": server.error if server else "",
                "checks": [_check_dict(check) for check in self.server_checks],
            }
            if server is not None and server.modern is not None:
                modern = server.modern
                data["server_leg"]["modern"] = {
                    "expected_alpn": modern.expected_alpn,
                    "served_alpn": modern.served_alpn,
                    "offered_max_version": list(modern.offered_max_version),
                    "negotiated_version": (
                        list(modern.negotiated_version)
                        if modern.negotiated_version
                        else None
                    ),
                    "downgrade_sentinel": modern.downgrade_sentinel,
                    "session_id_issued": modern.session_id_issued,
                    "resumption_honoured": modern.resumption_honoured,
                    "resumption_error": modern.resumption_error,
                }
        return data


def _check_dict(check: CheckResult) -> dict:
    return {
        "scenario": check.scenario,
        "defect": check.defect,
        "outcome": check.outcome,
        "points": check.points,
        "max_points": check.max_points,
        "evidence": check.evidence,
    }


def build_scorecard(
    product_key: str,
    category: str,
    observations: list[ScenarioObservation],
    client_leg: ClientLegObservation | None = None,
    server_leg: ServerLegObservation | None = None,
) -> ProductScorecard:
    """Grade one product's observations into a scorecard.

    ``client_leg`` folds the mimicry/substitute-handshake checks and
    ``server_leg`` the substitute-ServerHello checks into the same A–F
    grade; omit both for an upstream-only battery.
    """
    scenarios = scenario_by_key()
    functional = True
    checks: list[CheckResult] = []
    for observation in observations:
        scenario = scenarios[observation.scenario]
        if scenario.defect is None:
            functional = observation.outcome == OUTCOME_INTERCEPT
            continue
        points = _POINTS.get(observation.outcome, 0.0)
        checks.append(
            CheckResult(
                scenario=scenario.key,
                title=scenario.title,
                defect=scenario.defect,
                outcome=observation.outcome,
                points=points,
                max_points=1.0,
                evidence=observation.evidence,
            )
        )
    return ProductScorecard(
        product_key=product_key,
        category=category,
        functional=functional,
        checks=tuple(checks),
        client_checks=(
            build_client_checks(client_leg) if client_leg is not None else ()
        ),
        client_leg=client_leg,
        server_checks=(
            build_server_checks(server_leg) if server_leg is not None else ()
        ),
        server_leg=server_leg,
    )


@dataclass(frozen=True)
class AuditReport:
    """The catalog-wide battery result."""

    seed: int
    scorecards: tuple[ProductScorecard, ...]

    def by_key(self) -> dict[str, ProductScorecard]:
        return {card.product_key: card for card in self.scorecards}

    def grade_histogram(self) -> dict[str, int]:
        histogram = {letter: 0 for _, letter in GRADE_FLOORS}
        histogram["F"] = 0
        for card in self.scorecards:
            histogram[card.grade] += 1
        return histogram

    @property
    def scenario_count(self) -> int:
        return len(ADVERSARIAL_SCENARIOS)

    def to_dict(self) -> dict:
        client_keys: list[str] = []
        server_keys: list[str] = []
        for card in self.scorecards:
            if card.client_checks and not client_keys:
                client_keys = [check.scenario for check in card.client_checks]
            if card.server_checks and not server_keys:
                server_keys = [check.scenario for check in card.server_checks]
            if client_keys and server_keys:
                break
        return {
            "seed": self.seed,
            "scenarios": [scenario.key for scenario in SCENARIOS],
            "client_leg_scenarios": client_keys,
            "server_leg_scenarios": server_keys,
            "products": [card.to_dict() for card in self.scorecards],
            "grades": self.grade_histogram(),
        }


@dataclass(frozen=True)
class MimicryProbe:
    """Both legs of one mimicry probe against one product."""

    client_leg: ClientLegObservation
    server_leg: ServerLegObservation


@dataclass(frozen=True)
class MimicryEntry:
    """One product's mimicry probe, as the prevalence study consumes it."""

    product_key: str
    category: str
    client_leg: ClientLegObservation
    server_leg: ServerLegObservation

    @property
    def detection_reasons(self) -> tuple[str, ...]:
        """Why a client-side observer can spot this product.

        The JA3S dimensions the substitute ServerHello diverges on,
        plus ``compression`` for a nonzero compression byte; a probe
        the product broke outright reports ``error`` (the client
        certainly noticed *something*).  Under a 1.3-offering browser,
        ``alpn`` marks an ALPN answer no genuine origin gives and
        ``tls13-downgrade`` a ceiling below the client's offer.
        Session-id and resumption policy are excluded: a
        resumption-less origin is unusual but not impossible.
        """
        server = self.server_leg
        if server.error:
            return ("error",)
        reasons = list(server.divergent_fields)
        if server.compression_method:
            reasons.append("compression")
        modern = server.modern
        if modern is not None:
            if modern.served_alpn != modern.expected_alpn:
                reasons.append("alpn")
            negotiated = modern.negotiated_version
            if negotiated is None or negotiated < TLS_1_3:
                reasons.append("tls13-downgrade")
        return tuple(reasons)

    @property
    def detectable(self) -> bool:
        """Detectable from the substitute ServerHello alone."""
        return bool(self.detection_reasons)


@dataclass(frozen=True)
class MimicrySurvey:
    """The catalog-wide mimicry probe result, in catalog order."""

    seed: int
    browser: str
    entries: tuple[MimicryEntry, ...]

    def by_key(self) -> dict[str, MimicryEntry]:
        return {entry.product_key: entry for entry in self.entries}
