"""Grading of battery outcomes into per-product scorecards.

The grading follows the Waked et al. style: every adversarial scenario
is one check, each check earns points by how the product reacted, and
the total maps onto an A–F letter grade with per-check evidence.

* ``BLOCK``  — the proxy refused the connection: full marks.
* ``PASS``   — the proxy relayed the attacked chain untouched, leaving
  the browser to warn: half marks (the user still has a chance).
* ``MASK``   — the proxy replaced the attacked chain with its own
  trusted substitute, hiding the attack entirely: zero.
* ``ERROR``  — the battery could not complete the probe: zero, with
  the failure recorded as evidence.

The baseline (genuine origin) scenario is a control, not a check: a
product that fails to intercept a healthy origin is marked
non-functional instead of graded down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.scenarios import ADVERSARIAL_SCENARIOS, SCENARIOS, scenario_by_key
from repro.tls.codec import version_name

OUTCOME_BLOCK = "BLOCK"
OUTCOME_MASK = "MASK"
OUTCOME_PASS = "PASS"
OUTCOME_INTERCEPT = "INTERCEPT"
OUTCOME_ERROR = "ERROR"

# Client-leg check outcomes (mimicry + substitute handshake).
OUTCOME_OK = "OK"
OUTCOME_DIVERGENT = "DIVERGENT"
OUTCOME_WEAK = "WEAK"
OUTCOME_DOWNGRADED = "DOWNGRADED"

_POINTS = {
    OUTCOME_BLOCK: 1.0,
    OUTCOME_PASS: 0.5,
    OUTCOME_MASK: 0.0,
    OUTCOME_ERROR: 0.0,
}

# Client-leg check keys; "mimicry" is the headline scenario.
MIMICRY_KEY = "mimicry"
SUBSTITUTE_KEY_KEY = "substitute-key"
SUBSTITUTE_HASH_KEY = "substitute-hash"
VERSION_ECHO_KEY = "version-echo"

# Letter-grade floors over the score fraction, best first.
GRADE_FLOORS: tuple[tuple[float, str], ...] = (
    (0.90, "A"),
    (0.70, "B"),
    (0.50, "C"),
    (0.30, "D"),
)


def letter_grade(fraction: float) -> str:
    for floor, letter in GRADE_FLOORS:
        if fraction >= floor:
            return letter
    return "F"


@dataclass(frozen=True)
class ScenarioObservation:
    """What the harness saw one product do under one scenario."""

    scenario: str
    outcome: str
    evidence: str


@dataclass(frozen=True)
class CheckResult:
    """One graded row of a scorecard."""

    scenario: str
    title: str
    defect: str | None
    outcome: str
    points: float
    max_points: float
    evidence: str


@dataclass(frozen=True)
class ClientLegObservation:
    """What the harness saw on one product's *client-facing* leg.

    Collected by probing the product with a browser-profile
    ClientHello against a genuine origin: does the upstream hello the
    proxy emits fingerprint like the browser it fronts, and how does
    the substitute handshake it serves back compare with what the
    browser offered?
    """

    browser: str  # registry key of the probing browser profile
    expected_ja3: str  # the browser hello's fingerprint digest
    observed_ja3: str | None  # the proxy's upstream hello digest
    divergent_fields: tuple[str, ...]  # fingerprint dimensions that differ
    substitute_key_bits: int | None  # public key size of the served leaf
    substitute_hash: str | None  # signature hash of the served leaf
    offered_version: tuple[int, int]  # what the browser hello offered
    echoed_version: tuple[int, int] | None  # what the substitute leg served
    error: str = ""  # non-empty when the probe could not complete


def build_client_checks(
    observation: ClientLegObservation,
) -> tuple[CheckResult, ...]:
    """Grade a client-leg observation into scorecard checks.

    * ``mimicry`` — full marks only when the upstream hello's
      fingerprint matches the probing browser's on every dimension.
    * ``substitute-key`` — 2048-bit substitutes pass, 1024-bit earn
      half (the paper's 61% downgrade finding), anything below fails.
    * ``substitute-hash`` — SHA-2 passes, SHA-1 earns half in the 2014
      frame, MD5 (IopFail's choice) fails.
    * ``version-echo`` — the substitute leg must serve the version the
      client offered; serving lower is a client-visible downgrade.
    """
    if observation.error:
        evidence = f"client-leg probe failed: {observation.error}"
        return tuple(
            CheckResult(key, title, defect, OUTCOME_ERROR, 0.0, 1.0, evidence)
            for key, title, defect in (
                (MIMICRY_KEY, "ClientHello mimicry", "fingerprint-divergence"),
                (SUBSTITUTE_KEY_KEY, "Substitute key strength", "weak-key"),
                (SUBSTITUTE_HASH_KEY, "Substitute signature hash", "deprecated-hash"),
                (VERSION_ECHO_KEY, "Version echo", "protocol-downgrade"),
            )
        )
    checks = []
    if not observation.divergent_fields:
        checks.append(
            CheckResult(
                MIMICRY_KEY,
                "ClientHello mimicry",
                "fingerprint-divergence",
                OUTCOME_OK,
                1.0,
                1.0,
                f"upstream hello fingerprints as the {observation.browser} "
                f"profile ({observation.expected_ja3})",
            )
        )
    else:
        checks.append(
            CheckResult(
                MIMICRY_KEY,
                "ClientHello mimicry",
                "fingerprint-divergence",
                OUTCOME_DIVERGENT,
                0.0,
                1.0,
                "upstream hello diverges from the "
                f"{observation.browser} profile on "
                f"{', '.join(observation.divergent_fields)} "
                f"({observation.expected_ja3} != {observation.observed_ja3})",
            )
        )
    bits = observation.substitute_key_bits or 0
    key_points = 1.0 if bits >= 2048 else 0.5 if bits >= 1024 else 0.0
    checks.append(
        CheckResult(
            SUBSTITUTE_KEY_KEY,
            "Substitute key strength",
            "weak-key",
            OUTCOME_OK if key_points == 1.0 else OUTCOME_WEAK,
            key_points,
            1.0,
            f"substitute leaf carries a {bits}-bit key",
        )
    )
    hash_name = observation.substitute_hash or "unknown"
    hash_points = (
        1.0
        if hash_name in ("sha256", "sha384", "sha512")
        else 0.5
        if hash_name == "sha1"
        else 0.0
    )
    checks.append(
        CheckResult(
            SUBSTITUTE_HASH_KEY,
            "Substitute signature hash",
            "deprecated-hash",
            OUTCOME_OK if hash_points == 1.0 else OUTCOME_WEAK,
            hash_points,
            1.0,
            f"substitute leaf signed with {hash_name}",
        )
    )
    echoed = observation.echoed_version
    if echoed == observation.offered_version:
        checks.append(
            CheckResult(
                VERSION_ECHO_KEY,
                "Version echo",
                "protocol-downgrade",
                OUTCOME_OK,
                1.0,
                1.0,
                "substitute leg echoes the offered version "
                f"{version_name(echoed)}",
            )
        )
    else:
        checks.append(
            CheckResult(
                VERSION_ECHO_KEY,
                "Version echo",
                "protocol-downgrade",
                OUTCOME_DOWNGRADED,
                0.0,
                1.0,
                f"client offered {version_name(observation.offered_version)}, "
                "substitute leg served "
                f"{version_name(echoed) if echoed else 'nothing'}",
            )
        )
    return tuple(checks)


@dataclass(frozen=True)
class ProductScorecard:
    """A product's full battery result."""

    product_key: str
    category: str
    functional: bool  # intercepted the genuine-origin control
    checks: tuple[CheckResult, ...]
    # Client-leg grading (mimicry + substitute handshake); empty when
    # the battery ran upstream-only.
    client_checks: tuple[CheckResult, ...] = ()
    client_leg: ClientLegObservation | None = None

    @property
    def all_checks(self) -> tuple[CheckResult, ...]:
        return self.checks + self.client_checks

    @property
    def score(self) -> float:
        return sum(check.points for check in self.all_checks)

    @property
    def max_score(self) -> float:
        return sum(check.max_points for check in self.all_checks)

    @property
    def client_score(self) -> float:
        return sum(check.points for check in self.client_checks)

    @property
    def client_max_score(self) -> float:
        return sum(check.max_points for check in self.client_checks)

    @property
    def fraction(self) -> float:
        return self.score / self.max_score if self.max_score else 0.0

    @property
    def grade(self) -> str:
        return letter_grade(self.fraction)

    def outcome_count(self, outcome: str) -> int:
        return sum(1 for check in self.checks if check.outcome == outcome)

    @property
    def blocked(self) -> int:
        return self.outcome_count(OUTCOME_BLOCK)

    @property
    def masked(self) -> int:
        return self.outcome_count(OUTCOME_MASK)

    @property
    def passed_through(self) -> int:
        return self.outcome_count(OUTCOME_PASS)

    @property
    def errors(self) -> int:
        return self.outcome_count(OUTCOME_ERROR)

    def to_dict(self) -> dict:
        data = {
            "product": self.product_key,
            "category": self.category,
            "grade": self.grade,
            "score": self.score,
            "max_score": self.max_score,
            "functional": self.functional,
            "checks": [_check_dict(check) for check in self.checks],
        }
        if self.client_checks:
            observation = self.client_leg
            data["client_leg"] = {
                "browser": observation.browser if observation else None,
                "expected_ja3": observation.expected_ja3 if observation else None,
                "observed_ja3": observation.observed_ja3 if observation else None,
                "divergent_fields": (
                    list(observation.divergent_fields) if observation else []
                ),
                "substitute_key_bits": (
                    observation.substitute_key_bits if observation else None
                ),
                "substitute_hash": (
                    observation.substitute_hash if observation else None
                ),
                "offered_version": (
                    list(observation.offered_version) if observation else None
                ),
                "echoed_version": (
                    list(observation.echoed_version)
                    if observation and observation.echoed_version
                    else None
                ),
                "error": observation.error if observation else "",
                "checks": [_check_dict(check) for check in self.client_checks],
            }
        return data


def _check_dict(check: CheckResult) -> dict:
    return {
        "scenario": check.scenario,
        "defect": check.defect,
        "outcome": check.outcome,
        "points": check.points,
        "max_points": check.max_points,
        "evidence": check.evidence,
    }


def build_scorecard(
    product_key: str,
    category: str,
    observations: list[ScenarioObservation],
    client_leg: ClientLegObservation | None = None,
) -> ProductScorecard:
    """Grade one product's observations into a scorecard.

    ``client_leg`` folds the mimicry/substitute-handshake checks into
    the same A–F grade; omit it for an upstream-only battery.
    """
    scenarios = scenario_by_key()
    functional = True
    checks: list[CheckResult] = []
    for observation in observations:
        scenario = scenarios[observation.scenario]
        if scenario.defect is None:
            functional = observation.outcome == OUTCOME_INTERCEPT
            continue
        points = _POINTS.get(observation.outcome, 0.0)
        checks.append(
            CheckResult(
                scenario=scenario.key,
                title=scenario.title,
                defect=scenario.defect,
                outcome=observation.outcome,
                points=points,
                max_points=1.0,
                evidence=observation.evidence,
            )
        )
    return ProductScorecard(
        product_key=product_key,
        category=category,
        functional=functional,
        checks=tuple(checks),
        client_checks=(
            build_client_checks(client_leg) if client_leg is not None else ()
        ),
        client_leg=client_leg,
    )


@dataclass(frozen=True)
class AuditReport:
    """The catalog-wide battery result."""

    seed: int
    scorecards: tuple[ProductScorecard, ...]

    def by_key(self) -> dict[str, ProductScorecard]:
        return {card.product_key: card for card in self.scorecards}

    def grade_histogram(self) -> dict[str, int]:
        histogram = {letter: 0 for _, letter in GRADE_FLOORS}
        histogram["F"] = 0
        for card in self.scorecards:
            histogram[card.grade] += 1
        return histogram

    @property
    def scenario_count(self) -> int:
        return len(ADVERSARIAL_SCENARIOS)

    def to_dict(self) -> dict:
        client_keys: list[str] = []
        for card in self.scorecards:
            if card.client_checks:
                client_keys = [check.scenario for check in card.client_checks]
                break
        return {
            "seed": self.seed,
            "scenarios": [scenario.key for scenario in SCENARIOS],
            "client_leg_scenarios": client_keys,
            "products": [card.to_dict() for card in self.scorecards],
            "grades": self.grade_histogram(),
        }
