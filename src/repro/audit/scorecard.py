"""Grading of battery outcomes into per-product scorecards.

The grading follows the Waked et al. style: every adversarial scenario
is one check, each check earns points by how the product reacted, and
the total maps onto an A–F letter grade with per-check evidence.

* ``BLOCK``  — the proxy refused the connection: full marks.
* ``PASS``   — the proxy relayed the attacked chain untouched, leaving
  the browser to warn: half marks (the user still has a chance).
* ``MASK``   — the proxy replaced the attacked chain with its own
  trusted substitute, hiding the attack entirely: zero.
* ``ERROR``  — the battery could not complete the probe: zero, with
  the failure recorded as evidence.

The baseline (genuine origin) scenario is a control, not a check: a
product that fails to intercept a healthy origin is marked
non-functional instead of graded down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.scenarios import ADVERSARIAL_SCENARIOS, SCENARIOS, scenario_by_key

OUTCOME_BLOCK = "BLOCK"
OUTCOME_MASK = "MASK"
OUTCOME_PASS = "PASS"
OUTCOME_INTERCEPT = "INTERCEPT"
OUTCOME_ERROR = "ERROR"

_POINTS = {
    OUTCOME_BLOCK: 1.0,
    OUTCOME_PASS: 0.5,
    OUTCOME_MASK: 0.0,
    OUTCOME_ERROR: 0.0,
}

# Letter-grade floors over the score fraction, best first.
GRADE_FLOORS: tuple[tuple[float, str], ...] = (
    (0.90, "A"),
    (0.70, "B"),
    (0.50, "C"),
    (0.30, "D"),
)


def letter_grade(fraction: float) -> str:
    for floor, letter in GRADE_FLOORS:
        if fraction >= floor:
            return letter
    return "F"


@dataclass(frozen=True)
class ScenarioObservation:
    """What the harness saw one product do under one scenario."""

    scenario: str
    outcome: str
    evidence: str


@dataclass(frozen=True)
class CheckResult:
    """One graded row of a scorecard."""

    scenario: str
    title: str
    defect: str | None
    outcome: str
    points: float
    max_points: float
    evidence: str


@dataclass(frozen=True)
class ProductScorecard:
    """A product's full battery result."""

    product_key: str
    category: str
    functional: bool  # intercepted the genuine-origin control
    checks: tuple[CheckResult, ...]

    @property
    def score(self) -> float:
        return sum(check.points for check in self.checks)

    @property
    def max_score(self) -> float:
        return sum(check.max_points for check in self.checks)

    @property
    def fraction(self) -> float:
        return self.score / self.max_score if self.max_score else 0.0

    @property
    def grade(self) -> str:
        return letter_grade(self.fraction)

    def outcome_count(self, outcome: str) -> int:
        return sum(1 for check in self.checks if check.outcome == outcome)

    @property
    def blocked(self) -> int:
        return self.outcome_count(OUTCOME_BLOCK)

    @property
    def masked(self) -> int:
        return self.outcome_count(OUTCOME_MASK)

    @property
    def passed_through(self) -> int:
        return self.outcome_count(OUTCOME_PASS)

    @property
    def errors(self) -> int:
        return self.outcome_count(OUTCOME_ERROR)

    def to_dict(self) -> dict:
        return {
            "product": self.product_key,
            "category": self.category,
            "grade": self.grade,
            "score": self.score,
            "max_score": self.max_score,
            "functional": self.functional,
            "checks": [
                {
                    "scenario": check.scenario,
                    "defect": check.defect,
                    "outcome": check.outcome,
                    "points": check.points,
                    "max_points": check.max_points,
                    "evidence": check.evidence,
                }
                for check in self.checks
            ],
        }


def build_scorecard(
    product_key: str,
    category: str,
    observations: list[ScenarioObservation],
) -> ProductScorecard:
    """Grade one product's observations into a scorecard."""
    scenarios = scenario_by_key()
    functional = True
    checks: list[CheckResult] = []
    for observation in observations:
        scenario = scenarios[observation.scenario]
        if scenario.defect is None:
            functional = observation.outcome == OUTCOME_INTERCEPT
            continue
        points = _POINTS.get(observation.outcome, 0.0)
        checks.append(
            CheckResult(
                scenario=scenario.key,
                title=scenario.title,
                defect=scenario.defect,
                outcome=observation.outcome,
                points=points,
                max_points=1.0,
                evidence=observation.evidence,
            )
        )
    return ProductScorecard(
        product_key=product_key,
        category=category,
        functional=functional,
        checks=tuple(checks),
    )


@dataclass(frozen=True)
class AuditReport:
    """The catalog-wide battery result."""

    seed: int
    scorecards: tuple[ProductScorecard, ...]

    def by_key(self) -> dict[str, ProductScorecard]:
        return {card.product_key: card for card in self.scorecards}

    def grade_histogram(self) -> dict[str, int]:
        histogram = {letter: 0 for _, letter in GRADE_FLOORS}
        histogram["F"] = 0
        for card in self.scorecards:
            histogram[card.grade] += 1
        return histogram

    @property
    def scenario_count(self) -> int:
        return len(ADVERSARIAL_SCENARIOS)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "scenarios": [scenario.key for scenario in SCENARIOS],
            "products": [card.to_dict() for card in self.scorecards],
            "grades": self.grade_histogram(),
        }
