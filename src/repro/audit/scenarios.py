"""The adversarial upstream scenario registry.

Each scenario is a deterministic transform of the audited origin: it
mutates the chain the origin serves, the TLS parameters it negotiates,
or the revocation data the proxy can see.  The battery follows Waked
et al., *The Sorry State of TLS Security in Enterprise Interception
Appliances* (NDSS 2018): the same attacks, replayed against every
product in the catalog over netsim.

A scenario's ``defect`` is the ground-truth defect code a fully
vigilant validator would report (``None`` for the baseline control);
the scorecard compares it with what each product actually did.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass
from typing import Callable

from repro.crypto.keystore import KeyStore
from repro.crypto.rsa import synthetic_public_key
from repro.proxy.profile import (
    DEFECT_DEPRECATED_HASH,
    DEFECT_PROTOCOL_DOWNGRADE,
    DEFECT_REVOKED,
    DEFECT_WEAK_KEY,
)
from repro.tls import codec
from repro.util import stable_hash
from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import Certificate, Name, SubjectPublicKeyInfo
from repro.x509.store import RootStore
from repro.x509.verify import (
    DEFECT_EXPIRED,
    DEFECT_HOSTNAME,
    DEFECT_UNTRUSTED_ROOT,
)

# The host every battery run audits; never whitelisted by any product.
AUDIT_HOSTNAME = "audit-target.example"

# Key size of the genuine origin leaf (matches the web PKI baseline).
GENUINE_KEY_BITS = 2048
WEAK_KEY_BITS = 512


class AuditPki:
    """The PKI kit the battery builds its origins from.

    One trusted root + issuing intermediate (what the audited proxy's
    own store anchors), plus an attacker CA that no store trusts.  All
    keys come from the shared :class:`KeyStore`, so the expensive
    generation happens once per seed and is amortised across every
    product in a catalog run.
    """

    def __init__(self, keystore: KeyStore, seed: int = 0, key_bits: int = 1024) -> None:
        self.keystore = keystore
        self.seed = seed
        self.key_bits = key_bits
        trust_org = "Audit Trust Services"
        self.root = CertificateAuthority.self_signed(
            SelfSignedParams(
                subject=Name.build(common_name="Audit Root CA", organization=trust_org),
                key=keystore.key("audit:root", key_bits),
            )
        )
        self.intermediate = self.root.issue_intermediate(
            Name.build(common_name="Audit Issuing CA", organization=trust_org),
            keystore.key("audit:intermediate", key_bits),
        )
        self.attacker = CertificateAuthority.self_signed(
            SelfSignedParams(
                subject=Name.build(
                    common_name="Honest Achmed Root", organization="Adversary Labs"
                ),
                key=keystore.key("audit:attacker", key_bits),
            )
        )

    def proxy_store(self) -> RootStore:
        """The root store the audited proxy judges upstream chains with."""
        return RootStore([self.root.certificate])

    def issue_leaf(
        self,
        hostname: str,
        *,
        label: str,
        issuer: CertificateAuthority | None = None,
        key_bits: int = GENUINE_KEY_BITS,
        hash_name: str = "sha1",
        dns_names: list[str] | None = None,
        not_before: _dt.datetime | None = None,
        not_after: _dt.datetime | None = None,
    ) -> Certificate:
        """Mint an origin leaf with the scenario's chosen flaws.

        ``label`` keeps key material and serial numbers distinct (and
        deterministic) per scenario.
        """
        ca = issuer or self.intermediate
        n, e = synthetic_public_key(
            key_bits,
            random.Random(stable_hash(self.seed, "audit-leaf", label, key_bits)),
        )
        names = dns_names or [hostname]
        kwargs = {}
        if not_before is not None:
            kwargs["not_before"] = not_before
        if not_after is not None:
            kwargs["not_after"] = not_after
        return ca.issue(
            Name.build(common_name=names[0], organization="Audit Target Org"),
            SubjectPublicKeyInfo(n, e),
            hash_name=hash_name,
            dns_names=names,
            serial_number=stable_hash(self.seed, "audit-serial", label, bits=63) | 1,
            **kwargs,
        )

    def genuine_chain(self, hostname: str) -> tuple[Certificate, Certificate]:
        leaf = self.issue_leaf(hostname, label="genuine")
        return (leaf, self.intermediate.certificate)

    def self_signed_leaf(self, hostname: str) -> Certificate:
        """A leaf that vouches only for itself (needs a real keypair)."""
        authority = CertificateAuthority.self_signed(
            SelfSignedParams(
                subject=Name.build(common_name=hostname),
                key=self.keystore.key("audit:self-signed-leaf", self.key_bits),
                is_ca=False,
                dns_names=(hostname,),
                serial_number=stable_hash(self.seed, "audit-serial", "self-signed", bits=63)
                | 1,
            )
        )
        return authority.certificate


@dataclass(frozen=True)
class OriginSetup:
    """What the audited origin serves for one scenario."""

    chain: tuple[Certificate, ...]
    max_version: tuple[int, int] = codec.TLS_1_2
    cipher_suite: int = 0x002F
    # Serial numbers "published" as revoked for the scenario's duration.
    revoked_serials: frozenset[int] = frozenset()


@dataclass(frozen=True)
class AuditScenario:
    """One adversarial upstream condition in the battery."""

    key: str
    title: str
    description: str
    defect: str | None  # ground-truth defect code; None = control
    builder: Callable[[AuditPki, str], OriginSetup]

    def build(self, pki: AuditPki, hostname: str = AUDIT_HOSTNAME) -> OriginSetup:
        return self.builder(pki, hostname)


def _baseline(pki: AuditPki, hostname: str) -> OriginSetup:
    return OriginSetup(chain=pki.genuine_chain(hostname))


def _expired_leaf(pki: AuditPki, hostname: str) -> OriginSetup:
    leaf = pki.issue_leaf(
        hostname,
        label="expired",
        not_before=_dt.datetime(2010, 1, 1, tzinfo=_dt.timezone.utc),
        not_after=_dt.datetime(2012, 1, 1, tzinfo=_dt.timezone.utc),
    )
    return OriginSetup(chain=(leaf, pki.intermediate.certificate))


def _self_signed(pki: AuditPki, hostname: str) -> OriginSetup:
    return OriginSetup(chain=(pki.self_signed_leaf(hostname),))


def _wrong_hostname(pki: AuditPki, hostname: str) -> OriginSetup:
    leaf = pki.issue_leaf(
        hostname, label="wrong-hostname", dns_names=["some-other-site.example"]
    )
    return OriginSetup(chain=(leaf, pki.intermediate.certificate))


def _untrusted_ca(pki: AuditPki, hostname: str) -> OriginSetup:
    leaf = pki.issue_leaf(hostname, label="untrusted-ca", issuer=pki.attacker)
    return OriginSetup(chain=(leaf, pki.attacker.certificate))


def _weak_key(pki: AuditPki, hostname: str) -> OriginSetup:
    leaf = pki.issue_leaf(hostname, label="weak-key", key_bits=WEAK_KEY_BITS)
    return OriginSetup(chain=(leaf, pki.intermediate.certificate))


def _deprecated_hash(pki: AuditPki, hostname: str) -> OriginSetup:
    leaf = pki.issue_leaf(hostname, label="deprecated-hash", hash_name="md5")
    return OriginSetup(chain=(leaf, pki.intermediate.certificate))


def _version_downgrade(pki: AuditPki, hostname: str) -> OriginSetup:
    # Genuine chain; the *connection* is the problem: the origin will
    # only negotiate SSLv3 with an export-grade RC4/MD5 suite.
    return OriginSetup(
        chain=pki.genuine_chain(hostname),
        max_version=codec.SSL_3_0,
        cipher_suite=0x0004,  # TLS_RSA_WITH_RC4_128_MD5
    )


def _weak_cipher(pki: AuditPki, hostname: str) -> OriginSetup:
    # Modern version, broken suite: TLS 1.2 but RC4/MD5.
    return OriginSetup(
        chain=pki.genuine_chain(hostname),
        cipher_suite=0x0004,  # TLS_RSA_WITH_RC4_128_MD5
    )


def _revoked_leaf(pki: AuditPki, hostname: str) -> OriginSetup:
    leaf = pki.issue_leaf(hostname, label="revoked")
    return OriginSetup(
        chain=(leaf, pki.intermediate.certificate),
        revoked_serials=frozenset({leaf.serial_number}),
    )


BASELINE_KEY = "baseline"

SCENARIOS: tuple[AuditScenario, ...] = (
    AuditScenario(
        key=BASELINE_KEY,
        title="Genuine origin",
        description="Valid chain from a trusted CA; the control run.",
        defect=None,
        builder=_baseline,
    ),
    AuditScenario(
        key="expired-leaf",
        title="Expired leaf",
        description="Trusted chain whose leaf expired two years ago.",
        defect=DEFECT_EXPIRED,
        builder=_expired_leaf,
    ),
    AuditScenario(
        key="self-signed",
        title="Self-signed leaf",
        description="The origin vouches for itself; no CA involved.",
        defect=DEFECT_UNTRUSTED_ROOT,
        builder=_self_signed,
    ),
    AuditScenario(
        key="wrong-hostname",
        title="Wrong hostname",
        description="Valid chain, but issued for a different site.",
        defect=DEFECT_HOSTNAME,
        builder=_wrong_hostname,
    ),
    AuditScenario(
        key="untrusted-ca",
        title="Untrusted CA",
        description="Chain anchored at a CA no store trusts (the §5.2 attack).",
        defect=DEFECT_UNTRUSTED_ROOT,
        builder=_untrusted_ca,
    ),
    AuditScenario(
        key="weak-key",
        title="Weak RSA key",
        description="Trusted chain carrying a factorable 512-bit leaf key.",
        defect=DEFECT_WEAK_KEY,
        builder=_weak_key,
    ),
    AuditScenario(
        key="deprecated-hash",
        title="MD5 signature",
        description="Trusted chain whose leaf is signed with MD5.",
        defect=DEFECT_DEPRECATED_HASH,
        builder=_deprecated_hash,
    ),
    AuditScenario(
        key="version-downgrade",
        title="Protocol downgrade",
        description="Origin only negotiates SSLv3 with an RC4/MD5 suite.",
        defect=DEFECT_PROTOCOL_DOWNGRADE,
        builder=_version_downgrade,
    ),
    AuditScenario(
        key="weak-cipher",
        title="Weak cipher suite",
        description="Origin speaks TLS 1.2 but negotiates RC4/MD5.",
        defect=DEFECT_PROTOCOL_DOWNGRADE,
        builder=_weak_cipher,
    ),
    AuditScenario(
        key="revoked-leaf",
        title="Revoked certificate",
        description="Valid chain whose leaf serial is on the published CRL.",
        defect=DEFECT_REVOKED,
        builder=_revoked_leaf,
    ),
)

ADVERSARIAL_SCENARIOS: tuple[AuditScenario, ...] = tuple(
    scenario for scenario in SCENARIOS if scenario.defect is not None
)


def scenario_by_key() -> dict[str, AuditScenario]:
    return {scenario.key: scenario for scenario in SCENARIOS}
