"""Wiring that runs one product through the adversarial battery.

For every (product, scenario) pair the harness stands up a fresh
netsim world: the audited origin, a victim whose connections the
product intercepts, and a gateway the product originates its upstream
leg from.  Two probes run per scenario — a warm-up against the genuine
origin, then the attacked one — so products that cache validation
verdicts expose their time-of-check/time-of-use hole on exactly the
same flow every non-caching product handles correctly.

The expensive state (RSA keys, the audit PKI, each product's signing
CA) lives in one :class:`AuditHarness` and is shared across the whole
catalog, which is what makes ``audit_catalog`` cheap enough to run as
a benchmark: scenario chains are minted once per seed, and a fleet of
worker threads can drain the product list against the same harness.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.audit.scenarios import (
    AUDIT_HOSTNAME,
    AuditPki,
    AuditScenario,
    BASELINE_KEY,
    OriginSetup,
    SCENARIOS,
)
from repro.audit.scorecard import (
    AuditReport,
    ClientLegObservation,
    MimicryEntry,
    MimicryProbe,
    MimicrySurvey,
    ModernLegObservation,
    OUTCOME_BLOCK,
    OUTCOME_ERROR,
    OUTCOME_INTERCEPT,
    OUTCOME_MASK,
    OUTCOME_PASS,
    ProductScorecard,
    ScenarioObservation,
    ServerLegObservation,
    build_scorecard,
)
from repro.crypto.hashes import hash_by_signature_oid
from repro.crypto.keystore import KeyStore
from repro.crypto.vault import open_vault
from repro.data.products import catalog, catalog_by_key
from repro.netsim.events import drive
from repro.netsim.network import Host, Network
from repro.obs.events import HandshakeEventLog
from repro.obs.metrics import (
    SECTION_PROCESS,
    SECTION_TIMING,
    MetricsRegistry,
)
from repro.tls import codec
from repro.proxy.engine import TlsProxyEngine
from repro.proxy.forger import SubstituteCertForger
from repro.proxy.profile import ProxyProfile
from repro.tls.fingerprint import (
    DEFAULT_BROWSER,
    browser_profile,
    fingerprint_client_hello,
    fingerprint_divergence,
    fingerprint_server_hello,
    server_fingerprint_divergence,
)
from repro.tls.probe import ProbeClient, ProbeResult
from repro.tls.server import TlsCertServer
from repro.util import stable_hash


class AuditHarness:
    """Shared state for auditing many products under one seed."""

    def __init__(
        self,
        seed: int = 42,
        keystore: KeyStore | None = None,
        pki_key_bits: int = 1024,
        vault: str | None = None,
        browser: str = DEFAULT_BROWSER,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.seed = seed
        self.browser = browser_profile(browser)
        self.obs = registry if registry is not None else MetricsRegistry()
        # One pooled handshake history across every rig this harness
        # builds — ``harness.events.to_dicts()`` is the per-connection
        # record the audit CLI dumps alongside the scorecards.
        self.events = HandshakeEventLog(limit=4096, registry=self.obs)
        self.keystore = keystore or KeyStore(
            seed=seed, vault=vault, registry=self.obs
        )
        self.pki = AuditPki(self.keystore, seed=seed, key_bits=pki_key_bits)
        self.forger = SubstituteCertForger(self.keystore, seed=seed)
        # Scenario chains are deterministic per seed; mint them once.
        self._setups: dict[str, OriginSetup] = {
            scenario.key: scenario.build(self.pki, AUDIT_HOSTNAME)
            for scenario in SCENARIOS
        }
        self._baseline = self._setups[BASELINE_KEY]

    # -- single product ---------------------------------------------------

    def warm_product(self, profile: ProxyProfile) -> None:
        """Pre-generate every signing CA ``profile`` can use.

        Aggregate profiles rotate issuer variants per client bucket;
        warming only the bucket-0 variant leaves worker threads racing
        to generate the remaining variant CA keys mid-battery.
        """
        self.forger.warm(profile)

    def audit_product(self, profile: ProxyProfile) -> ProductScorecard:
        """Run ``profile`` through the full battery and grade it.

        The grade covers all three observable surfaces: the
        adversarial upstream scenarios, the client-leg
        mimicry/substitute checks, and the server-leg substitute
        ServerHello checks.
        """
        with self.obs.span("audit.product", product=profile.key):
            observations = [
                self.run_scenario(profile, scenario) for scenario in SCENARIOS
            ]
            probe = self.run_mimicry(profile)
        return build_scorecard(
            profile.key,
            profile.category.value,
            observations,
            client_leg=probe.client_leg,
            server_leg=probe.server_leg,
        )

    def run_mimicry(self, profile: ProxyProfile) -> MimicryProbe:
        """Probe ``profile`` with a browser hello against a genuine origin.

        One probe observes both legs.  Client leg: the fingerprint of
        the upstream ClientHello the proxy actually sent vs the
        probing browser's, plus the substitute certificate (key size,
        signature hash) — the de Carné de Carnavalet & van Oorschot /
        Waked et al. methodology.  Server leg: the substitute
        ServerHello served back (chosen cipher, extension set, echoed
        version, compression, session-id policy) vs the browser
        profile's *expected* genuine-origin answer — the JA3S-style
        dual.
        """
        network, origin, victim, engine = self._make_rig(profile, "mimicry")
        probe = ProbeClient(
            victim, rng=self._probe_rng(profile, "mimicry"), browser=self.browser
        )
        with self.obs.span("audit.mimicry"):
            result = probe.probe(AUDIT_HOSTNAME, 443)
            # Capture the upstream hello *before* any resume probe can
            # overwrite it, then collect the TLS 1.3-era facets (which
            # may run a second probe on the same rig).  2014 browsers
            # skip this entirely — their batteries stay byte-identical.
            upstream_hello = engine.last_upstream_hello
            modern = (
                self._observe_modern_leg(profile, victim, result.server_hello)
                if self.browser.offers_tls13
                else None
            )
        expected = self.browser.fingerprint()
        if not result.ok or upstream_hello is None:
            error = result.error or "no upstream hello observed"
            return MimicryProbe(
                client_leg=ClientLegObservation(
                    browser=self.browser.key,
                    expected_ja3=expected.digest(),
                    observed_ja3=None,
                    divergent_fields=(),
                    substitute_key_bits=None,
                    substitute_hash=None,
                    offered_version=self.browser.version,
                    echoed_version=None,
                    error=error,
                ),
                server_leg=self._observe_server_leg(
                    result.server_hello, error, modern=modern
                ),
            )
        observed = fingerprint_client_hello(upstream_hello)
        leaf = result.leaf
        if leaf is None or result.server_hello is None:
            error = "substitute flight missing ServerHello or Certificate"
            return MimicryProbe(
                client_leg=ClientLegObservation(
                    browser=self.browser.key,
                    expected_ja3=expected.digest(),
                    observed_ja3=observed.digest(),
                    divergent_fields=fingerprint_divergence(expected, observed),
                    substitute_key_bits=None,
                    substitute_hash=None,
                    offered_version=self.browser.version,
                    echoed_version=None,
                    error=error,
                ),
                server_leg=self._observe_server_leg(
                    result.server_hello, error, modern=modern
                ),
            )
        try:
            substitute_hash = hash_by_signature_oid(leaf.signature_oid).name
        except KeyError:
            substitute_hash = None
        return MimicryProbe(
            client_leg=ClientLegObservation(
                browser=self.browser.key,
                expected_ja3=expected.digest(),
                observed_ja3=observed.digest(),
                divergent_fields=fingerprint_divergence(expected, observed),
                substitute_key_bits=leaf.public_key_bits,
                substitute_hash=substitute_hash,
                offered_version=self.browser.version,
                echoed_version=result.server_hello.version,
            ),
            server_leg=self._observe_server_leg(result.server_hello, modern=modern),
        )

    def _observe_modern_leg(
        self, profile: ProxyProfile, victim: Host, served
    ) -> ModernLegObservation:
        """Collect the TLS 1.3-era facets of ``served`` on one rig.

        ``served`` is the substitute ServerHello the first probe
        captured (or None).  When it carried a session id, a *second*
        probe on the same rig presents that id back — the
        resumption-honouring check needs the product's answer to its
        own ticket, which no single handshake can reveal.  The resume
        probe draws from its own deterministic rng stream, so the
        first probe's bytes (and every 2014-era battery) are
        untouched.
        """
        browser = self.browser
        offered_max = browser.client_hello(
            bytes(32), AUDIT_HOSTNAME
        ).max_offered_version
        if served is None:
            return ModernLegObservation(
                expected_alpn=browser.expected_alpn,
                served_alpn=None,
                offered_max_version=offered_max,
                negotiated_version=None,
                downgrade_sentinel=False,
                session_id_issued=False,
                resumption_honoured=None,
                resumption_error="no ServerHello captured",
            )
        first_sid = served.session_id
        honoured: bool | None = False
        resume_error = ""
        if first_sid:
            resume = ProbeClient(
                victim,
                rng=self._probe_rng(profile, "mimicry-resume"),
                browser=browser,
            )
            with self.obs.span("audit.resume"):
                second = resume.probe(AUDIT_HOSTNAME, 443, session_id=first_sid)
            if second.server_hello is None:
                honoured = None
                resume_error = (
                    second.error or "resume probe captured no ServerHello"
                )
            else:
                honoured = second.server_hello.session_id == first_sid
        return ModernLegObservation(
            expected_alpn=browser.expected_alpn,
            served_alpn=served.alpn_protocol,
            offered_max_version=offered_max,
            negotiated_version=served.selected_version,
            downgrade_sentinel=codec.has_downgrade_sentinel(served.server_random),
            session_id_issued=bool(first_sid),
            resumption_honoured=honoured,
            resumption_error=resume_error,
        )

    def _observe_server_leg(
        self, served, error: str = "", modern: ModernLegObservation | None = None
    ) -> ServerLegObservation:
        """Grade-ready view of the substitute ServerHello ``served``.

        ``served`` is the wire-parsed hello the probe received — the
        client's ground truth, not the engine's intent — so anything
        the codec lost would be invisible here; the lossless
        :class:`~repro.tls.codec.ServerHello` is what makes this
        observation possible at all.  A hello that *was* captured is
        graded even when the rest of the probe failed (e.g. a missing
        Certificate message): the server leg was observable, and
        zeroing it would misreport a mimicking stack as detectable.
        ``error`` only applies when no hello arrived at all.
        """
        browser = self.browser
        expected = browser.server_fingerprint()
        if served is None:
            return ServerLegObservation(
                browser=browser.key,
                expected_ja3s=expected.digest(),
                observed_ja3s=None,
                divergent_fields=(),
                chosen_cipher=None,
                cipher_rank=None,
                expected_cipher=browser.expected_server_cipher,
                extension_types=(),
                expected_extension_types=browser.expected_server_extension_types,
                offered_version=browser.version,
                echoed_version=None,
                compression_method=None,
                session_id_length=None,
                error=error or "substitute flight missing ServerHello",
                modern=modern,
            )
        observed = fingerprint_server_hello(served)
        try:
            cipher_rank: int | None = browser.cipher_suites.index(
                served.cipher_suite
            )
        except ValueError:
            cipher_rank = None
        return ServerLegObservation(
            browser=browser.key,
            expected_ja3s=expected.digest(),
            observed_ja3s=observed.digest(),
            divergent_fields=server_fingerprint_divergence(expected, observed),
            chosen_cipher=served.cipher_suite,
            cipher_rank=cipher_rank,
            expected_cipher=browser.expected_server_cipher,
            extension_types=served.extension_types,
            expected_extension_types=browser.expected_server_extension_types,
            offered_version=browser.version,
            echoed_version=served.version,
            compression_method=served.compression_method,
            session_id_length=len(served.session_id),
            error="",
            modern=modern,
        )

    def survey_product(self, spec) -> MimicryEntry:
        """One product's mimicry probe as a survey entry."""
        probe = self.run_mimicry(spec.profile)
        return MimicryEntry(
            product_key=spec.key,
            category=spec.profile.category.value,
            client_leg=probe.client_leg,
            server_leg=probe.server_leg,
        )

    def _make_rig(
        self,
        profile: ProxyProfile,
        scenario_key: str,
        revoked_serials: frozenset[int] = frozenset(),
    ) -> tuple[Network, Host, Host, TlsProxyEngine]:
        """One test-rig world: origin serving the healthy baseline,
        victim behind ``profile``'s engine, gateway for the upstream
        leg.  Both battery legs build their topology here so they can
        never drift apart."""
        network = Network()
        origin = network.add_host(AUDIT_HOSTNAME, ip="203.0.113.77")
        victim = network.add_host("victim.audit.example")
        gateway = network.add_host("gateway.audit.example")
        engine = TlsProxyEngine(
            profile,
            self.forger,
            upstream_host=gateway,
            upstream_trust=self.pki.proxy_store(),
            revoked_serials=revoked_serials,
            rng=random.Random(stable_hash(self.seed, profile.key, scenario_key)),
            registry=self.obs,
            events=self.events,
        )
        victim.add_interceptor(engine)
        origin.listen(443, TlsCertServer(list(self._baseline.chain)).factory)
        return network, origin, victim, engine

    def _probe_rng(self, profile: ProxyProfile, scenario_key: str) -> random.Random:
        return random.Random(
            stable_hash(self.seed, "probe", profile.key, scenario_key)
        )

    def run_scenario(
        self, profile: ProxyProfile, scenario: AuditScenario
    ) -> ScenarioObservation:
        return drive(self.scenario_task(profile, scenario))

    def scenario_task(self, profile: ProxyProfile, scenario: AuditScenario):
        """Resumable form of :meth:`run_scenario`.

        A generator state machine yielding at each probe's await
        points, so a scheduler could multiplex scenario batteries the
        same way the study runner multiplexes wire sessions; driven
        inline it performs exactly the historical synchronous battery.
        Returns the :class:`ScenarioObservation` via ``StopIteration``.
        """
        setup = self._setups[scenario.key]
        network, origin, victim, engine = self._make_rig(
            profile, scenario.key, revoked_serials=setup.revoked_serials
        )
        probe_rng = self._probe_rng(profile, scenario.key)
        with self.obs.span("audit.scenario", scenario=scenario.key):
            # Warm-up: the origin is healthy; validation caches fill here.
            yield from ProbeClient(victim, rng=probe_rng).probe_task(
                AUDIT_HOSTNAME, 443
            )
            # The attack begins: swap in the scenario's origin.
            origin.stop_listening(443)
            origin.listen(
                443,
                TlsCertServer(
                    list(setup.chain),
                    cipher_suite=setup.cipher_suite,
                    max_version=setup.max_version,
                ).factory,
            )
            result = yield from ProbeClient(victim, rng=probe_rng).probe_task(
                AUDIT_HOSTNAME, 443
            )
        return self._classify(scenario, setup, result)

    @staticmethod
    def _classify(
        scenario: AuditScenario, setup: OriginSetup, result: ProbeResult
    ) -> ScenarioObservation:
        if result.ok:
            leaf = result.leaf
            assert leaf is not None
            if leaf.fingerprint() == setup.chain[0].fingerprint():
                outcome = OUTCOME_PASS
                evidence = (
                    "attacked chain relayed verbatim; the client's own "
                    "validation is left to warn"
                )
            elif scenario.defect is None:
                outcome = OUTCOME_INTERCEPT
                evidence = "genuine origin intercepted and re-signed as usual"
            else:
                outcome = OUTCOME_MASK
                evidence = (
                    "attack hidden behind a trusted substitute "
                    f"(issuer {leaf.issuer.rfc4514() or '<empty>'!r})"
                )
        elif f"desc={codec.ALERT_BAD_CERTIFICATE}" in result.error:
            # Only the engine's deliberate verdict counts as a block;
            # a handshake_failure alert means the battery's upstream
            # leg fell over, which must not earn the product marks.
            outcome = OUTCOME_BLOCK
            evidence = f"connection refused with a fatal alert ({result.error})"
        else:
            outcome = OUTCOME_ERROR
            evidence = f"probe failed: {result.error}"
        return ScenarioObservation(
            scenario=scenario.key, outcome=outcome, evidence=evidence
        )


def audit_catalog(
    seed: int = 42,
    workers: int = 1,
    products: list[str] | None = None,
    pki_key_bits: int = 1024,
    executor: str = "thread",
    vault: str | None = None,
    browser: str = DEFAULT_BROWSER,
    registry: MetricsRegistry | None = None,
) -> AuditReport:
    """Grade every catalog product (or the named subset) under ``seed``.

    ``workers`` > 1 fans products out over a pool; every certificate
    byte is derived deterministically from the seed and scorecards are
    returned in catalog order, so the report is identical regardless
    of worker count, executor kind or scheduling.

    ``executor`` picks the pool: ``"thread"`` shares one harness (the
    per-product signing CAs — *all* issuer variants — are warmed
    serially first so threads do not race to regenerate the same
    expensive RSA keys), while ``"process"`` sidesteps the GIL the
    battery is otherwise bound by: each worker process rebuilds the
    harness once from the seed and audits its share of the catalog.

    ``vault`` names a persistent key-vault directory
    (:mod:`repro.crypto.vault`).  On the process path the parent warms
    the vault once — audit PKI plus every product's signing CAs — so
    each worker's harness rebuild loads its RSA material from disk in
    microseconds instead of regenerating it, which is what lets the
    battery's wall time actually shrink with worker count.

    ``browser`` picks the 2014-era profile the client-leg mimicry
    probe impersonates (:data:`repro.tls.fingerprint.BROWSER_PROFILES`).

    ``registry`` collects the run's telemetry.  Deterministic tallies
    (scenario check outcomes, letter grades) are computed here from the
    returned scorecards in catalog order — never from harness-internal
    counters, whose home registry a process pool discards — so the
    deterministic section is identical for any worker count or
    executor kind.  Harness timings and keygen counts merge in as
    timing/process metrics where available (serial and thread paths).
    """
    scorecards = _fan_out_catalog(
        seed=seed,
        workers=workers,
        products=products,
        pki_key_bits=pki_key_bits,
        executor=executor,
        vault=vault,
        browser=browser,
        serial_task=lambda harness, spec: harness.audit_product(spec.profile),
        process_task=_audit_product_task,
        registry=registry,
    )
    if registry is not None:
        for card in scorecards:
            registry.inc("audit.products")
            registry.inc("audit.grades", grade=card.grade)
            for check in card.checks:
                registry.inc("audit.checks", outcome=check.outcome)
    return AuditReport(seed=seed, scorecards=tuple(scorecards))


def _resolve_specs(products: list[str] | None):
    """The catalog, or the named subset of it, in catalog order."""
    specs = catalog()
    if products:
        by_key = {spec.key: spec for spec in specs}
        unknown = [key for key in products if key not in by_key]
        if unknown:
            raise KeyError(f"unknown product keys: {', '.join(sorted(unknown))}")
        specs = [by_key[key] for key in products]
    return specs


def _fan_out_catalog(
    seed: int,
    workers: int,
    products: list[str] | None,
    pki_key_bits: int,
    executor: str,
    vault: str | None,
    browser: str,
    serial_task,
    process_task,
    registry: MetricsRegistry | None = None,
) -> list:
    """Shared orchestration for per-product catalog fan-outs.

    ``serial_task(harness, spec)`` runs one product against a local
    harness (serial and thread paths); ``process_task`` is its
    module-level twin for the process pool, which rebuilds the
    deterministic harness per worker via ``_init_audit_worker``.
    Results come back in catalog order regardless of pool scheduling.
    """
    if executor not in ("thread", "process"):
        raise ValueError("executor must be 'thread' or 'process'")
    specs = _resolve_specs(products)
    if workers > 1 and executor == "process":
        # Gate the parent warm on the *resolved* vault — an explicit
        # path or the REPRO_KEY_VAULT fallback — so env-attached
        # vaults (the CI cache mechanism) warm exactly like --vault.
        if open_vault(vault) is not None:
            warm_harness = AuditHarness(
                seed=seed, pki_key_bits=pki_key_bits, vault=vault
            )
            for spec in specs:
                warm_harness.warm_product(spec.profile)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_audit_worker,
            initargs=(seed, pki_key_bits, vault, browser),
        ) as pool:
            return list(pool.map(process_task, [spec.key for spec in specs]))
    harness = AuditHarness(
        seed=seed, pki_key_bits=pki_key_bits, vault=vault, browser=browser
    )
    try:
        if workers > 1:
            return _fan_out_threads(harness, specs, workers, serial_task)
        return [serial_task(harness, spec) for spec in specs]
    finally:
        if registry is not None:
            # Only the scheduling-dependent sections: the harness's own
            # deterministic counters (proxy decisions, probe counts)
            # would differ thread-vs-process, since process workers'
            # registries never leave their processes.
            registry.merge_snapshot(
                harness.obs.snapshot(),
                sections=(SECTION_PROCESS, SECTION_TIMING),
            )


def _fan_out_threads(harness, specs, workers: int, serial_task) -> list:
    # Threads share the harness: warm every signing CA (all issuer
    # variants, not just bucket 0) serially first so the pool never
    # races to regenerate the same expensive RSA keys mid-battery.
    # Today's battery forges only bucket 0, so the extra variants
    # are insurance for bucket-varying batteries at the cost of
    # some up-front keygen on this (GIL-bound anyway) path; the
    # serial and process paths stay lazy and pay nothing.
    for spec in specs:
        harness.warm_product(spec.profile)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(lambda spec: serial_task(harness, spec), specs))


def mimicry_catalog(
    seed: int = 42,
    workers: int = 1,
    products: list[str] | None = None,
    pki_key_bits: int = 1024,
    executor: str = "thread",
    vault: str | None = None,
    browser: str = DEFAULT_BROWSER,
    registry: MetricsRegistry | None = None,
) -> MimicrySurvey:
    """Run only the mimicry probe over the catalog (or a subset).

    The mimicry-prevalence study needs both legs of every product's
    mimicry observation but none of the adversarial scenarios, so this
    is roughly an order of magnitude cheaper than ``audit_catalog``.
    Sharding semantics are identical: entries come back in catalog
    order and are byte-identical for any worker count or executor
    kind, and a warm ``vault`` spares every worker its keygen.
    ``registry`` follows the ``audit_catalog`` contract: deterministic
    tallies derive from the returned entries, harness telemetry merges
    in as timing/process only.
    """
    entries = _fan_out_catalog(
        seed=seed,
        workers=workers,
        products=products,
        pki_key_bits=pki_key_bits,
        executor=executor,
        vault=vault,
        browser=browser,
        serial_task=lambda harness, spec: harness.survey_product(spec),
        process_task=_survey_product_task,
        registry=registry,
    )
    if registry is not None:
        for entry in entries:
            registry.inc("mimicry.entries")
            leg = "divergent" if entry.client_leg.divergent_fields else "mimicked"
            registry.inc("mimicry.client_leg", leg=leg)
            server = (
                "divergent" if entry.server_leg.divergent_fields else "mimicked"
            )
            registry.inc("mimicry.server_leg", leg=server)
    return MimicrySurvey(seed=seed, browser=browser, entries=tuple(entries))


# Per-process worker state for the process-pool backend.  The harness
# is deterministic per seed, so rebuilding it in every worker yields
# the exact certificates the shared-thread harness mints; scorecards
# come back in catalog order via ``pool.map``.
_AUDIT_WORKER: AuditHarness | None = None


def _init_audit_worker(
    seed: int,
    pki_key_bits: int,
    vault: str | None = None,
    browser: str = DEFAULT_BROWSER,
) -> None:
    global _AUDIT_WORKER
    _AUDIT_WORKER = AuditHarness(
        seed=seed, pki_key_bits=pki_key_bits, vault=vault, browser=browser
    )


def _audit_product_task(product_key: str) -> ProductScorecard:
    harness = _AUDIT_WORKER
    assert harness is not None, "worker initialised without a harness"
    spec = catalog_by_key()[product_key]
    return harness.audit_product(spec.profile)


def _survey_product_task(product_key: str) -> MimicryEntry:
    harness = _AUDIT_WORKER
    assert harness is not None, "worker initialised without a harness"
    return harness.survey_product(catalog_by_key()[product_key])
