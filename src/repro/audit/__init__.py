"""Appliance security audit: adversarial upstream battery + scorecards.

The paper spot-checked two products against one forged upstream
certificate (§5.2).  This subsystem systematises that experiment the
way Waked et al. (NDSS 2018) did for enterprise interception
appliances: every :class:`~repro.proxy.profile.ProxyProfile` in the
product catalog is driven through a deterministic battery of
adversarial upstream scenarios over netsim, and graded A–F on whether
it BLOCKs, PASSes through, or MASKs each attack.

* :mod:`repro.audit.scenarios` — the scenario registry: expired leaf,
  self-signed, wrong hostname, untrusted CA, weak RSA key, MD5
  signature, protocol downgrade, revoked leaf (plus a genuine-origin
  control), each a transform of the origin's chain or TLS parameters.
* :mod:`repro.audit.harness` — wires origin, product and victim per
  scenario, probes warm-then-attacked, and classifies the outcome.
* :mod:`repro.audit.scorecard` — turns outcomes into letter-graded
  scorecards with per-check evidence, and the catalog-wide report.

Entry points: ``audit_catalog(seed, workers)`` (batch API) and the
``repro audit`` CLI subcommand.
"""

from repro.audit.harness import AuditHarness, audit_catalog
from repro.audit.scenarios import (
    ADVERSARIAL_SCENARIOS,
    AUDIT_HOSTNAME,
    AuditPki,
    AuditScenario,
    OriginSetup,
    SCENARIOS,
    scenario_by_key,
)
from repro.audit.scorecard import (
    AuditReport,
    CheckResult,
    ClientLegObservation,
    MIMICRY_KEY,
    OUTCOME_BLOCK,
    OUTCOME_DIVERGENT,
    OUTCOME_DOWNGRADED,
    OUTCOME_ERROR,
    OUTCOME_INTERCEPT,
    OUTCOME_MASK,
    OUTCOME_OK,
    OUTCOME_PASS,
    OUTCOME_WEAK,
    ProductScorecard,
    ScenarioObservation,
    build_client_checks,
    build_scorecard,
    letter_grade,
)

__all__ = [
    "ADVERSARIAL_SCENARIOS",
    "AUDIT_HOSTNAME",
    "AuditHarness",
    "AuditPki",
    "AuditReport",
    "AuditScenario",
    "CheckResult",
    "ClientLegObservation",
    "MIMICRY_KEY",
    "OUTCOME_BLOCK",
    "OUTCOME_DIVERGENT",
    "OUTCOME_DOWNGRADED",
    "OUTCOME_ERROR",
    "OUTCOME_INTERCEPT",
    "OUTCOME_MASK",
    "OUTCOME_OK",
    "OUTCOME_PASS",
    "OUTCOME_WEAK",
    "OriginSetup",
    "ProductScorecard",
    "SCENARIOS",
    "ScenarioObservation",
    "audit_catalog",
    "build_client_checks",
    "build_scorecard",
    "letter_grade",
    "scenario_by_key",
]
