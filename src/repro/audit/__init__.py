"""Appliance security audit: adversarial upstream battery + scorecards.

The paper spot-checked two products against one forged upstream
certificate (§5.2).  This subsystem systematises that experiment the
way Waked et al. (NDSS 2018) did for enterprise interception
appliances: every :class:`~repro.proxy.profile.ProxyProfile` in the
product catalog is driven through a deterministic battery of
adversarial upstream scenarios over netsim, and graded A–F on whether
it BLOCKs, PASSes through, or MASKs each attack.

* :mod:`repro.audit.scenarios` — the scenario registry: expired leaf,
  self-signed, wrong hostname, untrusted CA, weak RSA key, MD5
  signature, protocol downgrade, revoked leaf (plus a genuine-origin
  control), each a transform of the origin's chain or TLS parameters.
* :mod:`repro.audit.harness` — wires origin, product and victim per
  scenario, probes warm-then-attacked, and classifies the outcome.
* :mod:`repro.audit.scorecard` — turns outcomes into letter-graded
  scorecards with per-check evidence, and the catalog-wide report.

Grading covers three observable surfaces per product: the adversarial
upstream scenarios, the client-leg mimicry checks (upstream
ClientHello fingerprint, substitute certificate), and the server-leg
checks (the substitute ServerHello's chosen cipher, extension set,
version echo, compression and session-id policy vs the probing
browser's *expected* genuine-origin answer).

Entry points: ``audit_catalog(seed, workers)`` (batch API),
``mimicry_catalog(...)`` (the mimicry probe alone, feeding the
mimicry-prevalence study) and the ``repro audit`` /
``repro mimicry-prevalence`` CLI subcommands.
"""

from repro.audit.harness import AuditHarness, audit_catalog, mimicry_catalog
from repro.audit.scenarios import (
    ADVERSARIAL_SCENARIOS,
    AUDIT_HOSTNAME,
    AuditPki,
    AuditScenario,
    OriginSetup,
    SCENARIOS,
    scenario_by_key,
)
from repro.audit.scorecard import (
    ALPN_MISMATCH_KEY,
    AuditReport,
    CheckResult,
    ClientLegObservation,
    MIMICRY_KEY,
    MimicryEntry,
    MimicryProbe,
    MimicrySurvey,
    ModernLegObservation,
    OUTCOME_BLOCK,
    OUTCOME_DIVERGENT,
    OUTCOME_DOWNGRADED,
    OUTCOME_ERROR,
    OUTCOME_INTERCEPT,
    OUTCOME_MASK,
    OUTCOME_OK,
    OUTCOME_PASS,
    OUTCOME_WEAK,
    ProductScorecard,
    RESUMPTION_KEY,
    ScenarioObservation,
    ServerLegObservation,
    TLS13_DOWNGRADE_KEY,
    build_client_checks,
    build_scorecard,
    build_server_checks,
    letter_grade,
)

__all__ = [
    "ADVERSARIAL_SCENARIOS",
    "ALPN_MISMATCH_KEY",
    "AUDIT_HOSTNAME",
    "AuditHarness",
    "AuditPki",
    "AuditReport",
    "AuditScenario",
    "CheckResult",
    "ClientLegObservation",
    "MIMICRY_KEY",
    "MimicryEntry",
    "MimicryProbe",
    "MimicrySurvey",
    "ModernLegObservation",
    "OUTCOME_BLOCK",
    "OUTCOME_DIVERGENT",
    "OUTCOME_DOWNGRADED",
    "OUTCOME_ERROR",
    "OUTCOME_INTERCEPT",
    "OUTCOME_MASK",
    "OUTCOME_OK",
    "OUTCOME_PASS",
    "OUTCOME_WEAK",
    "OriginSetup",
    "ProductScorecard",
    "RESUMPTION_KEY",
    "SCENARIOS",
    "ScenarioObservation",
    "ServerLegObservation",
    "TLS13_DOWNGRADE_KEY",
    "audit_catalog",
    "build_client_checks",
    "build_scorecard",
    "build_server_checks",
    "letter_grade",
    "mimicry_catalog",
    "scenario_by_key",
]
