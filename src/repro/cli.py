"""Command-line interface.

``python -m repro <command>`` drives the reproduction end to end:

* ``study1`` / ``study2`` — run a measurement study and print the
  corresponding paper tables (optionally exporting the raw report
  database as JSON Lines).
* ``scan`` — the Table 1 policy-file scan and probe-site selection.
* ``ablation`` — the §7 mitigation ablation matrix.
* ``whitelist`` — the §6.3 whitelist experiment (this paper vs Huang).
* ``audit`` — the appliance security audit: every catalog product vs
  the adversarial upstream battery, graded A–F (Waked et al. style).
* ``mimicry-prevalence`` — the study-mode mimicry analysis: probe the
  catalog's server legs and report per-country detectable-from-client-
  side rates weighted by product market share.
* ``keys`` — warm, inspect or garbage-collect the persistent
  key-material vault that studies and audits share via ``--vault``
  (or ``REPRO_KEY_VAULT``).
* ``chaos`` — the fault-injection drill matrix: every wire, server and
  store-crash fault kind, each checked for exact loss accounting and
  byte-identical recovery (studies take the same plans via
  ``--faults``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    analyze_negligence,
    classification_table,
    country_breakdown,
    heatmap_series,
    host_type_table,
    issuer_organization_table,
    malware_census,
)
from repro.reporting import (
    render_classification_table,
    render_country_table,
    render_heatmap,
    render_host_type_table,
    render_issuer_table,
)
from repro.study import StudyConfig, StudyRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'TLS Proxies: Friend or Foe?' (IMC 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for study in (1, 2):
        study_parser = sub.add_parser(
            f"study{study}", help=f"run measurement study {study}"
        )
        study_parser.add_argument("--seed", type=int, default=42)
        study_parser.add_argument(
            "--scale",
            type=float,
            default=0.02,
            help="fraction of the paper's measurement volume (default 0.02)",
        )
        study_parser.add_argument(
            "--mode", choices=("fast", "wire"), default="fast"
        )
        study_parser.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool width for fast-mode country shards; results "
            "are identical for any value (default 1)",
        )
        study_parser.add_argument(
            "--wire-concurrency",
            type=int,
            default=1,
            help="wire-mode admission cap: how many client session chains "
            "the cooperative scheduler multiplexes at once; signatures, "
            "event logs and deterministic metrics are identical for any "
            "value (default 1 = serial)",
        )
        study_parser.add_argument(
            "--vault",
            metavar="DIR",
            help="persistent key-vault directory: RSA key material is "
            "loaded from (and written back to) disk, so workers and "
            "repeat runs skip key generation entirely",
        )
        study_parser.add_argument(
            "--report-store",
            metavar="DIR",
            help="stream fast-mode shard outcomes into an on-disk segmented "
            "report store instead of RAM; tables are then rendered from "
            "the segments (directory must not already hold segments)",
        )
        study_parser.add_argument(
            "--faults",
            metavar="PLAN",
            help="deterministic fault plan, e.g. "
            "'reset=0.05,429=0.02,crash-rotate=2' — wire/server kinds, "
            "crash-<flush|rotate|seal|compact>=N, plus seed/retries/"
            "deadline/segment-bytes/batch-rows overrides; recovery must "
            "reproduce the fault-free aggregate signature",
        )
        study_parser.add_argument(
            "--export", metavar="PATH", help="write the report database as JSONL"
        )
        study_parser.add_argument(
            "--metrics-out",
            metavar="PATH",
            help="write the run's metrics snapshot as JSON (deterministic/"
            "process/timing sections) and print the phase profile",
        )

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection drill matrix: every wire, server "
        "and store-crash kind, each checked for exact loss accounting "
        "and byte-identical recovery",
    )
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument(
        "--reports",
        type=int,
        default=48,
        help="reports per wire drill (default 48)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for the embedded study drill; deterministic "
        "counters are identical for any value (default 1)",
    )
    chaos.add_argument(
        "--scale",
        type=float,
        default=0.001,
        help="scale for the embedded study drill (default 0.001)",
    )
    chaos.add_argument(
        "--vault",
        metavar="DIR",
        help="persistent key-vault directory for the embedded study drill",
    )
    chaos.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the matrix's merged deterministic metrics as JSON "
        "(the CI chaos smoke diffs this across worker counts)",
    )

    scan = sub.add_parser("scan", help="Table 1: policy-file scan of the universe")
    scan.add_argument("--universe", type=int, default=2000)

    sub.add_parser("ablation", help="§7 mitigation ablation matrix")

    whitelist = sub.add_parser(
        "whitelist", help="§6.3 whitelist experiment (this paper vs Huang et al.)"
    )
    whitelist.add_argument("--sessions", type=int, default=200_000)
    whitelist.add_argument("--seed", type=int, default=42)

    audit = sub.add_parser(
        "audit",
        help="adversarial upstream battery: grade every product's TLS posture",
    )
    audit.add_argument("--seed", type=int, default=42)
    audit.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pool width for the product fan-out (default 1)",
    )
    audit.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="pool kind for --workers > 1: 'process' sidesteps the GIL "
        "the RSA-bound battery saturates (default thread)",
    )
    audit.add_argument(
        "--product",
        action="append",
        metavar="KEY",
        help="audit only this catalog product (repeatable)",
    )
    from repro.tls.fingerprint import BROWSER_PROFILES, DEFAULT_BROWSER

    audit.add_argument(
        "--browser",
        choices=sorted(BROWSER_PROFILES),
        default=DEFAULT_BROWSER,
        help="browser profile the client-leg mimicry probe impersonates; "
        "2020-era profiles (chrome-2020, firefox-2020, safari-2020) offer "
        "TLS 1.3 and add the ALPN/resumption/downgrade checks "
        f"(default {DEFAULT_BROWSER})",
    )
    audit.add_argument(
        "--detail",
        action="store_true",
        help="print every product's per-check scorecard, not just the table",
    )
    audit.add_argument(
        "--vault",
        metavar="DIR",
        help="persistent key-vault directory shared by workers and runs",
    )
    audit.add_argument(
        "--export", metavar="PATH", help="write the full report as JSON"
    )
    audit.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the battery's metrics snapshot as JSON and print the "
        "phase profile",
    )

    prevalence = sub.add_parser(
        "mimicry-prevalence",
        help="study-mode mimicry analysis: per-country detectable-from-"
        "client-side rates, weighted by product market share",
    )
    prevalence.add_argument("--seed", type=int, default=42)
    prevalence.add_argument(
        "--study",
        type=int,
        choices=(1, 2),
        default=1,
        help="which study's country calibration and market shares to "
        "weight by (default 1)",
    )
    prevalence.add_argument(
        "--browser",
        choices=sorted(BROWSER_PROFILES),
        default=DEFAULT_BROWSER,
        help="browser whose expected origin answer the server legs are "
        f"graded against (default {DEFAULT_BROWSER})",
    )
    prevalence.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pool width for the product fan-out; output is identical "
        "for any value (default 1)",
    )
    prevalence.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="pool kind for --workers > 1 (default thread)",
    )
    prevalence.add_argument(
        "--product",
        action="append",
        metavar="KEY",
        help="survey only this catalog product (repeatable)",
    )
    prevalence.add_argument(
        "--top", type=int, default=20, help="country rows before Other (default 20)"
    )
    prevalence.add_argument(
        "--vault",
        metavar="DIR",
        help="persistent key-vault directory shared by workers and runs",
    )
    prevalence.add_argument(
        "--export", metavar="PATH", help="write the study result as JSON"
    )
    prevalence.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the survey's metrics snapshot as JSON and print the "
        "phase profile",
    )

    store = sub.add_parser(
        "store", help="inspect or maintain an on-disk segmented report store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_scan = store_sub.add_parser(
        "scan",
        help="stream every segment once: totals, aggregate signature, "
        "torn-segment count",
    )
    store_scan.add_argument("--dir", metavar="DIR", required=True)
    store_scan.add_argument(
        "--heal",
        action="store_true",
        help="truncate torn segment tails back to the last complete row",
    )
    store_compact = store_sub.add_parser(
        "compact",
        help="rewrite each shard as one segment with coalesced counters",
    )
    store_compact.add_argument("--dir", metavar="DIR", required=True)

    keys = sub.add_parser(
        "keys", help="manage the persistent RSA key-material vault"
    )
    keys_sub = keys.add_subparsers(dest="keys_command", required=True)
    warm = keys_sub.add_parser(
        "warm",
        help="pre-generate every study/audit RSA key into the vault so "
        "later runs (and their worker processes) only ever load",
    )
    warm.add_argument("--vault", metavar="DIR", required=True)
    warm.add_argument("--seed", type=int, default=42)
    warm.add_argument(
        "--audit-key-bits",
        type=int,
        default=1024,
        help="PKI key size the audit battery will be run with (default 1024)",
    )
    warm.add_argument(
        "--skip-audit",
        action="store_true",
        help="warm only the study keys, not the audit battery's",
    )
    stats = keys_sub.add_parser(
        "stats", help="print vault entry counts and on-disk size per seed"
    )
    stats.add_argument("--vault", metavar="DIR", required=True)
    stats.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="also write the vault gauges as a metrics-snapshot JSON",
    )
    gc = keys_sub.add_parser(
        "gc",
        help="prune vault entries not addressed by the kept seeds — "
        "keeps long-lived CI caches bounded",
    )
    gc.add_argument("--vault", metavar="DIR", required=True)
    gc.add_argument(
        "--keep-seeds",
        metavar="SEED",
        type=int,
        nargs="+",
        required=True,
        help="seeds whose key material survives; everything else is removed",
    )
    return parser


def _emit_metrics(snapshot: dict, path: str) -> None:
    """Write a metrics snapshot and print its phase profile.

    Only runs when ``--metrics-out`` was given: the default stdout must
    stay byte-identical across worker counts (the determinism smokes
    diff it), and wall-clock timings in it would break that.
    """
    from repro.obs.export import write_json
    from repro.reporting import render_metrics_table

    write_json(snapshot, path)
    print(f"\nmetrics snapshot written to {path}\n")
    print(render_metrics_table(snapshot))


def _run_study(study: int, args) -> int:
    try:
        config = StudyConfig(
            study=study,
            seed=args.seed,
            scale=args.scale,
            mode=args.mode,
            workers=args.workers,
            wire_concurrency=args.wire_concurrency,
            vault=args.vault,
            report_store=args.report_store,
            faults=args.faults,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"running study {study} ({args.mode} mode, scale {args.scale}, "
        f"seed {args.seed}, workers {args.workers}) ..."
    )
    if args.faults:
        print(f"fault plan: {config.fault_plan().describe()}")
    try:
        result = StudyRunner(config).run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report_store:
        # The streaming path: Tables 3/7/8 come straight from the scan
        # aggregator (no records materialised); record-level tables read
        # the mismatch rows back out of the segments.
        from repro.measure.store import SegmentedStore, load_store, scan_store

        totals = scan_store(args.report_store)
        db = load_store(
            args.report_store, matched_sample_limit=config.matched_sample_limit
        )
        n_segments = len(SegmentedStore(args.report_store).segment_paths())
        print(
            f"\nreport store: {args.report_store} ({n_segments} segments)"
            f"\naggregate signature: {totals.aggregate_signature()}"
        )
    else:
        totals = db = result.database
    faults_note = result.notes.get("faults")
    if faults_note:
        injected = ", ".join(
            f"{kind}: {count}"
            for kind, count in sorted(faults_note.get("injected", {}).items())
        )
        crashes = ", ".join(
            f"crash-{point}: {count}"
            for point, count in sorted(faults_note.get("crashes", {}).items())
        )
        print(
            f"\nfaults: {faults_note['submitted']:,} ops submitted, "
            f"{faults_note['delivered']:,} delivered, "
            f"{faults_note['failed']:,} failed "
            f"({faults_note['retries']} retries, "
            f"{faults_note.get('recoveries', 0)} crash recoveries)"
        )
        if injected or crashes:
            print(f"injected: {'; '.join(filter(None, [injected, crashes]))}")
    print(
        f"\nmeasurements: {totals.total_measurements:,}  proxied: "
        f"{totals.mismatch_count:,}  rate: "
        f"{totals.proxied_rate * 100:.2f}% (paper: 0.41%)"
    )
    order_by = "proxied" if study == 1 else "total"
    print(f"\n== Table {3 if study == 1 else 7}: connections by country ==")
    print(render_country_table(country_breakdown(totals, top_n=20, order_by=order_by)))
    print("\n== Table 4: Issuer Organization values ==")
    rows, other = issuer_organization_table(db, top_n=20)
    print(render_issuer_table(rows, other))
    print(f"\n== Table {5 if study == 1 else 6}: issuer classification ==")
    print(render_classification_table(classification_table(db)))
    if study == 2:
        print("\n== Table 8: proxied connections by host type ==")
        print(render_host_type_table(host_type_table(totals)))
        print("\n== Figure 7: prevalence heat map ==")
        print(render_heatmap(heatmap_series(totals), columns=5))
    negligence = analyze_negligence(db)
    print(
        f"\nnegligence: {negligence.downgraded_1024:,} x 1024-bit "
        f"({100 * negligence.fraction(negligence.downgraded_1024):.1f}%), "
        f"{negligence.md5_signed} MD5, {negligence.false_ca_claims} false CA claims"
    )
    census = malware_census(db)
    print(
        f"malware: {census.family_count} families, "
        f"{census.total_connections:,} connections"
    )
    if args.export:
        from repro.measure.persist import save_database

        save_database(db, args.export)
        print(f"\nreport database exported to {args.export}")
    if args.metrics_out:
        _emit_metrics(result.metrics, args.metrics_out)
    return 0


def _run_chaos(args) -> int:
    from repro.faults.chaos import run_chaos_matrix
    from repro.obs.metrics import MetricsRegistry
    from repro.reporting import render_table

    obs = MetricsRegistry()
    print(
        f"chaos drill matrix (seed {args.seed}, {args.reports} reports per "
        f"wire drill, study workers {args.workers}) ..."
    )
    outcomes = run_chaos_matrix(
        seed=args.seed,
        reports=args.reports,
        workers=args.workers,
        scale=args.scale,
        vault=args.vault,
        registry=obs,
    )
    body = []
    for outcome in outcomes:
        injected = ", ".join(
            f"{kind}: {count}" for kind, count in sorted(outcome.injected.items())
        )
        body.append(
            [
                outcome.name,
                f"{outcome.submitted:,}",
                f"{outcome.delivered:,}",
                f"{outcome.failed:,}",
                str(outcome.retries),
                str(outcome.recoveries),
                "ok" if outcome.invariant_ok else "BROKEN",
                {True: "identical", False: "DIVERGED", None: "lossy"}[
                    outcome.signature_ok
                ],
                injected or "-",
            ]
        )
    print()
    print(
        render_table(
            [
                "Drill",
                "Submitted",
                "Delivered",
                "Failed",
                "Retries",
                "Recoveries",
                "Loss",
                "Signature",
                "Injected",
            ],
            body,
        )
    )
    broken = [outcome.name for outcome in outcomes if not outcome.ok]
    if broken:
        print(f"\nFAILED drills: {', '.join(broken)}", file=sys.stderr)
    else:
        print(
            f"\nall {len(outcomes)} drills hold submitted == delivered + failed;"
            " recoverable plans reproduced the fault-free signature"
        )
    if args.metrics_out:
        from repro.obs.export import write_json

        write_json(obs.snapshot(), args.metrics_out)
        print(f"chaos metrics written to {args.metrics_out}")
    return 1 if broken else 0


def _run_scan(args) -> int:
    from repro.data.sites import STUDY2_SITES, synthetic_alexa_universe
    from repro.netsim import Network
    from repro.policy import PolicyFile, PolicyScanner, PolicyServer

    network = Network()
    scanner_host = network.add_host("scanner.example")
    universe = synthetic_alexa_universe(size=args.universe, seed=7)
    table1_hosts = {site.hostname for site in STUDY2_SITES}
    permissive = PolicyFile.permissive("443")
    for hostname, rank, category in universe:
        host = network.add_host(hostname)
        if hostname in table1_hosts:
            host.listen(843, PolicyServer(permissive).factory)
    scanner = PolicyScanner(scanner_host)
    results = scanner.scan(universe)
    selected = scanner.select_probe_sites(
        results, {"popular": 6, "business": 5, "porn": 5}
    )
    permissive_count = sum(1 for r in results if r.permissive)
    print(
        f"scanned {len(results)} sites; {permissive_count} serve permissive "
        "socket policy files"
    )
    for category, sites in selected.items():
        names = ", ".join(site.hostname for site in sites)
        print(f"  {category:<10} {names}")
    return 0


def _run_ablation() -> int:
    from repro.mitigation import evaluate_mitigations

    evaluation = evaluate_mitigations(seed=42)
    header = (
        f"{'scenario':<18} {'intercepted':<11} {'pinning':<20} "
        f"{'pin-strict':<11} {'notary':<15} {'dvcert':<14} {'ct':<10} "
        f"{'mdtls':<26} disclosure"
    )
    print(header)
    print("-" * len(header))
    for outcome in evaluation.outcomes:
        print(
            f"{outcome.scenario:<18} {str(outcome.intercepted):<11} "
            f"{outcome.pinning:<20} {outcome.pinning_strict:<11} "
            f"{outcome.notary:<15} {outcome.dvcert:<14} "
            f"{outcome.ct_monitor:<10} {outcome.mdtls:<26} {outcome.disclosure}"
        )
    return 0


def _run_whitelist(args) -> int:
    from repro.study.whitelist import run_whitelist_experiment

    result = run_whitelist_experiment(seed=args.seed, sessions=args.sessions)
    print(f"sessions: {result.sessions:,}")
    print(
        f"low-profile site rate:  {100 * result.low_profile_rate:.2f}% "
        "(this paper: 0.41%)"
    )
    print(
        f"facebook-class rate:    {100 * result.high_profile_rate:.2f}% "
        "(Huang et al.: 0.20%)"
    )
    print(f"whitelisting products: {', '.join(result.whitelisting_products)}")
    return 0


def _run_audit(args) -> int:
    import json

    from repro.analysis.tables import (
        audit_grade_table,
        client_leg_table,
        server_leg_table,
    )
    from repro.audit import ADVERSARIAL_SCENARIOS, audit_catalog
    from repro.reporting import (
        render_audit_grade_table,
        render_client_leg_table,
        render_scorecard,
        render_server_leg_table,
    )

    from repro.obs.metrics import MetricsRegistry

    obs = MetricsRegistry()
    try:
        report = audit_catalog(
            seed=args.seed,
            workers=args.workers,
            products=args.product or None,
            executor=args.executor,
            vault=args.vault,
            browser=args.browser,
            registry=obs,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(
        f"appliance security audit: {len(report.scorecards)} products x "
        f"{len(ADVERSARIAL_SCENARIOS)} adversarial scenarios "
        f"+ client-leg checks vs {args.browser} (seed {args.seed})"
    )
    print()
    print(render_audit_grade_table(audit_grade_table(report.scorecards)))
    print(f"\n== Client leg: ClientHello mimicry vs {args.browser}, "
          "substitute handshake ==")
    print(render_client_leg_table(client_leg_table(report.scorecards)))
    print(f"\n== Server leg: substitute ServerHello vs the {args.browser} "
          "origin expectation ==")
    print(render_server_leg_table(server_leg_table(report.scorecards)))
    histogram = report.grade_histogram()
    print(
        "\ngrades: "
        + "  ".join(f"{letter}: {count}" for letter, count in histogram.items())
    )
    if args.detail:
        for card in report.scorecards:
            print()
            print(render_scorecard(card))
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"\naudit report exported to {args.export}")
    if args.metrics_out:
        _emit_metrics(obs.snapshot(), args.metrics_out)
    return 0


def _run_mimicry_prevalence(args) -> int:
    import json

    from repro.analysis.mimicry import mimicry_prevalence
    from repro.audit import mimicry_catalog
    from repro.obs.metrics import MetricsRegistry
    from repro.reporting import render_mimicry_prevalence_table

    obs = MetricsRegistry()
    try:
        survey = mimicry_catalog(
            seed=args.seed,
            workers=args.workers,
            products=args.product or None,
            executor=args.executor,
            vault=args.vault,
            browser=args.browser,
            registry=obs,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    prevalence = mimicry_prevalence(survey, study=args.study, top_n=args.top)
    detectable = [v for v in prevalence.verdicts if v.detectable]
    print(
        f"mimicry prevalence: {len(survey.entries)} products probed with a "
        f"{args.browser} hello (study {args.study} market shares, seed "
        f"{args.seed}); {len(detectable)} serve a client-side detectable "
        "substitute ServerHello"
    )
    print(
        "\n== Detectable-from-client-side rate by country "
        "(share of proxied connections) =="
    )
    print(render_mimicry_prevalence_table(prevalence))
    hidden = [v for v in prevalence.verdicts if not v.detectable]
    if hidden:
        print(
            "\nindistinguishable server legs: "
            + ", ".join(v.product_key for v in hidden)
        )
    if detectable:
        print("\ndetectable server legs (diverging dimensions):")
        for verdict in detectable:
            print(f"  {verdict.product_key}: {', '.join(verdict.reasons)}")
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(prevalence.to_dict(), handle, indent=2)
        print(f"\nmimicry-prevalence study exported to {args.export}")
    if args.metrics_out:
        _emit_metrics(obs.snapshot(), args.metrics_out)
    return 0


def _run_store(args) -> int:
    from repro.measure.store import ReportStore, SegmentedStore, scan_store
    from repro.obs.metrics import MetricsRegistry

    if args.store_command == "compact":
        store = ReportStore(args.dir)
        stats = store.compact()
        store.close()
        n_segments = len(SegmentedStore(args.dir).segment_paths())
        print(
            f"store {args.dir}: compacted {stats['rows_before']:,} rows to "
            f"{stats['rows_after']:,} across {n_segments} segments"
        )
        return 0
    obs = MetricsRegistry()
    aggregator = scan_store(args.dir, registry=obs, heal=args.heal)
    torn = obs.counter("reports.rejected", reason="torn-segment").value
    n_segments = len(SegmentedStore(args.dir).segment_paths())
    print(
        f"store {args.dir}: {n_segments} segments, "
        f"{aggregator.total_measurements:,} measurements "
        f"({aggregator.mismatch_count:,} proxied, "
        f"{aggregator.distinct_proxied_ips():,} distinct proxied IPs)"
    )
    print(f"torn segments: {torn}" + (" (healed)" if args.heal and torn else ""))
    print(f"aggregate signature: {aggregator.aggregate_signature()}")
    return 0


def _run_keys(args) -> int:
    import time

    from repro.crypto.vault import KeyVault

    vault = KeyVault(args.vault)
    if args.keys_command == "stats":
        from repro.obs.export import write_json
        from repro.obs.metrics import MetricsRegistry
        from repro.reporting import render_table

        obs = MetricsRegistry()
        per_seed = vault.collect_stats(obs)
        total_entries = obs.gauge("vault.entries").value or 0
        total_bytes = obs.gauge("vault.bytes").value or 0
        print(
            f"vault {vault.path}: {total_entries} entries, "
            f"{total_bytes / 1024:.1f} KiB on disk"
        )
        if per_seed:
            body = [
                [str(seed), f"{entries:,}", f"{size / 1024:.1f}"]
                for seed, (entries, size) in sorted(
                    per_seed.items(), key=lambda item: str(item[0])
                )
            ]
            print(render_table(["Seed", "Entries", "KiB"], body))
        if args.metrics_out:
            write_json(obs.snapshot(), args.metrics_out)
            print(f"vault metrics written to {args.metrics_out}")
        return 0
    if args.keys_command == "gc":
        kept, removed = vault.gc(args.keep_seeds)
        seeds = ", ".join(str(seed) for seed in args.keep_seeds)
        print(
            f"vault {vault.path}: kept {kept} entries (seeds {seeds}), "
            f"removed {removed}"
        )
        return 0

    start = time.perf_counter()
    generated = 0
    loaded = 0
    for study in (1, 2):
        runner = StudyRunner(
            StudyConfig(study=study, seed=args.seed, vault=args.vault)
        )
        runner.warm_keys()
        generated += runner.keystore.keys_generated
        loaded += runner.keystore.vault_hits
        print(
            f"study {study}: {runner.keystore.keys_generated} generated, "
            f"{runner.keystore.vault_hits} loaded"
        )
    if not args.skip_audit:
        from repro.audit.harness import AuditHarness
        from repro.data.products import catalog

        harness = AuditHarness(
            seed=args.seed, pki_key_bits=args.audit_key_bits, vault=args.vault
        )
        for spec in catalog():
            harness.warm_product(spec.profile)
        generated += harness.keystore.keys_generated
        loaded += harness.keystore.vault_hits
        print(
            f"audit:   {harness.keystore.keys_generated} generated, "
            f"{harness.keystore.vault_hits} loaded"
        )
    wall = time.perf_counter() - start
    print(
        f"vault {vault.path}: {len(vault)} entries "
        f"({generated} generated, {loaded} loaded, {wall:.1f}s)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "study1":
        return _run_study(1, args)
    if args.command == "study2":
        return _run_study(2, args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "scan":
        return _run_scan(args)
    if args.command == "ablation":
        return _run_ablation()
    if args.command == "whitelist":
        return _run_whitelist(args)
    if args.command == "audit":
        return _run_audit(args)
    if args.command == "mimicry-prevalence":
        return _run_mimicry_prevalence(args)
    if args.command == "store":
        return _run_store(args)
    if args.command == "keys":
        return _run_keys(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
