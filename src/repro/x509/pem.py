"""PEM framing for certificates.

The paper's Flash tool concatenated every received certificate in PEM
format into one HTTP POST body; :func:`pem_decode_all` parses exactly
that wire format back into DER blobs.
"""

from __future__ import annotations

import base64

_HEADER = "-----BEGIN CERTIFICATE-----"
_FOOTER = "-----END CERTIFICATE-----"


class PemError(ValueError):
    """Raised for malformed PEM input."""


def pem_encode(der: bytes) -> str:
    """Wrap DER bytes in a PEM CERTIFICATE block (64-char lines)."""
    body = base64.b64encode(der).decode("ascii")
    lines = [body[i : i + 64] for i in range(0, len(body), 64)]
    return "\n".join([_HEADER, *lines, _FOOTER]) + "\n"


def pem_decode(text: str) -> bytes:
    """Decode exactly one PEM CERTIFICATE block to DER."""
    blocks = pem_decode_all(text)
    if len(blocks) != 1:
        raise PemError(f"expected exactly one PEM block, found {len(blocks)}")
    return blocks[0]


def pem_decode_all(text: str) -> list[bytes]:
    """Decode every PEM CERTIFICATE block in ``text``, in order."""
    blocks: list[bytes] = []
    collecting = False
    buffer: list[str] = []
    for line in text.splitlines():
        line = line.strip()
        if line == _HEADER:
            if collecting:
                raise PemError("nested BEGIN CERTIFICATE")
            collecting = True
            buffer = []
        elif line == _FOOTER:
            if not collecting:
                raise PemError("END CERTIFICATE without BEGIN")
            collecting = False
            try:
                blocks.append(base64.b64decode("".join(buffer), validate=True))
            except Exception as exc:
                raise PemError(f"bad base64 in PEM block: {exc}") from exc
        elif collecting:
            if line:
                buffer.append(line)
    if collecting:
        raise PemError("unterminated PEM block")
    return blocks
