"""Certificate chain validation.

Implements the client-side trust decision of Figure 2: walk the
presented chain from the leaf, checking signatures, validity windows,
CA flags and name chaining, until a certificate is signed by (or *is*)
a root-store member.  The result says not only valid/invalid but also
*why*, and whether trust terminated in an injected root — the signal
that a proxy, not the real PKI, vouched for the connection.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.crypto.hashes import hash_by_signature_oid
from repro.crypto.rsa import RsaPublicKey, pkcs1_verify
from repro.x509.model import Certificate
from repro.x509.store import RootStore


# Stable defect codes for the individual checks a client (or a proxy
# auditing its upstream) performs.  The audit subsystem keys product
# posture on these, so they are part of the public API.
DEFECT_EMPTY_CHAIN = "empty-chain"
DEFECT_HOSTNAME = "hostname-mismatch"
DEFECT_EXPIRED = "validity-window"
DEFECT_BAD_CA_FLAG = "bad-ca-flag"
DEFECT_CHAIN_BREAK = "chain-break"
DEFECT_BAD_SIGNATURE = "bad-signature"
DEFECT_UNTRUSTED_ROOT = "untrusted-root"

# Every defect code that concerns the chain of trust itself (as opposed
# to naming or freshness).
CHAIN_OF_TRUST_DEFECTS = frozenset(
    {
        DEFECT_EMPTY_CHAIN,
        DEFECT_BAD_CA_FLAG,
        DEFECT_CHAIN_BREAK,
        DEFECT_BAD_SIGNATURE,
        DEFECT_UNTRUSTED_ROOT,
    }
)


@dataclass(frozen=True)
class ChainDefect:
    """One concrete problem found in a presented chain."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code}: {self.detail}"


@dataclass(frozen=True)
class ChainValidationResult:
    """Outcome of validating a presented chain against a root store."""

    valid: bool
    reason: str
    trust_root: Certificate | None = None
    trusted_via_injected_root: bool = False
    errors: tuple[str, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.valid


def verify_certificate_signature(
    certificate: Certificate, signer: Certificate
) -> bool:
    """Check ``certificate``'s signature against ``signer``'s public key."""
    try:
        hash_alg = hash_by_signature_oid(certificate.signature_oid)
    except KeyError:
        return False
    public_key = RsaPublicKey(
        certificate_signer_n(signer), certificate_signer_e(signer)
    )
    return pkcs1_verify(
        public_key, hash_alg, certificate.tbs.encode(), certificate.signature
    )


def certificate_signer_n(certificate: Certificate) -> int:
    return certificate.tbs.public_key.n


def certificate_signer_e(certificate: Certificate) -> int:
    return certificate.tbs.public_key.e


def validate_chain(
    chain: list[Certificate],
    store: RootStore,
    hostname: str | None = None,
    at_time: _dt.datetime | None = None,
) -> ChainValidationResult:
    """Validate a presented certificate chain (leaf first).

    Checks: non-emptiness, hostname match on the leaf, validity
    windows, issuer/subject chaining, CA flags on intermediates, each
    link's signature, and that the chain terminates at (a certificate
    signed by) a root-store member.  The checks themselves live in
    :func:`collect_chain_defects`; this wraps them in the all-or-
    nothing verdict a browser renders, plus which root anchored trust.
    """
    at_time = at_time or _dt.datetime(2014, 6, 1, tzinfo=_dt.timezone.utc)
    defects = collect_chain_defects(chain, store, hostname=hostname, at_time=at_time)
    if defects:
        return ChainValidationResult(
            False, str(defects[0]), errors=tuple(str(d) for d in defects)
        )

    # No defects: the chain anchors; recover which root vouched.
    top = chain[-1]
    if store.contains(top):
        return ChainValidationResult(
            True,
            "chain anchors at trusted root",
            trust_root=top,
            trusted_via_injected_root=store.is_injected(top),
        )
    for root in store.find_issuer_roots(top):
        if verify_certificate_signature(top, root) and root.validity.contains(
            at_time
        ):
            return ChainValidationResult(
                True,
                "chain signed by trusted root",
                trust_root=root,
                trusted_via_injected_root=store.is_injected(root),
            )
    # Unreachable unless the store changed between the two passes.
    return ChainValidationResult(
        False, "no trusted root found", errors=("no trusted root found",)
    )


def collect_chain_defects(
    chain: list[Certificate],
    store: RootStore,
    hostname: str | None = None,
    at_time: _dt.datetime | None = None,
) -> tuple[ChainDefect, ...]:
    """Run every chain check and report *all* failures, coded.

    Unlike :func:`validate_chain` — which mirrors a browser and stops
    caring once the chain is known bad — this keeps going so callers
    can reason per-defect.  A proxy that skips hostname verification
    but does anchor chains, for example, needs to know *which* checks
    failed, not merely that one did.  The chain is valid iff the result
    is empty.
    """
    if not chain:
        return (ChainDefect(DEFECT_EMPTY_CHAIN, "no certificates presented"),)
    at_time = at_time or _dt.datetime(2014, 6, 1, tzinfo=_dt.timezone.utc)
    defects: list[ChainDefect] = []

    leaf = chain[0]
    if hostname is not None and not leaf.matches_hostname(hostname):
        defects.append(
            ChainDefect(
                DEFECT_HOSTNAME,
                f"certificate is for {leaf.subject.common_name!r}, "
                f"not {hostname!r}",
            )
        )

    for index, certificate in enumerate(chain):
        if not certificate.validity.contains(at_time):
            defects.append(
                ChainDefect(
                    DEFECT_EXPIRED, f"certificate {index} outside validity window"
                )
            )
        if index > 0 and not certificate.is_ca:
            defects.append(
                ChainDefect(
                    DEFECT_BAD_CA_FLAG,
                    f"certificate {index} used as CA without CA flag",
                )
            )

    for index in range(len(chain) - 1):
        child, parent = chain[index], chain[index + 1]
        if child.issuer != parent.subject:
            defects.append(
                ChainDefect(
                    DEFECT_CHAIN_BREAK,
                    f"chain break at {index}: issuer {child.issuer} != "
                    f"subject {parent.subject}",
                )
            )
        elif not verify_certificate_signature(child, parent):
            defects.append(
                ChainDefect(
                    DEFECT_BAD_SIGNATURE, f"bad signature on certificate {index}"
                )
            )

    top = chain[-1]
    if not store.contains(top):
        anchored = any(
            verify_certificate_signature(top, root)
            and root.validity.contains(at_time)
            for root in store.find_issuer_roots(top)
        )
        if not anchored:
            defects.append(
                ChainDefect(
                    DEFECT_UNTRUSTED_ROOT,
                    f"no trusted root found for issuer {top.issuer}",
                )
            )
    return tuple(defects)
