"""Certificate chain validation.

Implements the client-side trust decision of Figure 2: walk the
presented chain from the leaf, checking signatures, validity windows,
CA flags and name chaining, until a certificate is signed by (or *is*)
a root-store member.  The result says not only valid/invalid but also
*why*, and whether trust terminated in an injected root — the signal
that a proxy, not the real PKI, vouched for the connection.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.crypto.hashes import hash_by_signature_oid
from repro.crypto.rsa import RsaPublicKey, pkcs1_verify
from repro.x509.model import Certificate
from repro.x509.store import RootStore


@dataclass(frozen=True)
class ChainValidationResult:
    """Outcome of validating a presented chain against a root store."""

    valid: bool
    reason: str
    trust_root: Certificate | None = None
    trusted_via_injected_root: bool = False
    errors: tuple[str, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.valid


def verify_certificate_signature(
    certificate: Certificate, signer: Certificate
) -> bool:
    """Check ``certificate``'s signature against ``signer``'s public key."""
    try:
        hash_alg = hash_by_signature_oid(certificate.signature_oid)
    except KeyError:
        return False
    public_key = RsaPublicKey(
        certificate_signer_n(signer), certificate_signer_e(signer)
    )
    return pkcs1_verify(
        public_key, hash_alg, certificate.tbs.encode(), certificate.signature
    )


def certificate_signer_n(certificate: Certificate) -> int:
    return certificate.tbs.public_key.n


def certificate_signer_e(certificate: Certificate) -> int:
    return certificate.tbs.public_key.e


def validate_chain(
    chain: list[Certificate],
    store: RootStore,
    hostname: str | None = None,
    at_time: _dt.datetime | None = None,
) -> ChainValidationResult:
    """Validate a presented certificate chain (leaf first).

    Checks, in order: non-emptiness, hostname match on the leaf,
    validity windows, issuer/subject chaining, CA flags on
    intermediates, each link's signature, and finally that the chain
    terminates at (a certificate signed by) a root-store member.
    """
    if not chain:
        return ChainValidationResult(False, "empty chain")
    at_time = at_time or _dt.datetime(2014, 6, 1, tzinfo=_dt.timezone.utc)
    errors: list[str] = []

    leaf = chain[0]
    if hostname is not None and not leaf.matches_hostname(hostname):
        errors.append(f"hostname mismatch: cert is for {leaf.subject.common_name!r}")

    for index, certificate in enumerate(chain):
        if not certificate.validity.contains(at_time):
            errors.append(f"certificate {index} outside validity window")
        if index > 0 and not certificate.is_ca:
            errors.append(f"certificate {index} used as CA without CA flag")

    for index in range(len(chain) - 1):
        child, parent = chain[index], chain[index + 1]
        if child.issuer != parent.subject:
            errors.append(
                f"chain break at {index}: issuer {child.issuer} != "
                f"subject {parent.subject}"
            )
        elif not verify_certificate_signature(child, parent):
            errors.append(f"bad signature on certificate {index}")

    if errors:
        return ChainValidationResult(False, errors[0], errors=tuple(errors))

    # Anchor the top of the chain in the root store.
    top = chain[-1]
    if store.contains(top):
        return ChainValidationResult(
            True,
            "chain anchors at trusted root",
            trust_root=top,
            trusted_via_injected_root=store.is_injected(top),
        )
    for root in store.find_issuer_roots(top):
        if verify_certificate_signature(top, root):
            if not root.validity.contains(at_time):
                continue
            return ChainValidationResult(
                True,
                "chain signed by trusted root",
                trust_root=root,
                trusted_via_injected_root=store.is_injected(root),
            )
    return ChainValidationResult(
        False,
        "no trusted root found",
        errors=("no trusted root found",),
    )
