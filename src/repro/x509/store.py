"""Root certificate stores.

The root store is the battleground of the paper: benevolent products
and malware alike *inject* a new trusted root so their substitute
certificates validate (Figure 2(c)).  The store records which roots
are factory-installed versus injected so experiments can distinguish
the two.
"""

from __future__ import annotations

from repro.x509.model import Certificate


class RootStore:
    """A set of trusted root certificates, keyed by fingerprint."""

    def __init__(self, roots: list[Certificate] | None = None) -> None:
        self._roots: dict[str, Certificate] = {}
        self._injected: set[str] = set()
        for root in roots or []:
            self.add(root)

    def add(self, root: Certificate) -> None:
        """Add a factory (pre-installed) root."""
        self._roots[root.fingerprint()] = root

    def inject(self, root: Certificate) -> None:
        """Add a root the way a proxy product or malware does at install."""
        fingerprint = root.fingerprint()
        self._roots[fingerprint] = root
        self._injected.add(fingerprint)

    def remove(self, root: Certificate) -> None:
        fingerprint = root.fingerprint()
        self._roots.pop(fingerprint, None)
        self._injected.discard(fingerprint)

    def contains(self, certificate: Certificate) -> bool:
        return certificate.fingerprint() in self._roots

    def is_injected(self, certificate: Certificate) -> bool:
        """True if this root was added post-factory (the Figure 2(c) case)."""
        return certificate.fingerprint() in self._injected

    def find_issuer_roots(self, certificate: Certificate) -> list[Certificate]:
        """Roots whose subject matches ``certificate``'s issuer."""
        return [
            root
            for root in self._roots.values()
            if root.subject == certificate.issuer
        ]

    def copy(self) -> "RootStore":
        """Independent copy (for per-client stores cloned from a base image)."""
        clone = RootStore()
        clone._roots = dict(self._roots)
        clone._injected = set(self._injected)
        return clone

    def __len__(self) -> int:
        return len(self._roots)

    def __iter__(self):
        return iter(self._roots.values())

    @property
    def injected_count(self) -> int:
        return len(self._injected)
