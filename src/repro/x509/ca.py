"""Certificate issuance.

:class:`CertificateAuthority` is used three ways in the reproduction:

* the legitimate web PKI (roots → intermediates → site leaves),
* every TLS interception product (its injected root signs substitute
  certificates on the fly), and
* attackers whose CA is *not* in the victim's root store (the forged
  certificates of the Kurupira experiment, §5.2).
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass

from repro.crypto.hashes import HashAlgorithm, hash_by_name
from repro.crypto.rsa import RsaKeyPair, pkcs1_sign
from repro.x509.model import (
    Certificate,
    Extension,
    Name,
    SubjectPublicKeyInfo,
    TbsCertificate,
    Validity,
    authority_key_identifier_extension,
    basic_constraints_extension,
    key_usage_extension,
    subject_alt_name_extension,
    subject_key_identifier_extension,
)

_DEFAULT_NOT_BEFORE = _dt.datetime(2014, 1, 1, tzinfo=_dt.timezone.utc)
_DEFAULT_NOT_AFTER = _dt.datetime(2016, 1, 1, tzinfo=_dt.timezone.utc)


@dataclass(frozen=True)
class SelfSignedParams:
    """Knobs for creating a self-signed certificate.

    Usually a root (``is_ca=True``), but the audit battery also mints
    self-signed *leaves* — the classic misconfigured-or-attacked origin
    — by setting ``is_ca=False`` and naming the host in ``dns_names``.
    """

    subject: Name
    key: RsaKeyPair
    hash_name: str = "sha256"
    not_before: _dt.datetime = _DEFAULT_NOT_BEFORE
    not_after: _dt.datetime = _DEFAULT_NOT_AFTER
    serial_number: int | None = None
    is_ca: bool = True
    dns_names: tuple[str, ...] = ()


class CertificateAuthority:
    """A signing authority: a subject name plus a private key.

    ``issue`` signs end-entity or CA certificates; ``self_signed``
    bootstraps a root.  Serial numbers come from the authority's own
    deterministic RNG stream.
    """

    def __init__(
        self,
        certificate: Certificate,
        key: RsaKeyPair,
        serial_rng: random.Random | None = None,
    ) -> None:
        self.certificate = certificate
        self.key = key
        self._serial_rng = serial_rng or random.Random(key.n & 0xFFFFFFFF)

    @property
    def name(self) -> Name:
        return self.certificate.subject

    @classmethod
    def self_signed(cls, params: SelfSignedParams) -> "CertificateAuthority":
        """Create a root CA whose certificate signs itself."""
        serial = params.serial_number
        if serial is None:
            serial = random.Random(params.key.n & 0xFFFFFFF).getrandbits(63) | 1
        hash_alg = hash_by_name(params.hash_name)
        extensions: list[Extension] = [basic_constraints_extension(ca=params.is_ca)]
        if params.dns_names:
            extensions.append(subject_alt_name_extension(list(params.dns_names)))
        tbs = TbsCertificate(
            serial_number=serial,
            signature_oid=hash_alg.signature_oid,
            issuer=params.subject,
            validity=Validity(params.not_before, params.not_after),
            subject=params.subject,
            public_key=SubjectPublicKeyInfo(params.key.n, params.key.e),
            extensions=tuple(extensions),
        )
        certificate = _sign_tbs(tbs, params.key, hash_alg)
        return cls(certificate, params.key)

    def issue(
        self,
        subject: Name,
        public_key: SubjectPublicKeyInfo,
        hash_name: str = "sha256",
        is_ca: bool = False,
        dns_names: list[str] | None = None,
        not_before: _dt.datetime = _DEFAULT_NOT_BEFORE,
        not_after: _dt.datetime = _DEFAULT_NOT_AFTER,
        serial_number: int | None = None,
        extra_extensions: tuple[Extension, ...] = (),
    ) -> Certificate:
        """Issue a certificate for ``subject`` signed by this authority."""
        hash_alg = hash_by_name(hash_name)
        if serial_number is None:
            serial_number = self._serial_rng.getrandbits(63) | 1
        extensions: list[Extension] = [basic_constraints_extension(ca=is_ca)]
        if is_ca:
            extensions.append(key_usage_extension(("keyCertSign", "cRLSign")))
        else:
            extensions.append(
                key_usage_extension(("digitalSignature", "keyEncipherment"))
            )
        extensions.append(subject_key_identifier_extension(public_key))
        issuer_spki = SubjectPublicKeyInfo(self.key.n, self.key.e)
        extensions.append(authority_key_identifier_extension(issuer_spki))
        if dns_names:
            extensions.append(subject_alt_name_extension(dns_names))
        extensions.extend(extra_extensions)
        tbs = TbsCertificate(
            serial_number=serial_number,
            signature_oid=hash_alg.signature_oid,
            issuer=self.name,
            validity=Validity(not_before, not_after),
            subject=subject,
            public_key=public_key,
            extensions=tuple(extensions),
        )
        return _sign_tbs(tbs, self.key, hash_alg)

    def issue_intermediate(
        self, subject: Name, key: RsaKeyPair, hash_name: str = "sha256"
    ) -> "CertificateAuthority":
        """Issue a CA certificate and wrap it as a new authority."""
        certificate = self.issue(
            subject,
            SubjectPublicKeyInfo(key.n, key.e),
            hash_name=hash_name,
            is_ca=True,
        )
        return CertificateAuthority(certificate, key)


def _sign_tbs(
    tbs: TbsCertificate, key: RsaKeyPair, hash_alg: HashAlgorithm
) -> Certificate:
    signature = pkcs1_sign(key, hash_alg, tbs.encode())
    certificate = Certificate(
        tbs=tbs, signature_oid=hash_alg.signature_oid, signature=signature
    )
    # Freeze the DER now so .raw is always populated for issued certs too.
    return Certificate(
        tbs=tbs,
        signature_oid=hash_alg.signature_oid,
        signature=signature,
        raw=certificate.to_asn1().encode(),
    )
