"""X.509 certificates: model, DER codec, PEM, issuance and validation.

This package provides everything the measurement pipeline needs to act
on *real* certificates:

* :class:`Name`, :class:`Extension`, :class:`Certificate` — the object
  model (``repro.x509.model``).
* :func:`parse_certificate` — DER parser that keeps the raw bytes so a
  received certificate can be re-reported byte-exactly
  (``repro.x509.parse``).
* :func:`pem_encode` / :func:`pem_decode` — the PEM framing the Flash
  tool used for its HTTP POST reports (``repro.x509.pem``).
* :class:`CertificateAuthority` — issues signed certificates, used by
  the legitimate PKI, by every interception product, and by attackers
  (``repro.x509.ca``).
* :class:`RootStore` + :func:`validate_chain` — the client-side trust
  decision that proxies manipulate by injecting roots
  (``repro.x509.verify``).
"""

from repro.x509.ca import CertificateAuthority, SelfSignedParams
from repro.x509.model import (
    Certificate,
    Extension,
    Name,
    SubjectPublicKeyInfo,
    TbsCertificate,
    Validity,
)
from repro.x509.parse import X509Error, parse_certificate, parse_name
from repro.x509.pem import pem_decode, pem_decode_all, pem_encode
from repro.x509.store import RootStore
from repro.x509.verify import (
    ChainDefect,
    ChainValidationResult,
    collect_chain_defects,
    validate_chain,
    verify_certificate_signature,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "ChainDefect",
    "ChainValidationResult",
    "Extension",
    "Name",
    "RootStore",
    "SelfSignedParams",
    "SubjectPublicKeyInfo",
    "TbsCertificate",
    "Validity",
    "X509Error",
    "collect_chain_defects",
    "parse_certificate",
    "parse_name",
    "pem_decode",
    "pem_decode_all",
    "pem_encode",
    "validate_chain",
    "verify_certificate_signature",
]
