"""X.509 v3 certificate object model with DER encoding.

The model covers the RFC 5280 fields the paper's analysis touches:
distinguished names (Issuer Organization / Common Name / OU are the
classification signals), validity, the RSA public key (key-size
downgrades), the signature algorithm (MD5 findings), and the
basicConstraints / subjectAltName extensions.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
from dataclasses import dataclass, field
from functools import cached_property

from repro.asn1 import oids
from repro.asn1.types import (
    Asn1Value,
    BitString,
    Boolean,
    ContextExplicit,
    ContextPrimitive,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    PrintableString,
    Sequence,
    Set,
    UtcTime,
    Utf8String,
)

# Attribute OIDs that are encoded as PrintableString by convention.
_PRINTABLE_ATTRS = {oids.OID_COUNTRY, oids.OID_SERIAL_NUMBER}


@dataclass(frozen=True)
class NameAttribute:
    """A single AttributeTypeAndValue inside an RDN."""

    oid: str
    value: str

    @property
    def short_name(self) -> str:
        return oids.oid_name(self.oid)

    def to_asn1(self) -> Set:
        if self.oid in _PRINTABLE_ATTRS:
            string: Asn1Value = PrintableString(self.value)
        else:
            string = Utf8String(self.value)
        return Set([Sequence([ObjectIdentifier(self.oid), string])])


@dataclass(frozen=True)
class Name:
    """An X.501 distinguished name: an ordered list of attributes.

    Each attribute occupies its own RDN, which matches how virtually
    every real certificate is encoded.  An empty attribute list is a
    legal, empty SEQUENCE — exactly what the paper calls a "null"
    issuer.
    """

    attributes: tuple[NameAttribute, ...] = ()

    @classmethod
    def build(
        cls,
        common_name: str | None = None,
        organization: str | None = None,
        organizational_unit: str | None = None,
        country: str | None = None,
        locality: str | None = None,
        state: str | None = None,
        email: str | None = None,
    ) -> "Name":
        """Build a name from keyword fields, in stable C/ST/L/O/OU/CN order."""
        attrs = []
        if country is not None:
            attrs.append(NameAttribute(oids.OID_COUNTRY, country))
        if state is not None:
            attrs.append(NameAttribute(oids.OID_STATE, state))
        if locality is not None:
            attrs.append(NameAttribute(oids.OID_LOCALITY, locality))
        if organization is not None:
            attrs.append(NameAttribute(oids.OID_ORGANIZATION, organization))
        if organizational_unit is not None:
            attrs.append(NameAttribute(oids.OID_ORG_UNIT, organizational_unit))
        if common_name is not None:
            attrs.append(NameAttribute(oids.OID_COMMON_NAME, common_name))
        if email is not None:
            attrs.append(NameAttribute(oids.OID_EMAIL, email))
        return cls(tuple(attrs))

    def get(self, oid: str) -> str | None:
        """Return the first value for ``oid``, or None if absent."""
        for attr in self.attributes:
            if attr.oid == oid:
                return attr.value
        return None

    @property
    def common_name(self) -> str | None:
        return self.get(oids.OID_COMMON_NAME)

    @property
    def organization(self) -> str | None:
        return self.get(oids.OID_ORGANIZATION)

    @property
    def organizational_unit(self) -> str | None:
        return self.get(oids.OID_ORG_UNIT)

    @property
    def country(self) -> str | None:
        return self.get(oids.OID_COUNTRY)

    @property
    def is_empty(self) -> bool:
        return not self.attributes

    def to_asn1(self) -> Sequence:
        return Sequence([attr.to_asn1() for attr in self.attributes])

    def encode(self) -> bytes:
        return self.to_asn1().encode()

    def rfc4514(self) -> str:
        """OpenSSL-style one-line rendering, e.g. ``O=Bitdefender, CN=...``."""
        if not self.attributes:
            return ""
        return ", ".join(f"{a.short_name}={a.value}" for a in self.attributes)

    def __str__(self) -> str:
        return self.rfc4514()


@dataclass(frozen=True)
class Validity:
    """Certificate validity window (UTCTime encoding, like real leaf certs)."""

    not_before: _dt.datetime
    not_after: _dt.datetime

    def contains(self, moment: _dt.datetime) -> bool:
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=_dt.timezone.utc)
        return self.not_before <= moment <= self.not_after

    def to_asn1(self) -> Sequence:
        return Sequence([UtcTime(self.not_before), UtcTime(self.not_after)])


@dataclass(frozen=True)
class SubjectPublicKeyInfo:
    """An RSA public key wrapped in the SPKI structure."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus bit length — the "public key size" in the paper's tables."""
        return self.n.bit_length()

    def to_asn1(self) -> Sequence:
        algorithm = Sequence([ObjectIdentifier(oids.OID_RSA_ENCRYPTION), Null()])
        rsa_key = Sequence([Integer(self.n), Integer(self.e)]).encode()
        return Sequence([algorithm, BitString(rsa_key)])


@dataclass(frozen=True)
class Extension:
    """A certificate extension: OID, criticality, raw DER value."""

    oid: str
    critical: bool
    value: bytes

    @property
    def short_name(self) -> str:
        return oids.oid_name(self.oid)

    def to_asn1(self) -> Sequence:
        items: list[Asn1Value] = [ObjectIdentifier(self.oid)]
        if self.critical:
            items.append(Boolean(True))
        items.append(OctetString(self.value))
        return Sequence(items)


def basic_constraints_extension(ca: bool, critical: bool = True) -> Extension:
    """Build a basicConstraints extension (path length omitted)."""
    inner = Sequence([Boolean(True)]) if ca else Sequence([])
    return Extension(oids.OID_EXT_BASIC_CONSTRAINTS, critical, inner.encode())


# RFC 5280 KeyUsage named bits (MSB-first within the BIT STRING).
KEY_USAGE_BITS = (
    "digitalSignature",
    "nonRepudiation",
    "keyEncipherment",
    "dataEncipherment",
    "keyAgreement",
    "keyCertSign",
    "cRLSign",
    "encipherOnly",
    "decipherOnly",
)


def key_usage_extension(usages: tuple[str, ...], critical: bool = True) -> Extension:
    """Build a keyUsage extension from named flags.

    DER requires named-bit-list BIT STRINGs to drop trailing zero bits,
    which drives the unused_bits computation below.
    """
    indices = []
    for usage in usages:
        try:
            indices.append(KEY_USAGE_BITS.index(usage))
        except ValueError:
            raise ValueError(f"unknown key usage {usage!r}") from None
    if not indices:
        bits = BitString(b"", 0)
    else:
        highest = max(indices)
        byte_count = highest // 8 + 1
        raw = bytearray(byte_count)
        for index in indices:
            raw[index // 8] |= 0x80 >> (index % 8)
        unused = 7 - (highest % 8)
        bits = BitString(bytes(raw), unused)
    return Extension(oids.OID_EXT_KEY_USAGE, critical, bits.encode())


def _key_identifier(public_key: "SubjectPublicKeyInfo") -> bytes:
    """RFC 5280 method 1: SHA-1 of the subjectPublicKey BIT STRING body."""
    rsa_key = Sequence(
        [Integer(public_key.n), Integer(public_key.e)]
    ).encode()
    return hashlib.sha1(rsa_key).digest()


def subject_key_identifier_extension(public_key: "SubjectPublicKeyInfo") -> Extension:
    return Extension(
        oids.OID_EXT_SUBJECT_KEY_ID,
        False,
        OctetString(_key_identifier(public_key)).encode(),
    )


def authority_key_identifier_extension(
    issuer_public_key: "SubjectPublicKeyInfo",
) -> Extension:
    # AuthorityKeyIdentifier ::= SEQUENCE { keyIdentifier [0] IMPLICIT ... }
    inner = Sequence(
        [ContextPrimitive(0, _key_identifier(issuer_public_key))]
    )
    return Extension(oids.OID_EXT_AUTHORITY_KEY_ID, False, inner.encode())


def subject_alt_name_extension(dns_names: list[str]) -> Extension:
    """Build a subjectAltName extension of dNSName entries."""
    general_names = Sequence(
        [ContextPrimitive(2, name.encode("ascii")) for name in dns_names]
    )
    return Extension(oids.OID_EXT_SUBJECT_ALT_NAME, False, general_names.encode())


@dataclass(frozen=True)
class TbsCertificate:
    """The to-be-signed portion of a certificate."""

    serial_number: int
    signature_oid: str
    issuer: Name
    validity: Validity
    subject: Name
    public_key: SubjectPublicKeyInfo
    extensions: tuple[Extension, ...] = ()
    version: int = 2  # X.509 v3

    def to_asn1(self) -> Sequence:
        items: list[Asn1Value] = [
            ContextExplicit(0, Integer(self.version)),
            Integer(self.serial_number),
            Sequence([ObjectIdentifier(self.signature_oid), Null()]),
            self.issuer.to_asn1(),
            self.validity.to_asn1(),
            self.subject.to_asn1(),
            self.public_key.to_asn1(),
        ]
        if self.extensions:
            ext_list = Sequence([ext.to_asn1() for ext in self.extensions])
            items.append(ContextExplicit(3, ext_list))
        return Sequence(items)

    def encode(self) -> bytes:
        return self.to_asn1().encode()


@dataclass(frozen=True)
class Certificate:
    """A signed certificate.

    ``raw`` holds the exact DER this certificate was parsed from (or
    encoded to at issuance), so re-serialisation is byte-exact — the
    property the reporting pipeline depends on for mismatch detection.
    """

    tbs: TbsCertificate
    signature_oid: str
    signature: bytes
    raw: bytes = field(repr=False, compare=False, default=b"")

    # -- convenience accessors used throughout the analysis ------------

    @property
    def subject(self) -> Name:
        return self.tbs.subject

    @property
    def issuer(self) -> Name:
        return self.tbs.issuer

    @property
    def serial_number(self) -> int:
        return self.tbs.serial_number

    @property
    def public_key_bits(self) -> int:
        return self.tbs.public_key.bits

    @property
    def validity(self) -> Validity:
        return self.tbs.validity

    @property
    def signature_algorithm(self) -> str:
        """Short name, e.g. ``sha256WithRSAEncryption``."""
        return oids.oid_name(self.signature_oid)

    @property
    def is_ca(self) -> bool:
        """True if a basicConstraints extension asserts CA=TRUE."""
        from repro.x509.parse import parse_basic_constraints

        for ext in self.tbs.extensions:
            if ext.oid == oids.OID_EXT_BASIC_CONSTRAINTS:
                return parse_basic_constraints(ext.value)
        return False

    @property
    def dns_names(self) -> list[str]:
        """dNSName entries of subjectAltName (empty if absent)."""
        from repro.x509.parse import parse_subject_alt_name

        for ext in self.tbs.extensions:
            if ext.oid == oids.OID_EXT_SUBJECT_ALT_NAME:
                return parse_subject_alt_name(ext.value)
        return []

    @property
    def key_usage(self) -> tuple[str, ...]:
        """Named keyUsage flags (empty if the extension is absent)."""
        from repro.asn1.types import BitString as _BitString, decode as _decode

        for ext in self.tbs.extensions:
            if ext.oid != oids.OID_EXT_KEY_USAGE:
                continue
            value, _ = _decode(ext.value)
            if not isinstance(value, _BitString):
                return ()
            flags = []
            for index, name in enumerate(KEY_USAGE_BITS):
                byte_index, bit = index // 8, 0x80 >> (index % 8)
                if byte_index < len(value.data) and value.data[byte_index] & bit:
                    flags.append(name)
            return tuple(flags)
        return ()

    @property
    def subject_key_identifier(self) -> bytes | None:
        from repro.asn1.types import OctetString as _OctetString, decode as _decode

        for ext in self.tbs.extensions:
            if ext.oid == oids.OID_EXT_SUBJECT_KEY_ID:
                value, _ = _decode(ext.value)
                return value.data if isinstance(value, _OctetString) else None
        return None

    @property
    def authority_key_identifier(self) -> bytes | None:
        from repro.asn1.types import (
            ContextPrimitive as _ContextPrimitive,
            Sequence as _Sequence,
            decode as _decode,
        )

        for ext in self.tbs.extensions:
            if ext.oid == oids.OID_EXT_AUTHORITY_KEY_ID:
                value, _ = _decode(ext.value)
                if isinstance(value, _Sequence):
                    for item in value:
                        if isinstance(item, _ContextPrimitive) and item.number == 0:
                            return item.data
                return None
        return None

    def to_asn1(self) -> Sequence:
        return Sequence(
            [
                self.tbs.to_asn1(),
                Sequence([ObjectIdentifier(self.signature_oid), Null()]),
                BitString(self.signature),
            ]
        )

    # The DER and its SHA-256 are immutable once the certificate
    # exists, and the forge cache, audit classifier and reporting
    # server all ask for them repeatedly — memoise both on the
    # instance (``cached_property`` writes straight into ``__dict__``,
    # which the frozen dataclass permits).

    @cached_property
    def _der(self) -> bytes:
        if self.raw:
            return self.raw
        return self.to_asn1().encode()

    @cached_property
    def _sha256_hex(self) -> str:
        return hashlib.sha256(self._der).hexdigest()

    def encode(self) -> bytes:
        """DER bytes; prefers the captured raw encoding when present."""
        return self._der

    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the DER encoding (hex)."""
        return self._sha256_hex

    def matches_hostname(self, hostname: str) -> bool:
        """RFC 6125-lite host matching over SAN (preferred) then CN."""
        names = self.dns_names or (
            [self.subject.common_name] if self.subject.common_name else []
        )
        return any(_hostname_matches(pattern, hostname) for pattern in names)


def _hostname_matches(pattern: str, hostname: str) -> bool:
    pattern = pattern.lower().rstrip(".")
    hostname = hostname.lower().rstrip(".")
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[1:]  # ".example.com"
        return hostname.endswith(suffix) and hostname.count(".") == pattern.count(".")
    return False
