"""DER certificate parser.

Parses the structures produced by :mod:`repro.x509.model` and, more
importantly, anything a proxy on the wire may hand us.  The original
DER is retained on the parsed object so reports round-trip byte-exactly
and fingerprints are stable.
"""

from __future__ import annotations

from repro.asn1 import oids
from repro.asn1.der import Asn1Error
from repro.asn1.types import (
    Asn1Value,
    BitString,
    Boolean,
    ContextExplicit,
    ContextPrimitive,
    GeneralizedTime,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    Sequence,
    Set,
    UtcTime,
    decode,
)
from repro.x509.model import (
    Certificate,
    Extension,
    Name,
    NameAttribute,
    SubjectPublicKeyInfo,
    TbsCertificate,
    Validity,
)


class X509Error(ValueError):
    """Raised when bytes do not parse as the expected X.509 structure."""


def _expect(value: Asn1Value, kind: type, what: str):
    if not isinstance(value, kind):
        raise X509Error(f"expected {kind.__name__} for {what}, got {type(value).__name__}")
    return value


def parse_certificate(data: bytes) -> Certificate:
    """Parse one DER certificate; raises :class:`X509Error` on malformed input."""
    try:
        top, rest = decode(data)
    except Asn1Error as exc:
        raise X509Error(f"bad certificate DER: {exc}") from exc
    if rest:
        raise X509Error("trailing bytes after certificate")
    outer = _expect(top, Sequence, "Certificate")
    if len(outer) != 3:
        raise X509Error(f"Certificate must have 3 elements, has {len(outer)}")
    tbs = _parse_tbs(_expect(outer[0], Sequence, "TBSCertificate"))
    sig_alg = _parse_algorithm_identifier(outer[1])
    sig_bits = _expect(outer[2], BitString, "signatureValue")
    if sig_bits.unused_bits:
        raise X509Error("signature BIT STRING has unused bits")
    return Certificate(
        tbs=tbs,
        signature_oid=sig_alg,
        signature=sig_bits.data,
        raw=bytes(data),
    )


def _parse_tbs(seq: Sequence) -> TbsCertificate:
    items = list(seq.items)
    index = 0
    version = 0
    if items and isinstance(items[0], ContextExplicit) and items[0].number == 0:
        version_int = _expect(items[0].inner, Integer, "version")
        version = version_int.value
        index = 1
    if len(items) - index < 6:
        raise X509Error("TBSCertificate too short")
    serial = _expect(items[index], Integer, "serialNumber").value
    signature_oid = _parse_algorithm_identifier(items[index + 1])
    issuer = parse_name(items[index + 2])
    validity = _parse_validity(items[index + 3])
    subject = parse_name(items[index + 4])
    public_key = _parse_spki(items[index + 5])
    extensions: tuple[Extension, ...] = ()
    for extra in items[index + 6 :]:
        if isinstance(extra, ContextExplicit) and extra.number == 3:
            extensions = _parse_extensions(extra.inner)
    return TbsCertificate(
        serial_number=serial,
        signature_oid=signature_oid,
        issuer=issuer,
        validity=validity,
        subject=subject,
        public_key=public_key,
        extensions=extensions,
        version=version,
    )


def _parse_algorithm_identifier(value: Asn1Value) -> str:
    seq = _expect(value, Sequence, "AlgorithmIdentifier")
    if not seq.items:
        raise X509Error("empty AlgorithmIdentifier")
    oid = _expect(seq[0], ObjectIdentifier, "algorithm OID")
    return oid.dotted


def parse_name(value: Asn1Value) -> Name:
    """Parse an X.501 Name (SEQUENCE OF RDN)."""
    seq = _expect(value, Sequence, "Name")
    attributes: list[NameAttribute] = []
    for rdn in seq.items:
        rdn_set = _expect(rdn, Set, "RDN")
        for atv in rdn_set.items:
            atv_seq = _expect(atv, Sequence, "AttributeTypeAndValue")
            if len(atv_seq) != 2:
                raise X509Error("AttributeTypeAndValue must have 2 elements")
            oid = _expect(atv_seq[0], ObjectIdentifier, "attribute type")
            attr_value = atv_seq[1]
            text = getattr(attr_value, "value", None)
            if not isinstance(text, str):
                raise X509Error(
                    f"unsupported attribute value type {type(attr_value).__name__}"
                )
            attributes.append(NameAttribute(oid.dotted, text))
    return Name(tuple(attributes))


def _parse_time(value: Asn1Value):
    if isinstance(value, (UtcTime, GeneralizedTime)):
        return value.value
    raise X509Error(f"bad time type {type(value).__name__}")


def _parse_validity(value: Asn1Value) -> Validity:
    seq = _expect(value, Sequence, "Validity")
    if len(seq) != 2:
        raise X509Error("Validity must have 2 elements")
    return Validity(_parse_time(seq[0]), _parse_time(seq[1]))


def _parse_spki(value: Asn1Value) -> SubjectPublicKeyInfo:
    seq = _expect(value, Sequence, "SubjectPublicKeyInfo")
    if len(seq) != 2:
        raise X509Error("SubjectPublicKeyInfo must have 2 elements")
    algorithm = _parse_algorithm_identifier(seq[0])
    if algorithm != oids.OID_RSA_ENCRYPTION:
        raise X509Error(f"unsupported public key algorithm {algorithm}")
    key_bits = _expect(seq[1], BitString, "subjectPublicKey")
    try:
        key_value, rest = decode(key_bits.data)
    except Asn1Error as exc:
        raise X509Error(f"bad RSAPublicKey: {exc}") from exc
    if rest:
        raise X509Error("trailing bytes after RSAPublicKey")
    key_seq = _expect(key_value, Sequence, "RSAPublicKey")
    if len(key_seq) != 2:
        raise X509Error("RSAPublicKey must have 2 elements")
    n = _expect(key_seq[0], Integer, "modulus").value
    e = _expect(key_seq[1], Integer, "publicExponent").value
    if n <= 0 or e <= 0:
        raise X509Error("non-positive RSA parameters")
    return SubjectPublicKeyInfo(n=n, e=e)


def _parse_extensions(value: Asn1Value) -> tuple[Extension, ...]:
    seq = _expect(value, Sequence, "Extensions")
    extensions = []
    for item in seq.items:
        ext_seq = _expect(item, Sequence, "Extension")
        if len(ext_seq) not in (2, 3):
            raise X509Error("Extension must have 2 or 3 elements")
        oid = _expect(ext_seq[0], ObjectIdentifier, "extension OID").dotted
        critical = False
        value_index = 1
        if isinstance(ext_seq[1], Boolean):
            critical = ext_seq[1].value
            value_index = 2
        octets = _expect(ext_seq[value_index], OctetString, "extension value")
        extensions.append(Extension(oid, critical, octets.data))
    return tuple(extensions)


def parse_basic_constraints(value: bytes) -> bool:
    """Return the CA flag from a basicConstraints extension value."""
    try:
        top, rest = decode(value)
    except Asn1Error as exc:
        raise X509Error(f"bad basicConstraints: {exc}") from exc
    if rest:
        raise X509Error("trailing bytes in basicConstraints")
    seq = _expect(top, Sequence, "BasicConstraints")
    if seq.items and isinstance(seq[0], Boolean):
        return seq[0].value
    return False


def parse_subject_alt_name(value: bytes) -> list[str]:
    """Return the dNSName entries from a subjectAltName extension value."""
    try:
        top, rest = decode(value)
    except Asn1Error as exc:
        raise X509Error(f"bad subjectAltName: {exc}") from exc
    if rest:
        raise X509Error("trailing bytes in subjectAltName")
    seq = _expect(top, Sequence, "GeneralNames")
    names = []
    for item in seq.items:
        if isinstance(item, ContextPrimitive) and item.number == 2:
            names.append(item.data.decode("ascii", errors="replace"))
    return names
