"""A cooperative task loop over the simulated network.

"Concurrency" here means interleaving progress across many client
state machines, the same job a selector loop does for real sockets.
:class:`CooperativeLoop` round-robins a set of generator tasks: each
task yields whenever it has handed bytes to the network and is willing
to let other connections run, and finishes by returning.

Two consumers build on it:

* the ingest front end (:mod:`repro.measure.ingest`) drives many
  reporting clients against one server host on the historical
  synchronous transport, with the admission cap standing in for the
  listen backlog;
* :class:`WireScheduler` pairs the loop with a network's
  :class:`~repro.netsim.events.DeliveryQueue`, draining queued
  transport events between ticks — the substrate that multiplexes
  thousands of concurrent wire-mode measurement sessions in one
  process.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:
    from repro.netsim.network import Network


class LoopStarvation(RuntimeError):
    """``run()`` hit its deadline with tasks still in flight.

    Carries the labels of the stuck tasks so a starved run is
    diagnosable — a task spawning fresh work every tick, or one
    waiting on bytes that will never arrive, shows up by name instead
    of as a silent infinite loop.
    """

    def __init__(self, ticks: int, stuck: list[str]) -> None:
        self.ticks = ticks
        self.stuck = stuck
        preview = ", ".join(stuck[:8]) + (", ..." if len(stuck) > 8 else "")
        super().__init__(
            f"loop exceeded {ticks} ticks with {len(stuck)} task(s) "
            f"still in flight: {preview}"
        )


class CooperativeLoop:
    """Round-robin scheduler for generator tasks.

    Tasks are generators: each ``next()`` advances one to its next
    yield point.  At most ``max_active`` tasks are in flight; the rest
    wait in an admission queue and are started as slots free up, which
    is what bounds per-tick memory (and models a listen backlog).

    ``shuffle`` (a seeded :class:`random.Random`) randomises the order
    tasks are stepped within each tick — the determinism tests use it
    to prove results are interleaving-independent.
    """

    def __init__(
        self,
        max_active: int = 32,
        on_task_error: Callable[[Iterator, BaseException], None] | None = None,
        shuffle: random.Random | None = None,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.max_active = max_active
        self.on_task_error = on_task_error
        self.shuffle = shuffle
        self._pending: deque[tuple[Callable[[], Iterator], str | None]] = deque()
        self._active: deque[tuple[Iterator, str | None]] = deque()
        self.ticks = 0
        self.completed = 0
        self.task_failures = 0
        self.peak_active = 0

    def spawn(self, factory: Callable[[], Iterator], label: str | None = None) -> None:
        """Queue a task; ``factory()`` is called when it is admitted."""
        self._pending.append((factory, label))

    @property
    def idle(self) -> bool:
        return not self._pending and not self._active

    def active_labels(self) -> list[str]:
        """Labels of in-flight tasks (spawn order, unlabelled as ``?``)."""
        return [label if label is not None else "?" for _, label in self._active]

    def _admit(self) -> None:
        while self._pending and len(self._active) < self.max_active:
            factory, label = self._pending.popleft()
            self._active.append((factory(), label))
        if len(self._active) > self.peak_active:
            self.peak_active = len(self._active)

    def tick(self) -> int:
        """Step every active task once; returns tasks still in flight."""
        self._admit()
        self.ticks += 1
        batch = list(self._active)
        self._active.clear()
        if self.shuffle is not None:
            self.shuffle.shuffle(batch)
        for entry in batch:
            task, _label = entry
            try:
                next(task)
            except StopIteration:
                self.completed += 1
                continue
            except Exception as exc:
                # One faulty task must not kill the whole loop: count
                # it, run its cleanup, keep every other task ticking.
                self.task_failures += 1
                close = getattr(task, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:
                        pass
                if self.on_task_error is not None:
                    self.on_task_error(task, exc)
                continue
            self._active.append(entry)
        self._admit()
        return len(self._active)

    def run(
        self,
        max_ticks: int | None = None,
        on_tick: Callable[["CooperativeLoop"], None] | None = None,
        deadline_ticks: int | None = None,
    ) -> int:
        """Tick until idle; returns ticks executed.

        ``max_ticks`` bounds this call and returns quietly (callers
        slicing work into chunks).  ``deadline_ticks`` is the
        starvation guard: exceeding it raises :class:`LoopStarvation`
        naming the stuck tasks, which is what turns a task that spawns
        new work every tick — ``idle`` never goes true — from a hang
        into a diagnosis.
        """
        start = self.ticks
        while not self.idle:
            if max_ticks is not None and self.ticks - start >= max_ticks:
                break
            if deadline_ticks is not None and self.ticks - start >= deadline_ticks:
                raise LoopStarvation(self.ticks - start, self.active_labels())
            self.tick()
            if on_tick is not None:
                on_tick(self)
        return self.ticks - start


class WireScheduler:
    """Runs client tasks over a network's scheduled-delivery transport.

    For the duration of :meth:`run` the network's
    :class:`~repro.netsim.events.DeliveryQueue` is active: sends on
    schedulable sockets enqueue instead of recursing, and the queue is
    drained to quiescence after every loop tick.  Because every server
    protocol answers within the drain, a client task that yields once
    after sending is guaranteed the complete reply (or the close) on
    resume — synchronous semantics, concurrent execution.
    """

    def __init__(
        self,
        network: "Network",
        max_active: int = 32,
        on_task_error: Callable[[Iterator, BaseException], None] | None = None,
        shuffle: random.Random | None = None,
    ) -> None:
        self.network = network
        self.loop = CooperativeLoop(
            max_active=max_active, on_task_error=on_task_error, shuffle=shuffle
        )

    def spawn(self, factory: Callable[[], Iterator], label: str | None = None) -> None:
        self.loop.spawn(factory, label)

    def run(self, deadline_ticks: int | None = None) -> int:
        """Drive all tasks to completion; returns loop ticks executed."""
        queue = self.network.queue
        queue.active = True
        try:
            ticks = self.loop.run(
                on_tick=lambda loop: queue.drain(), deadline_ticks=deadline_ticks
            )
            queue.drain()
        finally:
            queue.active = False
        return ticks
