"""A cooperative task loop over the synchronous simulated network.

netsim delivers bytes synchronously — ``send()`` runs the peer's
protocol callbacks before returning — so "concurrency" here means
interleaving progress across many client state machines, the same job
a selector loop does for real sockets.  :class:`CooperativeLoop`
round-robins a set of generator tasks: each task yields whenever it
has handed bytes to the network and is willing to let other
connections run, and finishes by returning.

The ingest front end (:mod:`repro.measure.ingest`) builds on this to
drive many reporting clients against one server host concurrently,
with an admission cap standing in for the listen backlog.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator


class CooperativeLoop:
    """Round-robin scheduler for generator tasks.

    Tasks are generators: each ``next()`` advances one to its next
    yield point.  At most ``max_active`` tasks are in flight; the rest
    wait in an admission queue and are started as slots free up, which
    is what bounds per-tick memory (and models a listen backlog).
    """

    def __init__(
        self,
        max_active: int = 32,
        on_task_error: Callable[[Iterator, BaseException], None] | None = None,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.max_active = max_active
        self.on_task_error = on_task_error
        self._pending: deque[Callable[[], Iterator]] = deque()
        self._active: deque[Iterator] = deque()
        self.ticks = 0
        self.completed = 0
        self.task_failures = 0
        self.peak_active = 0

    def spawn(self, factory: Callable[[], Iterator]) -> None:
        """Queue a task; ``factory()`` is called when it is admitted."""
        self._pending.append(factory)

    @property
    def idle(self) -> bool:
        return not self._pending and not self._active

    def _admit(self) -> None:
        while self._pending and len(self._active) < self.max_active:
            self._active.append(self._pending.popleft()())
        if len(self._active) > self.peak_active:
            self.peak_active = len(self._active)

    def tick(self) -> int:
        """Step every active task once; returns tasks still in flight."""
        self._admit()
        self.ticks += 1
        for _ in range(len(self._active)):
            task = self._active.popleft()
            try:
                next(task)
            except StopIteration:
                self.completed += 1
                continue
            except Exception as exc:
                # One faulty task must not kill the whole loop: count
                # it, run its cleanup, keep every other task ticking.
                self.task_failures += 1
                close = getattr(task, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:
                        pass
                if self.on_task_error is not None:
                    self.on_task_error(task, exc)
                continue
            self._active.append(task)
        self._admit()
        return len(self._active)

    def run(
        self,
        max_ticks: int | None = None,
        on_tick: Callable[["CooperativeLoop"], None] | None = None,
    ) -> int:
        """Tick until idle (or ``max_ticks``); returns ticks executed."""
        start = self.ticks
        while not self.idle:
            if max_ticks is not None and self.ticks - start >= max_ticks:
                break
            self.tick()
            if on_tick is not None:
                on_tick(self)
        return self.ticks - start
