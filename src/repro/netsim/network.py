"""Hosts, sockets, listeners and on-path interception."""

from __future__ import annotations

from typing import Callable

from repro.netsim.events import DeliveryQueue


class NetsimError(Exception):
    """Base class for simulated network errors."""


class ConnectionRefused(NetsimError):
    """No listener (or no such host) at the destination."""


class ConnectionReset(NetsimError):
    """The peer closed or the handler raised mid-connection."""


class Protocol:
    """Event-driven connection handler (the server side of a socket).

    Subclasses override the three callbacks.  ``connection_made``
    receives the server-side :class:`StreamSocket`; everything the
    client sends arrives via ``data_received``.
    """

    def connection_made(self, sock: "StreamSocket") -> None:  # noqa: B027
        """Called once when the connection is established."""

    def data_received(self, sock: "StreamSocket", data: bytes) -> None:  # noqa: B027
        """Called for every chunk of bytes from the peer."""

    def connection_lost(self, sock: "StreamSocket") -> None:  # noqa: B027
        """Called when the peer closes."""


class StreamSocket:
    """One endpoint of a bidirectional byte stream.

    A socket either *pushes* inbound bytes to a :class:`Protocol`
    (server side) or buffers them for :meth:`recv` (client side).
    """

    def __init__(self, label: str = "", queue: DeliveryQueue | None = None) -> None:
        self.label = label
        self.peer: StreamSocket | None = None
        self.protocol: Protocol | None = None
        self.remote_host: "Host | None" = None  # who is on the other end
        # The network's transport event queue, when this socket was
        # opened on a schedulable path (client-entry connections).
        # ``None`` — or an inactive queue — means synchronous delivery.
        self.queue = queue
        self._rx = bytearray()
        self.closed = False
        self._lost_notified = False
        self.bytes_sent = 0

    # -- wiring ---------------------------------------------------------

    @staticmethod
    def pair(
        client_label: str,
        server_label: str,
        queue: DeliveryQueue | None = None,
    ) -> tuple["StreamSocket", "StreamSocket"]:
        client = StreamSocket(client_label, queue=queue)
        server = StreamSocket(server_label, queue=queue)
        client.peer = server
        server.peer = client
        return client, server

    # -- data path ------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Deliver ``data`` to the peer (synchronously, or via the queue).

        With an active delivery queue the chunk is enqueued and lands
        when the scheduler drains; otherwise the peer sees it before
        this call returns — the historical reentrant model.
        """
        if self.closed:
            raise ConnectionReset(f"{self.label}: send on closed socket")
        if not data:
            return
        peer = self.peer
        if peer is None or peer.closed:
            raise ConnectionReset(f"{self.label}: peer is gone")
        self.bytes_sent += len(data)
        queue = self.queue
        if queue is not None and queue.active:
            queue.push_data(peer, bytes(data))
        elif peer.protocol is not None:
            peer.protocol.data_received(peer, bytes(data))
        else:
            peer._rx.extend(data)

    def recv(self, max_bytes: int | None = None) -> bytes:
        """Return buffered bytes (pull side only); empty if none pending."""
        if max_bytes is None or max_bytes >= len(self._rx):
            data = bytes(self._rx)
            self._rx.clear()
        else:
            data = bytes(self._rx[:max_bytes])
            del self._rx[:max_bytes]
        return data

    @property
    def pending(self) -> int:
        return len(self._rx)

    def close(self) -> None:
        """Close both directions; both protocols get ``connection_lost``.

        Close is symmetric: the peer's protocol *and* this side's own
        protocol (if any) are notified, each exactly once per socket
        lifetime — the closing side used to be skipped, which left
        server-side state (relay upstreams, abandoned-request
        accounting) dangling on self-close.  Under an active delivery
        queue the notifications are enqueued behind any bytes already
        in flight, so a "reply then close" server still lands its reply
        first; this side stops accepting sends immediately either way.
        """
        if self.closed:
            return
        self.closed = True
        queue = self.queue
        if queue is not None and queue.active:
            queue.push_close(self, self.peer)
        else:
            self._finish_close(self.peer)

    def _finish_close(self, peer: "StreamSocket | None") -> None:
        """Deliver the close: mark the peer dead, notify both sides."""
        if peer is not None:
            peer.closed = True
            peer._notify_lost()
        self._notify_lost()

    def _notify_lost(self) -> None:
        if self._lost_notified:
            return
        self._lost_notified = True
        if self.protocol is not None:
            self.protocol.connection_lost(self)


class Interceptor:
    """Base class for on-path middleboxes attached to a client host.

    When the host opens a connection, each interceptor is offered it in
    attachment order; the first whose :meth:`intercepts` returns True
    receives the server side of the client's socket and full control
    over what happens next (including opening its own upstream
    connection through ``network.connect_upstream``).
    """

    def intercepts(self, hostname: str, port: int) -> bool:
        raise NotImplementedError

    def accept(
        self,
        network: "Network",
        client_sock: StreamSocket,
        hostname: str,
        port: int,
    ) -> None:
        """Take over an intercepted connection.

        ``client_sock`` is the interceptor-side endpoint; assign its
        ``protocol`` to receive the client's bytes.
        """
        raise NotImplementedError


class PathHop:
    """One router on a client's path to the internet.

    Hops carry interceptors just like hosts do; an interceptor on a
    shared hop intercepts every client whose access path crosses it.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.interceptors: list[Interceptor] = []

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors = [i for i in self.interceptors if i is not interceptor]

    def __repr__(self) -> str:
        return f"PathHop({self.name!r})"


class Host:
    """A named endpoint with listeners and (for clients) interceptors."""

    def __init__(self, network: "Network", hostname: str, ip: str) -> None:
        self.network = network
        self.hostname = hostname
        self.ip = ip
        self.listeners: dict[int, Callable[[], Protocol]] = {}
        self.interceptors: list[Interceptor] = []
        # Compromised name resolution (the Sendori pattern, §5.1): maps
        # a requested hostname to the host actually connected to.  The
        # client still *believes* it reached the requested name — SNI
        # and certificate expectations are unchanged.
        self.dns_overrides: dict[str, str] = {}
        # Network path from this host to the wider internet: a list of
        # hops (access ISP, national gateway, transit, ...).  MitM
        # boxes attached to a hop intercept every client behind it —
        # the Iran/Syria national-gateway scenario of §1, and what
        # Crossbear-style localization (§8) triangulates against.
        self.access_path: list["PathHop"] = []

    def listen(self, port: int, protocol_factory: Callable[[], Protocol]) -> None:
        """Accept connections on ``port`` with a fresh Protocol per socket."""
        self.listeners[port] = protocol_factory

    def stop_listening(self, port: int) -> None:
        self.listeners.pop(port, None)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors = [i for i in self.interceptors if i is not interceptor]

    def connect(self, hostname: str, port: int) -> StreamSocket:
        """Open a client connection, subject to this host's interceptors."""
        return self.network.connect(self, hostname, port)

    def __repr__(self) -> str:
        return f"Host({self.hostname!r}, {self.ip})"


class Network:
    """The simulated internet: a registry of hosts plus the connect path."""

    def __init__(self) -> None:
        self._hosts: dict[str, Host] = {}
        self._by_ip: dict[str, Host] = {}
        self._auto_ip = 0
        # Transport event queue for scheduled delivery.  Inactive until
        # a scheduler (netsim.loop.WireScheduler) takes over, so plain
        # networks keep the synchronous model unchanged.
        self.queue = DeliveryQueue()
        self.connections_opened = 0
        self.connections_refused = 0
        self.connections_intercepted = 0

    def add_host(self, hostname: str, ip: str | None = None) -> Host:
        if hostname in self._hosts:
            raise NetsimError(f"duplicate hostname {hostname!r}")
        if ip is None:
            self._auto_ip += 1
            ip = f"198.51.{(self._auto_ip >> 8) & 0xFF}.{self._auto_ip & 0xFF}"
        host = Host(self, hostname, ip)
        self._hosts[hostname] = host
        self._by_ip[ip] = host
        return host

    def host(self, hostname: str) -> Host:
        try:
            return self._hosts[hostname]
        except KeyError:
            raise ConnectionRefused(f"no such host {hostname!r}") from None

    def host_by_ip(self, ip: str) -> Host | None:
        return self._by_ip.get(ip)

    def host_or_none(self, hostname: str) -> Host | None:
        return self._hosts.get(hostname)

    def __contains__(self, hostname: str) -> bool:
        return hostname in self._hosts

    # -- connection establishment ----------------------------------------

    def connect(
        self, src: Host, hostname: str, port: int, *, queued: bool = True
    ) -> StreamSocket:
        """Connect from ``src``; interceptors on ``src`` get first claim.

        Name resolution happens first: a poisoned entry in the client's
        ``dns_overrides`` silently redirects the connection while the
        application layer keeps using the original hostname.

        ``queued`` marks the connection schedulable: its sockets carry
        the network's delivery queue, so a scheduler can interleave it
        with other client traffic.  Interceptors opening their own
        origin-facing legs pass ``queued=False`` (or use
        :meth:`connect_upstream` directly) — middlebox upstream
        handshakes stay synchronous inside one delivery event.
        """
        resolved = src.dns_overrides.get(hostname, hostname)
        for interceptor in src.interceptors:
            if interceptor.intercepts(hostname, port):
                self.connections_intercepted += 1
                return self._connect_via_interceptor(
                    interceptor, src, resolved, port, queued=queued
                )
        # On-path middleboxes beyond the client machine, nearest first.
        for hop in src.access_path:
            for interceptor in hop.interceptors:
                if interceptor.intercepts(hostname, port):
                    self.connections_intercepted += 1
                    return self._connect_via_interceptor(
                        interceptor, src, resolved, port, queued=queued
                    )
        return self.connect_upstream(src, resolved, port, queued=queued)

    def traceroute(self, src: Host, hostname: str) -> list[str]:
        """The hop names a packet from ``src`` to ``hostname`` traverses.

        What a Crossbear-style hunter records alongside the observed
        certificate; interceptors are of course not visible in it.
        """
        resolved = src.dns_overrides.get(hostname, hostname)
        return [src.hostname, *(hop.name for hop in src.access_path), resolved]

    def _connect_via_interceptor(
        self,
        interceptor: Interceptor,
        src: Host,
        hostname: str,
        port: int,
        *,
        queued: bool = False,
    ) -> StreamSocket:
        client_side, proxy_side = StreamSocket.pair(
            f"{src.hostname}->proxy",
            f"proxy<-{src.hostname}",
            queue=self.queue if queued else None,
        )
        proxy_side.remote_host = src
        # ``accept`` claims the socket (assigns its protocol) before
        # any client byte can be delivered, so it runs synchronously
        # even on a scheduled transport.
        interceptor.accept(self, proxy_side, hostname, port)
        self.connections_opened += 1
        return client_side

    def connect_upstream(
        self, src: Host, hostname: str, port: int, *, queued: bool = False
    ) -> StreamSocket:
        """Connect directly to the destination, bypassing interceptors.

        Used both for unintercepted client traffic and for the upstream
        leg an interceptor opens toward the origin server.  The default
        ``queued=False`` keeps those upstream legs synchronous — an
        interceptor's request/reply dance with the origin completes
        inside whatever event is currently being processed.
        """
        destination = self._hosts.get(hostname)
        if destination is None or port not in destination.listeners:
            self.connections_refused += 1
            raise ConnectionRefused(f"{hostname}:{port}")
        queue = self.queue if queued else None
        client_side, server_side = StreamSocket.pair(
            f"{src.hostname}->{hostname}:{port}",
            f"{hostname}:{port}<-{src.hostname}",
            queue=queue,
        )
        client_side.remote_host = destination
        server_side.remote_host = src
        protocol = destination.listeners[port]()
        server_side.protocol = protocol
        self.connections_opened += 1
        if queue is not None and queue.active:
            queue.push_connect(protocol, server_side)
        else:
            protocol.connection_made(server_side)
        return client_side
