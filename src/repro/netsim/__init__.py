"""In-process network simulation.

The measurement study runs over the real Internet; this package
substitutes a deterministic, single-threaded internet that still moves
real bytes.  Servers are event-driven protocol handlers, clients are
pull-style sockets, and — the part the whole paper hinges on —
*interceptors* can sit on a client's path and terminate, inspect, or
re-originate connections exactly like a corporate firewall, antivirus
product, or piece of malware.

Execution model: delivery is synchronous.  ``socket.send`` immediately
invokes the peer protocol's ``data_received``; anything the peer sends
back lands in the client's receive buffer before ``send`` returns.
This keeps an entire TLS handshake deterministic without threads or an
event loop, which is what lets the test suite drive millions of
handshakes reproducibly.
"""

from repro.netsim.network import (
    ConnectionRefused,
    ConnectionReset,
    Host,
    Interceptor,
    NetsimError,
    Network,
    PathHop,
    Protocol,
    StreamSocket,
)

__all__ = [
    "ConnectionRefused",
    "ConnectionReset",
    "Host",
    "Interceptor",
    "NetsimError",
    "Network",
    "PathHop",
    "Protocol",
    "StreamSocket",
]
