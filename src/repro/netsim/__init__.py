"""In-process network simulation.

The measurement study runs over the real Internet; this package
substitutes a deterministic, single-threaded internet that still moves
real bytes.  Servers are event-driven protocol handlers, clients are
pull-style sockets, and — the part the whole paper hinges on —
*interceptors* can sit on a client's path and terminate, inspect, or
re-originate connections exactly like a corporate firewall, antivirus
product, or piece of malware.

Execution model: delivery is synchronous by default — ``socket.send``
immediately invokes the peer protocol's ``data_received``, so anything
the peer sends back lands in the client's receive buffer before
``send`` returns, and an entire TLS handshake is one deterministic
call stack.  For concurrent wire runs a scheduler
(:class:`~repro.netsim.loop.WireScheduler`) activates the network's
:class:`~repro.netsim.events.DeliveryQueue`: sends then enqueue FIFO
delivery events that are drained between cooperative ticks, letting
one process multiplex thousands of client state machines while every
individual connection still observes synchronous semantics.
"""

from repro.netsim.events import DeliveryQueue, drive, settle
from repro.netsim.loop import CooperativeLoop, LoopStarvation, WireScheduler
from repro.netsim.network import (
    ConnectionRefused,
    ConnectionReset,
    Host,
    Interceptor,
    NetsimError,
    Network,
    PathHop,
    Protocol,
    StreamSocket,
)

__all__ = [
    "ConnectionRefused",
    "ConnectionReset",
    "CooperativeLoop",
    "DeliveryQueue",
    "Host",
    "Interceptor",
    "LoopStarvation",
    "NetsimError",
    "Network",
    "PathHop",
    "Protocol",
    "StreamSocket",
    "WireScheduler",
    "drive",
    "settle",
]
