"""Scheduled delivery: the transport event queue behind wire concurrency.

netsim historically delivered bytes by recursion — ``send()`` invoked
the peer protocol's ``data_received`` before returning — which made a
whole TLS handshake one synchronous call stack and capped wire mode at
one session at a time.  :class:`DeliveryQueue` breaks that stack: while
a scheduler holds the queue *active*, sends enqueue ``(socket, chunk)``
delivery events, queued connects enqueue their ``connection_made``,
and closes enqueue their ``connection_lost`` notifications, all
processed in strict FIFO order when the scheduler drains between
cooperative ticks.

Inactive (the default, and the permanent state of any network no
scheduler touches) the queue is invisible: delivery stays synchronous
and byte-for-byte identical to the historical behaviour, which is what
keeps the serial wire path and every non-study consumer (audit
harness, ingest loop, unit tests) unchanged.

Two tiny driver helpers round out the model: client state machines are
written once as generators that ``yield`` while awaiting bytes
(:func:`settle`), and :func:`drive` runs such a generator to
completion for callers that want the old blocking call shape.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator, TypeVar

if TYPE_CHECKING:
    from repro.netsim.network import Protocol, StreamSocket

T = TypeVar("T")

_DATA = 0
_CONNECT = 1
_CLOSE = 2


class DeliveryQueue:
    """FIFO of pending transport events for one :class:`Network`.

    Event order is the only scheduling state: a reply enqueued before a
    close is delivered before the close lands, exactly as in the
    synchronous model.  Deliveries addressed to a socket that closed
    while the event was in flight are dropped (and counted) — the
    synchronous model never observes that interleaving, so nothing may
    depend on it.
    """

    def __init__(self) -> None:
        self.active = False
        self._events: deque[tuple] = deque()
        self.delivered = 0  # data events handed to a live socket
        self.connects = 0
        self.closes = 0
        self.dropped = 0  # data events whose socket closed in flight
        self.max_depth = 0  # high-water queue depth

    def __len__(self) -> int:
        return len(self._events)

    @property
    def depth(self) -> int:
        return len(self._events)

    def _push(self, event: tuple) -> None:
        self._events.append(event)
        if len(self._events) > self.max_depth:
            self.max_depth = len(self._events)

    def push_data(self, sock: "StreamSocket", data: bytes) -> None:
        self._push((_DATA, sock, data))

    def push_connect(self, protocol: "Protocol", sock: "StreamSocket") -> None:
        self._push((_CONNECT, protocol, sock))

    def push_close(self, sock: "StreamSocket", peer: "StreamSocket | None") -> None:
        self._push((_CLOSE, sock, peer))

    def drain(self) -> int:
        """Process events until the queue is empty; returns the count.

        Handlers may enqueue further events (a server answering a
        delivery, a close cascading into a relay teardown); those are
        processed in the same drain, so one drain always reaches
        quiescence.
        """
        processed = 0
        while self._events:
            kind, a, b = self._events.popleft()
            processed += 1
            if kind == _DATA:
                self._deliver(a, b)
            elif kind == _CONNECT:
                self.connects += 1
                a.connection_made(b)
            else:
                self.closes += 1
                a._finish_close(b)
        return processed

    def _deliver(self, sock: "StreamSocket", data: bytes) -> None:
        if sock.closed:
            self.dropped += 1
            return
        self.delivered += 1
        if sock.protocol is not None:
            sock.protocol.data_received(sock, data)
        else:
            sock._rx.extend(data)


def settle(sock: "StreamSocket") -> Iterator[None]:
    """Yield once if ``sock`` rides a scheduled (queue-active) transport.

    Client state machines call ``yield from settle(sock)`` between a
    send and the matching ``recv()``: under a scheduler the yield lets
    the loop drain the queue (every reply the peer produces lands
    before the task resumes); on a synchronous transport it is a no-op,
    so the same generator body serves both execution modes.
    """
    queue = sock.queue
    if queue is not None and queue.active:
        yield


def drive(task: Iterator[T]) -> T:
    """Run a client generator to completion and return its result.

    The synchronous call shape: on an unscheduled transport the task's
    yields are free (nothing else wants the loop), so driving it inline
    performs exactly the work — and exactly the accounting — of the
    historical blocking implementation.
    """
    while True:
        try:
            next(task)
        except StopIteration as stop:
            return stop.value


__all__ = ["DeliveryQueue", "drive", "settle"]
