"""IP geolocation (the MaxMind GeoLite substitute).

The paper geolocates every reporting client's IP with GeoLite (§4).
This package provides the same query surface over a synthetic range
database that the population layer builds alongside its IP allocation
plan, so lookups are exact by construction — as they need to be for
the per-country tables to be meaningful.
"""

from repro.geoip.database import GeoIpDatabase, GeoIpError, ip_to_int, int_to_ip

__all__ = ["GeoIpDatabase", "GeoIpError", "int_to_ip", "ip_to_int"]
