"""Range-based IP → country database with binary-search lookup."""

from __future__ import annotations

import bisect


class GeoIpError(ValueError):
    """Raised on malformed IPs or inconsistent range definitions."""


def ip_to_int(ip: str) -> int:
    """Dotted-quad IPv4 → integer."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise GeoIpError(f"bad IPv4 address {ip!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise GeoIpError(f"bad IPv4 address {ip!r}") from exc
        if not 0 <= octet <= 255:
            raise GeoIpError(f"bad IPv4 address {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Integer → dotted-quad IPv4."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise GeoIpError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class GeoIpDatabase:
    """Sorted, non-overlapping IP ranges mapping to country codes."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._countries: list[str] = []
        self._frozen = False

    def add_range(self, start_ip: str, end_ip: str, country: str) -> None:
        """Register ``[start_ip, end_ip]`` (inclusive) as ``country``."""
        if self._frozen:
            raise GeoIpError("database is frozen")
        start, end = ip_to_int(start_ip), ip_to_int(end_ip)
        if start > end:
            raise GeoIpError(f"inverted range {start_ip}..{end_ip}")
        self._starts.append(start)
        self._ends.append(end)
        self._countries.append(country)

    def freeze(self) -> None:
        """Sort ranges and verify no overlaps; required before lookup."""
        order = sorted(range(len(self._starts)), key=lambda i: self._starts[i])
        self._starts = [self._starts[i] for i in order]
        self._ends = [self._ends[i] for i in order]
        self._countries = [self._countries[i] for i in order]
        for i in range(1, len(self._starts)):
            if self._starts[i] <= self._ends[i - 1]:
                raise GeoIpError(
                    f"overlapping ranges at {int_to_ip(self._starts[i])}"
                )
        self._frozen = True

    def lookup(self, ip: str) -> str | None:
        """Country code for ``ip``, or None if unallocated."""
        if not self._frozen:
            raise GeoIpError("freeze() the database before lookup")
        value = ip_to_int(ip)
        index = bisect.bisect_right(self._starts, value) - 1
        if index >= 0 and value <= self._ends[index]:
            return self._countries[index]
        return None

    def __len__(self) -> int:
        return len(self._starts)

    def ranges(self) -> list[tuple[str, str, str]]:
        """All ranges as (start_ip, end_ip, country), sorted."""
        return [
            (int_to_ip(s), int_to_ip(e), c)
            for s, e, c in zip(self._starts, self._ends, self._countries)
        ]
