"""ASCII rendering of the evaluation artifacts.

Benches print these next to the paper's numbers; the formats follow
the paper's table layouts so the two are visually comparable.
"""

from __future__ import annotations

from repro.analysis.mimicry import MimicryPrevalence
from repro.analysis.tables import (
    AuditGradeRow,
    ClassificationRow,
    ClientLegRow,
    CountryBreakdown,
    HostTypeRow,
    IssuerRow,
    ServerLegRow,
)
from repro.audit.scorecard import ProductScorecard


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a padded ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [render_row(headers), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def render_country_table(breakdown: CountryBreakdown) -> str:
    """Tables 3/7 layout: Rank, Country, Proxied, Total, Percent."""
    rows = []
    for row in breakdown.rows:
        rows.append(
            [
                str(row.rank),
                row.country,
                f"{row.proxied:,}",
                f"{row.total:,}",
                f"{row.percent:.2f}%",
            ]
        )
    for row in (breakdown.other, breakdown.total):
        rows.append(
            ["", row.country, f"{row.proxied:,}", f"{row.total:,}", f"{row.percent:.2f}%"]
        )
    return render_table(["Rank", "Country", "Proxied", "Total", "Percent"], rows)


def render_issuer_table(rows: list[IssuerRow], other: IssuerRow) -> str:
    """Table 4 layout: Rank, Issuer Organization, Connections."""
    body = [
        [str(row.rank), row.issuer_organization, f"{row.connections:,}"]
        for row in rows
    ]
    body.append(["", other.issuer_organization, f"{other.connections:,}"])
    return render_table(["Rank", "Issuer Organization", "Connections"], body)


def render_classification_table(rows: list[ClassificationRow]) -> str:
    """Tables 5/6 layout: Proxy Type, Connections, Percent."""
    body = [
        [row.category.value, f"{row.connections:,}", f"{row.percent:.2f}%"]
        for row in rows
    ]
    return render_table(["Proxy Type", "Connections", "Percent"], body)


def render_host_type_table(rows: list[HostTypeRow]) -> str:
    """Table 8 layout: Website Type, Connections, Proxied, Percent Proxied."""
    body = [
        [
            row.host_type,
            f"{row.connections:,}",
            f"{row.proxied:,}",
            f"{row.percent_proxied:.2f}%",
        ]
        for row in rows
    ]
    return render_table(
        ["Website Type", "Connections", "Proxied", "Percent Proxied"], body
    )


def render_audit_grade_table(rows: list[AuditGradeRow]) -> str:
    """Aggregate audit grades, best first (Waked et al. Table 9 style)."""
    body = []
    for row in rows:
        body.append(
            [
                str(row.rank),
                row.product_key,
                row.category,
                row.grade,
                f"{row.score_percent:.0f}%",
                str(row.blocked),
                str(row.passed_through),
                str(row.masked),
                str(row.errors),
                (
                    f"{row.client_score:.1f}/{row.client_max_score:.0f}"
                    if row.client_max_score
                    else "-"
                ),
                (
                    f"{row.server_score:.1f}/{row.server_max_score:.0f}"
                    if row.server_max_score
                    else "-"
                ),
                "yes" if row.functional else "NO",
            ]
        )
    return render_table(
        [
            "Rank",
            "Product",
            "Category",
            "Grade",
            "Score",
            "Blocked",
            "Passed",
            "Masked",
            "Errors",
            "ClientLeg",
            "ServerLeg",
            "Functional",
        ],
        body,
    )


def render_client_leg_table(rows: list[ClientLegRow]) -> str:
    """Per-product client-leg divergence table (mimicry + substitute)."""
    body = [
        [
            row.product_key,
            row.browser,
            row.mimicry,
            row.key_bits,
            row.hash_name,
            row.version_echo,
            f"{row.points:.1f}/{row.max_points:.0f}",
        ]
        for row in rows
    ]
    return render_table(
        [
            "Product",
            "Browser",
            "Mimicry",
            "KeyBits",
            "Hash",
            "VersionEcho",
            "Points",
        ],
        body,
    )


def render_server_leg_table(rows: list[ServerLegRow]) -> str:
    """Per-product server-leg divergence table (substitute ServerHello)."""
    body = [
        [
            row.product_key,
            row.browser,
            row.server_hello,
            row.cipher,
            row.version_echo,
            row.compression,
            row.session,
            f"{row.points:.1f}/{row.max_points:.0f}",
        ]
        for row in rows
    ]
    return render_table(
        [
            "Product",
            "Browser",
            "ServerHello",
            "Cipher",
            "VersionEcho",
            "Compression",
            "Session",
            "Points",
        ],
        body,
    )


def render_mimicry_prevalence_table(prevalence: MimicryPrevalence) -> str:
    """Per-country detectable-from-client-side rates (the new study)."""
    body = []
    for row in prevalence.rows:
        body.append(
            [
                str(row.rank),
                row.country,
                f"{row.proxied:,}",
                f"{row.detectable:,}",
                f"{row.percent:.1f}%",
            ]
        )
    for row in (prevalence.other, prevalence.total):
        body.append(
            ["", row.country, f"{row.proxied:,}", f"{row.detectable:,}", f"{row.percent:.1f}%"]
        )
    return render_table(
        ["Rank", "Country", "Proxied", "Detectable", "Share"], body
    )


def render_scorecard(card: ProductScorecard) -> str:
    """One product's full scorecard with per-check evidence."""
    header = (
        f"{card.product_key} ({card.category}) — grade {card.grade} "
        f"({card.score:.1f}/{card.max_score:.0f} points"
        f"{'' if card.functional else ', NOT functional on genuine origins'})"
    )
    body = [
        [check.title, check.defect or "-", check.outcome, f"{check.points:.1f}", check.evidence]
        for check in card.all_checks
    ]
    table = render_table(["Check", "Defect", "Outcome", "Points", "Evidence"], body)
    return f"{header}\n{table}"


# Figure 7's palette, coarsened to ASCII: low rate → '.', high → '#'.
_HEAT_CHARS = " .:-=+*#%@"
_HEAT_CEILING = 0.12  # the paper's 12% maximum


def heat_char(rate: float) -> str:
    """Map a proxy rate to a heat character."""
    clamped = max(0.0, min(rate, _HEAT_CEILING))
    index = int(clamped / _HEAT_CEILING * (len(_HEAT_CHARS) - 1))
    return _HEAT_CHARS[index]


def render_heatmap(series: dict[str, float], columns: int = 6) -> str:
    """Figure 7 as an ASCII country grid, hottest first.

    The paper paints a world map; the data series is the same —
    country → proxy rate on a 0–12% scale.
    """
    ordered = sorted(series.items(), key=lambda item: -item[1])
    cells = [
        f"{country:>3} {heat_char(rate)} {rate * 100:5.2f}%"
        for country, rate in ordered
    ]
    lines = []
    for start in range(0, len(cells), columns):
        lines.append("   ".join(cells[start : start + columns]))
    legend = (
        f"scale: '{_HEAT_CHARS[1]}' ~0% ... '{_HEAT_CHARS[-1]}' >= "
        f"{_HEAT_CEILING * 100:.0f}% proxied"
    )
    return "\n".join([*lines, legend])


def render_metrics_table(snapshot: dict, max_counter_rows: int = 30) -> str:
    """The run's phase profile plus its headline deterministic counters.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict (or the JSON written by ``--metrics-out``).  Span paths are
    slash-nested, so indenting by depth renders the profile as a tree;
    timings are wall-clock and never part of any determinism contract.
    """
    sections = []
    spans = snapshot.get("timing", {}).get("spans", {})
    if spans:
        body = []
        for path in sorted(spans):
            stats = spans[path]
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            mean_ms = 1000 * stats["total_s"] / max(stats["count"], 1)
            body.append(
                [
                    label,
                    f"{stats['count']:,}",
                    f"{stats['total_s']:.3f}",
                    f"{mean_ms:.2f}",
                    f"{1000 * stats['min_s']:.2f}",
                    f"{1000 * stats['max_s']:.2f}",
                ]
            )
        sections.append(
            "== Phase profile (wall clock) ==\n"
            + render_table(
                ["Span", "Count", "Total s", "Mean ms", "Min ms", "Max ms"], body
            )
        )
    counters = snapshot.get("deterministic", {}).get("counters", {})
    if counters:
        rows = [
            [key, f"{value:,}"] for key, value in sorted(counters.items())
        ]
        shown = rows[:max_counter_rows]
        table = render_table(["Deterministic counter", "Value"], shown)
        if len(rows) > len(shown):
            table += f"\n... ({len(rows) - len(shown)} more series)"
        sections.append("== Deterministic counters ==\n" + table)
    process = snapshot.get("process", {}).get("counters", {})
    if process:
        body = [[key, f"{value:,}"] for key, value in sorted(process.items())]
        sections.append(
            "== Process-local counters (scheduling-dependent) ==\n"
            + render_table(["Counter", "Value"], body)
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
