"""Rendering of paper-style tables and the Figure 7 heat map."""

from repro.reporting.render import (
    render_classification_table,
    render_country_table,
    render_heatmap,
    render_host_type_table,
    render_issuer_table,
    render_table,
)

__all__ = [
    "render_classification_table",
    "render_country_table",
    "render_heatmap",
    "render_host_type_table",
    "render_issuer_table",
    "render_table",
]
