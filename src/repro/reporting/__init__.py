"""Rendering of paper-style tables and the Figure 7 heat map."""

from repro.reporting.render import (
    render_audit_grade_table,
    render_classification_table,
    render_client_leg_table,
    render_country_table,
    render_heatmap,
    render_host_type_table,
    render_issuer_table,
    render_metrics_table,
    render_mimicry_prevalence_table,
    render_scorecard,
    render_server_leg_table,
    render_table,
)

__all__ = [
    "render_audit_grade_table",
    "render_classification_table",
    "render_client_leg_table",
    "render_country_table",
    "render_heatmap",
    "render_host_type_table",
    "render_issuer_table",
    "render_metrics_table",
    "render_mimicry_prevalence_table",
    "render_scorecard",
    "render_server_leg_table",
    "render_table",
]
