"""Per-country calibration (Tables 3 and 7) and campaign constants (Table 2).

``proxied``/``total`` are the paper's measured connection counts; the
population sampler uses ``total`` as the country's measurement weight
and ``proxied/total`` as its interception rate.  The "Other" rows are
expanded over a synthetic tail of additional countries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CountryCalibration:
    """One country's published numbers for one study."""

    code: str
    name: str
    proxied: int
    total: int

    @property
    def rate(self) -> float:
        return self.proxied / self.total if self.total else 0.0


# Table 3 — proxied connections by country, first study (top 20 + Other).
STUDY1_COUNTRIES: tuple[CountryCalibration, ...] = (
    CountryCalibration("US", "United States", 2252, 285078),
    CountryCalibration("BR", "Brazil", 2041, 298618),
    CountryCalibration("FR", "France", 812, 74789),
    CountryCalibration("GB", "United Kingdom", 759, 259971),
    CountryCalibration("RO", "Romania", 696, 94116),
    CountryCalibration("DE", "Germany", 499, 187805),
    CountryCalibration("CA", "Canada", 303, 34695),
    CountryCalibration("TR", "Turkey", 303, 65195),
    CountryCalibration("IN", "India", 302, 51348),
    CountryCalibration("ES", "Spain", 226, 62569),
    CountryCalibration("RU", "Russia", 224, 58402),
    CountryCalibration("IT", "Italy", 200, 129358),
    CountryCalibration("KR", "South Korea", 196, 46660),
    CountryCalibration("PT", "Portugal", 185, 29799),
    CountryCalibration("PL", "Poland", 182, 110550),
    CountryCalibration("UA", "Ukraine", 160, 61431),
    CountryCalibration("BE", "Belgium", 136, 16816),
    CountryCalibration("JP", "Japan", 111, 31751),
    CountryCalibration("NL", "Netherlands", 104, 31938),
    CountryCalibration("TW", "Taiwan", 101, 61195),
)
STUDY1_OTHER = CountryCalibration("??", "Other (215 countries)", 1972, 869096)
STUDY1_TOTAL = CountryCalibration("ALL", "Total", 11764, 2861180)

# Table 7 — connections tested by country, second study (top 20 + Other).
STUDY2_COUNTRIES: tuple[CountryCalibration, ...] = (
    CountryCalibration("CN", "China", 563, 2549301),
    CountryCalibration("UA", "Ukraine", 4329, 1575053),
    CountryCalibration("RU", "Russia", 4532, 1116341),
    CountryCalibration("KR", "South Korea", 1722, 836556),
    CountryCalibration("EG", "Egypt", 3720, 660937),
    CountryCalibration("PK", "Pakistan", 1890, 456792),
    CountryCalibration("TR", "Turkey", 1975, 411962),
    CountryCalibration("US", "United States", 3327, 385811),
    CountryCalibration("JP", "Japan", 2033, 273532),
    CountryCalibration("GB", "United Kingdom", 2056, 266873),
    CountryCalibration("BR", "Brazil", 1889, 232454),
    CountryCalibration("TW", "Taiwan", 530, 186942),
    CountryCalibration("RO", "Romania", 2210, 185749),
    CountryCalibration("ID", "Indonesia", 798, 181971),
    CountryCalibration("DE", "Germany", 1091, 177586),
    CountryCalibration("IT", "Italy", 737, 145438),
    CountryCalibration("GR", "Greece", 516, 130613),
    CountryCalibration("PL", "Poland", 456, 127806),
    CountryCalibration("CZ", "Czech Republic", 343, 110170),
    CountryCalibration("IN", "India", 716, 102869),
)
STUDY2_OTHER = CountryCalibration("??", "Other (209 countries)", 15328, 2200000)
STUDY2_TOTAL = CountryCalibration("ALL", "Total", 50761, 12314756)

# Countries in the "Other" tail.  Weights follow a Zipf-ish decay; the
# aggregate proxied/total is split proportionally.  (These are real ISO
# codes so the GeoIP layer and heat map stay plausible; DK and IE carry
# product-specific narratives — MYInternetS and DSP.)
OTHER_TAIL_CODES: tuple[str, ...] = (
    "MX", "AR", "CO", "CL", "PE", "VE", "AU", "NZ", "ZA", "NG",
    "KE", "EG2", "MA", "DZ", "TN", "SA", "AE", "IL", "IE", "DK",
    "SE", "NO", "FI", "CH", "AT", "HU", "BG", "RS", "HR", "SK",
    "LT", "LV", "EE", "TH", "VN", "MY", "SG", "PH", "HK", "BD",
    "LK", "NP", "KZ", "GE", "AM", "AZ", "BY", "MD", "AL", "MK",
)


def other_tail(study: int) -> list[CountryCalibration]:
    """Expand the 'Other' row over the synthetic tail countries."""
    aggregate = STUDY1_OTHER if study == 1 else STUDY2_OTHER
    codes = [c for c in OTHER_TAIL_CODES if c != "EG2"]
    weights = [1.0 / (rank + 2) for rank in range(len(codes))]
    weight_sum = sum(weights)
    rows = []
    remaining_total = aggregate.total
    remaining_proxied = aggregate.proxied
    for index, (code, weight) in enumerate(zip(codes, weights)):
        if index == len(codes) - 1:
            total, proxied = remaining_total, remaining_proxied
        else:
            total = int(aggregate.total * weight / weight_sum)
            proxied = int(aggregate.proxied * weight / weight_sum)
            remaining_total -= total
            remaining_proxied -= proxied
        rows.append(CountryCalibration(code, code, proxied, total))
    return rows


def country_table(study: int) -> list[CountryCalibration]:
    """Top-20 countries plus the expanded tail for ``study`` (1 or 2)."""
    named = STUDY1_COUNTRIES if study == 1 else STUDY2_COUNTRIES
    return list(named) + other_tail(study)


def study_totals(study: int) -> CountryCalibration:
    return STUDY1_TOTAL if study == 1 else STUDY2_TOTAL


# The five countries targeted by dedicated mini-campaigns in study 2.
TARGETED_COUNTRIES: tuple[str, ...] = ("CN", "UA", "RU", "EG", "PK")


@dataclass(frozen=True)
class CampaignCalibration:
    """Table 2 — one AdWords campaign's published statistics."""

    name: str
    geo_target: str | None  # ISO code, or None for global
    daily_budget_usd: float
    days: int
    impressions: int
    clicks: int
    cost_usd: float

    @property
    def effective_cpm(self) -> float:
        """Observed cost per thousand impressions."""
        return self.cost_usd / self.impressions * 1000.0

    @property
    def click_through_rate(self) -> float:
        return self.clicks / self.impressions


STUDY2_CAMPAIGNS: tuple[CampaignCalibration, ...] = (
    CampaignCalibration("Global", None, 500.0, 7, 3285598, 5424, 4021.78),
    CampaignCalibration("China", "CN", 50.0, 7, 689233, 652, 401.41),
    CampaignCalibration("Egypt", "EG", 50.0, 7, 232218, 1777, 378.17),
    CampaignCalibration("Pakistan", "PK", 50.0, 7, 183849, 2536, 378.26),
    CampaignCalibration("Russia", "RU", 50.0, 7, 230474, 203, 401.36),
    CampaignCalibration("Ukraine", "UA", 50.0, 7, 364868, 294, 390.69),
)

STUDY1_CAMPAIGN = CampaignCalibration(
    # Jan 6–30 2014: variable budget for 17 days, then $500/day.
    "Study 1 Global", None, 500.0, 24, 4634386, 3897, 4911.97,
)

# Measurement yield: successful measurements per impression, derived
# from the paper's totals (2,861,244 / 4,634,386 and
# 12,314,756 / 5,079,298 respectively).
STUDY1_MEASUREMENTS = 2861244
STUDY2_MEASUREMENTS = 12314756


def measurement_yield(study: int) -> float:
    if study == 1:
        return STUDY1_MEASUREMENTS / STUDY1_CAMPAIGN.impressions
    total_impressions = sum(c.impressions for c in STUDY2_CAMPAIGNS)
    return STUDY2_MEASUREMENTS / total_impressions
