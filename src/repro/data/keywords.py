"""AdWords keyword sets (§4.1, §4.2).

Ads are placed on pages matching campaign keywords; the authors chose
globally trending phrases to maximise reach.  The sets are carried on
the campaign objects for fidelity and used by the placement model to
label impressions.
"""

from __future__ import annotations

STUDY1_KEYWORDS: tuple[str, ...] = (
    "Nelson Mandela",
    "Sports",
    "Basketball",
    "NSA",
    "Internet",
    "Freedom",
    "Paul Walker",
    "Security",
    "LeBron James",
    "Haiyan",
    "Snowden",
    "PlayStation 4",
    "Miley Cyrus",
    "Xbox One",
    "iPhone 5s",
)

STUDY2_KEYWORDS: tuple[str, ...] = (
    "Nelson Mandela",
    "Sports",
    "Internet Security",
    "Basketball",
    "Football",
    "Freedom",
    "NCAA",
    "Paul Walker",
    "Boston Marathon",
    "Election",
    "North Korea",
    "Harlem Shake",
    "PlayStation 4",
    "Royal Baby",
    "Cory Monteith",
    "iPhone 6",
    "iPhone 5s",
    "Samsung Galaxy S4",
    "iPhone 6 Plus",
    "TLS Proxies",
)


def keywords_for_study(study: int) -> tuple[str, ...]:
    if study == 1:
        return STUDY1_KEYWORDS
    if study == 2:
        return STUDY2_KEYWORDS
    raise ValueError(f"study must be 1 or 2, not {study}")
